#!/usr/bin/env python
"""Reproduce the paper's scaling study end to end (scaled-down).

Runs the strong/weak scaling experiments (Figs. 7-10) and the hybrid
combination sweep (Fig. 11) on small problem instances, converting the
measured per-task work and traffic into modelled cluster time with the
shared cost model, and prints the same normalised series the paper
plots.

Run with (takes a couple of minutes)::

    python examples/scaling_study.py
"""

from __future__ import annotations

from repro.bench import (
    default_scaling_workloads,
    fig7_strong_scaling_mpi,
    fig8_weak_scaling_mpi,
    fig9_strong_scaling_omp,
    fig10_weak_scaling_omp,
    fig11_hybrid,
    format_table,
    sgrid_workload,
    usgrid_workload,
)


def main() -> None:
    # Smaller series than the benchmark defaults so the example stays quick.
    series = {
        "SGrid": sgrid_workload(32, paper_region=4096),
        "USGrid CaseC (w MMAT)": usgrid_workload(32, case="C", paper_region=4096),
        "USGrid CaseR (w MMAT)": usgrid_workload(32, case="R", paper_region=4096),
    }

    print(format_table(
        fig7_strong_scaling_mpi(counts=(1, 2, 4, 8), series=series),
        title="\nFig. 7 — strong scaling, distributed-memory layer (relative to 1 task)",
    ))
    print(format_table(
        fig9_strong_scaling_omp(counts=(1, 2, 4, 8), series=series),
        title="\nFig. 9 — strong scaling, shared-memory layer (relative to 1 task)",
    ))

    weak_series = {
        "SGrid": sgrid_workload(16, paper_region=2048),
        "USGrid CaseR (w MMAT)": usgrid_workload(16, case="R", block_cells=32,
                                                 paper_region=2048),
    }
    print(format_table(
        fig8_weak_scaling_mpi(counts=(1, 4, 16), series=weak_series),
        title="\nFig. 8 — weak scaling, distributed-memory layer (1 task = 1.0)",
    ))
    print(format_table(
        fig10_weak_scaling_omp(counts=(1, 4, 16), series=weak_series),
        title="\nFig. 10 — weak scaling, shared-memory layer (1 task = 1.0)",
    ))

    print(format_table(
        fig11_hybrid(combinations=((1, 8), (2, 4), (4, 2), (8, 1)), series=series),
        title="\nFig. 11 — MPI x OpenMP combinations at 8 tasks (1 task = 100%)",
    ))


if __name__ == "__main__":
    main()
