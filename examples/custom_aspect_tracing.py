#!/usr/bin/env python
"""Writing your own aspect module: a step timer woven into any application.

The paper's platform is a *DSL-constructing* platform: DSL developers
combine aspect modules, and nothing stops them from adding their own.
This example defines a small timing aspect that measures every
``Processing`` phase and every ``refresh`` round without touching either
the application code or the DSL — the textbook cross-cutting concern —
and runs it together with the OpenMP aspect module to show that custom
and platform aspects compose.

The aspect declares its pointcuts in the *textual pointcut language*
(``@around("tagged('platform.processing')")``), the Python counterpart
of AspectC++'s string match expressions; ``Pointcut`` combinator
objects remain equally valid.  The first run uses the legacy
``Platform(aspects=[...])`` constructor on purpose — old call sites
keep working — while the second uses the fluent builder.

Run with::

    python examples/custom_aspect_tracing.py
"""

from __future__ import annotations

import time
from collections import defaultdict

from repro import Platform
from repro.aop import Aspect, after_returning, around, before

from repro.apps import JacobiSGrid


class StepTimerAspect(Aspect):
    """Times Processing and counts refresh outcomes for any platform app."""

    #: Run outside the layer aspects so the timings include their work too.
    order = 1

    def __init__(self) -> None:
        super().__init__()
        self.processing_seconds = 0.0
        self.refresh_outcomes = defaultdict(int)

    @around("tagged('platform.processing')")
    def time_processing(self, jp):
        start = time.perf_counter()
        try:
            return jp.proceed()
        finally:
            self.processing_seconds += time.perf_counter() - start

    @after_returning("tagged('memory.refresh')")
    def count_refresh(self, jp):
        self.refresh_outcomes["success" if jp.result else "retry"] += 1

    @before("tagged('platform.finalize')")
    def report(self, jp):
        print(
            f"[StepTimerAspect] processing took {self.processing_seconds:.3f}s, "
            f"refresh outcomes: {dict(self.refresh_outcomes)}"
        )


def main() -> None:
    config = dict(
        region=32, block_size=8, page_elements=32, loops=4,
        init=lambda x, y: float(x == y),
    )

    print("-- serial run with the custom timing aspect only (legacy constructor) --")
    timer = StepTimerAspect()
    Platform(aspects=[timer]).run(JacobiSGrid, config=config)

    print("\n-- OpenMP x4 run with the timing aspect woven alongside the layer module --")
    timer_parallel = StepTimerAspect()
    run = (Platform.builder()
           .aspect(timer_parallel)
           .omp(4)
           .mmat()
           .run(JacobiSGrid, config=config))
    print(f"run: {run.summary()}")
    print(f"refresh outcomes seen by the custom aspect: "
          f"{dict(timer_parallel.refresh_outcomes)}")


if __name__ == "__main__":
    main()
