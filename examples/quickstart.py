#!/usr/bin/env python
"""Quickstart: write an application once, run it serial / OpenMP / MPI / hybrid.

This is the end-to-end "hello world" of the platform: a Jacobi heat
solver written as *serial* end-user code on the structured-grid DSL,
then parallelised purely by choosing which aspect modules to weave —
no change to the application code at all, which is the paper's central
claim.

Configurations are selected with the Platform API v2: named *presets*
(``Platform.preset("hybrid", ranks=2, threads=2)``) reproduce the
paper's Fig. 3 build configurations, and the fluent *builder*
(``Platform.builder().omp(4).mmat().build()``) composes custom stacks.
The serial run keeps the original ``Platform()`` constructor to show
the legacy path still works unchanged.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Platform
from repro.apps import JacobiSGrid


def hot_corner(x: int, y: int) -> float:
    """Initial temperature field: a hot square in one corner."""
    return 100.0 if (x < 8 and y < 8) else 0.0


CONFIG = dict(
    region=32,          # 32x32 grid points
    block_size=8,       # split into 8x8 Blocks (16 Blocks total)
    page_elements=32,   # communication granularity
    loops=5,            # Jacobi sweeps
    alpha=0.2,
    beta=0.2,
    init=hot_corner,
)


def describe(label: str, run) -> None:
    field = run.result
    interior = field[~np.isnan(field)]
    print(f"{label:<22} mean={interior.mean():8.4f}  max={interior.max():8.4f}  "
          f"[{run.summary()}]")


def main() -> None:
    print("Jacobi heat diffusion on the structured-grid DSL (32x32, 5 sweeps)\n")

    # 1. Serial: the application exactly as written, no weaving at all.
    #    (Legacy constructor — equivalent to Platform.preset("serial").)
    serial = Platform().run(JacobiSGrid, config=CONFIG)
    describe("serial", serial)

    # 2. Shared-memory parallel: the "Platform OMP" preset.
    omp = Platform.preset("omp", threads=4, mmat=True).run(JacobiSGrid, config=CONFIG)
    describe("OpenMP x4", omp)

    # 3. Distributed-memory parallel: the "Platform MPI" preset.
    mpi = Platform.preset("mpi", ranks=4, mmat=True).run(JacobiSGrid, config=CONFIG)
    describe("MPI x4", mpi)

    # 4. Hybrid: both layer modules, built with the fluent builder this
    #    time (equivalent to preset("hybrid", ranks=2, threads=2)).
    hybrid = (Platform.builder()
              .mpi(2).omp(2)
              .mmat()
              .run(JacobiSGrid, config=CONFIG))
    describe("MPI x2 + OpenMP x2", hybrid)

    # 5. Same MPI configuration on the "process" execution backend: each
    #    rank is a real forked OS process (true parallelism, measured
    #    wall-clock), selected without touching the application at all.
    procs = Platform.preset("mpi", mpi=2, backend="process", mmat=True).run(
        JacobiSGrid, config=CONFIG)
    describe("MPI x2 (processes)", procs)

    # All runs compute the same answer (rank-local data compared where owned).
    reference = serial.result
    for label, run in (("OpenMP", omp), ("MPI", mpi), ("hybrid", hybrid),
                       ("processes", procs)):
        mask = ~np.isnan(run.result)
        assert np.allclose(run.result[mask], reference[mask], atol=1e-10), label
    print("\nAll parallel configurations match the serial result.")

    # A peek at what the platform did under the hood for the MPI run.
    print("\nMPI run traffic:", mpi.network)
    print("MPI run per-task updates:",
          {task: c.updates for task, c in sorted(mpi.counters.items())})

    # With MMAT enabled the kernels run through compiled access plans:
    # the `plans=…sites vec=…%` part of summary() shows how much of the
    # sweep was vectorized, and mmat_stats carries the full breakdown
    # (memo hit-rate, compiled plans, fallback sites).  The serial run
    # above used the legacy constructor without MMAT, so its batched
    # accesses fell back to the scalar path (vec=0%).
    print("OpenMP x4 plan stats:", {
        k: omp.mmat_stats[k]
        for k in ("plans", "plan_sites", "vectorized_fraction", "hit_rate")
    })

    # Each compiled plan was additionally *fused* with the sweep's fn
    # into one generated NumPy kernel (no intermediate gather tensor);
    # the `fused=…calls/…kern` section of summary() shows the activity.
    print(f"OpenMP x4 fused kernels: {omp.mmat_stats['fused_kernels']} compiled, "
          f"{sum(c.kernel_fused_calls for c in omp.counters.values())} fused sweeps")

    # The MPI run moved its halo through compiled communication plans:
    # one aggregated message pair per neighbor rank instead of one per
    # page (the `comm=… agg=…` section of summary() above).
    print(f"MPI x4 halo aggregation: {mpi.comm_aggregation_ratio():.1f} pages "
          f"per exchange across {mpi.comm_neighbor_links()} neighbor links")

    # Those exchanges ran *overlapped*: issued nonblocking right after
    # each step barrier and completed mid-sweep, once the interior sites
    # were updated.  Overlap efficiency is the fraction of the halo
    # round-trip that hid behind that interior computation (the
    # `overlap=… eff=…` section of summary() above).
    print(f"MPI x4 overlap efficiency: {mpi.overlap_efficiency():.0%} of the "
          f"halo latency hidden behind interior compute")
    print(f"MPI x2 (processes) overlap efficiency: "
          f"{procs.overlap_efficiency():.0%}")

    # 6. Observability: the same run with tracing on records a span
    #    timeline (Perfetto-exportable via run.save_trace(path)); the
    #    phase report shows where the wall-clock went.
    traced = Platform.preset("mpi", ranks=4, mmat=True, tracing=True).run(
        JacobiSGrid, config=CONFIG)
    print("\nWhere the traced MPI x4 run spent its time (top 3 phases):")
    print(traced.phase_report(limit=3))


if __name__ == "__main__":
    main()
