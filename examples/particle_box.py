#!/usr/bin/env python
"""Bucketed particle simulation in a box of fixed wall particles.

Demonstrates the particle-method DSL: movable particles repel each other
and the wall particles that the DSL's Arithmetic Block synthesises
outside the domain.  The example runs serially and with the OpenMP
aspect module, verifies both give the same trajectories, and prints a
coarse density map before and after.

Run with::

    python examples/particle_box.py
"""

from __future__ import annotations

import numpy as np

from repro import Platform, openmp_aspects
from repro.apps import ParticleSimulation

CONFIG = dict(
    particles=512,
    bucket_capacity=16,
    block_buckets=4,
    page_elements=4,
    bucket_size=1.0,
    dt=2e-3,
    loops=3,
    stiffness=8.0,
)


def density_map(rows: np.ndarray, grid: int, bucket_size: float) -> np.ndarray:
    """Count particles per bucket column for a quick textual picture."""
    counts = np.zeros((grid, grid), dtype=int)
    for row in rows:
        x = min(int(row[1] / bucket_size), grid - 1)
        y = min(int(row[2] / bucket_size), grid - 1)
        counts[x, y] += 1
    return counts


def render(counts: np.ndarray) -> str:
    chars = " .:-=+*#%@"
    peak = max(counts.max(), 1)
    lines = []
    for y in range(counts.shape[1]):
        line = "".join(chars[min(9, counts[x, y] * 9 // peak)] for x in range(counts.shape[0]))
        lines.append(line)
    return "\n".join(lines)


def main() -> None:
    serial = Platform(mmat=True).run(ParticleSimulation, config=CONFIG)
    parallel = Platform(aspects=openmp_aspects(4), mmat=True).run(
        ParticleSimulation, config=CONFIG
    )

    # Both configurations integrate identical trajectories.
    by_id = {row[0]: row for row in serial.result}
    for row in parallel.result:
        assert np.allclose(row, by_id[row[0]], atol=1e-10)

    app = serial.app
    grid = app.bucket_grid
    print(f"{CONFIG['particles']} particles in a {grid}x{grid} bucket box, "
          f"{CONFIG['loops']} steps of dt={CONFIG['dt']}\n")

    speeds = np.linalg.norm(serial.result[:, 4:7], axis=1)
    print(f"mean speed after run : {speeds.mean():.5f}")
    print(f"max speed after run  : {speeds.max():.5f}")
    print(f"tasks in OpenMP run  : {len(parallel.counters)}")
    print(f"updates per task     : {[c.updates for c in parallel.counters.values()]}")

    print("\nfinal particle density (one character per bucket column):")
    print(render(density_map(serial.result, grid, CONFIG["bucket_size"])))


if __name__ == "__main__":
    main()
