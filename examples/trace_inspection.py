#!/usr/bin/env python
"""Trace a 4-rank run and inspect where each rank spent its time.

Runs the Jacobi heat solver on the process backend (4 real forked rank
processes) with tracing enabled, saves the merged timeline as a Chrome
trace-event file — open it at https://ui.perfetto.dev or in
``chrome://tracing`` to see one track per (rank, thread) with the
overlapped halo flights drawn as async arrows over the interior sweeps —
and prints the five widest spans of every rank: the quickest answer to
"what was this rank doing while the others were done?".

Run with::

    python examples/trace_inspection.py
"""

from __future__ import annotations

from repro import Platform
from repro.apps import JacobiSGrid
from repro.obs import format_ns

RANKS = 4
TRACE_PATH = "trace_jacobi_4rank.json"


def hot_edge(x: int, y: int) -> float:
    """Initial temperature: a hot band along one edge."""
    return 80.0 if y < 4 else 0.0


CONFIG = dict(
    region=48,
    block_size=24,      # one 24x24 Block per rank (2x2 decomposition)
    page_elements=576,
    loops=6,
    init=hot_edge,
)


def main() -> None:
    run = Platform.preset(
        "mpi", ranks=RANKS, backend="process", mmat=True, tracing=True
    ).run(JacobiSGrid, config=CONFIG)

    run.save_trace(TRACE_PATH)
    print(f"{len(run.timeline())} span events from {RANKS} rank processes "
          f"-> {TRACE_PATH}")
    print("open it at https://ui.perfetto.dev (or chrome://tracing)\n")

    print("Top 5 widest spans per rank:")
    for rank, spans in sorted(run.widest_spans(5).items()):
        print(f"  rank {rank}:")
        for span in spans:
            args = f"  {span['args']}" if span.get("args") else ""
            print(f"    {format_ns(span['dur_ns']):>10}  {span['name']}{args}")

    # The halo metrics behind the picture: how long ranks blocked on the
    # un-hidden part of the halo exchange, and how big the exchanges were.
    hists = run.metrics().get("histograms", {})
    for name in ("halo.wait_ns", "exchange.pages"):
        stats = hists.get(name, {}).get("all")
        if stats:
            print(f"\n{name}: count={stats['count']} p50={stats['p50']:.0f} "
                  f"p95={stats['p95']:.0f} max={stats['max']:.0f}")

    imbalance = run.imbalance()
    print(f"\nload imbalance: updates {imbalance['updates_imbalance']:.2f}x, "
          f"halo wait {imbalance['wait_imbalance']:.2f}x (max/mean over "
          f"{imbalance['ranks']} ranks)")


if __name__ == "__main__":
    main()
