#!/usr/bin/env python
"""Unstructured-grid Laplace solve: the cost of losing spatial locality.

The USGrid DSL stores, with every cell, the Global Addresses of its
neighbours; the kernel follows those indirections.  The DSL supports two
layouts with identical arithmetic:

* CaseC — consecutive cell numbering (spatial locality preserved);
* CaseR — a random permutation (Assumption III violated).

This example runs both on one task, with and without MMAT, and prints
how many Env searches the platform performed — showing exactly why the
paper's Fig. 6 USGrid columns benefit so much from MMAT — and then runs
CaseR distributed over 4 ranks to show the communication volume blowing
up relative to CaseC (the Fig. 8 effect).

Run with::

    python examples/unstructured_laplace.py
"""

from __future__ import annotations

import numpy as np

from repro import Platform, mpi_aspects
from repro.apps import HandwrittenUSGrid, JacobiUSGrid


def initial(x: int, y: int) -> float:
    return np.sin(0.3 * x) + 0.1 * y


BASE = dict(region=24, block_cells=48, page_elements=16, loops=3, init=initial)


def serial_study() -> None:
    print("=== single task: Env searches with and without MMAT ===")
    reference = {
        case: HandwrittenUSGrid(24, case=case, loops=3, init=initial).run()
        for case in ("C", "R")
    }
    for case in ("C", "R"):
        for mmat in (False, True):
            run = Platform(mmat=mmat).run(JacobiUSGrid, config=dict(BASE, case=case))
            assert np.allclose(run.result, reference[case], atol=1e-10)
            stats = run.env_stats
            print(
                f"Case{case} mmat={str(mmat):<5} elapsed={run.elapsed:6.3f}s "
                f"searches={stats.searches:6d} search_steps={stats.search_steps:7d} "
                f"mmat_hits={stats.mmat_hits:6d}"
            )
    print()


def distributed_study() -> None:
    print("=== 4 ranks: communication volume, CaseC vs CaseR ===")
    for case in ("C", "R"):
        run = Platform(aspects=mpi_aspects(4), mmat=True).run(
            JacobiUSGrid, config=dict(BASE, case=case)
        )
        pages = sum(c.pages_fetched for c in run.counters.values())
        print(
            f"Case{case}: pages fetched={pages:5d}  bytes moved={run.network['bytes_moved']:8d}  "
            f"messages={run.network['messages']:5d}"
        )
    print("\nCaseR crosses Blocks for almost every neighbour access, so its halo "
          "traffic is far larger — the root cause of the paper's Fig. 8 CaseR curve.")


if __name__ == "__main__":
    serial_study()
    distributed_study()
