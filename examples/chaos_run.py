#!/usr/bin/env python
"""Chaos run: kill a rank mid-flight and watch the world recover.

A 4-rank Jacobi heat solver runs on the **process** backend with the
resilience layer enabled: every epoch each rank checkpoints its owned
Env pages to a disk spool, and a seeded :class:`FaultPlan` hard-kills
one forked rank (``os._exit``) part-way through the run.  The platform

1. detects the death (the child's pipes close — far faster than the
   communication timeout),
2. re-partitions the dead rank's Blocks onto the three survivors using
   the cost model and the traced per-rank timings,
3. reloads the last checkpoint epoch every rank completed, and
4. fast-forwards the restarted world to that epoch and finishes.

The recovered result is bit-identical to an unfailed run — the example
verifies that at the end, after printing the recovery report.

Run with::

    python examples/chaos_run.py
"""

from __future__ import annotations

import numpy as np

from repro import Platform
from repro.apps import JacobiSGrid
from repro.resilience import FaultPlan, ResiliencePolicy


def hot_corner(x: int, y: int) -> float:
    return 100.0 if (x < 8 and y < 8) else 0.0


CONFIG = dict(
    region=32,
    block_size=8,
    page_elements=32,
    loops=6,
    alpha=0.2,
    beta=0.2,
    init=hot_corner,
)

SEED = 2022  # the paper's year; any seed recovers to the same bytes


def main() -> None:
    print("Chaos run: 4 ranks, process backend, one seeded mid-run kill\n")

    # Reference: the same world, no faults, no resilience layer at all.
    reference = (
        Platform.builder().mpi(4).mmat().backend("process").build()
        .run(JacobiSGrid, config=dict(CONFIG))
    )

    plan = FaultPlan.seeded(SEED, ranks=4, epochs=CONFIG["loops"], spare_rank0=True)
    print(f"fault plan (seed {SEED}):")
    for fault in plan.pending_kills():
        print(f"  kill rank {fault.rank} at the {fault.phase!r} fault point, "
              f"epoch {fault.epoch}")

    chaos = (
        Platform.builder()
        .mpi(4)
        .mmat()
        .backend("process")
        .resilience(ResiliencePolicy(fault_plan=plan))
        .comm_timeout(20.0)
        .build()
        .run(JacobiSGrid, config=dict(CONFIG))
    )

    print("\nrecovery report:")
    print("  " + chaos.recovery_report().replace("\n", "\n  "))

    ref = np.asarray(reference.result)
    got = np.asarray(chaos.result)
    mask = ~(np.isnan(ref) | np.isnan(got))
    identical = bool(mask.any()) and bool(np.array_equal(ref[mask], got[mask]))
    print(f"\nrecovered result bit-identical to the unfailed run: {identical}")
    if not identical:
        raise SystemExit("recovered field diverged from the unfailed run")


if __name__ == "__main__":
    main()
