#!/usr/bin/env python
"""Docs gate: markdown link check + public-API docstring lint.

Run by the ``docs`` CI job (and locally)::

    PYTHONPATH=src python tools/check_docs.py

Two checks, both must pass:

1. **Link check** — every relative markdown link in ``README.md`` and
   ``docs/*.md`` must point at an existing file (and, for ``#anchor``
   fragments onto markdown files, at an existing heading).  External
   ``http(s)`` links are not fetched — CI must not depend on the
   network — just syntax-checked.

2. **Docstring lint** — every module under ``src/repro`` needs a
   module docstring, and the public surface a ``pydoc repro`` reader
   would land on (Platform, the builder, runs, worlds, plans, fault
   plans, the shm plane) needs class *and* public-method docstrings.
"""

from __future__ import annotations

import ast
import importlib
import inspect
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

#: Markdown files whose links are verified.
MARKDOWN_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]

#: ``module: [class, ...]`` — the public surface requiring docstrings on
#: the class and every public (non-underscore) method.  Extend this when
#: a new user-facing class lands.
PUBLIC_SURFACE = {
    "repro.annotation.driver": ["Platform", "PlatformBuilder", "PlatformRun"],
    "repro.runtime.backends.base": ["ExecutionBackend", "ExecutionWorld"],
    "repro.memory.mmat": ["MMAT", "AccessPlan"],
    "repro.resilience.faults": ["FaultPlan"],
    "repro.resilience.recovery": ["ResiliencePolicy"],
    "repro.aspects.mpi_aspect": ["DistributedMemoryAspect"],
    "repro.aspects.openmp_aspect": ["SharedMemoryAspect"],
    "repro.runtime.shm": ["SharedPageArena", "SegmentCache"],
}

_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(md_path: pathlib.Path) -> set:
    return {_slugify(h) for h in _HEADING.findall(md_path.read_text())}


def check_links() -> list:
    problems = []
    for md in MARKDOWN_FILES:
        if not md.exists():
            problems.append(f"{md.relative_to(ROOT)}: file missing")
            continue
        for target in _LINK.findall(md.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            where = f"{md.relative_to(ROOT)} -> {target}"
            dest = (md.parent / path_part).resolve() if path_part else md
            if not dest.exists():
                problems.append(f"{where}: target does not exist")
                continue
            if fragment and dest.suffix == ".md":
                if _slugify(fragment) not in _anchors(dest):
                    problems.append(f"{where}: no heading for anchor #{fragment}")
    return problems


def check_module_docstrings() -> list:
    problems = []
    for path in sorted((SRC / "repro").rglob("*.py")):
        tree = ast.parse(path.read_text())
        if not ast.get_docstring(tree):
            problems.append(f"{path.relative_to(ROOT)}: missing module docstring")
    return problems


def _public_methods(cls) -> list:
    """Public methods/properties defined on ``cls`` itself (not inherited)."""
    members = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            members.append((name, member.fget))
        elif inspect.isfunction(member):
            members.append((name, member))
        elif isinstance(member, (staticmethod, classmethod)):
            members.append((name, member.__func__))
    return members


def check_api_docstrings() -> list:
    problems = []
    for module_name, class_names in PUBLIC_SURFACE.items():
        module = importlib.import_module(module_name)
        for class_name in class_names:
            cls = getattr(module, class_name, None)
            if cls is None:
                problems.append(f"{module_name}.{class_name}: not found")
                continue
            if not inspect.getdoc(cls):
                problems.append(f"{module_name}.{class_name}: missing class docstring")
            for name, func in _public_methods(cls):
                if not (func.__doc__ or "").strip():
                    problems.append(
                        f"{module_name}.{class_name}.{name}: missing docstring"
                    )
    return problems


def main() -> int:
    checks = [
        ("markdown links", check_links),
        ("module docstrings", check_module_docstrings),
        ("public-API docstrings", check_api_docstrings),
    ]
    failed = False
    for title, check in checks:
        problems = check()
        if problems:
            failed = True
            print(f"FAIL {title}:")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"ok   {title}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
