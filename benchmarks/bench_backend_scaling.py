#!/usr/bin/env python
"""Measured wall-clock scaling of the execution backends (sgrid Jacobi).

Unlike the figure benchmarks (which convert traced work/traffic into
*modelled* cluster time), this benchmark runs the same Jacobi
structured-grid workload through every execution backend and reports
the **measured** wall-clock of each run:

* ``serial``  — 1 rank inline (the baseline),
* ``threads`` — N ranks on OS threads (GIL-bound: no real speed-up),
* ``process`` — N ranks in real forked processes (true parallelism).

The ``process`` backend can only beat ``threads`` when the machine has
more than one usable core; the report therefore prints the detected CPU
count next to the speed-ups.  On a single-core box the numbers still
matter — they measure the transport overhead of each backend.

Usage::

    PYTHONPATH=src python benchmarks/bench_backend_scaling.py
    PYTHONPATH=src python benchmarks/bench_backend_scaling.py --smoke   # CI: quick 2-rank check
    PYTHONPATH=src python benchmarks/bench_backend_scaling.py --ranks 2 4 --region 96 --loops 8
"""

from __future__ import annotations

import argparse
import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.aspects import mpi_aspects  # noqa: E402
from repro.bench.harness import format_table, run_platform, sgrid_workload  # noqa: E402


def measure_backends(
    *,
    region: int = 64,
    loops: int = 8,
    ranks: tuple = (2, 4),
    repeats: int = 3,
) -> list:
    """Run the sgrid Jacobi workload on every backend; return report rows.

    Each configuration is run ``repeats`` times and the best wall-clock
    is kept (standard practice for wall-clock microbenchmarks: the
    minimum is the least noisy estimator).
    """
    work = sgrid_workload(region, loops=loops)
    configurations = [("serial", 1)]
    configurations += [("threads", n) for n in ranks]
    configurations += [("process", n) for n in ranks]

    rows = []
    baseline = None
    for backend, n in configurations:
        best = None
        last_run = None
        for _ in range(max(repeats, 1)):
            run = run_platform(work, aspects=mpi_aspects(n, backend=backend), mmat=True)
            if best is None or run.elapsed < best:
                best = run.elapsed
            last_run = run
        if backend == "serial":
            baseline = best
        rows.append(
            {
                "backend": backend,
                "ranks": n,
                "elapsed_s": best,
                "speedup_vs_serial": (baseline / best) if baseline else float("nan"),
                "steps": sum(c.steps for c in last_run.counters.values()) // max(n, 1),
                "pages_fetched": last_run.network.get("page_fetches", 0),
                "bytes_moved": last_run.network.get("bytes_moved", 0),
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--region", type=int, default=64, help="grid edge length")
    parser.add_argument("--loops", type=int, default=8, help="Jacobi steps")
    parser.add_argument("--ranks", type=int, nargs="+", default=[2, 4],
                        help="rank counts for the threads/process backends")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per configuration (best wall-clock kept)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny problem, 2 ranks, 1 repeat (CI regression check)")
    args = parser.parse_args(argv)

    if args.smoke:
        rows = measure_backends(region=16, loops=2, ranks=(2,), repeats=1)
    else:
        rows = measure_backends(
            region=args.region, loops=args.loops,
            ranks=tuple(args.ranks), repeats=args.repeats,
        )

    cpus = os.cpu_count() or 1
    print(format_table(
        rows,
        title=f"Backend scaling — measured wall-clock, sgrid Jacobi "
              f"({cpus} CPU(s) available)",
    ))
    if cpus < 2:
        print("note: single-core machine — the process backend cannot "
              "show real speed-up here, only transport overhead.")

    # Regression gate (used by --smoke in CI): every backend must have
    # produced a measured, non-zero wall-clock and moved the same pages.
    ok = all(row["elapsed_s"] > 0 for row in rows)
    multi = [row for row in rows if row["ranks"] > 1]
    ok = ok and all(row["pages_fetched"] > 0 for row in multi)
    if not ok:
        print("FAILED: a backend produced no measured wall-clock or no traffic")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
