"""Fig. 11 — MPI × OpenMP combinations at a fixed total task count.

Paper: with 16 tasks split as (1×16), (2×8), (4×4), (8×2), (16×1),
"the performance of USGrid CaseR worsened in the case with 16 OpenMP
threads, while there was no significant difference in the other cases".
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.bench import default_scaling_workloads, fig11_hybrid


def test_fig11_hybrid_combinations(benchmark, small_mode):
    if small_mode:
        combos = ((1, 8), (2, 4), (4, 2), (8, 1))
    else:
        combos = ((1, 16), (2, 8), (4, 4), (8, 2), (16, 1))
    rows = run_once(benchmark, fig11_hybrid, combinations=combos,
                    series=default_scaling_workloads())
    emit(rows, "Fig. 11 — MPI x OpenMP combinations (single task = 100%)")

    by_series = {}
    for row in rows:
        by_series.setdefault(row["series"], {})[(row["processes"], row["threads"])] = row
    total = combos[0][0] * combos[0][1]
    for series, cells in by_series.items():
        relatives = [cell["relative_pct"] for cell in cells.values()]
        # Every split gives a large speed-up over the single-task baseline.
        assert all(value < 100.0 for value in relatives), series
        # And all splits land in the same ballpark (no order-of-magnitude gap).
        assert max(relatives) < 6 * min(relatives), series
    # The thread-heavy split hurts CaseR more than the process-heavy split
    # hurts it (the paper's 1x16 observation), up to modelling tolerance.
    caser = by_series["USGrid CaseR 4096 (w MMAT)"]
    thread_heavy = caser[combos[0]]["relative_pct"]
    process_heavy = caser[combos[-1]]["relative_pct"]
    assert thread_heavy > process_heavy * 0.5
