#!/usr/bin/env python
"""Overlapped halo exchange vs the blocking aggregated exchange.

Runs the 2-D Jacobi structured-grid sweep on a 4-rank distributed world
twice per backend — once with the blocking per-neighbor CommPlan
refresh of PR 4 (``overlap=False``) and once with the overlapped mode
(``overlap=True``: nonblocking ``fetch_pages_bulk_async`` issued right
after the step barrier, completed mid-sweep once the interior segment
is done) — and reports wall-clock, page-exchange message counts and the
**overlap efficiency**: the fraction of the halo flight time that hid
behind interior computation, ``1 - overlap_wait_ns/overlap_flight_ns``
from the ``overlap_*`` trace counters.

Gates (checked on the process-backend row):

* both modes must produce numerically identical results;
* the overlapped mode must move exactly as many messages as blocking
  (overlap changes *when* the halo moves, never *how much*);
* overlap efficiency must clear ``--min-efficiency`` (default 0.5 at
  full size — the acceptance criterion: interior compute overlaps at
  least half of the halo fetch latency; the tiny ``--smoke`` problems
  leave little interior compute to hide behind, so the smoke gate is
  0.05).

Wall-clock is reported for the perf-gate trajectory
(``compare_bench.py`` fails CI on a >30% regression) but is not gated
here: on a single-core container the ranks time-share one CPU, so
hiding latency cannot shorten the critical path — the win shows up on
real multi-core hosts.

Usage::

    PYTHONPATH=src python benchmarks/bench_overlap.py
    PYTHONPATH=src python benchmarks/bench_overlap.py --smoke
    PYTHONPATH=src python benchmarks/bench_overlap.py --json BENCH_overlap.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.harness import (  # noqa: E402
    Workload,
    format_table,
    mpi_aspects,
    run_platform,
    sgrid_workload,
)

RANKS = 4
FULL_GATE = 0.50   # acceptance: >=50% of the halo latency hidden (full size)
SMOKE_GATE = 0.05  # tiny smoke problems barely out-compute the scheduler


def _timed_run(work: Workload, *, backend: str, overlap: bool, repeats: int):
    """Best-of-``repeats`` 4-rank run of ``work`` (MMAT + comm plans on)."""
    best_s = None
    best_run = None
    for _ in range(max(repeats, 1)):
        run = run_platform(
            work,
            aspects=mpi_aspects(RANKS, backend=backend, overlap=overlap),
            mmat=True,
        )
        if best_s is None or run.elapsed < best_s:
            best_s = run.elapsed
            best_run = run
    return best_s, best_run


def _messages(run) -> int:
    """Page-exchange messages of a run (trace counters exclude collectives)."""
    return sum(c.messages for c in run.counters.values())


def _results_equivalent(a_run, b_run) -> bool:
    a = np.asarray(a_run.result, dtype=np.float64)
    b = np.asarray(b_run.result, dtype=np.float64)
    return a.shape == b.shape and bool(
        np.array_equal(np.nan_to_num(a, nan=-1.0), np.nan_to_num(b, nan=-1.0))
    )


def measure_overlap(work: Workload, backends, *, repeats: int = 3) -> list:
    rows = []
    for backend in backends:
        blocking_s, blocking_run = _timed_run(
            work, backend=backend, overlap=False, repeats=repeats
        )
        overlap_s, overlap_run = _timed_run(
            work, backend=backend, overlap=True, repeats=repeats
        )
        counters = overlap_run.counters.values()
        rows.append(
            {
                "workload": f"{work.name} ({backend})",
                "backend": backend,
                "ranks": RANKS,
                "blocking_s": blocking_s,
                "overlap_s": overlap_s,
                "efficiency": overlap_run.overlap_efficiency(),
                "overlap_exchanges": sum(c.overlap_exchanges for c in counters),
                "overlap_pages": sum(c.overlap_pages for c in counters),
                "drained": sum(c.overlap_drained for c in counters),
                "blocking_messages": _messages(blocking_run),
                "overlap_messages": _messages(overlap_run),
                "equivalent": _results_equivalent(blocking_run, overlap_run),
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--loops", type=int, default=4, help="time steps per run")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per configuration (best wall-clock kept)")
    parser.add_argument("--smoke", action="store_true",
                        help="small problem, 1 repeat (CI); relaxed efficiency gate")
    parser.add_argument("--min-efficiency", type=float, default=None,
                        help="overlap-efficiency gate on the process row "
                             f"(default {FULL_GATE} full / {SMOKE_GATE} smoke)")
    parser.add_argument("--json", metavar="PATH",
                        help="emit the rows as JSON (perf trajectory for future PRs)")
    args = parser.parse_args(argv)

    if args.smoke:
        # Small enough for CI, big enough that some latency still hides.
        work = sgrid_workload(96, loops=args.loops, block_size=48).with_config(
            page_elements=1152
        )
        repeats = 1
        gate = SMOKE_GATE if args.min_efficiency is None else args.min_efficiency
    else:
        # One 256x256 block per rank: the interior sweep clearly
        # out-computes the per-neighbor reply latency.
        work = sgrid_workload(512, loops=args.loops, block_size=256).with_config(
            page_elements=8192
        )
        repeats = args.repeats
        gate = FULL_GATE if args.min_efficiency is None else args.min_efficiency

    rows = measure_overlap(work, ("threads", "process"), repeats=repeats)
    print(format_table(
        rows, title=f"Overlapped vs blocking halo exchange ({RANKS} ranks)"
    ))

    if args.json:
        doc = {"mode": "smoke" if args.smoke else "full", "ranks": RANKS,
               "overlap": rows}
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"wrote {args.json}")

    if not all(row["equivalent"] for row in rows):
        print("FAILED: overlapped results diverge from the blocking exchange")
        return 1
    if any(row["overlap_messages"] != row["blocking_messages"] for row in rows):
        print("FAILED: overlap changed the page-exchange message count")
        return 1
    process_row = next(row for row in rows if row["backend"] == "process")
    if process_row["efficiency"] < gate:
        print(
            f"FAILED: process-backend overlap efficiency "
            f"{process_row['efficiency']:.0%} below the {gate:.0%} gate"
        )
        return 1
    print(
        f"OK: process-backend interior compute hid "
        f"{process_row['efficiency']:.0%} of the halo fetch latency "
        f"(gate {gate:.0%}, {process_row['overlap_pages']} pages over "
        f"{process_row['overlap_exchanges']} overlapped exchanges)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
