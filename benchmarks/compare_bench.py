#!/usr/bin/env python
"""Diff two benchmark JSON files and print a pass/fail table.

Used by the ``perf-gate`` CI job (and locally) to compare a freshly
generated ``bench_vectorized_kernels.py --json`` /
``bench_comm_plans.py --json`` document against the checked-in
``BENCH_*.json`` baseline.  Rules:

* **wall-clock keys** (``*_s``, ``elapsed_s``, ``ns_per_read``) fail on
  a regression beyond ``--max-time-regress`` (default 30%); an absolute
  slack of ``--time-slack`` seconds absorbs timer noise on tiny smoke
  runs;
* **message-count keys** (``messages``, ``*_messages``) fail on *any*
  increase — message counts are deterministic, so more messages always
  means the communication protocol regressed;
* every other numeric key is informational (speedups and ratios are
  re-gated by the benchmarks themselves).

Baselines may store one document per mode (``{"full": {...}, "smoke":
{...}}``); the section matching the fresh document's ``"mode"`` field is
selected automatically.  Rows inside lists are matched by their
``"workload"`` name so reordering or adding workloads never misreports.

Usage::

    python benchmarks/compare_bench.py BENCH_comm.json fresh_comm.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Iterator, List, Tuple

TIME_SUFFIXES = ("_s",)
TIME_KEYS = {"ns_per_read"}
MESSAGE_SUFFIX = "_messages"
MESSAGE_KEYS = {"messages"}


def classify(key: str) -> str:
    """'time' | 'messages' | 'info' for one leaf key."""
    if key in TIME_KEYS or any(key.endswith(sfx) for sfx in TIME_SUFFIXES):
        return "time"
    if key in MESSAGE_KEYS or key.endswith(MESSAGE_SUFFIX):
        return "messages"
    return "info"


def walk(node: Any, path: str = "") -> Iterator[Tuple[str, str, Any]]:
    """Yield (path, leaf key, numeric value) for every numeric leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            sub = f"{path}.{key}" if path else str(key)
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                yield sub, str(key), value
            else:
                yield from walk(value, sub)
    elif isinstance(node, list):
        for index, item in enumerate(node):
            label = str(index)
            if isinstance(item, dict) and "workload" in item:
                label = str(item["workload"])
            yield from walk(item, f"{path}[{label}]")


def select_section(baseline: dict, fresh: dict) -> dict:
    """Pick the baseline section matching the fresh document's mode."""
    mode = fresh.get("mode")
    if mode and mode in baseline and isinstance(baseline[mode], dict):
        return baseline[mode]
    return baseline


def compare(
    baseline: dict,
    fresh: dict,
    *,
    max_time_regress: float,
    time_slack: float,
) -> Tuple[List[dict], bool]:
    base_leaves = {path: value for path, _key, value in walk(baseline)}
    rows: List[dict] = []
    ok = True
    for path, key, value in walk(fresh):
        base = base_leaves.get(path)
        if base is None:
            rows.append({"metric": path, "baseline": "-", "current": value,
                         "delta": "-", "status": "NEW"})
            continue
        kind = classify(key)
        delta = value - base
        status = "info"
        if kind == "time":
            limit = base * (1.0 + max_time_regress) + time_slack
            status = "ok" if value <= limit else "FAIL"
        elif kind == "messages":
            status = "ok" if value <= base else "FAIL"
        if status == "FAIL":
            ok = False
        rel = f"{delta / base:+.1%}" if base else f"{delta:+g}"
        rows.append({"metric": path, "baseline": base, "current": value,
                     "delta": rel, "status": status})
    return rows, ok


def format_rows(rows: List[dict]) -> str:
    headers = ["metric", "baseline", "current", "delta", "status"]

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    widths = {h: max(len(h), *(len(fmt(r[h])) for r in rows)) for h in headers}
    lines = [" | ".join(h.ljust(widths[h]) for h in headers),
             "-+-".join("-" * widths[h] for h in headers)]
    for row in rows:
        lines.append(" | ".join(fmt(row[h]).ljust(widths[h]) for h in headers))
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="checked-in BENCH_*.json baseline")
    parser.add_argument("fresh", help="freshly generated bench JSON")
    parser.add_argument("--max-time-regress", type=float, default=0.30,
                        help="allowed relative wall-clock regression (default 0.30)")
    parser.add_argument("--time-slack", type=float, default=0.02,
                        help="absolute wall-clock slack in seconds (default 0.02)")
    args = parser.parse_args(argv)

    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.fresh) as fh:
        fresh = json.load(fh)

    section = select_section(baseline, fresh)
    rows, ok = compare(
        section, fresh,
        max_time_regress=args.max_time_regress, time_slack=args.time_slack,
    )
    if not rows:
        print("no numeric metrics found to compare")
        return 1
    print(format_rows(rows))
    failures = sum(1 for row in rows if row["status"] == "FAIL")
    if not ok:
        print(f"\nFAILED: {failures} metric(s) regressed beyond the gate")
        return 1
    print(f"\nOK: no regression across {len(rows)} metrics")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
