#!/usr/bin/env python
"""Observability overhead and trace-export check.

Measures the cost of the span tracer + metrics layer on the 2-D Jacobi
structured-grid sweep: the same 1-rank workload runs untraced and traced
(best-of-``--repeats`` each) and the relative overhead is gated at
``--max-overhead`` (default 5%: tracing must stay cheap enough to leave
on in every debugging run).  An absolute slack of 10 ms absorbs timer
noise on the tiny ``--smoke`` problems.

With ``--trace PATH`` the benchmark additionally runs a traced 4-rank
Jacobi on the process backend, saves the Chrome trace-event document
(loadable in Perfetto / ``chrome://tracing``) to PATH and verifies it:

* the document passes :func:`repro.obs.validate_chrome_trace`;
* every rank contributes ``sweep.interior`` spans;
* the overlapped halo flights appear as paired async ``b``/``e`` events.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py
    PYTHONPATH=src python benchmarks/bench_obs.py --smoke
    PYTHONPATH=src python benchmarks/bench_obs.py --json BENCH_obs.json
    PYTHONPATH=src python benchmarks/bench_obs.py --trace trace.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.harness import (  # noqa: E402
    Workload,
    format_table,
    mpi_aspects,
    run_platform,
    sgrid_workload,
)
from repro.obs import validate_chrome_trace  # noqa: E402

TRACE_RANKS = 4
ABS_SLACK_S = 0.010  # absolute timer-noise allowance on the overhead gate


def _best_elapsed(work: Workload, *, tracing: bool, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock of a 1-rank MMAT run of ``work``."""
    best = None
    for _ in range(max(repeats, 1)):
        run = run_platform(
            work, aspects=mpi_aspects(1), mmat=True, tracing=tracing
        )
        if best is None or run.elapsed < best:
            best = run.elapsed
    return best


def measure_overhead(work: Workload, *, repeats: int) -> dict:
    untraced_s = _best_elapsed(work, tracing=False, repeats=repeats)
    traced_s = _best_elapsed(work, tracing=True, repeats=repeats)
    overhead_pct = 100.0 * (traced_s - untraced_s) / untraced_s
    return {
        "workload": work.name,
        "untraced_s": untraced_s,
        "traced_s": traced_s,
        "overhead_pct": overhead_pct,
    }


def produce_trace(work: Workload, path: str) -> dict:
    """Traced 4-rank process-backend run; save + verify the Chrome trace."""
    run = run_platform(
        work,
        aspects=mpi_aspects(TRACE_RANKS, backend="process"),
        mmat=True,
        tracing=True,
    )
    run.save_trace(path)
    with open(path) as fh:
        doc = json.load(fh)

    problems = list(validate_chrome_trace(doc))
    events = doc["traceEvents"]
    interior_ranks = {
        e["pid"] for e in events
        if e["ph"] == "X" and e.get("name") == "sweep.interior"
    }
    if interior_ranks != set(range(TRACE_RANKS)):
        problems.append(
            f"interior sweep spans cover ranks {sorted(interior_ranks)}, "
            f"expected all of 0..{TRACE_RANKS - 1}"
        )
    flights_b = sum(
        1 for e in events if e["ph"] == "b" and e.get("name") == "halo.flight"
    )
    flights_e = sum(
        1 for e in events if e["ph"] == "e" and e.get("name") == "halo.flight"
    )
    if flights_b == 0 or flights_b != flights_e:
        problems.append(
            f"halo flights unpaired: {flights_b} begins / {flights_e} ends"
        )
    return {
        "path": path,
        "trace_events": len(events),
        "trace_ranks": len(interior_ranks),
        "halo_flights": flights_b,
        "problems": problems,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--loops", type=int, default=4, help="time steps per run")
    parser.add_argument("--repeats", type=int, default=5,
                        help="runs per configuration (best wall-clock kept)")
    parser.add_argument("--smoke", action="store_true",
                        help="small problem, 3 repeats (CI)")
    parser.add_argument("--max-overhead", type=float, default=5.0,
                        help="tracing overhead gate in percent (default 5)")
    parser.add_argument("--json", metavar="PATH",
                        help="emit the rows as JSON (perf trajectory for future PRs)")
    parser.add_argument("--trace", metavar="PATH",
                        help="also write + verify a 4-rank process-backend trace")
    args = parser.parse_args(argv)

    if args.smoke:
        work = sgrid_workload(64, loops=args.loops, block_size=32).with_config(
            page_elements=512
        )
        repeats = 3
    else:
        work = sgrid_workload(192, loops=args.loops, block_size=96).with_config(
            page_elements=2048
        )
        repeats = args.repeats

    row = measure_overhead(work, repeats=repeats)
    rows = [row]
    print(format_table(rows, title="Tracing overhead (1 rank, MMAT)"))

    trace_info = None
    if args.trace:
        trace_work = work.with_config(
            block_size=work.config["region"] // 2  # one block per rank, 2x2
        )
        trace_info = produce_trace(trace_work, args.trace)
        print(
            f"trace: {trace_info['trace_events']} events, "
            f"{trace_info['trace_ranks']} ranks, "
            f"{trace_info['halo_flights']} halo flights -> {args.trace}"
        )

    if args.json:
        doc = {"mode": "smoke" if args.smoke else "full", "overhead": rows}
        if trace_info is not None:
            doc["trace"] = {
                "trace_events": trace_info["trace_events"],
                "trace_ranks": trace_info["trace_ranks"],
                "halo_flights": trace_info["halo_flights"],
            }
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"wrote {args.json}")

    if trace_info is not None and trace_info["problems"]:
        for problem in trace_info["problems"]:
            print(f"FAILED: trace invalid: {problem}")
        return 1
    overhead_s = row["traced_s"] - row["untraced_s"]
    limit_s = max(row["untraced_s"] * args.max_overhead / 100.0, ABS_SLACK_S)
    if overhead_s > limit_s:
        print(
            f"FAILED: tracing overhead {row['overhead_pct']:.1f}% "
            f"({overhead_s * 1e3:.1f} ms) exceeds the "
            f"{args.max_overhead:.0f}% gate"
        )
        return 1
    print(
        f"OK: tracing overhead {row['overhead_pct']:.1f}% "
        f"(gate {args.max_overhead:.0f}%, slack {ABS_SLACK_S * 1e3:.0f} ms)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
