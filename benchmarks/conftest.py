"""Shared helpers for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper's
evaluation section.  The figure generators are deterministic but not
cheap, so every benchmark runs its generator exactly once through
``benchmark.pedantic`` (pytest-benchmark still records the timing) and
prints the resulting table so that ``pytest benchmarks/ --benchmark-only -s``
doubles as the reproduction report.
"""

from __future__ import annotations

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest  # noqa: E402

from repro.bench import format_table  # noqa: E402


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(rows, title):
    """Print a figure/table in the shared fixed-width format."""
    print()
    print(format_table(rows, title=title))
    return rows


@pytest.fixture(scope="session")
def small_mode() -> bool:
    """Set REPRO_BENCH_FULL=1 to run closer-to-paper sizes (slower)."""
    return os.environ.get("REPRO_BENCH_FULL", "0") != "1"
