"""Fig. 9 — strong scaling on the shared-memory (OpenMP) layer.

Paper: "except USGrid CaseR with 16 threads, the benchmark scaled
almost linearly"; the CaseR outlier is attributed to per-task cache
capacity and memory bandwidth.
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.bench import default_scaling_workloads, fig9_strong_scaling_omp


def test_fig9_strong_scaling_omp(benchmark, small_mode):
    counts = (1, 2, 4, 8) if small_mode else (1, 2, 4, 8, 16)
    rows = run_once(benchmark, fig9_strong_scaling_omp, counts=counts,
                    series=default_scaling_workloads())
    emit(rows, "Fig. 9 — strong scaling, OpenMP (relative time, 1 thread = 1.0)")

    by_series = {}
    for row in rows:
        by_series.setdefault(row["series"], {})[row["tasks"]] = row
    largest = max(counts)
    for series, curve in by_series.items():
        assert curve[largest]["relative"] < curve[1]["relative"]
        # Near-linear: within 2.5x of ideal speed-up at the largest count.
        assert curve[largest]["relative"] < 2.5 / largest, series
    # The shared-memory contention term penalises CaseR relative to CaseC at
    # the largest thread count (the paper's 16-thread outlier).
    caser = by_series["USGrid CaseR 4096 (w MMAT)"][largest]
    casec = by_series["USGrid CaseC 4096 (w MMAT)"][largest]
    assert caser["contention_s"] >= 0
    assert casec["relative"] <= caser["relative"] * 1.5
