#!/usr/bin/env python
"""Zero-copy shm page transport vs the packed pipe path (process backend).

Runs the 2-D Jacobi structured-grid sweep on a 4-rank process-backend
world twice — once with ``page_transport="pipe"`` (page bytes pickled
into every ``brep`` reply) and once with ``page_transport="shm"``
(pages served from named shared-memory segments; only slot descriptors
cross the pipes) — and reports wall-clock, the ``halo.exchange`` span
time (the page-move cost the transport actually changes), and the
**pickled payload bytes**: ``bytes_moved - shm_bytes``, i.e. the
traffic that still had to be serialised into a pipe.

Gates (checked on every run):

* both transports must produce numerically identical results;
* identical message counts (shm changes *how* page bytes travel,
  never how many exchanges happen);
* the pipe run must pickle at least ``--min-ratio`` (default 2.0)
  times as many payload bytes as the shm run — the deterministic
  acceptance criterion, independent of machine noise;
* at full size on a multi-core host: the summed ``halo.exchange``
  span must drop by the same factor (the wall-clock form of the same
  win).  On a single-core container the ranks time-share one CPU, so
  the span mostly measures scheduler hand-offs, not byte movement —
  there (and in ``--smoke``) the span ratio is reported but not
  gated, as for the wall-clock caveat in ``bench_overlap.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_shm.py
    PYTHONPATH=src python benchmarks/bench_shm.py --smoke
    PYTHONPATH=src python benchmarks/bench_shm.py --json BENCH_shm.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.harness import (  # noqa: E402
    Workload,
    format_table,
    mpi_aspects,
    run_platform,
    sgrid_workload,
)
from repro.runtime import get_backend  # noqa: E402
from repro.runtime.shm import shm_available  # noqa: E402

RANKS = 4
PICKLED_GATE = 2.0  # pipe must pickle >=2x the payload bytes of shm
SPAN_GATE = 2.0     # full size: page-move span must drop by the same factor


def _timed_run(work: Workload, *, transport: str, repeats: int):
    """Best-of-``repeats`` 4-rank traced run of ``work`` on one transport."""
    best_s = None
    best_run = None
    for _ in range(max(repeats, 1)):
        run = run_platform(
            work,
            aspects=mpi_aspects(
                RANKS, backend="process", page_transport=transport, overlap=False
            ),
            mmat=True,
            tracing=True,
        )
        if best_s is None or run.elapsed < best_s:
            best_s = run.elapsed
            best_run = run
    return best_s, best_run


def _halo_exchange_ns(run) -> int:
    """Summed duration of every rank's blocking ``halo.exchange`` spans."""
    return sum(
        event.get("dur_ns", 0)
        for event in run.timeline()
        if event.get("ph") == "X" and event.get("name") == "halo.exchange"
    )


def _pickled_bytes(run) -> int:
    """Payload bytes that crossed a pipe: logical traffic minus shm bytes."""
    return run.network["bytes_moved"] - run.network["shm_bytes"]


def _results_equivalent(a_run, b_run) -> bool:
    a = np.asarray(a_run.result, dtype=np.float64)
    b = np.asarray(b_run.result, dtype=np.float64)
    return a.shape == b.shape and bool(
        np.array_equal(np.nan_to_num(a, nan=-1.0), np.nan_to_num(b, nan=-1.0))
    )


def measure_transports(work: Workload, *, repeats: int = 3) -> dict:
    pipe_s, pipe_run = _timed_run(work, transport="pipe", repeats=repeats)
    shm_s, shm_run = _timed_run(work, transport="shm", repeats=repeats)
    pipe_pickled = _pickled_bytes(pipe_run)
    shm_pickled = _pickled_bytes(shm_run)
    pipe_span = _halo_exchange_ns(pipe_run)
    shm_span = _halo_exchange_ns(shm_run)
    rows = []
    for name, elapsed, run, pickled, span in (
        ("pipe", pipe_s, pipe_run, pipe_pickled, pipe_span),
        ("shm", shm_s, shm_run, shm_pickled, shm_span),
    ):
        rows.append(
            {
                "transport": name,
                "ranks": RANKS,
                "elapsed_s": elapsed,
                "halo_exchange_ms": span / 1e6,
                "pickled_bytes": pickled,
                "bytes_moved": run.network["bytes_moved"],
                "shm_fetches": run.network["shm_fetches"],
                "shm_bytes": run.network["shm_bytes"],
                "shm_fallbacks": run.network["shm_fallbacks"],
                "messages": sum(c.messages for c in run.counters.values()),
            }
        )
    return {
        "rows": rows,
        "pipe_run": pipe_run,
        "shm_run": shm_run,
        "pickled_ratio": pipe_pickled / shm_pickled if shm_pickled else float("inf"),
        "span_ratio": pipe_span / shm_span if shm_span else float("inf"),
        "equivalent": _results_equivalent(pipe_run, shm_run),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--loops", type=int, default=4, help="time steps per run")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per transport (best wall-clock kept)")
    parser.add_argument("--smoke", action="store_true",
                        help="small problem, 1 repeat (CI); span-time gate off")
    parser.add_argument("--min-ratio", type=float, default=PICKLED_GATE,
                        help="required pipe/shm pickled-payload-bytes ratio "
                             f"(default {PICKLED_GATE})")
    parser.add_argument("--json", metavar="PATH",
                        help="emit the rows as JSON (perf trajectory for future PRs)")
    args = parser.parse_args(argv)

    if not get_backend("process").available() or not shm_available():
        print("SKIPPED: process backend with shared memory unavailable here")
        return 0

    if args.smoke:
        work = sgrid_workload(96, loops=args.loops, block_size=48).with_config(
            page_elements=1152
        )
        repeats = 1
    else:
        # One 256x256 block per rank; 64 KiB halo pages make the pickled
        # payload the dominant per-exchange cost on the pipe path.
        work = sgrid_workload(512, loops=args.loops, block_size=256).with_config(
            page_elements=8192
        )
        repeats = args.repeats

    measured = measure_transports(work, repeats=repeats)
    rows = measured["rows"]
    print(format_table(
        rows, title=f"shm vs pipe page transport ({RANKS} ranks, {work.name})"
    ))
    print(
        f"pickled payload: {measured['pickled_ratio']:.1f}x less with shm; "
        f"halo.exchange span: {measured['span_ratio']:.1f}x faster"
    )

    if args.json:
        doc = {"mode": "smoke" if args.smoke else "full", "ranks": RANKS,
               "shm": rows,
               "pickled_ratio": measured["pickled_ratio"],
               "span_ratio": measured["span_ratio"]}
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"wrote {args.json}")

    if not measured["equivalent"]:
        print("FAILED: shm results diverge from the pipe transport")
        return 1
    pipe_row, shm_row = rows
    if pipe_row["messages"] != shm_row["messages"]:
        print("FAILED: the transports disagree on message counts "
              f"(pipe {pipe_row['messages']}, shm {shm_row['messages']})")
        return 1
    if shm_row["shm_fetches"] == 0:
        print("FAILED: the shm run served no pages through shared memory")
        return 1
    if measured["pickled_ratio"] < args.min_ratio:
        print(
            f"FAILED: pipe pickles only {measured['pickled_ratio']:.2f}x the "
            f"payload bytes of shm (gate {args.min_ratio:.1f}x)"
        )
        return 1
    multicore = (os.cpu_count() or 1) > 1
    if not args.smoke and multicore and measured["span_ratio"] < SPAN_GATE:
        print(
            f"FAILED: halo.exchange span dropped only "
            f"{measured['span_ratio']:.2f}x with shm (gate {SPAN_GATE:.1f}x)"
        )
        return 1
    if not args.smoke and not multicore:
        print(
            f"note: single-core host — halo.exchange span ratio "
            f"{measured['span_ratio']:.2f}x reported, {SPAN_GATE:.1f}x gate skipped"
        )
    print(
        f"OK: shm moved {shm_row['shm_fetches']} pages "
        f"({shm_row['shm_bytes']} bytes) through shared segments, "
        f"pickling {measured['pickled_ratio']:.1f}x less payload than pipe "
        f"(gate {args.min_ratio:.1f}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
