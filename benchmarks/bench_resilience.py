#!/usr/bin/env python
"""Checkpoint overhead and rank-recovery cost of the resilience layer.

Runs the 2-D Jacobi structured-grid sweep on a 4-rank distributed world
three times per backend:

* **baseline** — resilience off (the PR-6 platform);
* **checkpointed** — ``ResiliencePolicy`` on: every epoch each rank
  snapshots its owned Env pages into the checkpoint store (in-memory
  for the threads backend, spooled to disk for process);
* **chaos** — same policy plus a seeded ``FaultPlan`` that kills rank 1
  mid-run; the world must detect the death, re-partition onto the
  survivors, resume from the last complete checkpoint and finish.

Gates:

* checkpointed and chaos results must be bit-identical to baseline on
  the covered subdomain (NaN padding marks rank-locality);
* the chaos run must report exactly one recovery;
* checkpoint overhead — ``checkpointed_s / baseline_s - 1`` — must stay
  under ``--max-overhead`` (default 10%) on every row.

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py
    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke
    PYTHONPATH=src python benchmarks/bench_resilience.py --json BENCH_resilience.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.annotation import Platform  # noqa: E402
from repro.apps import JacobiSGrid  # noqa: E402
from repro.bench.harness import format_table  # noqa: E402
from repro.resilience import FaultPlan, ResiliencePolicy  # noqa: E402

RANKS = 4
OVERHEAD_GATE = 0.10  # acceptance: checkpoints cost <10% wall-clock


def _init(x, y):
    return 0.05 * x - 0.04 * y + 1.25


def _build(backend, *, policy=None, timeout=30.0):
    builder = Platform.builder().mpi(RANKS).mmat().backend(backend)
    if policy is not None:
        builder = builder.resilience(policy).comm_timeout(timeout)
    return builder.build()


def _timed_run(config, backend, *, policy_factory=None, repeats=1):
    """Best-of-``repeats`` run; returns (seconds, run, checkpoint counters)."""
    best_s = None
    best_run = None
    ckpts = pages = 0
    for _ in range(max(repeats, 1)):
        policy = policy_factory() if policy_factory is not None else None
        platform = _build(backend, policy=policy)
        run = platform.run(JacobiSGrid, config=dict(config))
        if best_s is None or run.elapsed < best_s:
            best_s = run.elapsed
            best_run = run
            ckpts = sum(c.checkpoints for c in run.counters.values())
            pages = sum(c.checkpoint_pages for c in run.counters.values())
    return best_s, best_run, ckpts, pages


def _equivalent(a_run, b_run) -> bool:
    """Bit-identical where both runs cover the domain (NaN = not local)."""
    a = np.asarray(a_run.result, dtype=np.float64)
    b = np.asarray(b_run.result, dtype=np.float64)
    if a.shape != b.shape:
        return False
    mask = ~(np.isnan(a) | np.isnan(b))
    return bool(mask.any()) and bool(np.array_equal(a[mask], b[mask]))


def measure(config, backends, *, repeats):
    rows = []
    for backend in backends:
        base_s, base_run, _, _ = _timed_run(config, backend, repeats=repeats)
        ckpt_s, ckpt_run, ckpts, pages = _timed_run(
            config, backend, policy_factory=ResiliencePolicy, repeats=repeats
        )
        chaos_s, chaos_run, _, _ = _timed_run(
            config,
            backend,
            policy_factory=lambda: ResiliencePolicy(
                fault_plan=FaultPlan().kill(1, phase="refresh", epoch=2)
            ),
            repeats=1,  # a kill-and-recover run is not a steady-state timing
        )
        rows.append(
            {
                "workload": f"SGrid {config['region']} ({backend})",
                "backend": backend,
                "ranks": RANKS,
                "baseline_s": base_s,
                "checkpointed_s": ckpt_s,
                "overhead": ckpt_s / base_s - 1.0,
                "checkpoints": ckpts,
                "checkpoint_pages": pages,
                "chaos_s": chaos_s,
                "recoveries": chaos_run.restarts,
                "equivalent": _equivalent(base_run, ckpt_run),
                "chaos_equivalent": _equivalent(base_run, chaos_run),
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--loops", type=int, default=6, help="time steps per run")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per configuration (best wall-clock kept)")
    parser.add_argument("--smoke", action="store_true",
                        help="small problem, fewer repeats (CI)")
    parser.add_argument("--max-overhead", type=float, default=OVERHEAD_GATE,
                        help=f"checkpoint overhead gate (default {OVERHEAD_GATE:.0%})")
    parser.add_argument("--json", metavar="PATH",
                        help="emit the rows as JSON (perf trajectory for future PRs)")
    args = parser.parse_args(argv)

    if args.smoke:
        config = dict(region=96, block_size=24, page_elements=576,
                      loops=args.loops, init=_init)
        repeats = 2
        backends = ("threads", "process")
    else:
        config = dict(region=256, block_size=64, page_elements=4096,
                      loops=max(args.loops, 8), init=_init)
        repeats = args.repeats
        backends = ("threads", "process")

    rows = measure(config, backends, repeats=repeats)
    print(format_table(
        rows, title=f"Checkpoint overhead and rank recovery ({RANKS} ranks)"
    ))

    if args.json:
        doc = {"mode": "smoke" if args.smoke else "full", "ranks": RANKS,
               "resilience": rows}
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"wrote {args.json}")

    failed = False
    for row in rows:
        if not row["equivalent"]:
            print(f"FAILED: {row['workload']}: checkpointed result diverges")
            failed = True
        if not row["chaos_equivalent"]:
            print(f"FAILED: {row['workload']}: recovered result diverges")
            failed = True
        if row["recoveries"] != 1:
            print(f"FAILED: {row['workload']}: expected 1 recovery, "
                  f"saw {row['recoveries']}")
            failed = True
        if row["checkpoints"] == 0:
            print(f"FAILED: {row['workload']}: no checkpoints were taken")
            failed = True
        if row["overhead"] > args.max_overhead:
            print(f"FAILED: {row['workload']}: checkpoint overhead "
                  f"{row['overhead']:.1%} above the {args.max_overhead:.0%} gate")
            failed = True
    if failed:
        return 1
    worst = max(rows, key=lambda r: r["overhead"])
    print(
        f"OK: worst checkpoint overhead {worst['overhead']:.1%} "
        f"({worst['workload']}, gate {args.max_overhead:.0%}); "
        f"every chaos run recovered bit-identical"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
