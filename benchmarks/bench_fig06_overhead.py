"""Fig. 6 — single-task overhead of the platform vs handwritten code.

Paper: "the overhead due to the platform is maximally 600%.  However,
the overheads can be reduced […] using MMAT, depending on the access
pattern"; "the overhead due to the transcompilation through AspectC++
is about several percent".

This benchmark reruns the eight benchmark columns (two sizes of SGrid,
USGrid CaseC, USGrid CaseR and Particle) under every configuration
(Handwritten / Platform / Platform NOP / Platform MPI / Platform OMP,
with and without MMAT) on one task and reports wall-clock relative to
Handwritten = 100%.
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.bench import default_overhead_workloads, fig6_overhead


def test_fig6_overhead_all_configurations(benchmark, small_mode):
    workloads = default_overhead_workloads(small=small_mode)
    rows = run_once(
        benchmark,
        fig6_overhead,
        workloads=workloads,
        configurations=("serial", "nop", "mpi", "omp"),
        include_mmat=True,
    )
    emit(rows, "Fig. 6 — relative execution time (Handwritten = 100%)")

    # Shape assertions from the paper's discussion of Fig. 6.
    by_key = {}
    for row in rows:
        by_key.setdefault(row["benchmark"], {})[(row["configuration"], row["mmat"])] = row

    for benchmark_name, configs in by_key.items():
        handwritten = configs[("Handwritten", "-")]
        assert handwritten["relative_pct"] == 100.0
        # The platform adds overhead on a single task.
        platform = configs[("Platform", "w/o MMAT")]
        assert platform["relative_pct"] > 100.0
        # Transcompiling with no aspect module costs only a few percent extra.
        nop = configs[("Platform NOP", "w/o MMAT")]
        assert nop["elapsed_s"] < platform["elapsed_s"] * 1.35
        # MMAT helps (or at least does not hurt) the indirect-access benchmarks.
        if "USGrid" in benchmark_name:
            assert (
                configs[("Platform", "w MMAT")]["elapsed_s"]
                <= configs[("Platform", "w/o MMAT")]["elapsed_s"] * 1.05
            )
