"""Ablation benches beyond the paper's figures.

DESIGN.md calls out three design choices whose effect is worth isolating:

* **MMAT** (the paper only reports it bundled into Fig. 6): how many Env
  searches does it actually remove per configuration?
* **Dry-run prefetch**: how many re-executed steps does the distributed
  layer avoid?  (Measured indirectly: with the prefetch in place, at most
  the first step per rank is recomputed.)
* **Z-order block assignment**: how much less halo traffic than an
  arbitrary (shuffled) assignment of Blocks to ranks?
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.bench import run_platform, sgrid_workload, usgrid_workload
from repro.bench.harness import configuration_aspects


def _mmat_ablation():
    rows = []
    for case in ("C", "R"):
        work = usgrid_workload(24, case=case, block_cells=48)
        for mmat in (False, True):
            run = run_platform(work, mmat=mmat)
            stats = run.env_stats
            rows.append(
                {
                    "workload": work.name,
                    "mmat": "on" if mmat else "off",
                    "env_searches": stats.searches,
                    "search_steps": stats.search_steps,
                    "mmat_hits": stats.mmat_hits,
                    "elapsed_s": run.elapsed,
                }
            )
    return rows


def test_ablation_mmat_search_elimination(benchmark):
    rows = run_once(benchmark, _mmat_ablation)
    emit(rows, "Ablation — MMAT: Env searches with the memo on/off")
    by_key = {(r["workload"], r["mmat"]): r for r in rows}
    for case_label in {r["workload"] for r in rows}:
        on = by_key[(case_label, "on")]
        off = by_key[(case_label, "off")]
        assert on["env_searches"] < off["env_searches"]
        assert on["mmat_hits"] > 0


def _dry_run_ablation():
    work = sgrid_workload(32, loops=4)
    rows = []
    for processes in (2, 4):
        run = run_platform(work, aspects=configuration_aspects("mpi", mpi=processes), mmat=True)
        recomputed = sum(c.recomputed_steps for c in run.counters.values())
        steps = sum(c.steps for c in run.counters.values())
        rows.append(
            {
                "processes": processes,
                "total_steps": steps,
                "recomputed_steps": recomputed,
                "pages_fetched": sum(c.pages_fetched for c in run.counters.values()),
            }
        )
    return rows


def test_ablation_dry_run_prefetch(benchmark):
    rows = run_once(benchmark, _dry_run_ablation)
    emit(rows, "Ablation — Dry-run prefetch: recomputed steps per run")
    for row in rows:
        # The dry-run record is collected during warm-up, so at most the very
        # first productive step of each rank can fail once; with 4 steps per
        # rank this bounds recomputation to 25% of steps.
        assert row["recomputed_steps"] <= row["processes"]
        assert row["pages_fetched"] > 0


def _zorder_ablation():
    """Compare halo traffic with Z-order vs shuffled block assignment."""
    from repro.apps import JacobiSGrid
    from repro.dsl.base import DslTarget

    work = sgrid_workload(32, loops=2)

    class ShuffledAssignment(JacobiSGrid):
        """Same application, but Blocks are dealt to tasks in a shuffled order."""

        def assign_tasks(self, specs):
            import math

            total = max(self.total_tasks, 1)
            # Deterministic shuffle that destroys spatial contiguity.
            ordered = sorted(specs, key=lambda s: (s.grid_coords[0] * 7919 + s.grid_coords[1] * 104729) % 65536)
            per_task = math.ceil(len(ordered) / total)
            return [
                (spec, min(index // per_task, total - 1))
                for index, spec in enumerate(ordered)
            ]

    rows = []
    for label, app_cls in (("z-order", JacobiSGrid), ("shuffled", ShuffledAssignment)):
        from repro.annotation import Platform
        from repro.aspects import mpi_aspects

        platform = Platform(aspects=mpi_aspects(4), mmat=True)
        run = platform.run(app_cls, config=dict(work.config))
        rows.append(
            {
                "assignment": label,
                "pages_fetched": sum(c.pages_fetched for c in run.counters.values()),
                "bytes_moved": run.network["bytes_moved"],
            }
        )
    return rows


def test_ablation_zorder_assignment(benchmark):
    rows = run_once(benchmark, _zorder_ablation)
    emit(rows, "Ablation — Z-order vs shuffled Block-to-task assignment (4 ranks)")
    by_label = {row["assignment"]: row for row in rows}
    # Z-order keeps neighbouring blocks on the same rank, so it never moves
    # more halo data than a locality-destroying assignment.
    assert by_label["z-order"]["pages_fetched"] <= by_label["shuffled"]["pages_fetched"]
