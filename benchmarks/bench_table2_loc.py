"""Table II — lines of code of each part of each benchmark.

Paper: "the amount of code, which end-users should write, is about the
same as that of handwritten [code]" — the platform and DSL parts are
large, but they are written once by platform/DSL developers and shared.
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.bench import table2_loc


def test_table2_lines_of_code(benchmark):
    rows = run_once(benchmark, table2_loc)
    emit(rows, "Table II — lines of code (no blanks/comments)")

    assert {row["benchmark"] for row in rows} == {"SGrid", "USGrid", "Particle"}
    for row in rows:
        # The platform part dwarfs the DSL part, which dwarfs the app part.
        assert row["platform_part"] > row["dsl_part"] > row["app_part"] > 0
        # End-user (App Part) code is the same order of magnitude as the
        # handwritten program.
        assert row["app_part"] < 3 * row["handwritten"]
        assert row["handwritten"] < 5 * row["app_part"]
