"""Fig. 10 — weak scaling on the shared-memory (OpenMP) layer.

Paper: "a gradual performance degradation is observed in every case.
The performance degradation in CaseC is more significant than that in
CaseR", attributed to cache thrashing between threads streaming
contiguous data.
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.bench import fig10_weak_scaling_omp, sgrid_workload, usgrid_workload


def weak_series():
    return {
        "SGrid": sgrid_workload(16, paper_region=2048),
        "USGrid CaseC (w MMAT)": usgrid_workload(16, case="C", block_cells=32,
                                                 paper_region=2048),
        "USGrid CaseR (w MMAT)": usgrid_workload(16, case="R", block_cells=32,
                                                 paper_region=2048),
    }


def test_fig10_weak_scaling_omp(benchmark, small_mode):
    counts = (1, 4) if small_mode else (1, 4, 16)
    rows = run_once(benchmark, fig10_weak_scaling_omp, counts=counts, series=weak_series())
    emit(rows, "Fig. 10 — weak scaling, OpenMP (1 thread = 1.0)")

    by_series = {}
    for row in rows:
        by_series.setdefault(row["series"], {})[row["tasks"]] = row["relative"]
    largest = max(counts)
    for series, curve in by_series.items():
        # Gradual degradation: worse than flat, but far from collapsing.
        assert 1.0 <= curve[largest] < 3.0, series
    # CaseC (contiguous accesses) degrades more than CaseR (random accesses),
    # relative to their own single-thread baselines.
    assert by_series["USGrid CaseC (w MMAT)"][largest] > by_series["USGrid CaseR (w MMAT)"][largest]
