"""Fig. 12 — total memory usage, split into pool (used/unused) and working memory.

Paper: "Even if excluding fixed-size memory pools, the memory usage of
the cases with the platform is larger several to dozens of times.  It
is due to data of the structure of Env and MMAT."
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.bench import fig12_memory_usage


def test_fig12_memory_usage(benchmark, small_mode):
    rows = run_once(
        benchmark,
        fig12_memory_usage,
        region=16 if small_mode else 32,
        particles=128 if small_mode else 512,
        pool_bytes=8 * 1024 * 1024,
        configurations=("serial", "nop", "omp", "mpi", "hybrid"),
    )
    emit(rows, "Fig. 12 — memory usage decomposition (MB)")

    by_benchmark = {}
    for row in rows:
        bench_name, config = row["label"].split(" / ")
        by_benchmark.setdefault(bench_name, {})[config] = row

    for bench_name, configs in by_benchmark.items():
        handwritten = configs["H"]
        assert handwritten["unused_pool_MB"] == 0 and handwritten["used_pool_MB"] == 0
        for config, row in configs.items():
            if config == "H":
                continue
            # Platform configurations carry the fixed-size pool…
            assert row["unused_pool_MB"] + row["used_pool_MB"] > 0
            # …and even ignoring the *unused* remainder of that pool, the
            # memory they actually occupy (block buffers in the used pool +
            # Env structure/MMAT working memory) exceeds the handwritten
            # program's working set.
            occupied = row["used_pool_MB"] + row["working_MB"]
            assert occupied > handwritten["working_MB"]
