"""Table I — size of the benchmark programs per configuration.

Paper: "the size of the binaries with the platform is three to five
times larger but still within the size of the CPU cache".  The Python
equivalent measured here is the marshalled size of the code objects
making up each configuration (see ``repro.analysis.codesize``); the
ordering H < P < P NOP < P OMP < P MPI < P MPI+OMP is the property to
reproduce (the absolute ratios are larger because Python modules are
not dead-code-stripped the way a linked C++ binary is — see
EXPERIMENTS.md).
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.bench import table1_binary_size


def test_table1_binary_size(benchmark):
    rows = run_once(benchmark, table1_binary_size)
    emit(rows, "Table I — program size per configuration (KiB)")

    for row in rows:
        assert row["H_KiB"] < row["P_KiB"]
        assert row["P_KiB"] < row["P_NOP_KiB"] <= row["P_OMP_KiB"]
        assert row["P_OMP_KiB"] < row["P_MPI+OMP_KiB"]
        assert row["P_MPI_KiB"] < row["P_MPI+OMP_KiB"]
        # Platform programs stay within an L2-cache-like budget (a few MiB).
        assert row["P_MPI+OMP_KiB"] < 4096
