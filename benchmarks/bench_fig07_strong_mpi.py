"""Fig. 7 — strong scaling on the distributed-memory (MPI) layer.

Paper: "the benchmark scaled almost linearly" for 1–16 processes.
The platform is executed on the simulated runtime for each process
count; the measured per-task work/traffic is converted to modelled
cluster time with the shared cost model (see DESIGN.md §2).
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.bench import default_scaling_workloads, fig7_strong_scaling_mpi


def test_fig7_strong_scaling_mpi(benchmark, small_mode):
    counts = (1, 2, 4, 8) if small_mode else (1, 2, 4, 8, 16)
    rows = run_once(benchmark, fig7_strong_scaling_mpi, counts=counts,
                    series=default_scaling_workloads())
    emit(rows, "Fig. 7 — strong scaling, MPI (relative time, 1 process = 1.0)")

    by_series = {}
    for row in rows:
        by_series.setdefault(row["series"], {})[row["tasks"]] = row["relative"]
    for series, curve in by_series.items():
        # Monotone decrease and near-linear speed-up at the largest count.
        counts_sorted = sorted(curve)
        for small, large in zip(counts_sorted, counts_sorted[1:]):
            assert curve[large] < curve[small], series
        largest = counts_sorted[-1]
        assert curve[largest] < 2.5 / largest, (series, curve)
