#!/usr/bin/env python
"""Vectorized (access-plan) kernels vs the scalar reference path.

Measures, for each of the three DSL apps, the measured wall-clock of the
``kernel="scalar"`` reference implementation against the default
``kernel="vectorized"`` batched implementation (both with MMAT enabled,
serial backend), checks they produce numerically equivalent results, and
reports the speed-up.  A micro-benchmark of the scalar-fallback hot path
(``Env.read_from``) is included so regressions of the non-plan path show
up here too.

The headline regression gates:

* the vectorized 2-D Jacobi sweep must be at least 10x faster than the
  scalar sweep (the access-plan compilation tentpole's acceptance
  criterion); ``--smoke`` uses a smaller grid and a 2x gate for CI;
* the *fused* 2-D Jacobi sweep (plan x fn codegen, ``repro.kernels``)
  must be at least 3x faster than the vectorized sweep in steady state
  (the plan-fusion tentpole's criterion); ``--smoke`` relaxes to 1.5x.

The fused comparison measures the *marginal per-step* cost — best
wall-clock at two loop counts, divided by the loop delta — because the
whole-run elapsed is dominated by the one-time warm-up plan compilation
that both paths share.  Bit-identity between the fused and vectorized
results is asserted, and an informational ``temporal_block=2`` row shows
the temporal-blocking lookahead on the same workload.

Usage::

    PYTHONPATH=src python benchmarks/bench_vectorized_kernels.py
    PYTHONPATH=src python benchmarks/bench_vectorized_kernels.py --smoke
    PYTHONPATH=src python benchmarks/bench_vectorized_kernels.py --json BENCH_kernels.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.annotation import Platform  # noqa: E402
from repro.bench.harness import (  # noqa: E402
    Workload,
    format_table,
    particle_workload,
    run_platform,
    sgrid_workload,
    usgrid_workload,
)


def _timed_run(work: Workload, *, kernel: str, repeats: int):
    """Best-of-``repeats`` platform run of ``work`` with the given kernel."""
    best = None
    last = None
    for _ in range(max(repeats, 1)):
        run = run_platform(work.with_config(kernel=kernel), mmat=True)
        if best is None or run.elapsed < best:
            best = run.elapsed
        last = run
    return best, last


def measure_kernels(workloads, *, repeats: int = 3) -> list:
    rows = []
    for work in workloads:
        scalar_s, scalar_run = _timed_run(work, kernel="scalar", repeats=repeats)
        vector_s, vector_run = _timed_run(work, kernel="vectorized", repeats=repeats)
        a = np.asarray(scalar_run.result, dtype=np.float64)
        b = np.asarray(vector_run.result, dtype=np.float64)
        equivalent = a.shape == b.shape and bool(
            np.allclose(np.nan_to_num(a, nan=-1.0), np.nan_to_num(b, nan=-1.0), atol=1e-10)
        )
        stats = vector_run.mmat_stats
        rows.append(
            {
                "workload": work.name,
                "scalar_s": scalar_s,
                "vectorized_s": vector_s,
                "speedup": scalar_s / vector_s if vector_s else float("nan"),
                "equivalent": equivalent,
                "plans": stats.get("plans", 0),
                "plan_sites": stats.get("plan_sites", 0),
                "vectorized_fraction": stats.get("vectorized_fraction", 0.0),
            }
        )
    return rows


def _best_elapsed(work: Workload, *, repeats: int, **config):
    """Best-of-``repeats`` whole-run wall-clock with config overrides."""
    best = None
    last = None
    for _ in range(max(repeats, 1)):
        run = run_platform(work.with_config(**config), mmat=True)
        if best is None or run.elapsed < best:
            best = run.elapsed
        last = run
    return best, last


def measure_fused(work: Workload, *, lo: int, hi: int, repeats: int = 1) -> list:
    """Fused (plan x fn codegen) vs plain vectorized, marginal per step.

    Runs each path at ``lo`` and ``hi`` loop counts and reports
    ``(best(hi) - best(lo)) / (hi - lo)`` — the steady-state cost of one
    extra sweep, with the shared one-time plan-compilation warm-up
    subtracted out.
    """

    def per_step(**config):
        lo_s, _ = _best_elapsed(work, repeats=repeats, loops=lo, **config)
        hi_s, run = _best_elapsed(work, repeats=repeats, loops=hi, **config)
        return max(hi_s - lo_s, 0.0) / (hi - lo), run

    vec_step, vec_run = per_step(kernel="vectorized", fuse=False)
    fused_step, fused_run = per_step(kernel="vectorized")
    a = np.asarray(vec_run.result, dtype=np.float64)
    b = np.asarray(fused_run.result, dtype=np.float64)
    identical = a.shape == b.shape and bool(np.array_equal(a, b, equal_nan=True))
    rows = [
        {
            "workload": work.name,
            "vectorized_step_s": vec_step,
            "fused_step_s": fused_step,
            "fused_speedup": vec_step / fused_step if fused_step else float("nan"),
            "bit_identical": identical,
            "fused_kernels": fused_run.mmat_stats.get("fused_kernels", 0),
            "fused_calls": sum(
                c.kernel_fused_calls for c in fused_run.counters.values()
            ),
        }
    ]
    # Informational: the same workload with a 2-deep temporal-blocking
    # lookahead (interior advanced 2 steps per gather).  Not gated — the
    # win depends on the halo/interior ratio of the block size.
    tb_step, tb_run = per_step(kernel="vectorized", temporal_block=2)
    c = np.asarray(tb_run.result, dtype=np.float64)
    rows.append(
        {
            "workload": f"{work.name} tb2",
            "vectorized_step_s": vec_step,
            "fused_step_s": tb_step,
            "fused_speedup": vec_step / tb_step if tb_step else float("nan"),
            "bit_identical": a.shape == c.shape
            and bool(np.array_equal(a, c, equal_nan=True)),
            "fused_kernels": tb_run.mmat_stats.get("fused_kernels", 0),
            "fused_calls": sum(
                c_.kernel_fused_calls for c_ in tb_run.counters.values()
            ),
        }
    )
    return rows


def measure_read_from(*, reads: int = 20000) -> dict:
    """Micro-benchmark of the scalar fallback hot path (Env.read_from)."""
    run = Platform(mmat=True).run(
        sgrid_workload(16, loops=1).app_cls,
        config=dict(region=16, block_size=8, page_elements=32, loops=1, kernel="scalar"),
    )
    env = run.app.env
    block = env.data_blocks()[0]
    x0, y0 = block.origin
    start = time.perf_counter()
    for r in range(reads):
        env.read_from(block, (x0 + r % 8, y0 + (r // 8) % 8), assume_inside=False)
    elapsed = time.perf_counter() - start
    return {"reads": reads, "elapsed_s": elapsed, "ns_per_read": elapsed / reads * 1e9}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--region", type=int, default=96, help="Jacobi grid edge length")
    parser.add_argument("--loops", type=int, default=8, help="time steps per run")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per configuration (best wall-clock kept)")
    parser.add_argument("--smoke", action="store_true",
                        help="small problems, 1 repeat, relaxed 2x gate (CI)")
    parser.add_argument("--json", metavar="PATH",
                        help="emit the rows as JSON (perf trajectory for future PRs)")
    args = parser.parse_args(argv)

    if args.smoke:
        workloads = [
            sgrid_workload(24, loops=3, block_size=8),
            usgrid_workload(16, loops=2, block_cells=64),
            particle_workload(64, loops=2),
        ]
        repeats, gate = 1, 2.0
        # Small enough for CI (~1s), big enough for per-step costs to
        # dominate Python dispatch overhead.
        fused_work = sgrid_workload(128, loops=5, block_size=64)
        fused_lo, fused_hi, fused_repeats, fused_gate = 5, 35, 3, 1.5
    else:
        workloads = [
            sgrid_workload(args.region, loops=args.loops, block_size=16),
            usgrid_workload(64, loops=args.loops, block_cells=256),
            usgrid_workload(64, case="R", loops=args.loops, block_cells=256),
            particle_workload(512, loops=2),
        ]
        repeats, gate = args.repeats, 10.0
        fused_work = sgrid_workload(384, loops=4, block_size=128)
        fused_lo, fused_hi, fused_repeats, fused_gate = 4, 20, 2, 3.0

    rows = measure_kernels(workloads, repeats=repeats)
    fused_rows = measure_fused(
        fused_work, lo=fused_lo, hi=fused_hi, repeats=fused_repeats
    )
    micro = measure_read_from()
    print(format_table(rows, title="Vectorized (access-plan) kernels vs scalar reference"))
    print()
    print(format_table(
        fused_rows,
        title="Fused (plan x fn codegen) vs vectorized, marginal s/step",
    ))
    print(
        f"\nEnv.read_from micro-bench: {micro['reads']} scalar reads in "
        f"{micro['elapsed_s']:.4f}s ({micro['ns_per_read']:.0f} ns/read)"
    )

    if args.json:
        doc = {
            "mode": "smoke" if args.smoke else "full",
            "kernels": rows,
            "fused": fused_rows,
            "read_from": micro,
        }
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"wrote {args.json}")

    ok = all(row["equivalent"] for row in rows)
    if not ok:
        print("FAILED: vectorized results diverge from the scalar reference")
        return 1
    if not all(row["bit_identical"] for row in fused_rows):
        print("FAILED: fused results are not bit-identical to the vectorized path")
        return 1
    # The acceptance gates apply to the 2-D Jacobi structured-grid sweep.
    jacobi = rows[0]
    if jacobi["speedup"] < gate:
        print(
            f"FAILED: vectorized Jacobi speedup {jacobi['speedup']:.1f}x "
            f"below the {gate:.0f}x gate"
        )
        return 1
    print(f"OK: vectorized Jacobi sweep {jacobi['speedup']:.1f}x faster (gate {gate:.0f}x)")
    fused = fused_rows[0]
    if fused["fused_speedup"] < fused_gate:
        print(
            f"FAILED: fused Jacobi speedup {fused['fused_speedup']:.1f}x "
            f"below the {fused_gate:.1f}x gate"
        )
        return 1
    print(
        f"OK: fused Jacobi sweep {fused['fused_speedup']:.1f}x faster per step "
        f"(gate {fused_gate:.1f}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
