"""Fig. 8 — weak scaling on the distributed-memory (MPI) layer.

Paper: weak scaling is roughly flat for SGrid / USGrid CaseC / Particle
and markedly worse for USGrid CaseR, whose scattered accesses cause
"significant communication overhead".
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.bench import (
    fig8_weak_scaling_mpi,
    particle_workload,
    sgrid_workload,
    usgrid_workload,
)


def weak_series(small: bool):
    region = 16
    return {
        "SGrid": sgrid_workload(region, paper_region=2048),
        "USGrid CaseC (w MMAT)": usgrid_workload(region, case="C", block_cells=32,
                                                 paper_region=2048),
        "USGrid CaseR (w MMAT)": usgrid_workload(region, case="R", block_cells=32,
                                                 paper_region=2048),
        "Particle 2^16": particle_workload(128, paper_particles=2 ** 16).with_config(
            block_buckets=4, page_elements=4
        ),
    }


def test_fig8_weak_scaling_mpi(benchmark, small_mode):
    counts = (1, 4, 16) if small_mode else (1, 4, 16, 64)
    rows = run_once(benchmark, fig8_weak_scaling_mpi, counts=counts,
                    series=weak_series(small_mode))
    emit(rows, "Fig. 8 — weak scaling, MPI (1 process = 1.0)")

    by_series = {}
    for row in rows:
        by_series.setdefault(row["series"], {})[row["tasks"]] = row["relative"]
    largest = max(counts)
    # CaseR degrades the most; SGrid stays close to flat.
    assert by_series["USGrid CaseR (w MMAT)"][largest] > by_series["SGrid"][largest]
    assert by_series["SGrid"][largest] < 1.5
    for series, curve in by_series.items():
        assert curve[1] == 1.0
        assert all(value >= 0.99 for value in curve.values()), series
