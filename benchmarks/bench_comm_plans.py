#!/usr/bin/env python
"""Aggregated (comm-plan) halo exchange vs the per-page protocol.

Runs each DSL workload on a strong-scaled 4-rank distributed world twice
— once with the original one-message-pair-per-page refresh protocol
(``comm_plans=False``, the paper prototype's exchange) and once with
compiled communication plans (one aggregated message pair per neighbor
rank) — and reports page-exchange message counts, wall-clock, the
aggregation ratio and the number of neighbor links, checking that both
protocols produce numerically identical results.

The headline regression gate: on the 2-D Jacobi structured-grid sweep
comm plans must move the halo with at least **5x fewer page-exchange
messages** than the per-page protocol at 4 ranks.  Message counts are
deterministic, so the gate holds in ``--smoke`` mode too.

Usage::

    PYTHONPATH=src python benchmarks/bench_comm_plans.py
    PYTHONPATH=src python benchmarks/bench_comm_plans.py --smoke
    PYTHONPATH=src python benchmarks/bench_comm_plans.py --json BENCH_comm.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.harness import (  # noqa: E402
    Workload,
    format_table,
    mpi_aspects,
    particle_workload,
    run_platform,
    sgrid_workload,
    usgrid_workload,
)

RANKS = 4
GATE = 5.0  # Jacobi sgrid: minimum page-exchange message reduction at 4 ranks


def _timed_run(work: Workload, *, comm_plans: bool, repeats: int):
    """Best-of-``repeats`` 4-rank run of ``work`` (threads backend, MMAT on)."""
    best = None
    last = None
    for _ in range(max(repeats, 1)):
        run = run_platform(
            work, aspects=mpi_aspects(RANKS, comm_plans=comm_plans), mmat=True
        )
        if best is None or run.elapsed < best:
            best = run.elapsed
        last = run
    return best, last


def _exchange_messages(run) -> int:
    """Page-exchange messages of a run (trace counters exclude collectives)."""
    return sum(c.messages for c in run.counters.values())


def _results_equivalent(a_run, b_run) -> bool:
    a = np.asarray(a_run.result, dtype=np.float64)
    b = np.asarray(b_run.result, dtype=np.float64)
    return a.shape == b.shape and bool(
        np.allclose(np.nan_to_num(a, nan=-1.0), np.nan_to_num(b, nan=-1.0), atol=1e-12)
    )


def measure_comm_plans(workloads, *, repeats: int = 3) -> list:
    rows = []
    for work in workloads:
        perpage_s, perpage_run = _timed_run(work, comm_plans=False, repeats=repeats)
        plan_s, plan_run = _timed_run(work, comm_plans=True, repeats=repeats)
        perpage_msgs = _exchange_messages(perpage_run)
        plan_msgs = _exchange_messages(plan_run)
        counters = plan_run.counters.values()
        pages = sum(c.comm_plan_pages for c in counters)
        exchanges = sum(c.comm_plan_exchanges for c in counters)
        rows.append(
            {
                "workload": work.name,
                "ranks": RANKS,
                "perpage_messages": perpage_msgs,
                "plan_messages": plan_msgs,
                "message_ratio": perpage_msgs / max(plan_msgs, 1),
                "messages_saved": perpage_msgs - plan_msgs,
                "perpage_s": perpage_s,
                "plan_s": plan_s,
                "aggregation_ratio": pages / exchanges if exchanges else 0.0,
                "neighbor_links": plan_run.comm_neighbor_links(),
                "equivalent": _results_equivalent(perpage_run, plan_run),
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--loops", type=int, default=10, help="time steps per run")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per configuration (best wall-clock kept)")
    parser.add_argument("--smoke", action="store_true",
                        help="small problems, 1 repeat (CI); the message gate is unchanged")
    parser.add_argument("--json", metavar="PATH",
                        help="emit the rows as JSON (perf trajectory for future PRs)")
    args = parser.parse_args(argv)

    if args.smoke:
        workloads = [
            sgrid_workload(32, loops=5, block_size=8).with_config(page_elements=8),
            usgrid_workload(16, loops=3, block_cells=32).with_config(page_elements=8),
            particle_workload(256, loops=2).with_config(block_buckets=4, page_elements=4),
        ]
        repeats = 1
    else:
        workloads = [
            sgrid_workload(64, loops=args.loops, block_size=8).with_config(page_elements=8),
            usgrid_workload(32, loops=args.loops, block_cells=64).with_config(page_elements=8),
            particle_workload(1024, loops=3).with_config(block_buckets=8, page_elements=4),
        ]
        repeats = args.repeats

    rows = measure_comm_plans(workloads, repeats=repeats)
    print(format_table(
        rows, title=f"Aggregated comm-plan halo exchange vs per-page ({RANKS} ranks)"
    ))

    if args.json:
        doc = {"mode": "smoke" if args.smoke else "full", "ranks": RANKS, "comm": rows}
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
        print(f"wrote {args.json}")

    ok = all(row["equivalent"] for row in rows)
    if not ok:
        print("FAILED: comm-plan results diverge from the per-page protocol")
        return 1
    if any(row["plan_messages"] > row["perpage_messages"] for row in rows):
        print("FAILED: comm plans moved MORE messages than the per-page protocol")
        return 1
    # The acceptance gate applies to the 2-D Jacobi structured-grid sweep.
    jacobi = rows[0]
    if jacobi["message_ratio"] < GATE:
        print(
            f"FAILED: Jacobi comm-plan message reduction {jacobi['message_ratio']:.1f}x "
            f"below the {GATE:.0f}x gate"
        )
        return 1
    print(
        f"OK: Jacobi halo moved with {jacobi['message_ratio']:.1f}x fewer messages "
        f"(gate {GATE:.0f}x, aggregation {jacobi['aggregation_ratio']:.1f} pages/exchange)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
