"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.memory import Env, MemoryPool, PoolGroup
from repro.runtime.tracing import global_trace


@pytest.fixture(autouse=True)
def _reset_trace():
    """Isolate the process-wide trace recorder between tests."""
    global_trace().reset()
    yield
    global_trace().reset()


@pytest.fixture
def pool() -> MemoryPool:
    return MemoryPool(4 * 1024 * 1024, name="test-pool")


@pytest.fixture
def env(pool) -> Env:
    return Env(allocator=PoolGroup([pool]), name="test-env")


@pytest.fixture
def mmat_env(pool) -> Env:
    return Env(allocator=PoolGroup([pool]), name="test-env-mmat", mmat_enabled=True)


def small_grid_config(**overrides) -> dict:
    """A tiny structured-grid configuration usable by many tests."""
    config = dict(
        region=16,
        block_size=8,
        page_elements=16,
        loops=2,
        init=lambda x, y: 0.1 * x + 0.2 * y,
    )
    config.update(overrides)
    return config
