"""Unit tests for the handwritten baselines, analysis utilities and bench harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    class_code_bytes,
    configuration_size,
    count_loc,
    count_loc_in_source,
    measure_env,
    measure_handwritten,
    module_code_bytes,
)
from repro.apps import (
    DoubleBufferedGrid,
    HandwrittenParticle,
    HandwrittenSGrid,
    HandwrittenUSGrid,
)
from repro.bench import (
    WORKLOADS,
    configuration_aspects,
    format_table,
    modelled_time,
    run_handwritten,
    run_platform,
    scale_counters,
    sgrid_workload,
    usgrid_workload,
    particle_workload,
    workload,
)
from repro.runtime.tracing import TaskCounters


class TestHandwrittenSGrid:
    def test_double_buffer_boundary(self):
        grid = DoubleBufferedGrid(4, boundary_value=-1.0)
        assert grid.get(-1, 0) == -1.0
        assert grid.get(0, 4) == -1.0
        grid.set(1, 1, 5.0)
        assert grid.get(1, 1) == 0.0
        grid.refresh()
        assert grid.get(1, 1) == 5.0

    def test_zero_init_stays_zero_with_zero_boundary(self):
        result = HandwrittenSGrid(8, loops=3).run()
        np.testing.assert_allclose(result, 0.0)

    def test_constant_field_is_fixed_point(self):
        # alpha + 4*beta = 1 and boundary equal to the constant -> unchanged.
        result = HandwrittenSGrid(
            8, loops=2, boundary_value=1.0, init=lambda x, y: 1.0
        ).run()
        np.testing.assert_allclose(result, 1.0)

    def test_memory_bytes(self):
        app = HandwrittenSGrid(8)
        assert app.memory_bytes() == 2 * 8 * 8 * 8


class TestHandwrittenUSGrid:
    def test_case_validation(self):
        with pytest.raises(ValueError):
            HandwrittenUSGrid(8, case="Z")

    def test_case_c_matches_sgrid(self):
        init = lambda x, y: 0.25 * x + 0.5 * y  # noqa: E731
        sg = HandwrittenSGrid(8, loops=3, init=init).run()
        us = HandwrittenUSGrid(8, case="C", loops=3, init=init).run()
        np.testing.assert_allclose(us, sg, atol=1e-12)

    def test_case_r_matches_case_c_numerically(self):
        # The layout changes memory order, not the arithmetic.
        init = lambda x, y: float(x * y)  # noqa: E731
        c = HandwrittenUSGrid(8, case="C", loops=2, init=init).run()
        r = HandwrittenUSGrid(8, case="R", loops=2, init=init).run()
        np.testing.assert_allclose(r, c, atol=1e-12)

    def test_memory_bytes_positive(self):
        assert HandwrittenUSGrid(8).memory_bytes() > 0


class TestHandwrittenParticle:
    def test_particle_count_preserved(self):
        app = HandwrittenParticle(100, loops=1)
        result = app.run()
        assert result.shape == (100, 7)
        assert sorted(result[:, 0]) == list(result[:, 0])

    def test_particles_repel(self):
        app = HandwrittenParticle(256, loops=1, dt=1e-3)
        before = {}
        for records in app.buckets.values():
            for rec in records:
                before[rec[0]] = rec[1:4].copy()
        result = app.run()
        moved = sum(
            1 for row in result if not np.allclose(row[1:4], before[row[0]])
        )
        assert moved > 0

    def test_zero_loops_returns_initial_state(self):
        app = HandwrittenParticle(32, loops=0)
        result = app.run()
        assert np.allclose(result[:, 4:7], 0.0)


class TestAnalysis:
    def test_count_loc_excludes_blanks_and_comments(self):
        source = "\n".join(
            ["# a comment", "", "x = 1", "  # indented comment", "def f():", "    return x", ""]
        )
        assert count_loc_in_source(source) == 3

    def test_count_loc_on_package(self):
        import os
        import repro

        path = os.path.join(os.path.dirname(repro.__file__), "aop")
        assert count_loc([path]) > 100

    def test_module_code_bytes(self):
        assert module_code_bytes("repro.memory.zorder") > 100

    def test_class_code_bytes_grows_with_weaving(self):
        from repro.annotation import Platform
        from repro.apps import JacobiSGrid

        plain = class_code_bytes(JacobiSGrid)
        woven = class_code_bytes(Platform(aspects=[]).build(JacobiSGrid))
        assert woven > plain

    def test_configuration_size_combines_modules_and_classes(self):
        from repro.apps import JacobiSGrid

        size = configuration_size(["repro.memory.zorder"], [JacobiSGrid])
        assert size > module_code_bytes("repro.memory.zorder")

    def test_measure_env_and_handwritten(self, env):
        from repro.memory import DataBlock

        block = DataBlock((0, 0), (4, 4), components=1, page_elements=4,
                          allocator=env.allocator)
        env.add_data_block(block)
        breakdown = measure_env(env, label="test")
        assert breakdown.used_pool > 0
        assert breakdown.total == breakdown.unused_pool + breakdown.used_pool + breakdown.working
        hw = measure_handwritten(1024, label="hw")
        assert hw.total == 1024
        assert "working_MB" in hw.as_row()


class TestBenchHarness:
    def test_workload_factories(self):
        assert workload("sgrid").kind == "sgrid"
        assert workload("usgrid", case="R").config["case"] == "R"
        assert workload("particle").kind == "particle"
        with pytest.raises(ValueError):
            workload("unknown")

    def test_default_workloads_registry(self):
        assert set(WORKLOADS) == {"sgrid", "usgrid_c", "usgrid_r", "particle"}

    def test_with_config_override(self):
        base = sgrid_workload(16)
        modified = base.with_config(loops=9)
        assert modified.config["loops"] == 9
        assert base.config["loops"] != 9

    def test_configuration_aspects(self):
        assert configuration_aspects("serial") is None
        assert configuration_aspects("nop") == []
        assert len(configuration_aspects("hybrid", mpi=2, omp=2)) == 2
        with pytest.raises(ValueError):
            configuration_aspects("gpu")

    def test_run_handwritten_and_platform_agree(self):
        work = sgrid_workload(16, loops=2)
        _elapsed, hw_result, _bytes = run_handwritten(work)
        run = run_platform(work)
        np.testing.assert_allclose(run.app.result, hw_result, atol=1e-12)

    def test_scale_counters_scaling_laws(self):
        counters = TaskCounters(
            updates=100, pages_fetched=10, bytes_fetched=1000, messages=20,
            productive_updates=50, productive_pages=5, productive_bytes=500,
            productive_messages=10,
        )
        scaled = scale_counters(counters, 4.0)
        assert scaled.updates == 1600          # area
        assert scaled.pages_fetched == 40      # perimeter
        assert scaled.productive_updates == 800
        assert scaled.productive_bytes == 2000

    def test_modelled_time_positive_and_monotone_in_scale(self):
        work = sgrid_workload(16, loops=2)
        run = run_platform(work)
        small = modelled_time(run, work, scale_to_paper=False)
        big = modelled_time(run, work, scale_to_paper=True)
        assert 0 < small.total < big.total

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 0.5}, {"a": 2, "b": 1e-9}], title="T")
        assert "T" in text and "a" in text and "1" in text

    def test_format_table_empty(self):
        assert "(no data)" in format_table([], title="x")
