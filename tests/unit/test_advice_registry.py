"""Unit tests for advice declarations, aspects, annotations and the registry."""

from __future__ import annotations

import pytest

from repro.aop import (
    Advice,
    AdviceKind,
    AdviceSignatureError,
    AopError,
    Aspect,
    PointcutRegistry,
    annotate,
    any_joinpoint,
    before,
    after,
    around,
    platform_pointcuts,
    tagged,
    tags_of,
)
from repro.aop.joinpoint import JoinPointKind, shadow_of


class TestAdvice:
    def test_requires_callable_body(self):
        with pytest.raises(AdviceSignatureError):
            Advice(kind=AdviceKind.BEFORE, pointcut=any_joinpoint(), body="not callable")

    def test_requires_parameter(self):
        with pytest.raises(AdviceSignatureError):
            Advice(kind=AdviceKind.BEFORE, pointcut=any_joinpoint(), body=lambda: None)

    def test_name_defaults_to_function_name(self):
        def my_advice(jp):
            return None

        advice = Advice(kind=AdviceKind.BEFORE, pointcut=any_joinpoint(), body=my_advice)
        assert advice.name == "my_advice"

    def test_decorator_requires_pointcut(self):
        with pytest.raises(AdviceSignatureError):
            before(42)(lambda self, jp: None)

    def test_decorator_rejects_malformed_pointcut_string(self):
        from repro.aop import PointcutSyntaxError

        with pytest.raises(PointcutSyntaxError):
            before("not a pointcut")(lambda self, jp: None)

    def test_decorator_accepts_pointcut_string(self):
        func = before("tagged('platform.kernel')")(lambda self, jp: None)
        (kind, pointcut, order) = func.__aop_advice__[0]
        assert kind is AdviceKind.BEFORE
        shadow = shadow_of(lambda: None, extra_tags=("platform.kernel",))
        assert pointcut.matches(shadow)

    def test_advice_dataclass_accepts_pointcut_string(self):
        advice = Advice(
            kind=AdviceKind.BEFORE,
            pointcut="tagged('platform.kernel')",
            body=lambda jp: None,
        )
        shadow = shadow_of(lambda: None, extra_tags=("platform.kernel",))
        assert advice.applies_to(shadow)

    def test_decorator_stacks_declarations(self):
        @before(tagged("a"))
        @after(tagged("b"))
        def advice(self, jp):
            return None

        kinds = {k for k, _pc, _o in advice.__aop_advice__}
        assert kinds == {AdviceKind.BEFORE, AdviceKind.AFTER}


class TestAspectCollection:
    def test_advices_are_bound_to_instance(self):
        class Counting(Aspect):
            def __init__(self):
                super().__init__()
                self.count = 0

            @before(any_joinpoint())
            def tick(self, jp):
                self.count += 1

        aspect = Counting()
        advices = aspect.advices()
        assert len(advices) == 1
        shadow = shadow_of(lambda x: x)
        from repro.aop.joinpoint import JoinPoint

        advices[0].invoke(JoinPoint(shadow, None, (), {}))
        assert aspect.count == 1

    def test_inherited_advice_collected(self):
        class BaseAspect(Aspect):
            @before(any_joinpoint())
            def base_advice(self, jp):
                pass

        class Derived(BaseAspect):
            @after(any_joinpoint())
            def extra(self, jp):
                pass

        names = {a.name for a in Derived().advices()}
        assert any("base_advice" in n for n in names)
        assert any("extra" in n for n in names)

    def test_order_scales_with_aspect_order(self):
        class Low(Aspect):
            order = 1

            @before(any_joinpoint())
            def a(self, jp):
                pass

        class High(Aspect):
            order = 2

            @before(any_joinpoint())
            def a(self, jp):
                pass

        assert Low().advices()[0].order < High().advices()[0].order

    def test_describe_mentions_order(self):
        class Something(Aspect):
            order = 7

            @before(any_joinpoint())
            def a(self, jp):
                pass

        assert "7" in Something().describe()


class TestAnnotations:
    def test_annotate_class_and_function(self):
        @annotate("tag.one", "tag.two")
        class Thing:
            @annotate("tag.method")
            def method(self):
                pass

        assert {"tag.one", "tag.two"}.issubset(tags_of(Thing))
        assert "tag.method" in Thing.method.__aop_tags__

    def test_annotate_requires_tags(self):
        with pytest.raises(AopError):
            annotate()

    def test_tags_inherited_through_mro(self):
        @annotate("base.tag")
        class Base:
            pass

        class Child(Base):
            pass

        assert "base.tag" in tags_of(Child)

    def test_shadow_collects_method_tags_from_bases(self):
        class Base:
            @annotate("platform.processing")
            def processing(self):
                pass

        class Child(Base):
            def processing(self):  # override, no annotation
                pass

        shadow = shadow_of(Child.processing, cls=Child)
        assert "platform.processing" in shadow.tags

    def test_shadow_kind_and_names(self):
        def func():
            pass

        shadow = shadow_of(func, kind=JoinPointKind.CALL)
        assert shadow.kind is JoinPointKind.CALL
        assert shadow.qualname == "func"
        assert shadow.full_name.endswith(".func")


class TestPointcutRegistry:
    def test_platform_registry_names(self):
        registry = platform_pointcuts()
        for name in (
            "platform.entry",
            "platform.initialize",
            "platform.processing",
            "platform.finalize",
            "memory.get_blocks",
            "memory.refresh",
        ):
            assert name in registry

    def test_duplicate_definition_rejected(self):
        registry = PointcutRegistry()
        registry.define("x", any_joinpoint())
        with pytest.raises(AopError):
            registry.define("x", any_joinpoint())
        registry.define("x", any_joinpoint(), override=True)

    def test_unknown_name_raises(self):
        with pytest.raises(AopError):
            PointcutRegistry().get("nope")

    def test_names_sorted(self):
        registry = PointcutRegistry()
        registry.define("b", any_joinpoint())
        registry.define("a", any_joinpoint())
        assert list(registry.names()) == ["a", "b"]
