"""Unit tests for task contexts, tracing and the machine/cost models."""

from __future__ import annotations

import pytest

from repro.runtime import (
    CostModel,
    MachineSpec,
    OAKBRIDGE_CX_LIKE,
    SERIAL_TASK,
    TaskContext,
    TaskCounters,
    TraceRecorder,
    current_task,
    task_scope,
)
from repro.runtime.errors import MachineModelError, TaskError


class TestTaskContext:
    def test_defaults_are_serial(self):
        task = TaskContext()
        assert task.global_task_id == 0
        assert task.total_tasks == 1
        assert task.is_rank_master

    def test_global_task_id_flattens_layers(self):
        task = TaskContext(mpi_rank=2, mpi_size=4, omp_thread=1, omp_threads=3)
        assert task.global_task_id == 7
        assert task.total_tasks == 12
        assert not task.is_rank_master

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(mpi_rank=1, mpi_size=1),
            dict(omp_thread=4, omp_threads=2),
            dict(mpi_size=0),
            dict(omp_threads=0),
        ],
    )
    def test_invalid_contexts_rejected(self, kwargs):
        with pytest.raises(TaskError):
            TaskContext(**kwargs)

    def test_with_omp_and_with_mpi(self):
        base = TaskContext(mpi_rank=1, mpi_size=2)
        derived = base.with_omp(3, 4)
        assert derived.mpi_rank == 1 and derived.omp_thread == 3 and derived.omp_threads == 4
        again = derived.with_mpi(0, 2)
        assert again.mpi_rank == 0 and again.omp_thread == 3

    def test_current_task_defaults_to_serial(self):
        assert current_task() is SERIAL_TASK

    def test_task_scope_nesting(self):
        outer = TaskContext(mpi_rank=0, mpi_size=2)
        inner = outer.with_omp(1, 2)
        with task_scope(outer):
            assert current_task() is outer
            with task_scope(inner):
                assert current_task() is inner
            assert current_task() is outer
        assert current_task() is SERIAL_TASK

    def test_task_scope_type_check(self):
        with pytest.raises(TaskError):
            with task_scope("not a task"):
                pass

    def test_str(self):
        assert "rank 1/2" in str(TaskContext(mpi_rank=1, mpi_size=2))


class TestTraceRecorder:
    def test_per_task_counters_are_separate(self):
        recorder = TraceRecorder()
        a = TaskContext(mpi_rank=0, mpi_size=2)
        b = TaskContext(mpi_rank=1, mpi_size=2)
        recorder.for_task(a).updates += 5
        recorder.for_task(b).updates += 7
        assert recorder.total("updates") == 12
        assert recorder.max_task("updates") == 7
        assert len(recorder.all_counters()) == 2

    def test_for_task_uses_current_context(self):
        recorder = TraceRecorder()
        with task_scope(TaskContext(mpi_rank=0, mpi_size=1, omp_thread=0, omp_threads=1)):
            recorder.for_task().updates += 1
        assert recorder.total("updates") == 1

    def test_reset(self):
        recorder = TraceRecorder()
        recorder.for_task().updates += 1
        recorder.reset()
        assert recorder.total("updates") == 0

    def test_summary_keys(self):
        recorder = TraceRecorder()
        recorder.for_task().updates += 2
        summary = recorder.summary()
        assert summary["tasks"] == 1
        assert summary["total_updates"] == 2
        assert "total_bytes_fetched" in summary

    def test_counters_as_dict_roundtrip(self):
        counters = TaskCounters(updates=3, pages_fetched=1)
        clone = TaskCounters(**counters.as_dict())
        assert clone.updates == 3 and clone.pages_fetched == 1


class TestMachineSpec:
    def test_default_machine_is_valid(self):
        assert OAKBRIDGE_CX_LIKE.cores_per_node >= 1

    def test_invalid_rates_rejected(self):
        with pytest.raises(MachineModelError):
            MachineSpec(seconds_per_update=0)
        with pytest.raises(MachineModelError):
            MachineSpec(cores_per_node=0)

    def test_random_access_penalty(self):
        machine = MachineSpec()
        assert machine.update_cost("random") > machine.update_cost("contiguous")

    def test_thrash_factor_by_pattern(self):
        machine = MachineSpec()
        assert machine.thrash_factor("contiguous") > machine.thrash_factor("random")


class TestCostModel:
    def make_counters(self, **kwargs) -> TaskCounters:
        defaults = dict(updates=1_000_000, bytes_per_update=40, access_pattern="contiguous")
        defaults.update(kwargs)
        return TaskCounters(**defaults)

    def test_compute_term_scales_with_updates(self):
        model = CostModel()
        small = model.task_time(self.make_counters(updates=1000), mpi_size=1, omp_threads=1)
        big = model.task_time(self.make_counters(updates=2000), mpi_size=1, omp_threads=1)
        assert big.compute == pytest.approx(2 * small.compute)

    def test_communication_term(self):
        model = CostModel()
        counters = self.make_counters(messages=100, bytes_fetched=10 ** 6)
        breakdown = model.task_time(counters, mpi_size=2, omp_threads=1)
        assert breakdown.communication > 0
        assert breakdown.total >= breakdown.communication

    def test_contention_only_with_multiple_threads(self):
        model = CostModel()
        counters = self.make_counters()
        single = model.task_time(counters, mpi_size=1, omp_threads=1)
        multi = model.task_time(counters, mpi_size=1, omp_threads=8)
        assert single.contention == 0
        assert multi.contention > 0

    def test_contiguous_thrashes_more_than_random(self):
        model = CostModel()
        contiguous = model.task_time(
            self.make_counters(access_pattern="contiguous"), mpi_size=1, omp_threads=16
        )
        random = model.task_time(
            self.make_counters(access_pattern="random"), mpi_size=1, omp_threads=16
        )
        assert contiguous.contention / contiguous.compute > random.contention / random.compute

    def test_productive_counters_preferred(self):
        model = CostModel()
        counters = self.make_counters(updates=10_000, productive_updates=1_000)
        breakdown = model.task_time(counters, mpi_size=1, omp_threads=1)
        expected = 1_000 * OAKBRIDGE_CX_LIKE.seconds_per_update
        assert breakdown.compute == pytest.approx(expected)

    def test_run_time_takes_slowest_task(self):
        model = CostModel()
        counters = {
            (0, 0): self.make_counters(updates=100),
            (1, 0): self.make_counters(updates=10_000),
        }
        breakdown = model.run_time(counters, mpi_size=2, omp_threads=1, include_init=False)
        assert breakdown.compute == pytest.approx(
            10_000 * OAKBRIDGE_CX_LIKE.seconds_per_update
        )

    def test_run_time_adds_init_costs(self):
        model = CostModel()
        counters = {(0, 0): self.make_counters()}
        with_init = model.run_time(counters, mpi_size=2, omp_threads=2)
        without = model.run_time(counters, mpi_size=2, omp_threads=2, include_init=False)
        assert with_init.total > without.total

    def test_run_time_requires_counters(self):
        with pytest.raises(MachineModelError):
            CostModel().run_time({}, mpi_size=1, omp_threads=1)

    def test_invalid_layer_sizes(self):
        with pytest.raises(MachineModelError):
            CostModel().task_time(self.make_counters(), mpi_size=0, omp_threads=1)

    def test_relative_to_baseline(self):
        model = CostModel()
        runs = {
            "1": model.task_time(self.make_counters(updates=1000), mpi_size=1, omp_threads=1),
            "2": model.task_time(self.make_counters(updates=500), mpi_size=1, omp_threads=1),
        }
        relative = model.relative_to_baseline(runs, "1")
        assert relative["1"] == pytest.approx(1.0)
        assert relative["2"] == pytest.approx(0.5)

    def test_relative_missing_baseline(self):
        with pytest.raises(MachineModelError):
            CostModel().relative_to_baseline({}, "nope")

    def test_breakdown_as_dict(self):
        breakdown = CostModel().task_time(self.make_counters(), mpi_size=1, omp_threads=1)
        data = breakdown.as_dict()
        assert data["total"] == pytest.approx(breakdown.total)
