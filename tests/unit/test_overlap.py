"""Unit tests for the overlapped halo exchange.

Covers the pieces below the integration/property suites: the idempotent
:class:`CommHandle` wait (in-flight fetches counted exactly once, even
through ``NetworkStats.merge``), interior/boundary access-plan
splitting, the Env's pending-halo slot, :class:`PendingHalo`'s
accounting/error wrapping and the aspect's issue-time diagnostics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aspects import DistributedMemoryAspect, PendingHalo
from repro.aspects.mpi_aspect import CommPlan
from repro.memory import DataBlock, Env, MemoryPool, PoolGroup
from repro.memory.block import BufferOnlyBlock
from repro.memory.mmat import compile_offsets_plan
from repro.memory.page import PageKey
from repro.runtime import (
    BulkFetchResult,
    CommHandle,
    CompletedCommHandle,
    NetworkError,
    NetworkStats,
    PageFetchError,
    get_backend,
)
from repro.runtime.tracing import TaskCounters


# ----------------------------------------------------------------------
# CommHandle.wait() idempotence
# ----------------------------------------------------------------------


class _CountingHandle(CommHandle):
    """Handle whose _wait() counts invocations (must be exactly one)."""

    __slots__ = ("calls", "fail")

    def __init__(self, *, fail: bool = False) -> None:
        super().__init__()
        self.calls = 0
        self.fail = fail

    def _wait(self) -> BulkFetchResult:
        self.calls += 1
        if self.fail:
            raise NetworkError("transfer died")
        return BulkFetchResult(pages=[("blk", 0, np.zeros(4))], exchanges=1, nbytes=32)


class TestCommHandleIdempotence:
    def test_double_wait_returns_same_object_and_waits_once(self):
        handle = _CountingHandle()
        first = handle.wait()
        second = handle.wait()
        assert first is second
        assert handle.calls == 1
        assert handle.done

    def test_failed_wait_memoizes_the_error(self):
        handle = _CountingHandle(fail=True)
        with pytest.raises(NetworkError, match="transfer died"):
            handle.wait()
        with pytest.raises(NetworkError, match="transfer died"):
            handle.wait()
        assert handle.calls == 1  # the transfer is not retried
        assert handle.done

    def test_completed_handle_is_born_done(self):
        result = BulkFetchResult(exchanges=0)
        handle = CompletedCommHandle(result)
        assert handle.done
        assert handle.wait() is result


class TestAsyncStatsCountOnce:
    """In-flight async fetches hit NetworkStats exactly once."""

    def _threads_world_with_fetch(self):
        world = get_backend("threads").create_world(2, timeout=10.0)

        class Endpoint:
            def page_snapshot(self, key):
                return np.arange(4, dtype=np.float64) + key.page_index

        def body(ctx):
            rank = ctx.mpi_rank
            world.register_env(rank, Endpoint())
            world.register_block(("blk", rank), rank, 100 + rank, owner=True)
            world.commit_registration()
            handle = world.fetch_pages_bulk_async(rank, [(("blk", 1 - rank), 0)])
            handle.wait()
            handle.wait()  # double wait must not re-count
            world.barrier()
            return None

        world.run_spmd(body)
        return world

    def test_threads_async_counts_each_batch_once(self):
        world = self._threads_world_with_fetch()
        stats = world.network.stats
        assert stats.bulk_fetches == 2  # one batch per rank
        assert stats.bulk_pages == 2
        assert stats.page_fetches == 2
        # Per-neighbor attribution: each direction carries exactly one
        # request and one reply message, not two of either.
        for entry in stats.per_neighbor.values():
            assert entry["messages"] == 2

    def test_merge_preserves_single_counting(self):
        world = self._threads_world_with_fetch()
        merged = NetworkStats()
        merged.merge(world.network.stats)
        merged.merge(NetworkStats())  # merging empties must change nothing
        assert merged.bulk_fetches == world.network.stats.bulk_fetches
        assert merged.bulk_pages == world.network.stats.bulk_pages
        assert merged.per_neighbor == world.network.stats.per_neighbor


# ----------------------------------------------------------------------
# access-plan splitting
# ----------------------------------------------------------------------


def _two_block_env() -> tuple:
    """An Env with one local Data Block and one halo (Buffer-only) block."""
    env = Env(
        allocator=PoolGroup([MemoryPool(1 << 20, name="p")]),
        name="split-env",
        mmat_enabled=True,
    )
    local = DataBlock(
        (0, 0), (4, 4), components=1, page_elements=4, allocator=env.allocator, name="local"
    )
    halo = BufferOnlyBlock(
        (4, 0),
        (4, 4),
        components=1,
        page_elements=4,
        allocator=env.allocator,
        owner_tid=1,
        name="halo",
    )
    env.add_data_block(local)
    env.add_data_block(halo)
    return env, local, halo


class TestAccessPlanSplit:
    def test_partition_is_disjoint_and_complete(self):
        env, local, _halo = _two_block_env()
        plan = compile_offsets_plan(env, local, [(0, 0), (1, 0)])
        interior, boundary = plan.split()
        assert interior and boundary  # the (1, 0) offset crosses into the halo
        assert set(interior) | set(boundary) == set(plan.segments)
        assert not (set(interior) & set(boundary))
        assert all(seg.check_pages is None for seg in interior)
        assert all(seg.check_pages is not None for seg in boundary)
        assert plan.has_halo

    def test_halo_sites_are_the_boundary_destinations(self):
        env, local, _halo = _two_block_env()
        plan = compile_offsets_plan(env, local, [(0, 0), (1, 0)])
        _interior, boundary = plan.split()
        expected = np.unique(np.concatenate([seg.dst_idx for seg in boundary]))
        np.testing.assert_array_equal(plan.halo_sites(), expected)

    def test_local_only_plan_has_no_boundary(self):
        env, local, _halo = _two_block_env()
        plan = compile_offsets_plan(env, local, [(0, 0)])
        interior, boundary = plan.split()
        assert boundary == []
        assert not plan.has_halo
        assert plan.halo_sites().size == 0


# ----------------------------------------------------------------------
# Env pending-halo slot + PendingHalo accounting
# ----------------------------------------------------------------------


def _pending(trace, *, pages=None, fail=False) -> PendingHalo:
    key = PageKey(7, 0)
    plan = CommPlan(keys=frozenset({key}), requests=[(key, ("blk", 1), 0)])
    if fail:
        handle: CommHandle = _CountingHandle(fail=True)
    else:
        result = BulkFetchResult(
            pages=pages if pages is not None else [(("blk", 1), 0, np.zeros(4))],
            exchanges=1,
            nbytes=32,
        )
        handle = CompletedCommHandle(result)
    return PendingHalo(plan, handle, trace)


class _InstallEnv:
    """Env stand-in recording page installs."""

    def __init__(self):
        self.installed = []

    def page_install_many(self, items):
        self.installed.extend(items)


class TestPendingHalo:
    def test_complete_installs_and_accounts(self):
        trace = TaskCounters()
        env = _InstallEnv()
        _pending(trace).complete(env)
        assert [key for key, _ in env.installed] == [PageKey(7, 0)]
        assert trace.pages_fetched == 1
        assert trace.comm_plan_exchanges == 1
        assert trace.overlap_exchanges == 1
        assert trace.overlap_pages == 1
        assert trace.overlap_flight_ns >= trace.overlap_wait_ns >= 0
        assert trace.overlap_drained == 0

    def test_drained_completion_is_counted_but_not_timed(self):
        trace = TaskCounters()
        _pending(trace).complete(_InstallEnv(), drained=True)
        assert trace.overlap_drained == 1
        assert trace.overlap_exchanges == 1  # the traffic still counts …
        # … but deferred latency must not inflate overlap efficiency.
        assert trace.overlap_wait_ns == 0
        assert trace.overlap_flight_ns == 0

    def test_network_error_becomes_page_fetch_error(self):
        trace = TaskCounters()
        with pytest.raises(PageFetchError, match="overlapped halo exchange"):
            _pending(trace, fail=True).complete(_InstallEnv())
        assert trace.overlap_exchanges == 0  # nothing accounted on failure

    def test_env_slot_completes_once_and_clears(self):
        env, _local, halo = _two_block_env()
        trace = TaskCounters()
        data = np.full(4, 3.25)
        pending = _pending(
            trace, pages=[(("blk", 1), 0, data)]
        )
        pending.plan = CommPlan(
            keys=frozenset({PageKey(halo.block_id, 0)}),
            requests=[(PageKey(halo.block_id, 0), ("blk", 1), 0)],
        )
        env.set_pending_halo(pending)
        assert env.has_pending_halo()
        assert env.complete_pending_halo() is True
        assert not env.has_pending_halo()
        assert env.complete_pending_halo() is False  # idempotent
        np.testing.assert_array_equal(np.asarray(halo.page_snapshot(0)).reshape(-1), data)

    def test_set_pending_halo_drains_the_previous_exchange(self):
        env, _local, halo = _two_block_env()
        trace = TaskCounters()
        first = _pending(trace)
        first.plan = CommPlan(
            keys=frozenset({PageKey(halo.block_id, 0)}),
            requests=[(PageKey(halo.block_id, 0), ("blk", 1), 0)],
        )
        env.set_pending_halo(first)
        env.set_pending_halo(_pending(trace))
        # The first exchange was drained (completed) before the second
        # was installed: its pages are in, and it counted as drained.
        assert trace.overlap_drained == 1
        assert trace.overlap_exchanges == 1

    def test_failed_completion_clears_the_slot(self):
        env, _local, _halo = _two_block_env()
        env.set_pending_halo(_pending(TaskCounters(), fail=True))
        with pytest.raises(PageFetchError):
            env.complete_pending_halo()
        assert not env.has_pending_halo()  # no repeated error on later syncs


# ----------------------------------------------------------------------
# aspect issue-time diagnostics
# ----------------------------------------------------------------------


class TestAsyncIssueErrors:
    def test_unresolvable_owner_raises_page_fetch_error(self):
        """The overlapped issue wraps transport errors like the blocking path."""
        aspect = DistributedMemoryAspect(processes=1, overlap=True)
        aspect.world = get_backend("serial").create_world(1)

        class _Keyed:
            name = "ghost-block"
            logical_key = ("ghost", 9)

        class _StubEnv:
            def block(self, block_id):
                return _Keyed()

        with pytest.raises(PageFetchError, match="ghost"):
            aspect._exchange_planned_async(
                _StubEnv(), 0, {PageKey(3, 0)}, TaskCounters()
            )

    def test_overlap_flag_defaults_on_and_is_configurable(self):
        assert DistributedMemoryAspect().overlap is True
        assert DistributedMemoryAspect(overlap=False).overlap is False
