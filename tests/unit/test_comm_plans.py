"""Unit tests for the communication-plan layer.

Covers the pieces below the integration/property suites: the
``PageFetchError`` diagnostics of the refresh protocol, the CommPlan
manifest cache, per-neighbor ``NetworkStats`` accounting, the
owner-grouping helper and the bulk page install on the Env.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aspects import CommPlan, DistributedMemoryAspect
from repro.memory import DataBlock, Env, MemoryPool, PoolGroup
from repro.memory.page import PageKey
from repro.runtime import NetworkStats, PageFetchError, get_backend
from repro.runtime.backends.base import ExecutionWorld, group_requests_by_owner
from repro.runtime.simmpi import BlockDirectory
from repro.runtime.tracing import TaskCounters


class _KeylessBlock:
    """Block stand-in without a logical key (owner unresolvable)."""

    name = "orphan"
    logical_key = None


class _StubEnv:
    def __init__(self, block):
        self._block = block
        self.installed = []

    def block(self, block_id):
        return self._block

    def page_install(self, key, data):
        self.installed.append((key, data))


def _aspect_with_world(size=1):
    aspect = DistributedMemoryAspect(processes=size)
    aspect.world = get_backend("serial").create_world(1)
    return aspect


class TestPageFetchError:
    def test_fetch_pages_raises_on_missing_logical_key(self):
        """A page whose owner cannot be resolved must fail loudly, not skip."""
        aspect = _aspect_with_world()
        env = _StubEnv(_KeylessBlock())
        with pytest.raises(PageFetchError) as excinfo:
            aspect._fetch_pages(env, 0, {PageKey(7, 3)}, TaskCounters())
        message = str(excinfo.value)
        assert "rank 0" in message
        assert "PageKey(block=7, page=3)" in message
        assert "orphan" in message
        assert env.installed == []  # nothing was partially installed

    def test_fetch_pages_wraps_unregistered_owner(self):
        """An owner missing from the directory surfaces as PageFetchError."""

        class _Keyed(_KeylessBlock):
            logical_key = ("ghost", 1)

        aspect = _aspect_with_world()
        with pytest.raises(PageFetchError, match=r"ghost"):
            aspect._fetch_pages(_StubEnv(_Keyed()), 0, {PageKey(7, 0)}, TaskCounters())

    def test_comm_plan_compile_raises_on_missing_logical_key(self):
        aspect = _aspect_with_world()
        with pytest.raises(PageFetchError, match="rank 0 cannot plan"):
            aspect._comm_plan_for(
                _StubEnv(_KeylessBlock()), 0, {PageKey(7, 0)}, TaskCounters()
            )

    def test_page_fetch_error_is_a_network_error(self):
        from repro.runtime import NetworkError

        assert issubclass(PageFetchError, NetworkError)


class TestCommPlan:
    def test_key_for_maps_transport_results_back(self):
        keys = [PageKey(1, 0), PageKey(1, 1), PageKey(2, 0)]
        requests = [(k, ("blk", k.block_id), k.page_index) for k in keys]
        plan = CommPlan(keys=frozenset(keys), requests=requests)
        assert plan.key_for(("blk", 1), 1) == PageKey(1, 1)
        assert plan.key_for(("blk", 2), 0) == PageKey(2, 0)

    def test_plan_cache_recompiles_only_when_halo_changes(self):
        pool = PoolGroup([MemoryPool(1 << 20, name="cp-pool")])
        env = Env(allocator=pool, name="cp-env")
        block = env.add_data_block(
            DataBlock((0, 0), (4, 4), components=1, page_elements=8, allocator=pool)
        )
        block.logical_key = ("blk", 0)
        aspect = _aspect_with_world()
        trace = TaskCounters()
        keys = {PageKey(block.block_id, 0)}
        first = aspect._comm_plan_for(env, 0, keys, trace)
        again = aspect._comm_plan_for(env, 0, set(keys), trace)
        assert again is first  # unchanged halo -> cache hit
        assert trace.comm_plan_compiles == 1
        grown = keys | {PageKey(block.block_id, 1)}
        recompiled = aspect._comm_plan_for(env, 0, grown, trace)
        assert recompiled is not first
        assert trace.comm_plan_compiles == 2


class TestNetworkStatsNeighbors:
    def test_record_and_count_links(self):
        stats = NetworkStats()
        stats.record_neighbor(0, 1, 1, 100)
        stats.record_neighbor(0, 1, 2, 50)
        stats.record_neighbor(1, 0, 1, 8)
        assert stats.per_neighbor["0->1"] == {"messages": 3, "bytes": 150}
        assert stats.neighbor_links() == 2

    def test_merge_adds_counters_and_neighbor_maps(self):
        a = NetworkStats(messages=2, bulk_fetches=1, bulk_pages=4)
        a.record_neighbor(0, 1, 1, 10)
        b = NetworkStats(messages=3, bulk_fetches=2, bulk_pages=6)
        b.record_neighbor(0, 1, 2, 20)
        b.record_neighbor(2, 0, 1, 5)
        a.merge(b)
        assert a.messages == 5
        assert a.bulk_fetches == 3
        assert a.bulk_pages == 10
        assert a.per_neighbor["0->1"] == {"messages": 3, "bytes": 30}
        assert a.per_neighbor["2->0"] == {"messages": 1, "bytes": 5}

    def test_as_dict_deep_copies_neighbor_map(self):
        stats = NetworkStats()
        stats.record_neighbor(0, 1, 1, 10)
        snapshot = stats.as_dict()
        stats.record_neighbor(0, 1, 1, 10)
        assert snapshot["per_neighbor"]["0->1"]["messages"] == 1


class TestGroupRequestsByOwner:
    def _directory(self):
        directory = BlockDirectory()
        directory.register(("blk", 0), 0, 10, owner=True)
        directory.register(("blk", 1), 1, 11, owner=True)
        return directory

    def test_groups_and_resolves_block_ids(self):
        grouped = group_requests_by_owner(
            self._directory(),
            [(("blk", 0), 0), (("blk", 1), 2), (("blk", 0), 1)],
        )
        assert grouped == {
            0: [(("blk", 0), 0, 10), (("blk", 0), 1, 10)],
            1: [(("blk", 1), 2, 11)],
        }

    def test_unknown_owner_raises(self):
        from repro.runtime import NetworkError

        with pytest.raises(NetworkError, match="no owner registered"):
            group_requests_by_owner(self._directory(), [(("nope",), 0)])


class TestDefaultBulkFetch:
    def test_base_class_fallback_loops_per_page(self):
        """Custom backends inherit a per-page bulk fetch (one exchange/page)."""
        world = get_backend("serial").create_world(1)

        class _Endpoint:
            def page_snapshot(self, key):
                return np.full(4, float(key.page_index))

        world.register_env(0, _Endpoint())
        world.register_block(("blk",), 0, 5, owner=True)
        result = ExecutionWorld.fetch_pages_bulk(world, 0, [(("blk",), 0), (("blk",), 3)])
        assert result.exchanges == 2  # no aggregation in the default impl
        assert [page for _, page, _ in result.pages] == [0, 3]
        np.testing.assert_allclose(result.pages[1][2], np.full(4, 3.0))


class TestPageInstallMany:
    def _env_with_block(self):
        pool = PoolGroup([MemoryPool(1 << 20, name="pim-pool")])
        env = Env(allocator=pool, name="pim-env")
        block = env.add_data_block(
            DataBlock((0,), (8,), components=1, page_elements=4, allocator=pool)
        )
        return env, block

    def test_installs_every_page(self):
        env, block = self._env_with_block()
        env.page_install_many(
            [
                (PageKey(block.block_id, 0), np.full((4, 1), 1.5)),
                (PageKey(block.block_id, 1), np.full((4, 1), 2.5)),
            ]
        )
        np.testing.assert_allclose(
            env.dense_read(block).ravel(), [1.5] * 4 + [2.5] * 4
        )

    def test_matches_repeated_page_install(self):
        env_a, block_a = self._env_with_block()
        env_b, block_b = self._env_with_block()
        pages = [
            (PageKey(block_a.block_id, 0), np.arange(4.0).reshape(4, 1)),
            (PageKey(block_a.block_id, 1), np.arange(4.0, 8.0).reshape(4, 1)),
        ]
        env_a.page_install_many(pages)
        for key, data in pages:
            env_b.page_install(PageKey(block_b.block_id, key.page_index), data)
        np.testing.assert_array_equal(
            env_a.dense_read(block_a), env_b.dense_read(block_b)
        )

    def test_invalidates_dense_cache(self):
        env, block = self._env_with_block()
        before = env.dense_read(block).copy()
        env.page_install_many([(PageKey(block.block_id, 0), np.full((4, 1), 9.0))])
        after = env.dense_read(block)
        assert not np.array_equal(before, after)
        np.testing.assert_allclose(after.ravel()[:4], 9.0)
