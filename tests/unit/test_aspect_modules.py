"""Unit tests for the MPI / OpenMP aspect modules (structure and advice wiring)."""

from __future__ import annotations

import pytest

from repro.aop import AdviceKind, Weaver
from repro.aop.joinpoint import JoinPointShadow, JoinPointKind
from repro.aspects import (
    DistributedMemoryAspect,
    LayerAspect,
    PhaseTraceAspect,
    SharedMemoryAspect,
    hybrid_aspects,
    mpi_aspects,
    openmp_aspects,
)


def shadow_with_tag(tag: str) -> JoinPointShadow:
    return JoinPointShadow(
        kind=JoinPointKind.EXECUTION,
        module="x",
        cls="Env",
        name="method",
        tags=frozenset({tag}),
    )


class TestLayerAspect:
    def test_parallelism_validation(self):
        with pytest.raises(ValueError):
            DistributedMemoryAspect(processes=0)
        with pytest.raises(ValueError):
            SharedMemoryAspect(threads=-1)

    def test_layer_names_and_describe(self):
        mpi = DistributedMemoryAspect(processes=4)
        omp = SharedMemoryAspect(threads=8)
        assert mpi.layer == "mpi" and mpi.parallelism == 4
        assert omp.layer == "omp" and omp.parallelism == 8
        assert "mpi" in mpi.describe()
        assert "8" in omp.describe()

    def test_precedence_omp_outside_mpi(self):
        # The shared-memory module must wrap the distributed-memory module so
        # that only one thread per rank joins the collective refresh protocol.
        assert SharedMemoryAspect.order < DistributedMemoryAspect.order

    def test_attach_detach(self):
        aspect = SharedMemoryAspect(threads=2)
        sentinel = object()
        aspect.on_attach(sentinel)
        assert aspect.platform is sentinel
        aspect.on_detach(sentinel)
        assert aspect.platform is None


class TestAdviceCoverage:
    """Every AspectType of the paper maps to at least one advice."""

    def test_mpi_aspect_advises_the_three_aspect_types(self):
        advices = DistributedMemoryAspect(processes=2).advices()
        tag_hits = {
            "platform.entry": False,    # AspectType I
            "memory.get_blocks": False,  # AspectType II
            "memory.refresh": False,     # AspectType III
        }
        for advice in advices:
            for tag in tag_hits:
                if advice.pointcut.matches(shadow_with_tag(tag)):
                    tag_hits[tag] = True
        assert all(tag_hits.values()), tag_hits

    def test_omp_aspect_advises_processing_and_get_blocks(self):
        advices = SharedMemoryAspect(threads=2).advices()
        assert any(a.pointcut.matches(shadow_with_tag("platform.processing")) for a in advices)
        assert any(a.pointcut.matches(shadow_with_tag("memory.get_blocks")) for a in advices)

    def test_omp_aspect_has_no_entrypoint_advice(self):
        # AspectType I for OpenMP starts tasks before Processing, not at main.
        advices = SharedMemoryAspect(threads=2).advices()
        assert not any(a.pointcut.matches(shadow_with_tag("platform.entry")) for a in advices)

    def test_mpi_runtime_control_is_around_advice(self):
        advices = DistributedMemoryAspect(processes=2).advices()
        entry_advice = [
            a for a in advices if a.pointcut.matches(shadow_with_tag("platform.entry"))
        ]
        assert all(a.kind is AdviceKind.AROUND for a in entry_advice)


class TestAspectStacks:
    def test_mpi_stack(self):
        stack = mpi_aspects(4)
        assert len(stack) == 1 and stack[0].parallelism == 4

    def test_omp_stack(self):
        stack = openmp_aspects(8)
        assert stack[0].layer == "omp"

    def test_hybrid_stack_contains_both_layers(self):
        stack = hybrid_aspects(2, 4)
        layers = {aspect.layer: aspect.parallelism for aspect in stack}
        assert layers == {"mpi": 2, "omp": 4}

    def test_stacks_weave_cleanly(self):
        # Building a Weaver from each standard stack must not raise.
        for stack in (mpi_aspects(2), openmp_aspects(2), hybrid_aspects(2, 2)):
            weaver = Weaver(stack)
            assert weaver.advices

    def test_phase_trace_aspect_records_to_sink(self):
        sink = []
        aspect = PhaseTraceAspect(sink)
        assert aspect.events is sink


class TestAspectPassthroughWithoutRuntime:
    """Advice must behave as a no-op pass-through when no runtime is active."""

    def test_mpi_get_blocks_passthrough(self, env):
        aspect = DistributedMemoryAspect(processes=2)
        woven_env_cls = Weaver([aspect]).weave_class(type(env))
        woven = woven_env_cls(pool_bytes=1 << 16)
        assert woven.get_blocks() == []

    def test_mpi_refresh_passthrough(self, env):
        aspect = DistributedMemoryAspect(processes=2)
        woven_env_cls = Weaver([aspect]).weave_class(type(env))
        woven = woven_env_cls(pool_bytes=1 << 16)
        assert woven.refresh() is True

    def test_omp_refresh_passthrough_without_team(self, env):
        aspect = SharedMemoryAspect(threads=4)
        woven_env_cls = Weaver([aspect]).weave_class(type(env))
        woven = woven_env_cls(pool_bytes=1 << 16)
        assert woven.refresh() is True
        assert woven.get_blocks() == []
