"""Unit tests for the resilience subsystem.

Covers the seeded :class:`FaultPlan` schedule, both checkpoint stores
(including the epoch-completeness semantics recovery resumes from),
the cost-model-driven ownership rebalance, dead-rank diagnosis over
wrapped error chains, and the transport-level satellites: pending
request manifests in timeout messages, dead-peer send accounting, the
leaked-thread warning on close, and ``comm_timeout`` plumbing from the
Platform down to the world.
"""

from __future__ import annotations

import multiprocessing
import threading

import numpy as np
import pytest

from repro.annotation.driver import Platform
from repro.aspects.mpi_aspect import DistributedMemoryAspect
from repro.resilience import (
    CheckpointAspect,
    DiskCheckpointStore,
    FaultPlan,
    MemoryCheckpointStore,
    RecoveryManager,
    ResiliencePolicy,
    diagnose_dead_ranks,
    plan_recovery_ownership,
)
from repro.resilience.recovery import _dead_rank_of, _zorder_sorted
from repro.runtime import DeadRankError, InjectedFault, PageFetchError, SpmdFailure
from repro.runtime.backends.base import RankResult
from repro.runtime.backends.process import ProcessTransport
from repro.runtime.errors import CollectiveError


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_kill_fires_once_at_scheduled_point(self):
        plan = FaultPlan().kill(2, phase="refresh", epoch=3)
        assert plan.take_kill(2, "refresh", 2) is None
        assert plan.take_kill(1, "refresh", 3) is None
        assert plan.take_kill(2, "epoch", 3) is None
        fault = plan.take_kill(2, "refresh", 3)
        assert fault is not None and fault.rank == 2
        # at-most-once
        assert plan.take_kill(2, "refresh", 3) is None

    def test_kill_without_epoch_fires_at_first_opportunity(self):
        plan = FaultPlan().kill(0, phase="register")
        assert plan.take_kill(0, "register", None) is not None
        assert plan.take_kill(0, "register", None) is None

    def test_reply_faults_consume_count_times(self):
        plan = FaultPlan().drop_reply(1, peer=0, count=2)
        assert plan.take_reply(1, 0) is not None
        assert plan.take_reply(1, 2) is None  # wrong requester
        assert plan.take_reply(1, 0) is not None
        assert plan.take_reply(1, 0) is None  # budget exhausted

    def test_checksums_enabled_only_for_corruption(self):
        assert not FaultPlan().kill(1).wants_checksums()
        assert not FaultPlan().drop_reply(1).wants_checksums()
        assert FaultPlan().corrupt_reply(1).wants_checksums()

    def test_retire_rank_disarms_pending_kills(self):
        plan = FaultPlan().kill(1, epoch=2).kill(2, epoch=3)
        plan.retire_rank(1)
        assert [f.rank for f in plan.pending_kills()] == [2]
        assert plan.take_kill(1, "refresh", 2) is None

    def test_seeded_is_deterministic_and_spares_rank0(self):
        a = FaultPlan.seeded(42, ranks=4, epochs=5, spare_rank0=True)
        b = FaultPlan.seeded(42, ranks=4, epochs=5, spare_rank0=True)
        assert repr(a) == repr(b)
        assert all(f.rank != 0 for f in a.faults)
        assert all(1 <= f.epoch < 5 for f in a.faults)
        c = FaultPlan.seeded(43, ranks=16, epochs=5, kills=3)
        assert len(c.pending_kills()) == 3

    def test_unknown_kind_and_phase_rejected(self):
        from repro.resilience.faults import Fault

        with pytest.raises(ValueError):
            Fault("explode", 0)
        with pytest.raises(ValueError):
            Fault("kill", 0, phase="lunch")


# ---------------------------------------------------------------------------
# Checkpoint stores
# ---------------------------------------------------------------------------
def _pages(seed: float):
    return {("k", 0): {0: np.full(4, seed), 1: np.full(4, seed + 0.5)}}


class TestCheckpointStores:
    @pytest.fixture(params=["memory", "disk"])
    def store(self, request, tmp_path):
        if request.param == "memory":
            yield MemoryCheckpointStore()
        else:
            store = DiskCheckpointStore(str(tmp_path))
            yield store
            store.close()

    def test_roundtrip_preserves_page_data(self, store):
        store.save(1, 0, _pages(1.0))
        loaded = store.load_rank(1, 0)
        np.testing.assert_array_equal(loaded[("k", 0)][0], np.full(4, 1.0))
        np.testing.assert_array_equal(loaded[("k", 0)][1], np.full(4, 1.5))

    def test_latest_complete_epoch_requires_every_rank(self, store):
        assert store.latest_complete_epoch(2) is None
        store.save(1, 0, _pages(1.0))
        store.save(1, 1, _pages(2.0))
        store.save(2, 0, _pages(3.0))  # epoch 2 incomplete: rank 1 missing
        assert store.latest_complete_epoch(2) == 1
        store.save(2, 1, _pages(4.0))
        assert store.latest_complete_epoch(2) == 2

    def test_load_epoch_merges_all_ranks(self, store):
        store.save(1, 0, {("a", 0): {0: np.zeros(2)}})
        store.save(1, 1, {("b", 0): {0: np.ones(2)}})
        merged = store.load_epoch(1, 2)
        assert set(merged) == {("a", 0), ("b", 0)}

    def test_snapshot_is_isolated_from_caller_mutation(self, store):
        pages = _pages(1.0)
        store.save(1, 0, pages)
        pages[("k", 0)][0][:] = -99.0
        np.testing.assert_array_equal(store.load_rank(1, 0)[("k", 0)][0], np.full(4, 1.0))


# ---------------------------------------------------------------------------
# Rebalance
# ---------------------------------------------------------------------------
class TestRebalance:
    KEYS = [("sgrid", x, y) for x in range(4) for y in range(4)]

    def test_every_key_assigned_and_every_rank_used(self):
        ownership = plan_recovery_ownership(list(self.KEYS), 3)
        assert set(ownership) == set(self.KEYS)
        assert set(ownership.values()) == {0, 1, 2}

    def test_single_survivor_takes_everything(self):
        ownership = plan_recovery_ownership(list(self.KEYS), 1)
        assert set(ownership.values()) == {0}

    def test_fewer_keys_than_ranks_still_assigns_each_key(self):
        keys = self.KEYS[:2]
        ownership = plan_recovery_ownership(list(keys), 8)
        assert set(ownership) == set(keys)
        assert len(set(ownership.values())) == len(keys)

    def test_assignment_is_contiguous_in_sort_order(self):
        ownership = plan_recovery_ownership(list(self.KEYS), 3)
        ranks = [ownership[k] for k in _zorder_sorted(list(self.KEYS))]
        # A contiguous boundary walk never revisits an earlier rank.
        assert ranks == sorted(ranks)


# ---------------------------------------------------------------------------
# Diagnosis
# ---------------------------------------------------------------------------
class TestDiagnosis:
    def _failure(self, *errors):
        results = [RankResult(rank=i, value=None, error=e) for i, e in enumerate(errors)]
        return SpmdFailure("boom", results)

    def test_direct_injected_fault(self):
        assert _dead_rank_of(InjectedFault(2, "kill")) == 2

    def test_dead_rank_error_wrapped_in_fetch_error(self):
        inner = DeadRankError(3, "closed its connection")
        outer = PageFetchError("page fetch failed")
        outer.__cause__ = inner
        assert _dead_rank_of(outer) == 3

    def test_diagnose_collects_all_dead_ranks(self):
        failure = self._failure(
            None,
            DeadRankError(1, "died"),
            CollectiveError("timed out"),  # not attributable to a rank
        )
        assert diagnose_dead_ranks(failure) == {1}

    def test_diagnose_empty_when_no_rank_death(self):
        failure = self._failure(CollectiveError("timeout"), ValueError("app bug"))
        assert diagnose_dead_ranks(failure) == set()


# ---------------------------------------------------------------------------
# RecoveryManager bookkeeping
# ---------------------------------------------------------------------------
class TestRecoveryManager:
    def test_epoch_counting_and_checkpoint_interval(self):
        manager = RecoveryManager(ResiliencePolicy(checkpoint_interval=2))
        assert manager.epoch_of(0) == 0
        assert manager.note_epoch(0) == 1
        assert manager.note_epoch(0) == 2
        assert not manager.should_checkpoint(1)
        assert manager.should_checkpoint(2)

    def test_platform_requires_transcompile_for_resilience(self):
        with pytest.raises(ValueError, match="transcompile"):
            Platform(transcompile=False, resilience=True)

    def test_resilience_weaves_checkpoint_aspect(self):
        platform = Platform.builder().mpi(2).resilience().build()
        assert platform.resilience is not None
        assert any(isinstance(a, CheckpointAspect) for a in platform.aspects)

    def test_policy_off_by_default(self):
        platform = Platform.builder().mpi(2).build()
        assert platform.resilience is None
        assert not any(isinstance(a, CheckpointAspect) for a in platform.aspects)


# ---------------------------------------------------------------------------
# Transport satellites (in-process transport pairs over real pipes)
# ---------------------------------------------------------------------------
@pytest.fixture
def transport_pair():
    a, b = multiprocessing.Pipe()
    t0 = ProcessTransport(0, 2, {1: a}, timeout=0.3)
    t1 = ProcessTransport(1, 2, {0: b}, timeout=0.3)
    yield t0, t1
    for t in (t0, t1):
        t.close()


class TestTransportSatellites:
    def test_timeout_message_lists_outstanding_requests(self, transport_pair):
        t0, _t1 = transport_pair
        t0._outstanding[(1, 7)] = "page 3 of block 9 from rank 1"
        with pytest.raises(CollectiveError, match=r"outstanding requests: page 3 of block 9"):
            t0._await(1, lambda msg: False, "a reply that never comes")

    def test_dead_peer_error_includes_manifest(self, transport_pair):
        t0, _t1 = transport_pair
        t0._outstanding[(1, 7)] = "page 0 of block 2 from rank 1"
        with t0._inbox_cond:
            t0._dead.add(1)
        with pytest.raises(DeadRankError, match=r"page 0 of block 2"):
            t0._await(1, lambda msg: False, "anything")

    def test_send_to_dead_peer_records_first_error_and_counter(self, transport_pair):
        t0, t1 = transport_pair
        # Close the far end so the next send fails inside the sender thread.
        t1.conns[0].close()
        t0.conns[1].close()
        t0._send(1, ("coll", "probe", 0, None))
        deadline = threading.Event()
        for _ in range(100):
            if t0.first_send_error is not None:
                break
            deadline.wait(0.02)
        assert t0.first_send_error is not None
        assert "rank 0 could not send 'coll' to rank 1" in t0.first_send_error
        assert t0.stats.peer_dead >= 1
        assert 1 in t0._dead

    def test_close_warns_on_leaked_transport_thread(self, transport_pair, monkeypatch):
        t0, _t1 = transport_pair
        release = threading.Event()
        stuck = threading.Thread(target=release.wait, name="stuck-sender", daemon=True)
        stuck.start()
        real_sender = t0._sender
        monkeypatch.setattr(t0, "_sender", stuck)
        try:
            with pytest.warns(RuntimeWarning, match="leaked thread"):
                t0.close()
        finally:
            release.set()
            real_sender.join(timeout=5.0)


# ---------------------------------------------------------------------------
# comm_timeout plumbing
# ---------------------------------------------------------------------------
class TestCommTimeoutPlumbing:
    def _mpi_aspect(self, platform):
        aspect = next(a for a in platform.aspects if isinstance(a, DistributedMemoryAspect))
        aspect.platform = platform  # bound at run() time normally
        return aspect

    def test_builder_method_reaches_aspect(self):
        platform = Platform.builder().mpi(2).comm_timeout(3.25).build()
        assert platform.comm_timeout == 3.25
        assert self._mpi_aspect(platform).resolve_timeout() == 3.25

    def test_aspect_timeout_overrides_platform(self):
        platform = Platform.builder().mpi(2).comm_timeout(9.0).build()
        aspect = self._mpi_aspect(platform)
        aspect.timeout = 2.0
        assert aspect.resolve_timeout() == 2.0

    def test_default_without_any_setting(self):
        platform = Platform.builder().mpi(2).build()
        assert self._mpi_aspect(platform).resolve_timeout() == 60.0

    def test_timeout_reaches_created_world(self):
        from repro.runtime.backends import get_backend

        world = get_backend("threads").create_world(2, timeout=4.5)
        try:
            assert world.network.timeout == 4.5
        finally:
            world.finalize()
