"""Unit tests for the annotation library (TargetApplication) and Platform driver."""

from __future__ import annotations

import pytest

from repro.annotation import Platform, TargetApplication
from repro.aop import Aspect, before, tagged
from repro.aspects import PhaseTraceAspect, openmp_aspects
from repro.memory import Env


class CountingApp(TargetApplication):
    """Minimal app: counts phase executions and runs a trivial kernel."""

    def __init__(self, config=None):
        super().__init__(config)
        self.calls = []

    def initialize(self):
        self.calls.append("initialize")
        self.make_env(pool_bytes=1 << 16)

    def processing(self):
        self.calls.append("processing")
        self.warm_up(self.kernel)
        for _ in range(self.config.get("loops", 1)):
            self.run(self.kernel)

    def finalize(self):
        self.calls.append("finalize")
        self.result = len(self.calls)

    def kernel(self, warmup):
        return self.env.refresh(warmup)


class TestTargetApplication:
    def test_phases_abstract_by_default(self):
        app = TargetApplication()
        with pytest.raises(NotImplementedError):
            app.initialize()
        with pytest.raises(NotImplementedError):
            app.processing()
        app.finalize()  # default no-op

    def test_make_env_without_platform_uses_defaults(self):
        app = CountingApp()
        env = app.make_env(pool_bytes=1 << 16)
        assert isinstance(env, Env)
        assert app.env is env
        assert app.total_tasks == 1

    def test_warm_up_resets_mmat(self):
        app = CountingApp()
        app.make_env(pool_bytes=1 << 16, mmat_enabled=True)
        app.env.mmat.remember(1, (0,), "x")
        app.warm_up(app.kernel)
        assert len(app.env.mmat) == 0

    def test_warm_up_gives_up_after_max_passes(self):
        app = CountingApp()
        app.make_env(pool_bytes=1 << 16)
        with pytest.raises(RuntimeError):
            app.warm_up(lambda warmup: False)

    def test_run_retries_until_success(self):
        app = CountingApp()
        app.make_env(pool_bytes=1 << 16)
        outcomes = iter([False, False, True])
        app.run(lambda warmup: next(outcomes))

    def test_run_gives_up_eventually(self):
        app = CountingApp()
        app.make_env(pool_bytes=1 << 16)
        with pytest.raises(RuntimeError):
            app.run(lambda warmup: False)


class TestPlatformDriver:
    def test_plain_platform_does_not_weave(self):
        platform = Platform()
        assert platform.weaver is None
        assert platform.build(CountingApp) is CountingApp

    def test_nop_platform_weaves(self):
        platform = Platform(aspects=[])
        woven = platform.build(CountingApp)
        assert woven is not CountingApp
        assert issubclass(woven, CountingApp)

    def test_aspects_require_transcompile(self):
        class Dummy(Aspect):
            @before(tagged("platform.processing"))
            def x(self, jp):
                pass

        with pytest.raises(ValueError):
            Platform(aspects=[Dummy()], transcompile=False)

    def test_build_rejects_non_target(self):
        class NotAnApp:
            pass

        with pytest.raises(TypeError):
            Platform().build(NotAnApp)

    def test_run_executes_phases_in_order(self):
        run = Platform().run(CountingApp, config={"loops": 2})
        assert run.app.calls == ["initialize", "processing", "finalize"]
        assert run.result == 3
        assert run.elapsed > 0
        assert run.env_stats is not None
        assert run.layers == {}

    def test_run_with_phase_trace_aspect(self):
        events = []
        platform = Platform(aspects=[PhaseTraceAspect(events)])
        platform.run(CountingApp, config={"loops": 1})
        phases = [e[0] for e in events]
        assert phases[:2] == ["initialize", "processing"]
        assert "refresh" in phases
        assert phases[-1] == "finalize"

    def test_total_tasks_reflects_aspect_parallelism(self):
        platform = Platform(aspects=openmp_aspects(3))
        assert platform.total_tasks == 3
        assert platform.layer_parallelism() == {"omp": 3}
        assert platform.parallelism_of("omp") == 3
        assert platform.parallelism_of("mpi") == 1

    def test_mmat_flag_propagates_to_env(self):
        run = Platform(mmat=True).run(CountingApp, config={"loops": 1})
        assert run.app.env.mmat.enabled

    def test_counters_captured_per_run(self):
        run = Platform().run(CountingApp, config={"loops": 3})
        counters = list(run.counters.values())
        assert len(counters) == 1
        assert counters[0].steps == 3

    def test_memory_report_captured(self):
        run = Platform().run(CountingApp, config={"loops": 1})
        assert run.memory["pool_capacity"] > 0
