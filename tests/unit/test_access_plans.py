"""Unit tests for MMAT access-plan compilation and execution.

The access-plan compiler turns the warm-up's per-site resolutions into
bulk NumPy gather plans (the vectorized extension of the paper's MMAT,
§III-B6 under Assumption II).  These tests exercise the compiler and
executor directly on hand-built Envs: segment grouping, constant
folding of Arithmetic/Static boundaries, Reference (mirror) chasing,
Buffer-only (halo) validity handling, plan caching and the
reset-invalidates-plans semantics the warm-up macro relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory import (
    ArithmeticBlock,
    BufferOnlyBlock,
    DataBlock,
    Env,
    GlobalAddress,
    MMAT,
    MemoryPool,
    PageKey,
    PoolGroup,
    ReferenceBlock,
    StaticDataBlock,
    compile_address_plan,
    compile_offsets_plan,
)


@pytest.fixture
def plan_env() -> Env:
    pool = PoolGroup([MemoryPool(4 * 1024 * 1024, name="plan-pool")])
    return Env(allocator=pool, name="plan-env", mmat_enabled=True)


def add_block(env, origin, shape=(4, 4), *, buffer_only=False, fill=None):
    cls = BufferOnlyBlock if buffer_only else DataBlock
    block = cls(origin, shape, components=1, page_elements=4, allocator=env.allocator)
    env.add_data_block(block)
    if fill is not None:
        count = block.element_count
        data = np.asarray(fill, dtype=np.float64).reshape(count, 1)
        for buf in block.buffer.buffers:
            buf.load_dense(data)
            buf.clear_dirty()
    return block


def sequential(block):
    """Fill a block with 0..n-1 by linear element index; returns the array."""
    values = np.arange(block.element_count, dtype=np.float64)
    for buf in block.buffer.buffers:
        buf.load_dense(values.reshape(-1, 1))
        buf.clear_dirty()
    return values


class TestOffsetsPlanCompilation:
    def test_pure_interior_offset_is_one_segment(self, plan_env):
        block = add_block(plan_env, (0, 0))
        sequential(block)
        plan = compile_offsets_plan(plan_env, block, [(0, 0)])
        assert len(plan.segments) == 1
        assert plan.segments[0].block is block
        assert plan.n_sites == block.element_count
        assert plan.in_block_sites == block.element_count
        assert plan.resolved_sites == 0  # all sites statically inside

    def test_execution_matches_scalar_reads(self, plan_env):
        a = add_block(plan_env, (0, 0))
        b = add_block(plan_env, (4, 0))
        sequential(a)
        sequential(b)
        plan = compile_offsets_plan(plan_env, a, [(1, 0)])
        out = plan.execute(plan_env).reshape(a.shape)
        for i in range(4):
            for j in range(4):
                expected = plan_env.read_from(a, (i + 1, j))
                assert out[i, j] == expected

    def test_arithmetic_boundary_folds_to_constants(self, plan_env):
        block = add_block(plan_env, (0, 0))
        plan_env.add_boundary_block(
            ArithmeticBlock((-1, -1), (6, 6), lambda addr: 7.5, name="ring")
        )
        plan = compile_offsets_plan(plan_env, block, [(0, -1)])
        assert plan.const_dst is not None
        assert np.all(plan.const_vals == 7.5)
        out = plan.execute(plan_env).reshape(block.shape)
        assert np.all(out[:, 0] == 7.5)  # j-1 of the first column is the ring

    def test_static_boundary_folds_to_constants(self, plan_env):
        block = add_block(plan_env, (0,), shape=(4,))
        plan_env.add_boundary_block(StaticDataBlock((4,), (4,), 3.25, name="static"))
        plan = compile_address_plan(plan_env, block, np.array([0, 4, 5]))
        out = plan.execute(plan_env)
        assert out[1] == 3.25 and out[2] == 3.25

    def test_reference_mirror_compiles_to_data_gather(self, plan_env):
        block = add_block(plan_env, (0, 0))
        values = sequential(block)

        def mirror(addr):
            x, y = addr
            return GlobalAddress((min(max(x, 0), 3), min(max(y, 0), 3)))

        ref = ReferenceBlock((-1, -1), (6, 6), mirror, name="mirror")
        plan_env.add_boundary_block(ref)
        plan = compile_offsets_plan(plan_env, block, [(-1, 0)])
        # Mirror sites resolve through the reference onto the block itself:
        # a single data segment, no constants.
        assert plan.const_dst is None
        assert len(plan.segments) == 1 and plan.segments[0].block is block
        out = plan.execute(plan_env).reshape(block.shape)
        assert np.array_equal(out[0], values.reshape(4, 4)[0])  # clamped row

    def test_multi_source_segments_group_by_block(self, plan_env):
        a = add_block(plan_env, (0, 0))
        b = add_block(plan_env, (4, 0))
        c = add_block(plan_env, (0, 4))
        plan_env.add_boundary_block(
            ArithmeticBlock((-4, -4), (16, 16), lambda addr: 0.0, name="ring")
        )
        plan = compile_offsets_plan(plan_env, a, [(0, 0), (4, 0), (0, 4)])
        sources = {seg.block.block_id for seg in plan.segments}
        assert sources == {a.block_id, b.block_id, c.block_id}


class TestHaloPlanExecution:
    def test_invalid_halo_pages_are_recorded_and_zeroed(self, plan_env):
        local = add_block(plan_env, (0, 0))
        remote = add_block(plan_env, (4, 0), buffer_only=True)
        sequential(local)
        plan = compile_offsets_plan(plan_env, local, [(1, 0)])
        remote.invalidate()
        out = plan.execute(plan_env).reshape(local.shape)
        # Sites landing in the invalid Buffer-only block read placeholder 0,
        # and the pages are recorded so the next refresh fails.
        assert np.all(out[3] == 0.0)
        assert plan_env.missing_pages
        assert all(key.block_id == remote.block_id for key in plan_env.missing_pages)

    def test_valid_halo_pages_gather_normally(self, plan_env):
        local = add_block(plan_env, (0, 0))
        remote = add_block(plan_env, (4, 0), buffer_only=True)
        sequential(local)
        plan = compile_offsets_plan(plan_env, local, [(1, 0)])
        remote.invalidate()
        for page in range(remote.page_count()):
            plan_env.page_install(
                PageKey(remote.block_id, page), np.full((4, 1), 9.0)
            )
        out = plan.execute(plan_env).reshape(local.shape)
        assert np.all(out[3] == 9.0)
        assert not plan_env.missing_pages

    def test_remote_pages_lists_halo_set(self, plan_env):
        local = add_block(plan_env, (0, 0))
        remote = add_block(plan_env, (4, 0), buffer_only=True)
        plan = compile_offsets_plan(plan_env, local, [(1, 0)])
        keys = plan.remote_pages()
        assert keys and all(key.block_id == remote.block_id for key in keys)
        plan_env.mmat.plan_store((local.block_id, "offsets", ((1, 0),)), plan)
        assert plan_env.plan_page_requirements() == set(keys)


class TestAddressPlans:
    def test_duplicate_addresses_resolve_once(self, plan_env):
        block = add_block(plan_env, (0,), shape=(8,))
        sequential(block)
        other = add_block(plan_env, (8,), shape=(8,))
        sequential(other)
        searches_before = plan_env.stats.searches
        addrs = np.array([[9, 9], [9, 9], [0, 9]])
        plan = compile_address_plan(plan_env, block, addrs)
        # One resolution for address 9 despite four sites using it.
        assert plan_env.stats.searches == searches_before + 1
        out = plan.execute(plan_env).reshape(addrs.shape)
        assert np.all(out == np.array([[1, 1], [1, 1], [0, 1]]))

    def test_site_order_is_row_major(self, plan_env):
        block = add_block(plan_env, (0,), shape=(8,))
        sequential(block)
        addrs = np.array([[3, 1], [7, 5]])
        plan = compile_address_plan(plan_env, block, addrs)
        out = plan.execute(plan_env).reshape(addrs.shape)
        assert np.array_equal(out, addrs.astype(np.float64))


class TestMMATPlanCache:
    def test_reset_invalidates_plans_and_memo(self, plan_env):
        block = add_block(plan_env, (0, 0))
        mmat = plan_env.mmat
        plan = compile_offsets_plan(plan_env, block, [(0, 0)])
        mmat.plan_store(("k",), plan)
        mmat.remember(block.block_id, (9, 9), block)
        assert mmat.plan_lookup(("k",)) is plan
        assert len(mmat) == 1
        mmat.reset()
        assert mmat.plan_lookup(("k",)) is None
        assert len(mmat) == 0
        assert mmat.resets == 1

    def test_disabled_mmat_stores_no_plans(self, plan_env):
        block = add_block(plan_env, (0, 0))
        plan = compile_offsets_plan(plan_env, block, [(0, 0)])
        memo = MMAT(enabled=False)
        memo.plan_store(("k",), plan)
        assert memo.plan_lookup(("k",)) is None
        assert memo.plan_compiles == 0

    def test_memory_bytes_accounts_plan_arrays(self, plan_env):
        block = add_block(plan_env, (0, 0))
        plan_env.add_boundary_block(
            ArithmeticBlock((-1, -1), (6, 6), lambda addr: 0.0, name="ring")
        )
        mmat = plan_env.mmat
        before = mmat.memory_bytes()
        plan = compile_offsets_plan(plan_env, block, [(0, 0), (1, 0)])
        mmat.plan_store(("k",), plan)
        assert mmat.memory_bytes() >= before + plan.nbytes
        assert plan.nbytes >= plan.n_sites * np.dtype(np.intp).itemsize

    def test_stats_report_hit_rate_and_plan_coverage(self, plan_env):
        block = add_block(plan_env, (0, 0))
        mmat = plan_env.mmat
        mmat.remember(block.block_id, (5, 5), block)
        assert mmat.lookup(block.block_id, (5, 5)) is block   # hit
        assert mmat.lookup(block.block_id, (6, 6)) is None    # miss
        plan = compile_offsets_plan(plan_env, block, [(0, 0)])
        mmat.plan_store(("k",), plan)
        mmat.note_execution(plan)
        mmat.note_fallback(4)
        stats = mmat.stats()
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["plans"] == 1
        assert stats["plan_sites"] == plan.n_sites
        assert stats["plan_exec_sites"] == plan.n_sites
        assert stats["fallback_sites"] == 4
        assert stats["vectorized_fraction"] == pytest.approx(
            plan.n_sites / (plan.n_sites + 4)
        )


class TestDenseReadCache:
    def test_cache_hit_until_refresh(self, plan_env):
        block = add_block(plan_env, (0, 0))
        sequential(block)
        first = plan_env.dense_read(block)
        assert plan_env.dense_read(block) is first
        plan_env.refresh()
        assert plan_env.dense_read(block) is not first

    def test_page_install_invalidates_cache_entry(self, plan_env):
        block = add_block(plan_env, (0, 0), buffer_only=True)
        stale = plan_env.dense_read(block)
        plan_env.page_install(PageKey(block.block_id, 0), np.full((4, 1), 2.0))
        fresh = plan_env.dense_read(block)
        assert fresh is not stale
        assert np.all(fresh[:4] == 2.0)
