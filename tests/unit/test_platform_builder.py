"""Unit tests for PlatformBuilder, Platform.preset and PlatformRun.summary.

Includes the end-to-end acceptance scenarios of the API v2 redesign:
``Platform.preset("hybrid", ranks=..., threads=...).run(JacobiSGrid)``
and a string-pointcut aspect (``before("execution() && tagged('kernel')")``)
running alongside the platform's layer modules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Platform, PlatformBuilder
from repro.annotation import PRESETS, TargetApplication
from repro.aop import Aspect, annotate, before
from repro.aop.registry import TAG_KERNEL
from repro.apps import JacobiSGrid
from repro.aspects import DistributedMemoryAspect, SharedMemoryAspect, mpi_aspects


CONFIG = dict(
    region=16,
    block_size=8,
    page_elements=16,
    loops=2,
    init=lambda x, y: float(x + y),
)


class TestBuilder:
    def test_builder_returns_builder(self):
        assert isinstance(Platform.builder(), PlatformBuilder)

    def test_default_build_is_serial_platform(self):
        platform = Platform.builder().build()
        assert platform.weaver is None
        assert not platform.transcompile
        assert platform.aspects == []

    def test_nop_build_transcompiles_without_aspects(self):
        platform = Platform.builder().nop().build()
        assert platform.transcompile
        assert platform.weaver is not None
        assert platform.aspects == []

    def test_mpi_omp_chain_attaches_layer_aspects(self):
        platform = Platform.builder().mpi(4).omp(2).build()
        kinds = {type(a) for a in platform.aspects}
        assert kinds == {DistributedMemoryAspect, SharedMemoryAspect}
        assert platform.layer_parallelism() == {"mpi": 4, "omp": 2}
        assert platform.total_tasks == 8

    def test_knobs_propagate(self):
        platform = Platform.builder().mmat().pool_bytes(1 << 20).nop().build()
        assert platform.mmat_enabled
        assert platform.env_pool_bytes == 1 << 20

    def test_aspect_accepts_instances_only(self):
        with pytest.raises(TypeError):
            Platform.builder().aspect(DistributedMemoryAspect)

    def test_aspects_bulk_attach(self):
        platform = Platform.builder().aspects(mpi_aspects(2)).build()
        assert platform.layer_parallelism() == {"mpi": 2}

    def test_builder_run_shorthand(self):
        run = Platform.builder().omp(2).mmat().run(JacobiSGrid, config=dict(CONFIG))
        assert run.layers == {"omp": 2}
        assert run.result is not None

    def test_transcompile_override(self):
        platform = Platform.builder().transcompile(True).build()
        assert platform.transcompile
        assert platform.weaver is not None

    def test_rebuild_gets_fresh_layer_aspect_instances(self):
        # Layer modules are stateful: two platforms from one builder must
        # not share the DistributedMemoryAspect instance.
        builder = Platform.builder().mpi(2)
        first, second = builder.build(), builder.build()
        assert first.aspects[0] is not second.aspects[0]

    def test_unset_knobs_track_platform_defaults(self):
        built = Platform.builder().nop().build()
        legacy = Platform(aspects=[])
        assert built.env_pool_bytes == legacy.env_pool_bytes
        assert built.machine is legacy.machine


class TestPresets:
    def test_preset_names(self):
        assert set(PRESETS) == {"serial", "nop", "mpi", "omp", "hybrid"}

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown platform preset"):
            Platform.preset("gpu")

    def test_serial_preset_is_legacy_default(self):
        preset = Platform.preset("serial")
        legacy = Platform()
        assert preset.transcompile == legacy.transcompile is False
        assert preset.aspects == legacy.aspects == []

    def test_nop_preset_matches_legacy_empty_list(self):
        preset = Platform.preset("nop")
        legacy = Platform(aspects=[])
        assert preset.transcompile and legacy.transcompile
        assert preset.aspects == legacy.aspects == []

    def test_mpi_preset(self):
        platform = Platform.preset("mpi", ranks=4)
        assert platform.layer_parallelism() == {"mpi": 4}

    def test_omp_preset(self):
        platform = Platform.preset("omp", threads=3, mmat=True)
        assert platform.layer_parallelism() == {"omp": 3}
        assert platform.mmat_enabled

    def test_hybrid_preset(self):
        platform = Platform.preset("hybrid", ranks=4, threads=2)
        assert platform.layer_parallelism() == {"mpi": 4, "omp": 2}

    def test_presets_reject_mismatched_parallelism(self):
        with pytest.raises(ValueError):
            Platform.preset("serial", ranks=2)
        with pytest.raises(ValueError):
            Platform.preset("mpi", threads=2)
        with pytest.raises(ValueError):
            Platform.preset("omp", ranks=2)

    def test_hybrid_preset_runs_end_to_end(self):
        serial = Platform.preset("serial").run(JacobiSGrid, config=dict(CONFIG))
        hybrid = Platform.preset("hybrid", ranks=2, threads=2, mmat=True).run(
            JacobiSGrid, config=dict(CONFIG)
        )
        mask = ~np.isnan(hybrid.result)
        assert np.allclose(hybrid.result[mask], serial.result[mask], atol=1e-10)
        assert hybrid.layers == {"mpi": 2, "omp": 2}
        assert len(hybrid.counters) == 4


class CountingKernelApp(TargetApplication):
    """Minimal app whose kernel method carries the platform kernel tag."""

    def initialize(self):
        self.make_env(pool_bytes=1 << 16)

    def processing(self):
        self.warm_up(self.kernel)
        for _ in range(self.config.get("loops", 1)):
            self.run(self.kernel)

    def finalize(self):
        self.result = "done"

    @annotate(TAG_KERNEL)
    def kernel(self, warmup):
        return self.env.refresh(warmup)


class TestStringPointcutAspectEndToEnd:
    def test_kernel_string_pointcut_fires_during_run(self):
        calls = []

        class KernelCounter(Aspect):
            @before("execution() && tagged('kernel')")
            def count(self, jp):
                calls.append(jp.shadow.name)

        run = (
            Platform.builder()
            .aspect(KernelCounter())
            .run(CountingKernelApp, config={"loops": 2})
        )
        assert run.result == "done"
        # warm-up + 2 steps = at least 3 kernel activations.
        assert len(calls) >= 3
        assert set(calls) == {"kernel"}

    def test_legacy_constructor_still_accepts_same_aspect(self):
        calls = []

        class KernelCounter(Aspect):
            @before("execution() && tagged('kernel')")
            def count(self, jp):
                calls.append(jp.shadow.name)

        run = Platform(aspects=[KernelCounter()]).run(
            CountingKernelApp, config={"loops": 1}
        )
        assert run.result == "done"
        assert calls


class TestRunSummary:
    def test_summary_is_one_line(self):
        run = Platform.preset("serial").run(JacobiSGrid, config=dict(CONFIG))
        text = run.summary()
        assert "\n" not in text
        assert "serial" in text
        assert "elapsed=" in text
        assert "steps=" in text

    def test_summary_distinguishes_nop_from_serial(self):
        nop = Platform.preset("nop").run(JacobiSGrid, config=dict(CONFIG))
        assert nop.summary().startswith("nop ")
        serial = Platform.preset("serial").run(JacobiSGrid, config=dict(CONFIG))
        assert serial.summary().startswith("serial ")

    def test_summary_reports_layers_and_traffic(self):
        run = Platform.preset("mpi", ranks=2, mmat=True).run(
            JacobiSGrid, config=dict(CONFIG)
        )
        text = run.summary()
        assert "mpi=2" in text
        assert "tasks=2" in text
        assert "fetched=" in text
