"""Unit tests for the weaver: advice dispatch order, around chains, NOP weaves,
weave plans and the around-advice argument-rebinding semantics."""

from __future__ import annotations

import warnings

import pytest

from repro.aop import (
    Aspect,
    AspectDefinitionError,
    WeavePlan,
    WeaveError,
    WeaveWarning,
    Weaver,
    after,
    after_returning,
    after_throwing,
    annotate,
    around,
    before,
    is_woven,
    tagged,
)


@annotate("test.cls")
class Target:
    """A tiny class with one tagged and one untagged method."""

    def __init__(self):
        self.log = []

    @annotate("test.step")
    def step(self, value):
        self.log.append(("body", value))
        return value * 2

    def untagged(self):
        return "plain"


class Recorder(Aspect):
    order = 10

    def __init__(self, events):
        super().__init__()
        self.events = events

    @before(tagged("test.step"))
    def record_before(self, jp):
        self.events.append(("before", jp.args))

    @after_returning(tagged("test.step"))
    def record_after(self, jp):
        self.events.append(("after", jp.result))


class Doubler(Aspect):
    order = 20

    @around(tagged("test.step"))
    def double(self, jp):
        result = jp.proceed()
        return result + 1


class TestBasicWeaving:
    def test_woven_class_is_subclass(self):
        woven = Weaver([]).weave_class(Target)
        assert issubclass(woven, Target)
        assert is_woven(woven)
        assert not is_woven(Target)

    def test_nop_weave_preserves_behaviour(self):
        woven = Weaver([]).weave_class(Target)
        instance = woven()
        assert instance.step(3) == 6
        assert instance.untagged() == "plain"

    def test_nop_weave_wraps_tagged_methods_only(self):
        woven = Weaver([]).weave_class(Target)
        info = woven.__aop_woven__
        names = {shadow.name for shadow, _ in info.joinpoints}
        assert "step" in names
        assert "untagged" not in names

    def test_before_and_after_advice_fire(self):
        events = []
        woven = Weaver([Recorder(events)]).weave_class(Target)
        instance = woven()
        assert instance.step(4) == 8
        assert events == [("before", (4,)), ("after", 8)]

    def test_around_advice_can_modify_result(self):
        woven = Weaver([Doubler()]).weave_class(Target)
        assert woven().step(5) == 11

    def test_advice_applies_to_subclass_overrides(self):
        class Custom(Target):
            def step(self, value):  # override without re-annotating
                self.log.append(("custom", value))
                return value + 100

        events = []
        woven = Weaver([Recorder(events)]).weave_class(Custom)
        instance = woven()
        assert instance.step(1) == 101
        assert events[0] == ("before", (1,))

    def test_explicit_methods_parameter(self):
        woven = Weaver([]).weave_class(Target, methods=["untagged"])
        info = woven.__aop_woven__
        names = {shadow.name for shadow, _ in info.joinpoints}
        assert "untagged" in names

    def test_unknown_explicit_method_raises(self):
        with pytest.raises(WeaveError):
            Weaver([]).weave_class(Target, methods=["missing_method"])

    def test_weave_non_class_raises(self):
        with pytest.raises(WeaveError):
            Weaver([]).weave_class(42)

    def test_weaver_rejects_aspect_classes(self):
        with pytest.raises(WeaveError):
            Weaver([Doubler])  # class instead of instance


class TestAdviceOrdering:
    def test_aspect_order_controls_nesting(self):
        events = []

        class Outer(Aspect):
            order = 1

            @around(tagged("test.step"))
            def wrap(self, jp):
                events.append("outer-in")
                result = jp.proceed()
                events.append("outer-out")
                return result

        class Inner(Aspect):
            order = 2

            @around(tagged("test.step"))
            def wrap(self, jp):
                events.append("inner-in")
                result = jp.proceed()
                events.append("inner-out")
                return result

        woven = Weaver([Inner(), Outer()]).weave_class(Target)
        woven().step(1)
        assert events == ["outer-in", "inner-in", "inner-out", "outer-out"]

    def test_before_runs_before_around(self):
        events = []

        class B(Aspect):
            @before(tagged("test.step"))
            def b(self, jp):
                events.append("before")

        class A(Aspect):
            @around(tagged("test.step"))
            def a(self, jp):
                events.append("around")
                return jp.proceed()

        Weaver([A(), B()]).weave_class(Target)().step(1)
        assert events == ["before", "around"]

    def test_around_can_skip_body(self):
        class Skip(Aspect):
            @around(tagged("test.step"))
            def skip(self, jp):
                return "skipped"

        instance = Weaver([Skip()]).weave_class(Target)()
        assert instance.step(9) == "skipped"
        assert instance.log == []

    def test_around_can_change_arguments(self):
        class Rewrite(Aspect):
            @around(tagged("test.step"))
            def rewrite(self, jp):
                return jp.proceed(10)

        assert Weaver([Rewrite()]).weave_class(Target)().step(1) == 20

    def test_around_can_proceed_twice(self):
        class Twice(Aspect):
            @around(tagged("test.step"))
            def twice(self, jp):
                jp.proceed()
                return jp.proceed()

        instance = Weaver([Twice()]).weave_class(Target)()
        assert instance.step(2) == 4
        assert len(instance.log) == 2


class TestExceptionAdvice:
    class Boom(Target):
        @annotate("test.step")
        def step(self, value):
            raise ValueError("boom")

    def test_after_throwing_fires(self):
        events = []

        class Catcher(Aspect):
            @after_throwing(tagged("test.step"))
            def caught(self, jp):
                events.append(type(jp.exception).__name__)

            @after(tagged("test.step"))
            def always(self, jp):
                events.append("after")

        woven = Weaver([Catcher()]).weave_class(self.Boom)
        with pytest.raises(ValueError):
            woven().step(1)
        assert events == ["ValueError", "after"]

    def test_after_returning_not_fired_on_exception(self):
        events = []

        class OnlyReturn(Aspect):
            @after_returning(tagged("test.step"))
            def ret(self, jp):
                events.append("returned")

        woven = Weaver([OnlyReturn()]).weave_class(self.Boom)
        with pytest.raises(ValueError):
            woven().step(1)
        assert events == []


class TestWeavePlans:
    def test_plan_is_inspectable(self):
        weaver = Weaver([Doubler()])
        plan = weaver.plan_class(Target)
        assert isinstance(plan, WeavePlan)
        assert plan.cls is Target
        assert plan.wrapped_sites == 1
        assert plan.advised_sites == 1
        (entry,) = plan.entries
        assert entry.attr_name == "step"
        assert entry.advice[0].name == "Doubler.double"
        assert "step" in plan.describe()

    def test_plan_cached_per_class_and_weaver(self):
        weaver = Weaver([Doubler()])
        assert weaver.plan_class(Target) is weaver.plan_class(Target)
        # A different weaver computes its own plan.
        assert Weaver([]).plan_class(Target) is not weaver.plan_class(Target)

    def test_plan_distinguishes_explicit_methods(self):
        weaver = Weaver([])
        bare = weaver.plan_class(Target)
        extended = weaver.plan_class(Target, methods=["untagged"])
        assert bare is not extended
        assert extended.wrapped_sites == bare.wrapped_sites + 1

    def test_woven_class_carries_its_plan(self):
        weaver = Weaver([Doubler()])
        woven = weaver.weave_class(Target)
        assert woven.__aop_plan__ is weaver.plan_class(Target)

    def test_repeated_weaves_reuse_the_woven_class(self):
        weaver = Weaver([Doubler()])
        assert weaver.weave_class(Target) is weaver.weave_class(Target)
        # Distinct names are distinct classes.
        assert weaver.weave_class(Target, name="Other") is not weaver.weave_class(Target)

    def test_unadvised_shadow_uses_fast_path(self):
        woven = Weaver([]).weave_class(Target)
        wrapper = woven.__dict__["step"]
        assert getattr(wrapper, "__aop_fastpath__", False)
        assert wrapper.__aop_advice_names__ == ()
        assert woven().step(3) == 6  # behaviour unchanged

    def test_advised_shadow_does_not_use_fast_path(self):
        woven = Weaver([Doubler()]).weave_class(Target)
        wrapper = woven.__dict__["step"]
        assert not getattr(wrapper, "__aop_fastpath__", False)

    def test_unadvised_function_uses_fast_path(self):
        woven = Weaver([]).weave_function(lambda x: x + 1, tags=("t",))
        assert getattr(woven, "__aop_fastpath__", False)
        assert woven(1) == 2

    def test_no_shadow_with_aspects_warns(self):
        class NoShadows:
            def plain(self):
                return "ok"

        with pytest.warns(WeaveWarning, match="no join point shadow"):
            woven = Weaver([Doubler()]).weave_class(NoShadows)
        assert woven().plain() == "ok"  # weave still succeeds

    def test_nop_weave_of_shadowless_class_does_not_warn(self):
        class NoShadows:
            def plain(self):
                return "ok"

        with warnings.catch_warnings():
            warnings.simplefilter("error", WeaveWarning)
            Weaver([]).weave_class(NoShadows)


class TestAroundArgumentRebinding:
    """Pins the rebinding semantics of ``proceed(new_args)``: the rebound
    arguments stick to the join point for the rest of the activation, so
    inner around advice and ``after*`` advice observe them (AspectC++'s
    ``tjp->arg<i>()`` behaves the same way).  ``continuation()`` is the
    escape hatch that leaves the join point untouched."""

    def test_after_advice_observes_rebound_args(self):
        seen = []

        class Rebind(Aspect):
            order = 1

            @around(tagged("test.step"))
            def rebind(self, jp):
                return jp.proceed(jp.args[0] + 10)

        class Observe(Aspect):
            order = 2

            @after(tagged("test.step"))
            def observe(self, jp):
                seen.append(jp.args)

        instance = Weaver([Rebind(), Observe()]).weave_class(Target)()
        assert instance.step(1) == 22
        assert seen == [(11,)]

    def test_inner_around_observes_rebound_args(self):
        seen = []

        class Outer(Aspect):
            order = 1

            @around(tagged("test.step"))
            def outer(self, jp):
                return jp.proceed(99)

        class Inner(Aspect):
            order = 2

            @around(tagged("test.step"))
            def inner(self, jp):
                seen.append(jp.args)
                return jp.proceed()

        assert Weaver([Outer(), Inner()]).weave_class(Target)().step(1) == 198
        assert seen == [(99,)]

    def test_before_advice_observes_original_args(self):
        seen = []

        class Observe(Aspect):
            order = 1

            @before(tagged("test.step"))
            def observe(self, jp):
                seen.append(jp.args)

        class Rebind(Aspect):
            order = 2

            @around(tagged("test.step"))
            def rebind(self, jp):
                return jp.proceed(42)

        Weaver([Observe(), Rebind()]).weave_class(Target)().step(1)
        assert seen == [(1,)]  # before advice runs before any around rebinding

    def test_proceed_without_args_keeps_rebinding(self):
        """A later bare proceed() re-forwards the rebound arguments."""

        class RebindTwice(Aspect):
            @around(tagged("test.step"))
            def rebind(self, jp):
                jp.proceed(7)
                return jp.proceed()  # forwards the rebound 7, not the original 1

        instance = Weaver([RebindTwice()]).weave_class(Target)()
        assert instance.step(1) == 14
        assert instance.log == [("body", 7), ("body", 7)]

    def test_continuation_does_not_rebind(self):
        seen = []

        class Continue(Aspect):
            order = 1

            @around(tagged("test.step"))
            def run_elsewhere(self, jp):
                body = jp.continuation()
                return body(5)  # bypasses jp.args entirely

        class Observe(Aspect):
            order = 2

            @after(tagged("test.step"))
            def observe(self, jp):
                seen.append(jp.args)

        instance = Weaver([Continue(), Observe()]).weave_class(Target)()
        assert instance.step(1) == 10
        assert seen == [(1,)]  # the join point still reports the original args


class TestFunctionWeaving:
    def test_weave_function_with_tag(self):
        events = []

        class EntryAspect(Aspect):
            @before(tagged("platform.entry"))
            def enter(self, jp):
                events.append("enter")

        def main(x):
            return x + 1

        woven = Weaver([EntryAspect()]).weave_function(main, tags=("platform.entry",))
        assert woven(1) == 2
        assert events == ["enter"]
        assert is_woven(woven)

    def test_aspect_without_advice_is_rejected(self):
        class Empty(Aspect):
            pass

        with pytest.raises(AspectDefinitionError):
            Empty().advices()
