"""Unit tests for the weaver: advice dispatch order, around chains, NOP weaves."""

from __future__ import annotations

import pytest

from repro.aop import (
    Aspect,
    AspectDefinitionError,
    WeaveError,
    Weaver,
    after,
    after_returning,
    after_throwing,
    annotate,
    around,
    before,
    is_woven,
    tagged,
)


@annotate("test.cls")
class Target:
    """A tiny class with one tagged and one untagged method."""

    def __init__(self):
        self.log = []

    @annotate("test.step")
    def step(self, value):
        self.log.append(("body", value))
        return value * 2

    def untagged(self):
        return "plain"


class Recorder(Aspect):
    order = 10

    def __init__(self, events):
        super().__init__()
        self.events = events

    @before(tagged("test.step"))
    def record_before(self, jp):
        self.events.append(("before", jp.args))

    @after_returning(tagged("test.step"))
    def record_after(self, jp):
        self.events.append(("after", jp.result))


class Doubler(Aspect):
    order = 20

    @around(tagged("test.step"))
    def double(self, jp):
        result = jp.proceed()
        return result + 1


class TestBasicWeaving:
    def test_woven_class_is_subclass(self):
        woven = Weaver([]).weave_class(Target)
        assert issubclass(woven, Target)
        assert is_woven(woven)
        assert not is_woven(Target)

    def test_nop_weave_preserves_behaviour(self):
        woven = Weaver([]).weave_class(Target)
        instance = woven()
        assert instance.step(3) == 6
        assert instance.untagged() == "plain"

    def test_nop_weave_wraps_tagged_methods_only(self):
        woven = Weaver([]).weave_class(Target)
        info = woven.__aop_woven__
        names = {shadow.name for shadow, _ in info.joinpoints}
        assert "step" in names
        assert "untagged" not in names

    def test_before_and_after_advice_fire(self):
        events = []
        woven = Weaver([Recorder(events)]).weave_class(Target)
        instance = woven()
        assert instance.step(4) == 8
        assert events == [("before", (4,)), ("after", 8)]

    def test_around_advice_can_modify_result(self):
        woven = Weaver([Doubler()]).weave_class(Target)
        assert woven().step(5) == 11

    def test_advice_applies_to_subclass_overrides(self):
        class Custom(Target):
            def step(self, value):  # override without re-annotating
                self.log.append(("custom", value))
                return value + 100

        events = []
        woven = Weaver([Recorder(events)]).weave_class(Custom)
        instance = woven()
        assert instance.step(1) == 101
        assert events[0] == ("before", (1,))

    def test_explicit_methods_parameter(self):
        woven = Weaver([]).weave_class(Target, methods=["untagged"])
        info = woven.__aop_woven__
        names = {shadow.name for shadow, _ in info.joinpoints}
        assert "untagged" in names

    def test_unknown_explicit_method_raises(self):
        with pytest.raises(WeaveError):
            Weaver([]).weave_class(Target, methods=["missing_method"])

    def test_weave_non_class_raises(self):
        with pytest.raises(WeaveError):
            Weaver([]).weave_class(42)

    def test_weaver_rejects_aspect_classes(self):
        with pytest.raises(WeaveError):
            Weaver([Doubler])  # class instead of instance


class TestAdviceOrdering:
    def test_aspect_order_controls_nesting(self):
        events = []

        class Outer(Aspect):
            order = 1

            @around(tagged("test.step"))
            def wrap(self, jp):
                events.append("outer-in")
                result = jp.proceed()
                events.append("outer-out")
                return result

        class Inner(Aspect):
            order = 2

            @around(tagged("test.step"))
            def wrap(self, jp):
                events.append("inner-in")
                result = jp.proceed()
                events.append("inner-out")
                return result

        woven = Weaver([Inner(), Outer()]).weave_class(Target)
        woven().step(1)
        assert events == ["outer-in", "inner-in", "inner-out", "outer-out"]

    def test_before_runs_before_around(self):
        events = []

        class B(Aspect):
            @before(tagged("test.step"))
            def b(self, jp):
                events.append("before")

        class A(Aspect):
            @around(tagged("test.step"))
            def a(self, jp):
                events.append("around")
                return jp.proceed()

        Weaver([A(), B()]).weave_class(Target)().step(1)
        assert events == ["before", "around"]

    def test_around_can_skip_body(self):
        class Skip(Aspect):
            @around(tagged("test.step"))
            def skip(self, jp):
                return "skipped"

        instance = Weaver([Skip()]).weave_class(Target)()
        assert instance.step(9) == "skipped"
        assert instance.log == []

    def test_around_can_change_arguments(self):
        class Rewrite(Aspect):
            @around(tagged("test.step"))
            def rewrite(self, jp):
                return jp.proceed(10)

        assert Weaver([Rewrite()]).weave_class(Target)().step(1) == 20

    def test_around_can_proceed_twice(self):
        class Twice(Aspect):
            @around(tagged("test.step"))
            def twice(self, jp):
                jp.proceed()
                return jp.proceed()

        instance = Weaver([Twice()]).weave_class(Target)()
        assert instance.step(2) == 4
        assert len(instance.log) == 2


class TestExceptionAdvice:
    class Boom(Target):
        @annotate("test.step")
        def step(self, value):
            raise ValueError("boom")

    def test_after_throwing_fires(self):
        events = []

        class Catcher(Aspect):
            @after_throwing(tagged("test.step"))
            def caught(self, jp):
                events.append(type(jp.exception).__name__)

            @after(tagged("test.step"))
            def always(self, jp):
                events.append("after")

        woven = Weaver([Catcher()]).weave_class(self.Boom)
        with pytest.raises(ValueError):
            woven().step(1)
        assert events == ["ValueError", "after"]

    def test_after_returning_not_fired_on_exception(self):
        events = []

        class OnlyReturn(Aspect):
            @after_returning(tagged("test.step"))
            def ret(self, jp):
                events.append("returned")

        woven = Weaver([OnlyReturn()]).weave_class(self.Boom)
        with pytest.raises(ValueError):
            woven().step(1)
        assert events == []


class TestFunctionWeaving:
    def test_weave_function_with_tag(self):
        events = []

        class EntryAspect(Aspect):
            @before(tagged("platform.entry"))
            def enter(self, jp):
                events.append("enter")

        def main(x):
            return x + 1

        woven = Weaver([EntryAspect()]).weave_function(main, tags=("platform.entry",))
        assert woven(1) == 2
        assert events == ["enter"]
        assert is_woven(woven)

    def test_aspect_without_advice_is_rejected(self):
        class Empty(Aspect):
            pass

        with pytest.raises(AspectDefinitionError):
            Empty().advices()
