"""Unit tests for addresses and the Z-order (Morton) indexing."""

from __future__ import annotations

import pytest

from repro.memory import (
    AddressError,
    GlobalAddress,
    LocalAddress,
    morton_decode,
    morton_decode_2d,
    morton_decode_3d,
    morton_encode,
    morton_encode_2d,
    morton_encode_3d,
    offset_in_box,
    pdep,
    pext,
    to_global,
    to_local,
    zorder_sorted,
)
from repro.memory.address import box_contains


class TestAddresses:
    def test_global_address_is_tuple(self):
        addr = GlobalAddress((1, 2))
        assert addr == (1, 2)
        assert addr.ndim == 2

    def test_global_address_requires_coords(self):
        with pytest.raises(AddressError):
            GlobalAddress(())

    def test_shifted(self):
        assert GlobalAddress((1, 2)).shifted((3, -1)) == (4, 1)

    def test_shifted_dim_mismatch(self):
        with pytest.raises(AddressError):
            GlobalAddress((1, 2)).shifted((1,))

    def test_local_address(self):
        assert LocalAddress((0, 3)).ndim == 2

    def test_to_global_and_back(self):
        origin = (10, 20)
        local = (3, 4)
        global_addr = to_global(origin, local)
        assert global_addr == (13, 24)
        assert to_local(origin, global_addr) == local

    def test_conversion_dim_mismatch(self):
        with pytest.raises(AddressError):
            to_global((1, 2), (3,))
        with pytest.raises(AddressError):
            to_local((1,), (3, 4))

    @pytest.mark.parametrize(
        "shape,local,expected",
        [((4, 4), (0, 0), 0), ((4, 4), (0, 3), 3), ((4, 4), (1, 0), 4), ((4, 4), (3, 3), 15),
         ((2, 3, 4), (1, 2, 3), 23)],
    )
    def test_offset_in_box(self, shape, local, expected):
        assert offset_in_box(shape, local) == expected

    @pytest.mark.parametrize("local", [(-1, 0), (4, 0), (0, 4)])
    def test_offset_outside_box(self, local):
        with pytest.raises(AddressError):
            offset_in_box((4, 4), local)

    def test_box_contains(self):
        assert box_contains((0, 0), (4, 4), (3, 3))
        assert not box_contains((0, 0), (4, 4), (4, 0))
        assert not box_contains((0, 0), (4, 4), (0, -1))
        assert not box_contains((0, 0), (4, 4), (0, 0, 0))


class TestBitTwiddling:
    def test_pdep_basic(self):
        # Deposit 0b11 into alternating mask 0b0101 -> 0b0101
        assert pdep(0b11, 0b0101) == 0b0101
        assert pdep(0b10, 0b0101) == 0b0100
        assert pdep(0b1, 0b1000) == 0b1000

    def test_pext_basic(self):
        assert pext(0b0101, 0b0101) == 0b11
        assert pext(0b0100, 0b0101) == 0b10

    def test_pdep_pext_roundtrip(self):
        mask = 0b10110100
        for value in range(16):
            assert pext(pdep(value, mask), mask) == value

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pdep(-1, 3)
        with pytest.raises(ValueError):
            pext(1, -3)


class TestMorton:
    @pytest.mark.parametrize("x,y", [(0, 0), (1, 0), (0, 1), (3, 5), (255, 1), (1000, 2000)])
    def test_2d_roundtrip(self, x, y):
        assert morton_decode_2d(morton_encode_2d(x, y)) == (x, y)

    @pytest.mark.parametrize("coords", [(0, 0, 0), (1, 2, 3), (7, 0, 31)])
    def test_3d_roundtrip(self, coords):
        assert morton_decode_3d(morton_encode_3d(*coords)) == coords

    def test_known_values(self):
        # Interleaved bits of (x=1, y=1) -> 0b11 = 3
        assert morton_encode_2d(1, 1) == 3
        assert morton_encode_2d(2, 0) == 4
        assert morton_encode_2d(0, 2) == 8

    def test_locality_of_consecutive_codes(self):
        # Cells adjacent on the Z curve are close in space on average.
        coords = [morton_decode_2d(code) for code in range(16)]
        jumps = [
            abs(a[0] - b[0]) + abs(a[1] - b[1]) for a, b in zip(coords, coords[1:])
        ]
        # The worst single jump on a 4x4 Z curve is the mid-curve hop;
        # the average jump stays small, which is the locality that matters.
        assert max(jumps) <= 4
        assert sum(jumps) / len(jumps) < 2.0

    def test_encode_rejects_negative(self):
        with pytest.raises(ValueError):
            morton_encode((-1, 0))

    def test_encode_rejects_too_large(self):
        with pytest.raises(ValueError):
            morton_encode((1 << 22,), nbits=21)

    def test_decode_requires_positive_ndim(self):
        with pytest.raises(ValueError):
            morton_decode(3, 0)

    def test_generic_dimension(self):
        coords = (3, 1, 4, 1)
        assert morton_decode(morton_encode(coords), 4) == coords

    def test_zorder_sorted(self):
        items = [(1, 1), (0, 0), (1, 0), (0, 1)]
        ordered = zorder_sorted(items, key=lambda c: c)
        assert ordered[0] == (0, 0)
        assert ordered[-1] == (1, 1)


class TestMortonMaskMemoization:
    def test_dimension_masks_are_cached(self):
        from repro.memory.zorder import _dimension_mask, _dimension_masks

        assert _dimension_mask(0, 2, 8) is _dimension_mask(0, 2, 8)
        masks = _dimension_masks(3, 21)
        assert _dimension_masks(3, 21) is masks
        assert len(masks) == 3
        # The cached masks must be the masks encode/decode actually use.
        for dim, mask in enumerate(masks):
            assert mask == _dimension_mask(dim, 3, 21)

    def test_memoized_encode_still_roundtrips(self):
        from repro.memory.zorder import morton_decode, morton_encode

        for coords in ((0, 0), (5, 9), (1, 2, 3), (7,), (10, 20, 30, 40)):
            assert morton_decode(morton_encode(coords), len(coords)) == coords
