"""Unit tests for the Env tree, its search, refresh and MMAT behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory import (
    AddressError,
    ArithmeticBlock,
    BufferOnlyBlock,
    DataBlock,
    Env,
    EnvError,
    MMAT,
    PageKey,
    StaticDataBlock,
)


def add_block(env, origin, shape=(4, 4), *, buffer_only=False, owner=None):
    cls = BufferOnlyBlock if buffer_only else DataBlock
    kwargs = dict(components=1, page_elements=4, allocator=env.allocator)
    if buffer_only:
        kwargs["owner_tid"] = owner
    block = cls(origin, shape, **kwargs)
    env.add_data_block(block)
    return block


class TestEnvConstruction:
    def test_default_tree_shape(self, env):
        # Root has the data joint; boundary blocks attach under the root.
        assert env.data_joint.parent is env.root
        assert env.data_blocks() == []

    def test_add_data_block_and_lookup(self, env):
        block = add_block(env, (0, 0))
        assert env.block(block.block_id) is block
        assert env.data_blocks() == [block]

    def test_unknown_block_id(self, env):
        with pytest.raises(EnvError):
            env.block(999999)

    def test_boundary_must_be_virtual(self, env):
        block = DataBlock((0, 0), (2, 2), components=1, page_elements=4,
                          allocator=env.allocator)
        with pytest.raises(EnvError):
            env.add_boundary_block(block)

    def test_add_data_block_type_check(self, env):
        with pytest.raises(EnvError):
            env.add_data_block(ArithmeticBlock((0, 0), (2, 2), lambda a: 0.0))

    def test_extra_joint(self, env):
        joint = env.add_joint(name="locality-joint")
        block = DataBlock((0, 0), (2, 2), components=1, page_elements=4,
                          allocator=env.allocator)
        env.add_data_block(block, parent=joint)
        assert block.parent is joint
        assert block in env.data_blocks()

    def test_owned_blocks_filter(self, env):
        a = add_block(env, (0, 0))
        b = add_block(env, (4, 0))
        a.ch_tid, b.ch_tid = 0, 1
        assert env.owned_blocks(0) == [a]
        assert env.owned_blocks(1) == [b]

    def test_buffer_only_excluded_by_default(self, env):
        add_block(env, (0, 0))
        add_block(env, (4, 0), buffer_only=True)
        assert len(env.data_blocks()) == 1
        assert len(env.data_blocks(include_buffer_only=True)) == 2


class TestEnvSearch:
    def test_finds_sibling_block(self, env):
        a = add_block(env, (0, 0))
        b = add_block(env, (4, 0))
        found = env.find_block((5, 1), start=a)
        assert found is b

    def test_boundary_found_last(self, env):
        a = add_block(env, (0, 0))
        boundary = ArithmeticBlock((-1, -1), (8, 8), lambda addr: 1.0)
        env.add_boundary_block(boundary)
        assert env.find_block((-1, -1), start=a) is boundary

    def test_search_miss_returns_none(self, env):
        a = add_block(env, (0, 0))
        assert env.find_block((100, 100), start=a) is None

    def test_search_counts_steps(self, env):
        a = add_block(env, (0, 0))
        add_block(env, (4, 0))
        env.find_block((5, 0), start=a)
        assert env.stats.searches == 1
        assert env.stats.search_steps >= 2


class TestEnvReadWrite:
    def test_read_inside_block(self, env):
        a = add_block(env, (0, 0))
        a.write((1, 1), 3.0)
        env.refresh()
        assert env.read_from(a, (1, 1)) == 3.0
        assert env.stats.in_block_reads >= 1

    def test_read_with_inside_hint_skips_search(self, env):
        a = add_block(env, (0, 0))
        a.write((0, 0), 1.0)
        env.refresh()
        env.read_from(a, (0, 0), assume_inside=True)
        assert env.stats.searches == 0

    def test_read_across_blocks(self, env):
        a = add_block(env, (0, 0))
        b = add_block(env, (4, 0))
        b.write((4, 0), 8.0)
        env.refresh()
        assert env.read_from(a, (4, 0)) == 8.0
        assert env.stats.out_of_block_reads == 1

    def test_read_boundary_value(self, env):
        a = add_block(env, (0, 0))
        env.add_boundary_block(ArithmeticBlock((-1, -1), (8, 8), lambda addr: -2.5))
        assert env.read_from(a, (-1, 0)) == -2.5

    def test_read_unmapped_address_raises(self, env):
        a = add_block(env, (0, 0))
        with pytest.raises(AddressError):
            env.read_from(a, (50, 50))

    def test_write_from_other_block(self, env):
        a = add_block(env, (0, 0))
        b = add_block(env, (4, 0))
        env.write_from(a, (4, 1), 6.0)
        env.refresh()
        assert b.read((4, 1)) == 6.0

    def test_write_unmapped_raises(self, env):
        a = add_block(env, (0, 0))
        with pytest.raises(AddressError):
            env.write_from(a, (99, 99), 1.0)

    def test_root_read(self, env):
        a = add_block(env, (0, 0))
        a.write((2, 2), 4.0)
        env.refresh()
        assert env.read((2, 2)) == 4.0


class TestMissingPagesAndRefresh:
    def test_reading_invalid_buffer_only_records_missing(self, env):
        a = add_block(env, (0, 0))
        remote = add_block(env, (4, 0), buffer_only=True, owner=1)
        remote.invalidate()
        value = env.read_from(a, (5, 0))
        assert value == 0.0
        assert len(env.missing_pages) == 1
        assert env.stats.missing_recorded == 1

    def test_refresh_fails_and_records_failed_pages(self, env):
        a = add_block(env, (0, 0))
        remote = add_block(env, (4, 0), buffer_only=True, owner=1)
        remote.invalidate()
        env.read_from(a, (5, 0))
        assert env.refresh() is False
        assert env.missing_pages == set()
        assert len(env.last_failed_pages) == 1
        assert env.stats.failed_refreshes == 1

    def test_refresh_success_swaps_buffers(self, env):
        a = add_block(env, (0, 0))
        a.write((0, 0), 9.0)
        assert env.refresh() is True
        assert a.read((0, 0)) == 9.0
        assert env.step == 1

    def test_warmup_refresh_does_not_swap(self, env):
        a = add_block(env, (0, 0))
        a.write((0, 0), 9.0)
        assert env.refresh(warmup=True) is True
        assert a.read((0, 0)) != 9.0
        assert env.step == 0

    def test_page_snapshot_and_install(self, env):
        a = add_block(env, (0, 0))
        a.write((0, 0), 1.5)
        env.refresh()
        key = PageKey(a.block_id, 0)
        data = env.page_snapshot(key)
        data = data + 1
        env.page_install(key, data)
        assert a.read((0, 0)) == 2.5

    def test_page_ops_reject_virtual_blocks(self, env):
        boundary = ArithmeticBlock((-1, -1), (4, 4), lambda a: 0.0)
        env.add_boundary_block(boundary)
        with pytest.raises(EnvError):
            env.page_snapshot(PageKey(boundary.block_id, 0))

    def test_invalidate_buffer_only(self, env):
        remote = add_block(env, (4, 0), buffer_only=True, owner=1)
        remote.page_fill(0, np.ones((4, 1)))
        env.invalidate_buffer_only()
        a = add_block(env, (0, 0))
        env.read_from(a, (4, 0))
        assert env.missing_pages


class TestEnvMMAT:
    def test_mmat_disabled_by_default(self, env):
        assert not env.mmat.enabled

    def test_mmat_caches_out_of_block_resolution(self, mmat_env):
        env = mmat_env
        a = add_block(env, (0, 0))
        b = add_block(env, (4, 0))
        b.write((4, 0), 1.0)
        env.refresh()
        env.read_from(a, (4, 0))
        searches_after_first = env.stats.searches
        env.read_from(a, (4, 0))
        assert env.stats.searches == searches_after_first  # no new search
        assert env.stats.mmat_hits == 1

    def test_mmat_reset_forces_search_again(self, mmat_env):
        env = mmat_env
        a = add_block(env, (0, 0))
        add_block(env, (4, 0))
        env.read_from(a, (4, 0))
        env.mmat.reset()
        env.read_from(a, (4, 0))
        assert env.stats.searches == 2

    def test_mmat_stats(self):
        memo = MMAT(enabled=True)
        memo.remember(1, (0, 1), "block")
        assert memo.lookup(1, (0, 1)) == "block"
        assert memo.lookup(1, (9, 9)) is None
        stats = memo.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["entries"] == 1
        assert memo.memory_bytes() > 0

    def test_mmat_disabled_lookup_is_noop(self):
        memo = MMAT(enabled=False)
        memo.remember(1, (0, 0), "x")
        assert memo.lookup(1, (0, 0)) is None
        assert len(memo) == 0


class TestEnvAccounting:
    def test_memory_report_shape(self, env):
        add_block(env, (0, 0))
        report = env.memory_report()
        assert report["pool_used"] > 0
        assert report["pool_unused"] > 0
        assert report["pool_capacity"] == report["pool_used"] + report["pool_unused"]
        assert report["env_structure"] > 0

    def test_stats_merge(self, env):
        env.stats.reads = 3
        other = Env(pool_bytes=1 << 16)
        other.stats.reads = 4
        assert env.stats.merged_with(other.stats).reads == 7

    def test_data_bytes(self, env):
        block = add_block(env, (0, 0))
        assert env.data_bytes() == block.nbytes
