"""Unit tests for the shared-memory page-transport primitives.

Covers the pieces :mod:`repro.runtime.shm` promises independently of
the process backend: descriptor round-trips through an arena, seqlock
version checking on the reader side, generation memoization, bump
allocation across segments, eligibility gating, segment hygiene
(close/unlink/idempotency) and the orphan probe-sweep.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.runtime import shm as shm_mod
from repro.runtime.errors import NetworkError
from repro.runtime.shm import (
    SegmentCache,
    SharedPageArena,
    ShmVersionError,
    cleanup_rank_segments,
    new_shm_uid,
    segment_name,
    shm_available,
    shm_eligible,
    validate_page_transport,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)


def leftover_segments(uid: str) -> list:
    return glob.glob(f"/dev/shm/repro_shm_{uid}*")


@pytest.fixture
def uid():
    value = new_shm_uid()
    yield value
    # Safety net: never leak segments out of a test, even on failure.
    for rank in range(8):
        cleanup_rank_segments(value, rank)


class TestValidation:
    @pytest.mark.parametrize("name", ["auto", "shm", "pipe", "SHM", " Pipe "])
    def test_known_transports_normalise(self, name):
        assert validate_page_transport(name) == name.strip().lower()

    @pytest.mark.parametrize("name", ["tcp", "", "shared", None, 3])
    def test_unknown_transports_raise(self, name):
        with pytest.raises((ValueError, AttributeError)):
            validate_page_transport(name)


class TestEligibility:
    def test_contiguous_float_array_is_eligible(self):
        assert shm_eligible(np.arange(6, dtype=np.float64))

    def test_non_contiguous_view_is_still_eligible(self):
        # publish() compacts; strided views must not force the pipe path.
        assert shm_eligible(np.arange(10, dtype=np.float64)[::2])

    def test_object_dtype_is_not_eligible(self):
        assert not shm_eligible(np.array([object(), object()]))

    def test_empty_array_is_not_eligible(self):
        assert not shm_eligible(np.array([], dtype=np.float64))

    def test_non_array_is_not_eligible(self):
        assert not shm_eligible([1.0, 2.0])


class TestArenaRoundTrip:
    def test_publish_then_read_round_trips(self, uid):
        arena = SharedPageArena(uid, 0)
        cache = SegmentCache()
        try:
            data = np.linspace(0.0, 1.0, 16).reshape(4, 4)
            name, offset, nbytes, version = arena.publish(("blk", 0), data)
            assert name == segment_name(uid, 0, 0)
            assert nbytes == data.nbytes
            out = cache.read(name, offset, nbytes, version, (4, 4), data.dtype.str)
            np.testing.assert_array_equal(out, data)
            # The read is a copy, not a view of the shared segment.
            assert out.base is None
        finally:
            cache.close_all()
            arena.close(unlink=True)
        assert leftover_segments(uid) == []

    def test_non_contiguous_pages_are_compacted(self, uid):
        arena = SharedPageArena(uid, 0)
        cache = SegmentCache()
        try:
            strided = np.arange(12, dtype=np.float64)[::3]
            name, offset, nbytes, version = arena.publish(("blk", 1), strided)
            out = cache.read(name, offset, nbytes, version, (4,), "<f8")
            np.testing.assert_array_equal(out, [0.0, 3.0, 6.0, 9.0])
        finally:
            cache.close_all()
            arena.close(unlink=True)

    def test_same_generation_memoises_descriptor(self, uid):
        arena = SharedPageArena(uid, 0)
        try:
            data = np.arange(8, dtype=np.float64)
            first = arena.publish(("blk", 0), data, generation=5)
            second = arena.publish(("blk", 0), data, generation=5)
            assert first == second
        finally:
            arena.close(unlink=True)

    def test_new_generation_bumps_version_in_place(self, uid):
        arena = SharedPageArena(uid, 0)
        cache = SegmentCache()
        try:
            data = np.arange(8, dtype=np.float64)
            name1, off1, nb1, v1 = arena.publish(("blk", 0), data, generation=1)
            name2, off2, nb2, v2 = arena.publish(("blk", 0), data + 1, generation=2)
            assert (name2, off2, nb2) == (name1, off1, nb1)  # same slot
            assert v2 == v1 + 2  # seqlock: one complete rewrite
            out = cache.read(name2, off2, nb2, v2, (8,), "<f8")
            np.testing.assert_array_equal(out, data + 1)
        finally:
            cache.close_all()
            arena.close(unlink=True)

    def test_no_generation_takes_a_fresh_slot_each_publish(self, uid):
        # A peer may still hold the previous descriptor of the same page,
        # so stamp-less publishes must never rewrite in place.
        arena = SharedPageArena(uid, 0)
        cache = SegmentCache()
        try:
            data = np.arange(8, dtype=np.float64)
            d1 = arena.publish(("blk", 0), data)
            d2 = arena.publish(("blk", 0), data + 1)
            assert (d1[0], d1[1]) != (d2[0], d2[1])  # different slot
            # Both descriptors stay readable at their own version.
            np.testing.assert_array_equal(
                cache.read(d1[0], d1[1], d1[2], d1[3], (8,), "<f8"), data
            )
            np.testing.assert_array_equal(
                cache.read(d2[0], d2[1], d2[2], d2[3], (8,), "<f8"), data + 1
            )
        finally:
            cache.close_all()
            arena.close(unlink=True)

    def test_size_change_allocates_fresh_slot(self, uid):
        arena = SharedPageArena(uid, 0)
        try:
            small = arena.publish(("blk", 0), np.arange(4, dtype=np.float64), generation=1)
            large = arena.publish(("blk", 0), np.arange(9, dtype=np.float64), generation=2)
            assert (small[0], small[1]) != (large[0], large[1])
            assert large[2] == 72
        finally:
            arena.close(unlink=True)

    def test_oversized_page_gets_exact_segment(self, uid):
        arena = SharedPageArena(uid, 0, segment_bytes=1024)
        try:
            big = np.zeros(1024, dtype=np.float64)  # 8 KiB > segment_bytes
            name, _offset, nbytes, _v = arena.publish(("blk", 0), big)
            assert nbytes == big.nbytes
            assert arena.segment_count == 1
        finally:
            arena.close(unlink=True)

    def test_bump_allocation_spills_to_new_segment(self, uid):
        arena = SharedPageArena(uid, 0, segment_bytes=256)
        try:
            for index in range(8):  # 8 * (8 + 64) bytes > 2 * 256
                arena.publish(("blk", index), np.arange(8, dtype=np.float64))
            assert arena.segment_count >= 2
        finally:
            arena.close(unlink=True)
        assert leftover_segments(uid) == []


class TestSeqlockChecks:
    def test_stale_descriptor_version_raises(self, uid):
        arena = SharedPageArena(uid, 0)
        cache = SegmentCache()
        try:
            data = np.arange(8, dtype=np.float64)
            name, offset, nbytes, version = arena.publish(("blk", 0), data, generation=1)
            arena.publish(("blk", 0), data + 1, generation=2)  # in-place rewrite
            with pytest.raises(ShmVersionError):
                cache.read(name, offset, nbytes, version, (8,), "<f8")
        finally:
            cache.close_all()
            arena.close(unlink=True)

    def test_version_error_does_not_block_close(self, uid):
        # The raised traceback must not retain buffer views: closing the
        # cache (and the arena) right after a failed read has to succeed.
        arena = SharedPageArena(uid, 0)
        cache = SegmentCache()
        data = np.arange(8, dtype=np.float64)
        name, offset, nbytes, version = arena.publish(("blk", 0), data, generation=1)
        arena.publish(("blk", 0), data, generation=2)
        with pytest.raises(ShmVersionError):
            cache.read(name, offset, nbytes, version, (8,), "<f8")
        cache.close_all()
        arena.close(unlink=True)
        assert leftover_segments(uid) == []

    def test_missing_segment_raises_network_error(self, uid):
        cache = SegmentCache()
        with pytest.raises(NetworkError):
            cache.read(segment_name(uid, 3, 0), 0, 64, 2, (8,), "<f8")


class TestHygiene:
    def test_close_is_idempotent(self, uid):
        arena = SharedPageArena(uid, 0)
        arena.publish(("blk", 0), np.arange(4, dtype=np.float64))
        arena.close(unlink=True)
        arena.close(unlink=True)
        assert leftover_segments(uid) == []

    def test_publish_after_close_raises(self, uid):
        arena = SharedPageArena(uid, 0)
        arena.close(unlink=True)
        with pytest.raises(NetworkError):
            arena.publish(("blk", 0), np.arange(4, dtype=np.float64))

    def test_cleanup_sweeps_orphaned_segments(self, uid):
        # Simulate a rank that died before unlinking: close without unlink.
        arena = SharedPageArena(uid, 2, segment_bytes=256)
        for index in range(8):
            arena.publish(("blk", index), np.arange(8, dtype=np.float64))
        orphaned = arena.segment_count
        assert orphaned >= 2
        arena.close(unlink=False)
        assert len(leftover_segments(uid)) == orphaned
        assert cleanup_rank_segments(uid, 2) == orphaned
        assert leftover_segments(uid) == []

    def test_cleanup_of_clean_rank_is_a_noop(self, uid):
        assert cleanup_rank_segments(uid, 0) == 0

    def test_segment_names_are_deterministic(self):
        assert segment_name("abc123", 3, 7) == "repro_shm_abc123_3_7"
