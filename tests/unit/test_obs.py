"""Unit tests for the observability subsystem (repro.obs)."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    Tracer,
    chrome_trace_document,
    phase_report,
    validate_chrome_trace,
    widest_spans,
)
from repro.runtime import TaskContext, TaskCounters, TraceRecorder, task_scope


class TestTracer:
    def test_disabled_by_default_and_records_nothing(self):
        tracer = Tracer()
        assert not tracer.enabled
        with tracer.span("phase"):
            pass
        assert tracer.async_begin("flight") is None
        tracer.async_end(None)
        assert tracer.snapshot() == []

    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer()
        assert tracer.span("a") is tracer.span("b")

    def test_records_complete_spans_with_nesting_path(self):
        tracer = Tracer()
        tracer.set_enabled(True)
        with tracer.span("outer"):
            with tracer.span("inner", detail=3):
                pass
        events = tracer.snapshot()
        assert [e["name"] for e in events] == ["outer", "inner"]
        inner = events[1]
        assert inner["path"] == "outer;inner"
        assert inner["args"] == {"detail": 3}
        assert inner["dur_ns"] >= 0
        outer = events[0]
        # The outer span starts first but closes last: it must contain
        # the inner one on the aligned timeline.
        assert outer["ts_ns"] <= inner["ts_ns"]
        assert outer["ts_ns"] + outer["dur_ns"] >= inner["ts_ns"] + inner["dur_ns"]

    def test_spans_tagged_with_task_context(self):
        tracer = Tracer()
        tracer.set_enabled(True)
        ctx = TaskContext(mpi_rank=2, mpi_size=4, omp_thread=1, omp_threads=2)
        with task_scope(ctx):
            with tracer.span("work"):
                pass
        (event,) = tracer.snapshot()
        assert event["rank"] == 2
        assert event["thread"] == 1

    def test_async_begin_end_pair(self):
        tracer = Tracer()
        tracer.set_enabled(True)
        token = tracer.async_begin("flight", pages=7)
        tracer.async_end(token, drained=False)
        begin, end = tracer.snapshot()
        assert begin["ph"] == "b" and end["ph"] == "e"
        assert begin["id"] == end["id"]
        assert begin["ts_ns"] <= end["ts_ns"]
        assert begin["args"] == {"pages": 7}

    def test_ring_buffer_drops_oldest_and_counts(self):
        tracer = Tracer(capacity=8)
        tracer.set_enabled(True)
        for i in range(20):
            with tracer.span(f"s{i}"):
                pass
        events = tracer.snapshot()
        assert len(events) == 8
        # Oldest dropped: the survivors are the most recent spans.
        assert events[-1]["name"] == "s19"
        assert tracer.dropped_events() == 12

    def test_merge_events_joins_other_process_snapshot(self):
        a, b = Tracer(), Tracer()
        a.set_enabled(True)
        b.set_enabled(True)
        with a.span("parent"):
            pass
        ctx = TaskContext(mpi_rank=1, mpi_size=2)
        with task_scope(ctx):
            with b.span("child"):
                pass
        a.merge_events(b.snapshot())
        events = a.snapshot()
        assert {e["name"] for e in events} == {"parent", "child"}
        assert {e["rank"] for e in events} == {0, 1}

    def test_reset_clears_buffers_and_merged(self):
        tracer = Tracer()
        tracer.set_enabled(True)
        with tracer.span("x"):
            pass
        tracer.merge_events([{"ph": "X", "name": "y", "path": "y", "ts_ns": 1,
                              "dur_ns": 1, "rank": 1, "thread": 0, "args": None}])
        tracer.reset()
        assert tracer.snapshot() == []

    def test_span_at_explicit_track(self):
        tracer = Tracer()
        tracer.set_enabled(True)
        with tracer.span_at("serve", 3, "recv"):
            pass
        (event,) = tracer.snapshot()
        assert event["rank"] == 3
        assert event["thread"] == "recv"


class TestHistogram:
    def test_stats_exact_below_reservoir(self):
        hist = Histogram()
        for v in range(1, 101):
            hist.record(float(v))
        stats = hist.stats()
        assert stats["count"] == 100
        assert stats["sum"] == pytest.approx(5050.0)
        assert stats["min"] == 1.0 and stats["max"] == 100.0
        assert stats["p50"] == pytest.approx(50.5)
        assert stats["p95"] == pytest.approx(95.05)
        assert stats["p99"] == pytest.approx(99.01)

    def test_merge_combines_moments(self):
        a, b = Histogram(), Histogram()
        for v in (1.0, 2.0):
            a.record(v)
        for v in (10.0, 20.0):
            b.record(v)
        a.merge(b)
        stats = a.stats()
        assert stats["count"] == 4
        assert stats["sum"] == pytest.approx(33.0)
        assert stats["min"] == 1.0 and stats["max"] == 20.0

    def test_empty_histogram_percentile(self):
        assert Histogram().percentile(99) == 0.0


class TestMetricsRegistry:
    def test_record_and_snapshot_per_rank(self):
        registry = MetricsRegistry()
        registry.record("halo.wait_ns", 100, rank=0)
        registry.record("halo.wait_ns", 300, rank=1)
        registry.count("exchanges", 2, rank=1)
        snap = registry.snapshot()
        hist = snap["histograms"]["halo.wait_ns"]
        assert hist["all"]["count"] == 2
        assert set(hist["per_rank"]) == {0, 1}
        assert hist["per_rank"][1]["sum"] == 300
        assert snap["counters"]["exchanges"]["all"] == 2

    def test_export_and_merge_state(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.record("m", 1, rank=0)
        b.record("m", 3, rank=1)
        b.count("c", 5, rank=1)
        a.merge_state(b.export_state())
        snap = a.snapshot()
        assert snap["histograms"]["m"]["all"]["count"] == 2
        assert snap["histograms"]["m"]["per_rank"][1]["max"] == 3
        assert snap["counters"]["c"]["per_rank"][1] == 5

    def test_default_rank_comes_from_task_context(self):
        registry = MetricsRegistry()
        with task_scope(TaskContext(mpi_rank=2, mpi_size=4)):
            registry.record("m", 7)
        assert registry.snapshot()["histograms"]["m"]["per_rank"] == {
            2: registry.snapshot()["histograms"]["m"]["per_rank"][2]
        }


def _traced_events():
    tracer = Tracer()
    tracer.set_enabled(True)
    with tracer.span("processing"):
        with tracer.span("sweep", sites=16):
            pass
    token = tracer.async_begin("halo.flight", pages=2)
    tracer.async_end(token)
    with task_scope(TaskContext(mpi_rank=1, mpi_size=2)):
        with tracer.span("sweep"):
            pass
    return tracer.snapshot()


class TestChromeExport:
    def test_document_validates_and_maps_tracks(self):
        doc = chrome_trace_document(_traced_events())
        assert validate_chrome_trace(doc) == []
        events = doc["traceEvents"]
        process_names = [e for e in events if e.get("name") == "process_name"]
        assert {e["pid"] for e in process_names} == {0, 1}
        complete = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] >= 0 for e in complete)
        assert all(e["ts"] >= 0 for e in events if e["ph"] != "M")

    def test_named_thread_gets_aux_tid(self):
        tracer = Tracer()
        tracer.set_enabled(True)
        with tracer.span_at("serve", 0, "recv"):
            pass
        with tracer.span("main"):
            pass
        doc = chrome_trace_document(tracer.snapshot())
        thread_names = {
            e["args"]["name"]: e["tid"]
            for e in doc["traceEvents"]
            if e.get("name") == "thread_name"
        }
        assert thread_names["recv"] >= 100
        assert thread_names["omp 0"] == 0

    def test_document_is_json_serialisable(self):
        doc = chrome_trace_document(_traced_events())
        assert json.loads(json.dumps(doc))["traceEvents"]

    def test_validator_rejects_bad_documents(self):
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
        bad_ph = {"traceEvents": [{"ph": "Q", "pid": 0, "tid": 0}]}
        assert any("unsupported ph" in p for p in validate_chrome_trace(bad_ph))
        negative = {"traceEvents": [
            {"ph": "X", "name": "s", "cat": "s", "ts": 0, "dur": -5, "pid": 0, "tid": 0}
        ]}
        assert any("negative dur" in p for p in validate_chrome_trace(negative))
        unpaired = {"traceEvents": [
            {"ph": "b", "name": "f", "cat": "f", "id": 1, "ts": 0, "pid": 0, "tid": 0}
        ]}
        assert any("no matching end" in p for p in validate_chrome_trace(unpaired))
        backwards = {"traceEvents": [
            {"ph": "b", "name": "f", "cat": "f", "id": 1, "ts": 10, "pid": 0, "tid": 0},
            {"ph": "e", "name": "f", "cat": "f", "id": 1, "ts": 5, "pid": 0, "tid": 0},
        ]}
        assert any("ends before" in p for p in validate_chrome_trace(backwards))


class TestReports:
    def test_phase_report_aggregates_and_indents(self):
        report = phase_report(_traced_events())
        lines = report.splitlines()
        assert "phase" in lines[0] and "%wall" in lines[0]
        assert any(line.lstrip().startswith("sweep") for line in lines[1:])
        # The nested sweep is indented under processing.
        sweep_lines = [line for line in lines if "sweep" in line]
        assert any(line.startswith("  ") for line in sweep_lines)

    def test_phase_report_limit(self):
        report = phase_report(_traced_events(), limit=1)
        assert len(report.splitlines()) == 2  # header + one row

    def test_phase_report_empty(self):
        assert "no spans" in phase_report([])

    def test_widest_spans_per_rank(self):
        top = widest_spans(_traced_events(), n=1)
        assert set(top) == {0, 1}
        assert all(len(spans) == 1 for spans in top.values())


class TestMergeCountersDescriptiveFields:
    def test_first_non_default_value_wins(self):
        recorder = TraceRecorder()
        with task_scope(TaskContext(mpi_rank=0, mpi_size=2)):
            mine = recorder.for_task()
        mine.access_pattern = "random"
        mine.bytes_per_update = 64
        mine.updates = 10
        # An incoming rank that never set its profile (defaults) must not
        # clobber the recorded one, regardless of merge order.
        incoming = {(0, 0): TaskCounters(updates=5)}
        recorder.merge_counters(incoming)
        merged = recorder.all_counters()[(0, 0)]
        assert merged.updates == 15
        assert merged.access_pattern == "random"
        assert merged.bytes_per_update == 64

    def test_default_mine_adopts_incoming_profile(self):
        recorder = TraceRecorder()
        with task_scope(TaskContext(mpi_rank=0, mpi_size=2)):
            recorder.for_task().updates = 1
        incoming = {(0, 0): TaskCounters(access_pattern="bucketed", bytes_per_update=96)}
        recorder.merge_counters(incoming)
        merged = recorder.all_counters()[(0, 0)]
        assert merged.access_pattern == "bucketed"
        assert merged.bytes_per_update == 96
