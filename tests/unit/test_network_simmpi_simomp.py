"""Unit tests for the simulated interconnect, MPI world and thread team."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.memory import DataBlock, Env, PageKey
from repro.runtime import (
    BlockDirectory,
    MPIWorld,
    SimNetwork,
    TaskContext,
    ThreadTeam,
    current_task,
    task_scope,
)
from repro.runtime.errors import CollectiveError, NetworkError, TaskError


class TestSimNetworkPointToPoint:
    def test_send_recv(self):
        net = SimNetwork(2)
        net.send(0, 1, "tag", {"x": 1})
        assert net.recv(1, "tag") == {"x": 1}
        assert net.stats.messages == 1
        assert net.stats.bytes_moved > 0

    def test_recv_by_source(self):
        net = SimNetwork(3)
        net.send(0, 2, "t", "from0")
        net.send(1, 2, "t", "from1")
        assert net.recv(2, "t", src=1) == "from1"
        assert net.recv(2, "t", src=0) == "from0"

    def test_numpy_payload_counts_bytes(self):
        net = SimNetwork(2)
        payload = np.zeros(100, dtype=np.float64)
        net.send(0, 1, 0, payload)
        assert net.stats.bytes_moved >= payload.nbytes

    def test_bad_rank_rejected(self):
        net = SimNetwork(2)
        with pytest.raises(NetworkError):
            net.send(0, 5, "t", 1)
        with pytest.raises(NetworkError):
            net.recv(-1, "t")

    def test_recv_timeout(self):
        net = SimNetwork(2, timeout=0.05)
        with pytest.raises(NetworkError):
            net.recv(0, "never")

    def test_size_must_be_positive(self):
        with pytest.raises(NetworkError):
            SimNetwork(0)


class TestSimNetworkCollectives:
    def test_single_rank_collectives_are_trivial(self):
        net = SimNetwork(1)
        net.barrier()
        assert net.allreduce_and(True) is True
        assert net.allreduce_sum(2.5) == 2.5

    def test_allreduce_and_across_threads(self):
        net = SimNetwork(3)
        results = [None] * 3

        def worker(rank, flag):
            results[rank] = net.allreduce_and(flag)

        threads = [
            threading.Thread(target=worker, args=(r, r != 1)) for r in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [False, False, False]

    def test_allreduce_sum_across_threads(self):
        net = SimNetwork(4)
        results = [None] * 4

        def worker(rank):
            results[rank] = net.allreduce_sum(float(rank))

        threads = [threading.Thread(target=worker, args=(r,)) for r in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [6.0] * 4

    def test_barrier_counts(self):
        net = SimNetwork(1)
        net.barrier()
        net.barrier()
        assert net.stats.barriers == 2


class TestPageFetch:
    def make_env_with_block(self, value: float):
        env = Env(pool_bytes=1 << 18)
        block = DataBlock((0, 0), (4, 4), components=1, page_elements=4,
                          allocator=env.allocator)
        env.add_data_block(block)
        block.write((0, 0), value)
        env.refresh()
        return env, block

    def test_fetch_page_reads_remote_env(self):
        net = SimNetwork(2)
        env, block = self.make_env_with_block(3.0)
        net.register_endpoint(1, env)
        data = net.fetch_page(0, 1, block.block_id, 0)
        assert data[0, 0] == 3.0
        assert net.stats.page_fetches == 1
        assert net.stats.messages == 2

    def test_fetch_without_endpoint_raises(self):
        net = SimNetwork(2)
        with pytest.raises(NetworkError):
            net.fetch_page(0, 1, 1, 0)


class TestBlockDirectory:
    def test_register_and_lookup(self):
        directory = BlockDirectory()
        directory.register(("blk", 0), rank=0, block_id=11, owner=True)
        directory.register(("blk", 0), rank=1, block_id=22, owner=False)
        assert directory.owner_of(("blk", 0)) == 0
        assert directory.block_id_on(("blk", 0), 1) == 22
        assert ("blk", 0) in directory.known_blocks()

    def test_conflicting_owner_rejected(self):
        directory = BlockDirectory()
        directory.register("k", rank=0, block_id=1, owner=True)
        with pytest.raises(NetworkError):
            directory.register("k", rank=1, block_id=2, owner=True)

    def test_unknown_lookups(self):
        directory = BlockDirectory()
        with pytest.raises(NetworkError):
            directory.owner_of("missing")
        with pytest.raises(NetworkError):
            directory.block_id_on("missing", 0)


class TestMPIWorld:
    def test_size_validation(self):
        with pytest.raises(TaskError):
            MPIWorld(0)

    def test_run_spmd_serial_world_runs_inline(self):
        world = MPIWorld(1)
        results = world.run_spmd(lambda ctx: ctx.mpi_rank)
        assert [r.value for r in results] == [0]

    def test_run_spmd_sets_task_context(self):
        world = MPIWorld(3)
        results = world.run_spmd(lambda ctx: (current_task().mpi_rank, ctx.mpi_size))
        assert sorted(r.value for r in results) == [(0, 3), (1, 3), (2, 3)]

    def test_run_spmd_propagates_errors(self):
        world = MPIWorld(2)

        def body(ctx):
            if ctx.mpi_rank == 1:
                raise ValueError("rank 1 exploded")
            # rank 0 must not hang on a barrier that rank 1 never reaches,
            # so this body does not use collectives.
            return "ok"

        with pytest.raises(RuntimeError):
            world.run_spmd(body)

    def test_register_env_and_fetch_by_logical(self):
        world = MPIWorld(2)
        env = Env(pool_bytes=1 << 18)
        block = DataBlock((0, 0), (4, 4), components=1, page_elements=4,
                          allocator=env.allocator)
        block.logical_key = ("b", 0)
        env.add_data_block(block)
        block.write((0, 0), 4.5)
        env.refresh()
        world.register_env(1, env)
        world.directory.register(("b", 0), rank=1, block_id=block.block_id, owner=True)
        data = world.fetch_page_by_logical(0, ("b", 0), 0)
        assert data[0, 0] == 4.5

    def test_env_of_unknown_rank(self):
        with pytest.raises(NetworkError):
            MPIWorld(1).env_of(0)

    def test_finalize_and_traffic_summary(self):
        world = MPIWorld(1)
        world.finalize()
        assert world.finalized
        assert "messages" in world.traffic_summary()


class TestThreadTeam:
    def test_size_validation(self):
        with pytest.raises(TaskError):
            ThreadTeam(0)

    def test_parallel_runs_every_member(self):
        team = ThreadTeam(4)
        with task_scope(TaskContext(omp_thread=0, omp_threads=4)):
            results = team.parallel(lambda ctx: current_task().omp_thread)
        assert sorted(results) == [0, 1, 2, 3]

    def test_single_runs_once_and_shares_result(self):
        team = ThreadTeam(3)
        calls = []

        def body(ctx):
            return team.single(lambda: calls.append(ctx.omp_thread) or "shared")

        with task_scope(TaskContext(omp_thread=0, omp_threads=3)):
            results = team.parallel(body)
        assert results == ["shared"] * 3
        assert len(calls) == 1

    def test_single_propagates_exceptions_to_all(self):
        team = ThreadTeam(2)

        def body(ctx):
            try:
                team.single(lambda: (_ for _ in ()).throw(ValueError("boom")))
            except ValueError:
                return "caught"
            return "missed"

        with task_scope(TaskContext(omp_thread=0, omp_threads=2)):
            results = team.parallel(body)
        assert results == ["caught", "caught"]

    def test_barrier_counts(self):
        team = ThreadTeam(1)
        team.barrier()
        team.barrier()
        assert team.barrier_count == 2

    def test_member_failure_raises(self):
        team = ThreadTeam(2)

        def body(ctx):
            if ctx.omp_thread == 1:
                raise RuntimeError("member down")
            return "fine"

        with task_scope(TaskContext(omp_thread=0, omp_threads=2)):
            with pytest.raises(RuntimeError):
                team.parallel(body)
