"""Unit tests for the three sample DSL processing systems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.annotation import Platform
from repro.apps import JacobiSGrid, JacobiUSGrid, ParticleSimulation
from repro.dsl import (
    BlockKernel,
    BlockSpec,
    BucketView,
    ParticleTarget,
    SGrid2DTarget,
    USGrid2DTarget,
)
from repro.memory import ArithmeticBlock, BufferOnlyBlock, DataBlock
from repro.runtime import TaskContext, task_scope


class TestBlockSpecAndAssignment:
    def test_zorder_of_spec(self):
        near = BlockSpec((0, 0), (8, 8), "a", (0, 0))
        far = BlockSpec((64, 64), (8, 8), "b", (8, 8))
        assert near.zorder() < far.zorder()

    def test_assign_tasks_balances_blocks(self):
        app = SGrid2DTarget({"region": 32, "block_size": 8})
        specs = app.block_specs()
        assignment = app.assign_tasks(specs)
        assert len(assignment) == 16
        # Serial run: everything goes to task 0.
        assert {tid for _spec, tid in assignment} == {0}

    def test_assign_tasks_with_parallel_platform(self):
        platform = Platform(aspects=[])
        app = SGrid2DTarget({"region": 32, "block_size": 8})
        app.bind_platform(platform)
        # Fake a 4-task platform by monkeypatching total_tasks via aspects.
        platform_total = 4
        app_total = lambda: platform_total  # noqa: E731
        assignment = app.assign_tasks(app.block_specs())
        # With total_tasks == 1 everything is task 0; re-run with 4 tasks by
        # constructing the platform with a shared-memory aspect instead.
        from repro.aspects import openmp_aspects

        platform4 = Platform(aspects=openmp_aspects(4))
        app4 = SGrid2DTarget({"region": 32, "block_size": 8})
        app4.bind_platform(platform4)
        assignment4 = app4.assign_tasks(app4.block_specs())
        counts = {}
        for _spec, tid in assignment4:
            counts[tid] = counts.get(tid, 0) + 1
        assert set(counts) == {0, 1, 2, 3}
        assert all(count == 4 for count in counts.values())

    def test_contiguous_zorder_runs_share_tasks(self):
        from repro.aspects import openmp_aspects

        platform = Platform(aspects=openmp_aspects(4))
        app = SGrid2DTarget({"region": 32, "block_size": 8})
        app.bind_platform(platform)
        assignment = app.assign_tasks(app.block_specs())
        # Blocks are dealt out in contiguous Z-order runs.
        task_sequence = [tid for _spec, tid in assignment]
        assert task_sequence == sorted(task_sequence)

    def test_zorder_is_cached_per_spec(self):
        spec = BlockSpec((0, 0), (8, 8), "a", (3, 5))
        first = spec.zorder()
        assert spec._zorder == first
        assert spec.zorder() == first

    def test_presorted_specs_keep_their_order(self):
        # 1-D specs (USGrid) are generated in Z-order already: the
        # assignment must not re-sort them (and must keep identity).
        app = USGrid2DTarget({"region": 16, "block_cells": 32})
        specs = app.block_specs()
        assignment = app.assign_tasks(specs)
        assert [spec for spec, _tid in assignment] == specs

    def test_unsorted_specs_still_sorted_by_zorder(self):
        app = SGrid2DTarget({"region": 32, "block_size": 8})
        specs = list(reversed(app.block_specs()))
        assignment = app.assign_tasks(specs)
        keys = [spec.zorder() for spec, _tid in assignment]
        assert keys == sorted(keys)


class TestSGridTarget:
    def make_app(self, **overrides):
        config = dict(region=16, block_size=8, page_elements=16, loops=1,
                      init=lambda x, y: float(x + y))
        config.update(overrides)
        app = JacobiSGrid(config)
        app.bind_platform(Platform())
        return app

    def test_region_must_divide_into_blocks(self):
        with pytest.raises(ValueError):
            SGrid2DTarget({"region": 10, "block_size": 8})

    def test_build_env_creates_blocks_and_boundary(self):
        app = self.make_app()
        app.initialize()
        assert len(app.env.data_blocks()) == 4
        assert len(app.env.boundary_blocks) == 1
        assert isinstance(app.env.boundary_blocks[0], ArithmeticBlock)

    def test_initial_field_loaded_into_both_buffers(self):
        app = self.make_app()
        app.initialize()
        block = app.env.data_blocks()[0]
        assert block.read((1, 2)) == 3.0
        block.refresh_swap()
        assert block.read((1, 2)) == 3.0

    def test_neumann_boundary_option(self):
        app = self.make_app(boundary="neumann")
        app.initialize()
        from repro.memory import ReferenceBlock

        assert isinstance(app.env.boundary_blocks[0], ReferenceBlock)
        # Mirrored boundary returns the edge value.
        block = app.env.data_blocks()[0]
        assert app.env.read_from(block, (-1, 0)) == app.env.read_from(block, (0, 0))

    def test_unknown_boundary_rejected(self):
        app = self.make_app(boundary="periodic")
        with pytest.raises(ValueError):
            app.initialize()

    def test_local_field_assembles_dense_grid(self):
        app = self.make_app()
        app.initialize()
        field = app.local_field()
        assert field.shape == (16, 16)
        assert field[3, 4] == 7.0

    def test_logical_keys_and_task_ids_assigned(self):
        app = self.make_app()
        app.initialize()
        for block in app.env.data_blocks():
            assert block.logical_key[0] == "sgrid"
            assert block.ch_tid == 0 and block.dm_tid == 0

    def test_block_kernel_get_set(self):
        app = self.make_app()
        app.initialize()
        block, kernel = next(iter(app.block_kernels()))
        assert isinstance(kernel, BlockKernel)
        assert kernel.get((0, 0), True) == 0.0
        kernel.set((0, 0), 42.0)
        app.env.refresh()
        assert kernel.get((0, 0), True) == 42.0

    def test_materialize_remote_blocks_as_buffer_only(self):
        app = self.make_app()
        platform = Platform()
        app.bind_platform(platform)
        with task_scope(TaskContext(mpi_rank=0, mpi_size=2)):
            # Pretend a 2-rank world: half the blocks become Buffer-only.
            from repro.aspects import mpi_aspects

            app2 = JacobiSGrid(dict(region=16, block_size=8, page_elements=16, loops=1))
            app2.bind_platform(Platform(aspects=mpi_aspects(2)))
            app2.initialize()
            kinds = [type(b).__name__ for b in app2.env.data_blocks(include_buffer_only=True)]
            assert "BufferOnlyBlock" in kinds and "DataBlock" in kinds


class TestUSGridTarget:
    def make_app(self, case="C", **overrides):
        config = dict(region=8, case=case, block_cells=16, page_elements=8, loops=1,
                      init=lambda x, y: float(x))
        config.update(overrides)
        app = JacobiUSGrid(config)
        app.bind_platform(Platform())
        return app

    def test_case_validation(self):
        with pytest.raises(ValueError):
            USGrid2DTarget({"region": 8, "case": "X"})

    def test_cell_count_divisibility(self):
        with pytest.raises(ValueError):
            USGrid2DTarget({"region": 10, "block_cells": 64})

    def test_case_c_layout_is_rowmajor(self):
        app = self.make_app("C")
        index_map = app.cell_index_map()
        assert index_map[0, 0] == 0
        assert index_map[0, 1] == 1
        assert index_map[1, 0] == app.region

    def test_case_r_layout_is_permutation(self):
        app = self.make_app("R")
        index_map = app.cell_index_map()
        assert sorted(index_map.reshape(-1)) == list(range(app.cell_count))
        assert not np.array_equal(index_map, self.make_app("C").cell_index_map())
        assert app.ACCESS_PATTERN == "random"

    def test_case_r_layout_is_deterministic(self):
        a = self.make_app("R").cell_index_map()
        b = self.make_app("R").cell_index_map()
        np.testing.assert_array_equal(a, b)

    def test_boundary_addresses_unique_and_outside_interior(self):
        app = self.make_app()
        ring = []
        n = app.region
        for x in range(-1, n + 1):
            ring.append(app.boundary_address(x, -1))
            ring.append(app.boundary_address(x, n))
        for y in range(n):
            ring.append(app.boundary_address(-1, y))
            ring.append(app.boundary_address(n, y))
        assert len(set(ring)) == len(ring)
        assert min(ring) >= app.cell_count
        assert max(ring) < app.cell_count + app.boundary_cells

    def test_build_env_static_boundary_and_neighbours(self):
        app = self.make_app()
        app.initialize()
        from repro.memory import StaticDataBlock

        assert isinstance(app.env.boundary_blocks[0], StaticDataBlock)
        block = app.env.data_blocks()[0]
        assert block.static_fields["neighbors"].shape == (16, 4)

    def test_local_field_matches_init(self):
        app = self.make_app()
        app.initialize()
        field = app.local_field()
        assert field.shape == (8, 8)
        np.testing.assert_allclose(field[3, :], 3.0)


class TestParticleTarget:
    def make_app(self, **overrides):
        config = dict(particles=64, bucket_capacity=16, block_buckets=4, page_elements=4,
                      loops=1)
        config.update(overrides)
        app = ParticleSimulation(config)
        app.bind_platform(Platform())
        return app

    def test_bucket_grid_power_of_two_and_divisible(self):
        app = self.make_app()
        assert app.bucket_grid % app.block_buckets == 0
        assert app.bucket_grid * app.bucket_grid * (app.bucket_capacity // 2) >= 64

    def test_too_many_particles_rejected(self):
        app = self.make_app(particles=64, bucket_capacity=2, block_buckets=4)
        app.particles = 10 ** 6
        with pytest.raises(ValueError):
            app.initialize()

    def test_build_env_places_all_particles(self):
        app = self.make_app()
        app.initialize()
        total = 0
        for block in app.env.data_blocks():
            dense = block.dense().reshape(block.element_count, app.components)
            for element in dense:
                total += BucketView(element, app.bucket_capacity).count
        assert total == 64

    def test_wall_block_returns_dummy_particles(self):
        app = self.make_app()
        app.initialize()
        block = app.env.data_blocks()[0]
        raw = app.env.read_from(block, (-1, 0, 0))
        view = BucketView(np.array(raw), app.bucket_capacity)
        assert view.count > 0
        assert all(view.particle(i)[0] == -1.0 for i in range(view.count))

    def test_particle_ids_unique(self):
        app = self.make_app()
        app.initialize()
        ids = []
        for block in app.env.data_blocks():
            dense = block.dense().reshape(block.element_count, app.components)
            for element in dense:
                view = BucketView(element, app.bucket_capacity)
                ids.extend(view.particle(i)[0] for i in range(view.count))
        assert len(ids) == len(set(ids)) == 64

    def test_bucket_view_pack_overflow(self):
        with pytest.raises(ValueError):
            BucketView.pack([np.zeros(10)] * 3, capacity=2)

    def test_bucket_view_roundtrip(self):
        records = [np.arange(10.0), np.arange(10.0) + 100]
        raw = BucketView.pack(records, capacity=4)
        view = BucketView(raw, 4)
        assert view.count == 2
        np.testing.assert_array_equal(view.particle(1), records[1])
        assert view.positions().shape == (2, 3)
