"""Unit tests for the textual pointcut language (tokenizer + parser).

Covers grammar round-trips, operator precedence (`!` > `&&` > `||`),
glob matching in named(), and syntax-error positions reported by
PointcutSyntaxError.
"""

from __future__ import annotations

import pytest

from repro.aop import (
    Aspect,
    JoinPointKind,
    PointcutSyntaxError,
    Weaver,
    annotate,
    as_pointcut,
    before,
    parse_pointcut,
    tagged,
)
from repro.aop.joinpoint import JoinPointShadow


def make_shadow(
    name="refresh",
    cls="Env",
    module="repro.memory.env",
    kind=JoinPointKind.EXECUTION,
    tags=(),
):
    return JoinPointShadow(kind=kind, module=module, cls=cls, name=name, tags=frozenset(tags))


class TestPrimitives:
    def test_execution_with_pattern(self):
        pc = parse_pointcut("execution(Env.refresh)")
        assert pc.matches(make_shadow())
        assert not pc.matches(make_shadow(name="get_blocks"))

    def test_execution_quoted_pattern(self):
        assert parse_pointcut("execution('Env.refresh')").matches(make_shadow())
        assert parse_pointcut('execution("Env.refresh")').matches(make_shadow())

    def test_bare_execution_matches_any_execution(self):
        pc = parse_pointcut("execution()")
        assert pc.matches(make_shadow())
        assert pc.matches(make_shadow(name="anything", cls="Other"))
        assert not pc.matches(make_shadow(kind=JoinPointKind.CALL))

    def test_bare_call_matches_any_call(self):
        pc = parse_pointcut("call()")
        assert pc.matches(make_shadow(kind=JoinPointKind.CALL))
        assert not pc.matches(make_shadow())

    def test_call_with_pattern_filters_kind(self):
        pc = parse_pointcut("call(Env.refresh)")
        assert pc.matches(make_shadow(kind=JoinPointKind.CALL))
        assert not pc.matches(make_shadow())

    def test_named_glob(self):
        pc = parse_pointcut("named('Proc*')")
        assert pc.matches(make_shadow(name="Processing", cls=None))
        assert pc.matches(make_shadow(name="ProcessData"))
        assert not pc.matches(make_shadow(name="Initialize"))

    def test_named_class_glob(self):
        pc = parse_pointcut("named('*Env.refresh')")
        assert pc.matches(make_shadow(cls="MyEnv"))
        assert not pc.matches(make_shadow(cls="Other"))

    def test_within(self):
        pc = parse_pointcut("within('repro.memory.*')")
        assert pc.matches(make_shadow())
        assert not pc.matches(make_shadow(module="repro.apps.jacobi"))

    def test_tagged_exact(self):
        pc = parse_pointcut("tagged('memory.refresh')")
        assert pc.matches(make_shadow(tags={"memory.refresh"}))
        assert not pc.matches(make_shadow(tags={"memory.get_blocks"}))

    def test_tagged_suffix_shorthand(self):
        # 'kernel' matches the platform tag 'platform.kernel' by its last
        # dotted component, the way AC++ match expressions elide namespaces.
        pc = parse_pointcut("tagged('kernel')")
        assert pc.matches(make_shadow(tags={"platform.kernel"}))
        assert not pc.matches(make_shadow(tags={"platform.entry"}))

    def test_tagged_multiple_requires_all(self):
        pc = parse_pointcut("tagged('a', 'b')")
        assert pc.matches(make_shadow(tags={"a", "b"}))
        assert not pc.matches(make_shadow(tags={"a"}))

    def test_subtype_of_by_name(self):
        pc = parse_pointcut("subtype_of(DslTarget)")
        assert pc.matches(make_shadow(tags={"class:DslTarget", "class:JacobiSGrid"}))
        assert not pc.matches(make_shadow(tags={"class:Unrelated"}))

    def test_ref_resolves_platform_pointcut(self):
        pc = parse_pointcut("ref('platform.entry')")
        assert pc.matches(make_shadow(tags={"platform.entry"}))
        assert not pc.matches(make_shadow(tags={"platform.finalize"}))

    def test_any_and_none(self):
        assert parse_pointcut("any()").matches(make_shadow())
        assert not parse_pointcut("none()").matches(make_shadow())

    def test_whitespace_is_insignificant(self):
        pc = parse_pointcut("  execution( Env.refresh )   &&\n tagged( 'memory.refresh' ) ")
        assert pc.matches(make_shadow(tags={"memory.refresh"}))


class TestPrecedence:
    shadow_a = staticmethod(lambda: make_shadow(tags={"a"}))

    def test_not_binds_tighter_than_and(self):
        # !tagged(a) && tagged(b)  ==  (!tagged(a)) && tagged(b)
        pc = parse_pointcut("!tagged('a') && tagged('b')")
        assert pc.matches(make_shadow(tags={"b"}))
        assert not pc.matches(make_shadow(tags={"a", "b"}))

    def test_and_binds_tighter_than_or(self):
        # tagged(a) || tagged(b) && tagged(c)  ==  a || (b && c)
        pc = parse_pointcut("tagged('a') || tagged('b') && tagged('c')")
        assert pc.matches(make_shadow(tags={"a"}))
        assert pc.matches(make_shadow(tags={"b", "c"}))
        assert not pc.matches(make_shadow(tags={"b"}))

    def test_parentheses_override(self):
        pc = parse_pointcut("(tagged('a') || tagged('b')) && tagged('c')")
        assert pc.matches(make_shadow(tags={"a", "c"}))
        assert not pc.matches(make_shadow(tags={"a"}))

    def test_double_negation(self):
        pc = parse_pointcut("!!tagged('a')")
        assert pc.matches(make_shadow(tags={"a"}))
        assert not pc.matches(make_shadow(tags={"b"}))

    def test_not_of_group(self):
        pc = parse_pointcut("!(tagged('a') && tagged('b'))")
        assert pc.matches(make_shadow(tags={"a"}))
        assert not pc.matches(make_shadow(tags={"a", "b"}))


class TestRoundTrips:
    """A parsed pointcut's description must itself parse to an equivalent
    pointcut (the textual language is closed under its own output)."""

    SHADOWS = [
        make_shadow(),
        make_shadow(kind=JoinPointKind.CALL),
        make_shadow(name="Processing", cls="JacobiSGrid", module="repro.apps.jacobi"),
        make_shadow(tags={"platform.kernel"}),
        make_shadow(tags={"memory.refresh", "class:DslTarget"}),
        make_shadow(tags={"a", "b"}),
    ]

    @pytest.mark.parametrize(
        "text",
        [
            "execution()",
            "execution(Env.refresh)",
            "call()",
            "named(Proc*)",
            "within(repro.memory.*)",
            "tagged(kernel)",
            "tagged(a, b)",
            "subtype_of(DslTarget)",
            "execution() && tagged('kernel')",
            "!tagged('a') && (named('Proc*') || within('repro.apps*'))",
            "execution(Env.*) || call(Env.*)",
        ],
    )
    def test_description_round_trips(self, text):
        first = parse_pointcut(text)
        second = parse_pointcut(first.description)
        for shadow in self.SHADOWS:
            assert first.matches(shadow) == second.matches(shadow), (
                text,
                first.description,
                shadow,
            )


class TestSyntaxErrors:
    def assert_error_at(self, text, position, match=None):
        with pytest.raises(PointcutSyntaxError) as excinfo:
            parse_pointcut(text)
        error = excinfo.value
        assert error.text == text
        assert error.position == position, str(error)
        if match:
            assert match in str(error)
        return error

    def test_empty_expression(self):
        self.assert_error_at("", 0, "empty pointcut")
        self.assert_error_at("   ", 3, "empty pointcut")

    def test_unknown_primitive_position(self):
        self.assert_error_at("tagged('a') && frobnicate('b')", 15, "unknown pointcut primitive")

    def test_single_ampersand(self):
        self.assert_error_at("tagged('a') & tagged('b')", 12, "use '&&'")

    def test_single_pipe(self):
        self.assert_error_at("tagged('a') | tagged('b')", 12, "use '||'")

    def test_unterminated_string(self):
        self.assert_error_at("tagged('a", 7, "unterminated string")

    def test_missing_closing_paren(self):
        self.assert_error_at("(tagged('a') && tagged('b')", 27, "')'")

    def test_missing_argument_paren(self):
        self.assert_error_at("execution(Env.refresh", 21)

    def test_trailing_garbage(self):
        self.assert_error_at("tagged('a') tagged('b')", 12)

    def test_dangling_operator(self):
        self.assert_error_at("tagged('a') &&", 14)

    def test_primitive_without_parens(self):
        self.assert_error_at("execution", 9, "expected '('")

    def test_wrong_arity_reports_primitive_position(self):
        self.assert_error_at("within()", 0, "exactly one argument")
        self.assert_error_at("execution(a, b)", 0, "at most one pattern")
        self.assert_error_at("any('x')", 0, "takes no arguments")

    def test_bad_pattern_inside_primitive(self):
        # The combinator-level error is re-raised with position info.
        error = self.assert_error_at("execution('Env.')", 0)
        assert "empty member name" in str(error)

    def test_caret_rendering(self):
        with pytest.raises(PointcutSyntaxError) as excinfo:
            parse_pointcut("tagged('a') & tagged('b')")
        lines = str(excinfo.value).splitlines()
        assert lines[1].strip() == "tagged('a') & tagged('b')"
        assert lines[2].index("^") - 2 == 12  # two-space indent before text

    def test_non_string_input(self):
        with pytest.raises(PointcutSyntaxError):
            parse_pointcut(42)


class TestCoercion:
    def test_as_pointcut_passthrough(self):
        pc = tagged("x")
        assert as_pointcut(pc) is pc

    def test_as_pointcut_parses_strings(self):
        assert as_pointcut("tagged('x')").matches(make_shadow(tags={"x"}))

    def test_as_pointcut_rejects_other_types(self):
        with pytest.raises(PointcutSyntaxError):
            as_pointcut(3.14)

    def test_aspect_with_string_pointcuts_weaves(self):
        @annotate("test.cls")
        class Target:
            @annotate("test.step")
            def step(self, value):
                return value * 2

        events = []

        class StringAspect(Aspect):
            @before("execution() && tagged('test.step')")
            def record(self, jp):
                events.append(jp.args)

        woven = Weaver([StringAspect()]).weave_class(Target)
        assert woven().step(4) == 8
        assert events == [(4,)]

    def test_bad_string_fails_at_declaration_time(self):
        with pytest.raises(PointcutSyntaxError):

            class Broken(Aspect):
                @before("tagged('unclosed")
                def advice(self, jp):
                    pass
