"""Unit tests for the Block hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory import (
    AddressError,
    ArithmeticBlock,
    BlockError,
    BufferOnlyBlock,
    DataBlock,
    EmptyBlock,
    GlobalAddress,
    PoolGroup,
    ReferenceBlock,
    StaticDataBlock,
)


@pytest.fixture
def allocator(pool):
    return PoolGroup([pool])


def make_data_block(allocator, origin=(0, 0), shape=(4, 4), components=1):
    return DataBlock(
        origin, shape, components=components, page_elements=4, allocator=allocator
    )


class TestBlockTree:
    def test_add_child_and_subtree(self, allocator):
        root = EmptyBlock()
        joint = EmptyBlock()
        leaf = make_data_block(allocator)
        root.add_child(joint)
        joint.add_child(leaf)
        assert [b for b in root.iter_subtree()] == [root, joint, leaf]
        assert leaf.parent is joint
        assert joint.siblings() == []

    def test_reparenting_rejected(self, allocator):
        a, b = EmptyBlock(), EmptyBlock()
        child = EmptyBlock()
        a.add_child(child)
        with pytest.raises(BlockError):
            b.add_child(child)

    def test_block_ids_unique(self, allocator):
        blocks = [make_data_block(allocator) for _ in range(5)]
        assert len({b.block_id for b in blocks}) == 5

    def test_origin_shape_dim_mismatch(self):
        with pytest.raises(BlockError):
            EmptyBlock((0, 0), (1,))

    def test_empty_block_covers_descendants(self, allocator):
        joint = EmptyBlock()
        joint.add_child(make_data_block(allocator, origin=(0, 0)))
        joint.add_child(make_data_block(allocator, origin=(4, 0)))
        assert joint.covers((5, 1))
        assert not joint.covers((100, 100))
        assert not joint.contains((1, 1))


class TestDataBlock:
    def test_read_write_roundtrip_via_swap(self, allocator):
        block = make_data_block(allocator)
        block.write((1, 2), 5.5)
        block.refresh_swap()
        assert block.read((1, 2)) == 5.5

    def test_local_access(self, allocator):
        block = make_data_block(allocator, origin=(8, 8))
        block.write_local((0, 1), 2.0)
        block.refresh_swap()
        assert block.read_local((0, 1)) == 2.0
        assert block.read((8, 9)) == 2.0

    def test_contains(self, allocator):
        block = make_data_block(allocator, origin=(4, 4), shape=(4, 4))
        assert block.contains((4, 4))
        assert block.contains((7, 7))
        assert not block.contains((8, 4))
        assert not block.contains((3, 4))

    def test_out_of_block_address_raises(self, allocator):
        block = make_data_block(allocator)
        with pytest.raises(AddressError):
            block.read((10, 10))

    def test_components(self, allocator):
        block = make_data_block(allocator, components=3)
        block.write((0, 0), (1.0, 2.0, 3.0))
        block.refresh_swap()
        np.testing.assert_array_equal(block.read((0, 0)), [1.0, 2.0, 3.0])

    def test_page_interface(self, allocator):
        block = make_data_block(allocator)
        key = block.page_key_of((0, 0))
        assert key.block_id == block.block_id
        snapshot = block.page_snapshot(key.page_index)
        assert snapshot.shape == (4, 1)
        block.page_fill(key.page_index, np.ones((4, 1)))
        assert block.read((0, 0)) == 1.0

    def test_dirty_pages_after_write_and_swap(self, allocator):
        block = make_data_block(allocator)
        block.write((0, 0), 1.0)
        assert block.dirty_pages() == []  # write buffer dirty, read buffer clean
        block.refresh_swap()
        assert 0 in block.dirty_pages()

    def test_dense_roundtrip(self, allocator):
        block = make_data_block(allocator, shape=(2, 3))
        data = np.arange(6.0).reshape(2, 3, 1)
        block.load_dense(data)
        np.testing.assert_array_equal(block.dense(), data)

    def test_zorder_index_monotone_in_block_grid(self, allocator):
        b00 = make_data_block(allocator, origin=(0, 0))
        b11 = make_data_block(allocator, origin=(4, 4))
        assert b00.zorder_index() < b11.zorder_index()

    def test_nbytes_includes_static_fields(self, allocator):
        block = make_data_block(allocator)
        base = block.nbytes
        block.static_fields["aux"] = np.zeros(100)
        assert block.nbytes == base + 800


class TestBufferOnlyBlock:
    def test_starts_invalid(self, allocator):
        block = BufferOnlyBlock(
            (0, 0), (4, 4), components=1, page_elements=4, allocator=allocator, owner_tid=3
        )
        assert not block.is_valid
        assert block.dm_tid is None
        assert block.owner_tid == 3

    def test_read_before_fill_raises(self, allocator):
        block = BufferOnlyBlock(
            (0, 0), (4, 4), components=1, page_elements=4, allocator=allocator
        )
        block.invalidate()
        with pytest.raises(BlockError):
            block.read((0, 0))

    def test_write_rejected(self, allocator):
        block = BufferOnlyBlock(
            (0, 0), (4, 4), components=1, page_elements=4, allocator=allocator
        )
        with pytest.raises(BlockError):
            block.write((0, 0), 1.0)

    def test_page_fill_makes_readable(self, allocator):
        block = BufferOnlyBlock(
            (0, 0), (4, 4), components=1, page_elements=4, allocator=allocator
        )
        block.invalidate()
        block.page_fill(0, np.full((4, 1), 9.0))
        assert block.read((0, 0)) == 9.0


class TestVirtualBlocks:
    def test_static_block(self):
        block = StaticDataBlock((10,), (5,), 3.5)
        assert block.read((12,)) == 3.5
        with pytest.raises(AddressError):
            block.read((20,))

    def test_static_block_components(self):
        block = StaticDataBlock((0,), (5,), 2.0, components=3)
        np.testing.assert_array_equal(block.read((1,)), [2.0, 2.0, 2.0])

    def test_static_block_bad_value_shape(self):
        with pytest.raises(BlockError):
            StaticDataBlock((0,), (5,), (1.0, 2.0), components=3)

    def test_arithmetic_block(self):
        block = ArithmeticBlock((-1, -1), (4, 4), lambda a: float(a[0] + a[1]))
        assert block.read((1, 2)) == 3.0
        with pytest.raises(AddressError):
            block.read((10, 10))

    def test_arithmetic_requires_callable(self):
        with pytest.raises(BlockError):
            ArithmeticBlock((0,), (1,), expression="nope")

    def test_reference_block_with_target(self, allocator):
        data = make_data_block(allocator)
        data.write((0, 0), 7.0)
        data.refresh_swap()
        mirror = ReferenceBlock(
            (-1, -1),
            (6, 6),
            lambda addr: GlobalAddress((max(addr[0], 0), max(addr[1], 0))),
            target=data,
        )
        assert mirror.read((-1, -1)) == 7.0

    def test_reference_block_without_resolution_raises(self):
        ref = ReferenceBlock((0,), (2,), lambda a: GlobalAddress((5,)))
        with pytest.raises(BlockError):
            ref.read((0,))

    def test_empty_block_holds_no_data(self):
        block = EmptyBlock()
        assert not block.holds_data
        with pytest.raises(BlockError):
            block.read((0,))
        with pytest.raises(BlockError):
            block.write((0,), 1.0)
