"""Unit tests for the execution-backend subsystem.

Covers the registry (lazy built-ins, custom registration, unknown-name
errors), the serial world's inline semantics, the threads world's
interface conformance (plus the finalize() resource-release fix) and
the process world's transport plumbing.  Cross-backend behavioural
equivalence lives in tests/integration/test_backend_conformance.py.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Platform
from repro.apps import JacobiSGrid
from repro.runtime import (
    DEFAULT_BACKEND,
    BackendError,
    MPIWorld,
    NetworkError,
    TaskError,
    available_backends,
    get_backend,
    register_backend,
)
from repro.runtime.backends import _REGISTRY
from repro.runtime.backends.base import ExecutionBackend, ExecutionWorld
from repro.runtime.backends.process import ProcessWorld
from repro.runtime.backends.serial import SerialWorld

CONFIG = dict(
    region=16,
    block_size=8,
    page_elements=16,
    loops=2,
    init=lambda x, y: float(x + y),
)


class TestRegistry:
    def test_builtins_are_available(self):
        names = available_backends()
        assert {"serial", "threads", "process"} <= set(names)
        assert names == sorted(names)

    def test_default_backend_is_threads(self):
        assert DEFAULT_BACKEND == "threads"

    def test_get_backend_is_cached(self):
        assert get_backend("threads") is get_backend("threads")

    def test_unknown_backend_error_lists_available(self):
        with pytest.raises(BackendError, match="serial"):
            get_backend("quantum")

    def test_threads_backend_creates_mpiworld(self):
        world = get_backend("threads").create_world(3, timeout=1.0)
        assert isinstance(world, MPIWorld)
        assert world.size == 3
        assert world.backend_name == "threads"

    def test_register_custom_backend(self):
        class EchoWorld(SerialWorld):
            backend_name = "echo"

        class EchoBackend(ExecutionBackend):
            name = "echo"

            def create_world(self, size, *, timeout=60.0):
                return EchoWorld(timeout=timeout)

        try:
            register_backend(EchoBackend())
            assert "echo" in available_backends()
            assert isinstance(get_backend("echo").create_world(1), EchoWorld)
            with pytest.raises(BackendError, match="already registered"):
                register_backend(EchoBackend())
        finally:
            _REGISTRY.pop("echo", None)

    def test_register_rejects_nameless_backend(self):
        class Anonymous(ExecutionBackend):
            name = ""

            def create_world(self, size, *, timeout=60.0):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(BackendError, match="name"):
            register_backend(Anonymous())


class TestSerialWorld:
    def test_requires_size_one(self):
        with pytest.raises(TaskError, match="exactly one rank"):
            get_backend("serial").create_world(2)

    def test_run_spmd_inline(self):
        world = get_backend("serial").create_world(1)
        results = world.run_spmd(lambda ctx: (ctx.mpi_rank, ctx.mpi_size))
        assert [r.value for r in results] == [(0, 1)]

    def test_collectives_are_trivial_and_counted(self):
        world = SerialWorld()
        assert world.allreduce_and(True) is True
        assert world.allreduce_and(False) is False
        assert world.allreduce_sum(2.5) == 2.5
        world.barrier()
        stats = world.traffic_summary()
        assert stats["allreduces"] == 3
        assert stats["barriers"] == 1

    def test_error_propagation(self):
        world = SerialWorld()

        def body(ctx):
            raise ValueError("boom")

        with pytest.raises(RuntimeError, match="rank 0") as excinfo:
            world.run_spmd(body)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_finalize_releases_envs(self):
        world = SerialWorld()
        world.register_env(0, object())
        world.finalize()
        assert world.finalized
        with pytest.raises(NetworkError):
            world.env_of(0)


class TestThreadsWorldInterface:
    def test_mpiworld_implements_execution_world(self):
        assert issubclass(MPIWorld, ExecutionWorld)

    def test_world_level_collectives_delegate_to_network(self):
        world = MPIWorld(1)
        assert world.allreduce_and(True) is True
        assert world.allreduce_sum(3.0) == 3.0
        world.barrier()
        assert world.traffic_summary()["barriers"] == 1

    def test_register_block_and_commit(self):
        world = MPIWorld(1)
        world.register_block("key", 0, 42, owner=True)
        world.commit_registration()
        assert world.directory.owner_of("key") == 0
        assert world.directory.block_id_on("key", 0) == 42

    def test_finalize_releases_envs_and_endpoints(self):
        # Satellite fix: finalize() used to only flip a flag, leaking one
        # full Env replica per rank per finished run.
        world = MPIWorld(2)
        world.register_env(0, object())
        world.register_env(1, object())
        world.finalize()
        assert world.finalized
        assert world.rank_envs == {}
        with pytest.raises(NetworkError):
            world.network.endpoint(0)
        # Stats survive finalisation for post-run reporting.
        assert "messages" in world.traffic_summary()

    def test_platform_run_leaves_finalized_world_without_envs(self):
        platform = Platform.preset("mpi", ranks=2)
        platform.run(JacobiSGrid, config=dict(CONFIG))
        world = platform.context["mpi_world"]
        assert world.finalized
        assert world.rank_envs == {}

    def test_failed_platform_run_still_finalizes_world(self):
        from repro.annotation import TargetApplication

        class Exploding(TargetApplication):
            def initialize(self):
                self.make_env()

            def processing(self):
                raise ValueError("kernel blew up")

        platform = Platform.preset("mpi", ranks=2)
        with pytest.raises(RuntimeError):
            platform.run(Exploding)
        world = platform.context["mpi_world"]
        assert world.finalized
        assert world.rank_envs == {}


class TestProcessWorld:
    def test_size_one_runs_inline(self):
        world = get_backend("process").create_world(1)
        results = world.run_spmd(lambda ctx: ctx.mpi_rank * 10)
        assert results[0].value == 0
        assert world.allreduce_sum(1.5) == 1.5

    def test_spmd_returns_picklable_rank_values(self):
        world = get_backend("process").create_world(2, timeout=15.0)
        results = world.run_spmd(lambda ctx: ctx.mpi_rank * 10)
        assert [r.value for r in results] == [0, 10]

    def test_unpicklable_rank_values_degrade_to_none(self):
        world = get_backend("process").create_world(2, timeout=15.0)
        results = world.run_spmd(lambda ctx: lambda: ctx.mpi_rank)  # lambdas don't pickle
        assert callable(results[0].value)  # rank 0 lives in the parent
        assert results[1].value is None

    def test_collective_outside_run_spmd_is_an_error(self):
        world = ProcessWorld(2)
        with pytest.raises(NetworkError, match="run_spmd"):
            world.allreduce_sum(1.0)
        world.register_block("key", 0, 1, owner=True)
        with pytest.raises(NetworkError, match="run_spmd"):
            world.commit_registration()

    def test_traffic_summary_aggregates_all_ranks(self):
        world = get_backend("process").create_world(2, timeout=15.0)
        world.run_spmd(lambda ctx: world.allreduce_sum(float(ctx.mpi_rank)))
        stats = world.traffic_summary()
        # Both ranks count their own allreduce call, like the threads
        # backend's shared-network accounting.
        assert stats["allreduces"] == 2
        assert stats["messages"] > 0
        assert stats["bytes_moved"] > 0

    def test_backend_name_on_platform_run(self):
        run = Platform.preset("mpi", mpi=2, backend="process").run(
            JacobiSGrid, config=dict(CONFIG)
        )
        assert run.backend == "process"
        assert "backend=process" in run.summary()


class TestPlatformBackendSelection:
    def test_platform_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            Platform(backend="quantum")

    def test_builder_backend_round_trip(self):
        platform = Platform.builder().backend("serial").mpi(1).build()
        assert platform.backend == "serial"

    def test_preset_layer_aliases(self):
        platform = Platform.preset("hybrid", mpi=2, omp=2)
        assert platform.layer_parallelism() == {"mpi": 2, "omp": 2}

    def test_aspect_backend_overrides_platform(self):
        from repro.aspects import DistributedMemoryAspect

        aspect = DistributedMemoryAspect(processes=1, backend="serial")
        platform = Platform(aspects=[aspect], backend="threads")
        aspect.on_attach(platform)
        try:
            assert aspect.resolve_backend_name() == "serial"
        finally:
            aspect.on_detach(platform)

    def test_aspect_falls_back_to_platform_then_default(self):
        from repro.aspects import DistributedMemoryAspect

        aspect = DistributedMemoryAspect(processes=1)
        assert aspect.resolve_backend_name() == DEFAULT_BACKEND
        platform = Platform(aspects=[aspect], backend="serial")
        aspect.on_attach(platform)
        try:
            assert aspect.resolve_backend_name() == "serial"
        finally:
            aspect.on_detach(platform)

    def test_run_without_mpi_layer_has_no_backend(self):
        run = Platform.preset("omp", threads=2).run(JacobiSGrid, config=dict(CONFIG))
        assert run.backend is None
        assert "backend=" not in run.summary()
