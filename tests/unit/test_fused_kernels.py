"""Unit tests for the kernels subsystem and the overlap-sweep bugfixes.

Covers the satellite fixes that ride with the plan-fusion tentpole:

* broadcastable / constant ``fn`` returns no longer crash the
  overlapped ``sweep_segment`` apply (or ``scatter``) on any rank count;
* ``element_partition`` refuses address plans with a clear error
  instead of silently producing a meaningless partition;
* key-less ``gather_global`` compiles are counted separately
  (``plan_compiles_uncached``) so coverage numbers stay honest;
* ``AccessPlan.execute`` reuses a per-plan scratch array instead of
  allocating a fresh output every call;
* fused kernels are cached on the MMAT, invalidated by ``reset()``,
  and surfaced through stats, counters and the run summary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.annotation import Platform
from repro.apps import JacobiSGrid, JacobiUSGrid
from repro.apps.jacobi_sgrid import STENCIL
from repro.aspects import mpi_aspects
from repro.kernels import (
    CodegenError,
    get_codegen,
    register_codegen,
    resolve_codegen,
)
from repro.memory import (
    DataBlock,
    Env,
    MemoryPool,
    PoolGroup,
    compile_address_plan,
    compile_offsets_plan,
)
from repro.memory.errors import AddressError


def _init(x, y):
    return 0.03 * x - 0.05 * y + 2.0


CONFIG = dict(region=16, block_size=4, page_elements=8, loops=3, init=_init)


def _plan_env():
    pool = PoolGroup([MemoryPool(4 * 1024 * 1024, name="fused-pool")])
    env = Env(allocator=pool, name="fused-env", mmat_enabled=True)
    block = DataBlock((0, 0), (4, 4), components=1, page_elements=4,
                      allocator=pool)
    env.add_data_block(block)
    values = np.arange(block.element_count, dtype=np.float64)
    for buf in block.buffer.buffers:
        buf.load_dense(values.reshape(-1, 1))
        buf.clear_dirty()
    return env, block


# ----------------------------------------------------------------------
# satellite 1: broadcastable / constant fn returns
# ----------------------------------------------------------------------
class ConstantSweepJacobi(JacobiSGrid):
    """Sweep whose fn returns a scalar — legal, must broadcast everywhere."""

    def kernel_vectorized(self, warmup: bool) -> bool:
        for _block, k in self.block_kernels(warmup):
            k.sweep(lambda e, e_n, e_w, e_e, e_s: np.float64(0.5), STENCIL)
        return self.refresh(warmup)


class TestBroadcastableSweepReturns:
    @pytest.mark.parametrize("ranks", [1, 4])
    @pytest.mark.parametrize("fuse", [True, False])
    def test_constant_fn_sweeps_on_all_ranks(self, ranks, fuse):
        """Regression: the overlapped apply() reshaped scalar returns and
        crashed; it must broadcast, on the fused and the legacy path."""
        aspects = mpi_aspects(ranks, backend="threads")
        run = Platform(aspects=aspects, mmat=True).run(
            ConstantSweepJacobi,
            config=dict(CONFIG, kernel="vectorized", fuse=fuse),
        )
        field = np.asarray(run.result)
        assert np.array_equal(field[~np.isnan(field)],
                              np.full(np.count_nonzero(~np.isnan(field)), 0.5))

    def test_scatter_broadcasts_constants(self):
        run = Platform(mmat=True).run(
            JacobiSGrid, config=dict(CONFIG, kernel="vectorized")
        )
        k = next(iter(run.app.block_kernels()))[1]
        k.scatter(1.25)  # scalar: must broadcast, not reshape-crash
        k.scatter(np.full(16, 2.5))  # flat block-sized array


# ----------------------------------------------------------------------
# satellite 2: element_partition on address plans
# ----------------------------------------------------------------------
class TestElementPartitionKinds:
    def test_offsets_plan_partitions(self):
        env, block = _plan_env()
        plan = compile_offsets_plan(env, block, ((0, 0),))
        interior, boundary = plan.element_partition()
        assert interior.size + boundary.size == block.element_count
        assert plan.kind == "offsets"

    def test_address_plan_refuses_partition(self):
        env, block = _plan_env()
        addresses = np.arange(block.element_count, dtype=np.int64).reshape(-1, 1)
        addresses = np.concatenate([addresses % 4, addresses // 4], axis=1)
        plan = compile_address_plan(env, block, addresses)
        assert plan.kind == "addresses"
        with pytest.raises(AddressError, match="offsets plans"):
            plan.element_partition()


# ----------------------------------------------------------------------
# satellite 3: key-less gather_global accounting
# ----------------------------------------------------------------------
class UncachedGatherUSGrid(JacobiUSGrid):
    """Indirect gather without a plan key: per-call compiles by design."""

    def kernel_vectorized(self, warmup: bool) -> bool:
        alpha, beta = self.alpha, self.beta
        for _block, k in self.block_kernels(warmup):
            e = k.gather([(0,)])[0]
            neigh = k.gather_global(k.static_field("neighbors"))  # no key=
            ans = alpha * e + beta * (neigh[:, 1] + neigh[:, 0]
                                      + neigh[:, 3] + neigh[:, 2])
            k.scatter(ans)
        return self.refresh(warmup)


class TestUncachedCompileAccounting:
    def test_keyless_compiles_counted_separately(self):
        cfg = dict(region=16, block_cells=32, page_elements=8, loops=3,
                   init=_init, kernel="vectorized")
        keyed = Platform(mmat=True).run(JacobiUSGrid, config=dict(cfg))
        keyless = Platform(mmat=True).run(UncachedGatherUSGrid, config=dict(cfg))
        assert np.allclose(np.asarray(keyed.result), np.asarray(keyless.result))

        k_counters = list(keyed.counters.values())
        u_counters = list(keyless.counters.values())
        # Keyed tables compile once per block and hit the cache after.
        assert sum(c.plan_compiles_uncached for c in k_counters) == 0
        # Key-less tables recompile every call — but as *uncached*
        # compiles, not plan_compiles (the cache-coverage numerator).
        uncached = sum(c.plan_compiles_uncached for c in u_counters)
        assert uncached > sum(c.plan_compiles for c in u_counters)
        assert keyless.mmat_stats["plan_compiles_uncached"] == uncached
        assert "dyn=" in keyless.summary()
        assert "dyn=" not in keyed.summary()


# ----------------------------------------------------------------------
# satellite 4: execute() scratch reuse
# ----------------------------------------------------------------------
class TestExecuteScratchReuse:
    def test_same_output_array_is_reused(self):
        env, block = _plan_env()
        plan = compile_offsets_plan(env, block, ((0, 0),))
        out1 = plan.execute(env)
        first = out1.copy()
        out2 = plan.execute(env)
        assert out1 is out2  # per-plan scratch, not a fresh alloc
        assert np.array_equal(first, out2)


# ----------------------------------------------------------------------
# fused-kernel cache, counters, knobs, registry
# ----------------------------------------------------------------------
class TestFusedCacheAndCounters:
    def test_fused_kernels_cached_and_reset_invalidates(self):
        run = Platform(mmat=True).run(
            JacobiSGrid, config=dict(CONFIG, kernel="vectorized")
        )
        mmat = run.app.env.mmat
        assert run.mmat_stats["fused_kernels"] == 16  # one per block
        counters = list(run.counters.values())
        assert sum(c.kernel_fuse for c in counters) == 16
        # 16 blocks x 3 loops fused calls (warm-up never fuses).
        assert sum(c.kernel_fused_calls for c in counters) == 48
        assert "fused=48calls/16kern" in run.summary()
        mmat.reset()
        assert mmat.stats()["fused_kernels"] == 0

    def test_fuse_opt_out(self):
        run = Platform(mmat=True).run(
            JacobiSGrid, config=dict(CONFIG, kernel="vectorized", fuse=False)
        )
        assert sum(c.kernel_fused_calls for c in run.counters.values()) == 0
        assert run.mmat_stats["fused_kernels"] == 0
        assert "fused=" not in run.summary()

    def test_no_fusion_without_mmat(self):
        run = Platform(mmat=False).run(
            JacobiSGrid, config=dict(CONFIG, kernel="vectorized")
        )
        assert sum(c.kernel_fused_calls for c in run.counters.values()) == 0


class TestTemporalBlockKnob:
    def test_platform_knob_validates(self):
        with pytest.raises(ValueError):
            Platform(temporal_block=0)
        assert Platform(temporal_block=3).temporal_block == 3

    def test_builder_and_preset_plumb_through(self):
        assert Platform.preset("serial", temporal_block=2).temporal_block == 2
        builder = Platform.builder().temporal_block(4)
        assert builder.build().temporal_block == 4
        with pytest.raises(ValueError):
            Platform.builder().temporal_block(0)

    def test_config_overrides_platform(self):
        run = Platform(mmat=True, temporal_block=4).run(
            JacobiSGrid,
            config=dict(CONFIG, kernel="vectorized", temporal_block=1),
        )
        vec = Platform(mmat=True).run(
            JacobiSGrid, config=dict(CONFIG, kernel="vectorized", fuse=False)
        )
        assert np.array_equal(np.asarray(run.result), np.asarray(vec.result))


class TestCodegenRegistry:
    def test_unknown_codegen_raises(self):
        with pytest.raises(CodegenError, match="unknown kernel codegen"):
            get_codegen("no-such-codegen")

    def test_resolve_falls_back_to_default(self):
        assert resolve_codegen("no-such-codegen").name == "numpy_src"
        assert resolve_codegen().name == "numpy_src"

    def test_register_rejects_duplicates(self):
        class Fake:
            name = "numpy_src"

            def compile(self, signature):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(CodegenError, match="already registered"):
            register_codegen(Fake())
        # Shadowing is allowed explicitly; restore the built-in after.
        original = get_codegen("numpy_src")
        try:
            assert register_codegen(Fake(), replace=True).name == "numpy_src"
        finally:
            register_codegen(original, replace=True)

    def test_env_var_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CODEGEN", "numpy_src")
        assert resolve_codegen().name == "numpy_src"
