"""Unit tests for memory pools, pages and multi-buffers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memory import (
    BlockBuffer,
    MemoryPool,
    MultiBuffer,
    Page,
    PageKey,
    PoolCorruptionError,
    PoolExhaustedError,
    PoolGroup,
)
from repro.memory.errors import BlockError


class TestMemoryPool:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryPool(0)

    def test_allocate_and_free_accounting(self, pool):
        chunk = pool.allocate(1000)
        assert pool.used_bytes == chunk.size >= 1000
        chunk.free()
        assert pool.used_bytes == 0
        assert pool.free_bytes == pool.capacity_bytes

    def test_alignment(self, pool):
        chunk = pool.allocate(3)
        assert chunk.size % 8 == 0

    def test_exhaustion(self):
        pool = MemoryPool(1024)
        pool.allocate(512)
        with pytest.raises(PoolExhaustedError):
            pool.allocate(1024)

    def test_double_free_detected(self, pool):
        chunk = pool.allocate(64)
        chunk.free()
        with pytest.raises(PoolCorruptionError):
            chunk.free()

    def test_foreign_chunk_rejected(self, pool):
        other = MemoryPool(1024)
        chunk = other.allocate(64)
        with pytest.raises(PoolCorruptionError):
            pool.free(chunk)

    def test_coalescing_allows_reuse(self):
        pool = MemoryPool(4096)
        chunks = [pool.allocate(1024) for _ in range(4)]
        for chunk in chunks:
            chunk.free()
        # After freeing everything a full-size allocation must succeed again.
        big = pool.allocate(4096)
        assert big.size == 4096
        pool.check_invariants()

    def test_peak_tracking(self, pool):
        a = pool.allocate(1024)
        b = pool.allocate(1024)
        a.free()
        stats = pool.stats()
        assert stats.peak_bytes >= 2048
        assert stats.allocations == 2
        assert stats.frees == 1
        assert 0 < stats.utilisation < 1
        b.free()

    def test_chunk_view_dtype(self, pool):
        chunk = pool.allocate(8 * 10)
        view = chunk.as_array(np.float64)
        assert view.shape == (10,)
        view[:] = 1.5
        assert chunk.as_array(np.float64)[3] == 1.5

    def test_view_after_free_rejected(self, pool):
        chunk = pool.allocate(64)
        chunk.free()
        with pytest.raises(PoolCorruptionError):
            chunk.as_array()

    def test_oversized_view_rejected(self, pool):
        chunk = pool.allocate(16)
        with pytest.raises(PoolCorruptionError):
            chunk.as_array(np.float64, count=100)

    def test_invariants_hold_under_mixed_usage(self):
        pool = MemoryPool(1 << 16)
        live = []
        for i in range(50):
            live.append(pool.allocate(64 + 8 * (i % 5)))
            if i % 3 == 0:
                live.pop(0).free()
            pool.check_invariants()
        assert pool.live_chunk_count() == len(live)


class TestPoolGroup:
    def test_requires_pool(self):
        with pytest.raises(ValueError):
            PoolGroup([])

    def test_spills_to_second_pool(self):
        first = MemoryPool(256, name="small")
        second = MemoryPool(4096, name="big")
        group = PoolGroup([first, second])
        a = group.allocate(200)
        b = group.allocate(200)
        assert a.pool is first
        assert b.pool is second
        assert group.used_bytes == a.size + b.size

    def test_group_exhaustion(self):
        group = PoolGroup([MemoryPool(128), MemoryPool(128)])
        with pytest.raises(PoolExhaustedError):
            group.allocate(1024)

    def test_stats_by_name(self):
        group = PoolGroup([MemoryPool(256, name="a"), MemoryPool(256, name="b")])
        group.allocate(100)
        stats = group.stats()
        assert set(stats) == {"a", "b"}
        assert stats["a"].used_bytes > 0


class TestPage:
    def test_read_write_and_dirty_flag(self, pool):
        page = Page(0, elements=8, components=2, dtype=np.float64, allocator=PoolGroup([pool]))
        assert not page.dirty
        page.write(3, (1.0, 2.0))
        assert page.dirty
        assert tuple(page.read(3)) == (1.0, 2.0)

    def test_fill_from_and_snapshot(self, pool):
        page = Page(0, elements=4, components=1, dtype=np.float64, allocator=PoolGroup([pool]))
        data = np.arange(4.0).reshape(4, 1)
        page.fill_from(data)
        assert page.valid
        assert not page.dirty
        np.testing.assert_array_equal(page.snapshot(), data)

    def test_positive_sizes_required(self, pool):
        with pytest.raises(BlockError):
            Page(0, elements=0, components=1, dtype=np.float64, allocator=PoolGroup([pool]))

    def test_page_key(self):
        key = PageKey(7, 3)
        assert key.block_id == 7
        assert key.page_index == 3
        assert key == PageKey(7, 3)
        assert len({PageKey(1, 1), PageKey(1, 1), PageKey(1, 2)}) == 2


class TestBlockBuffer:
    def test_page_partitioning(self, pool):
        buf = BlockBuffer(10, page_elements=4, components=1, dtype=np.float64,
                          allocator=PoolGroup([pool]))
        assert buf.page_count == 3
        assert buf.page_of(0) == 0
        assert buf.page_of(9) == 2

    def test_out_of_range(self, pool):
        buf = BlockBuffer(10, 4, 1, np.float64, PoolGroup([pool]))
        with pytest.raises(BlockError):
            buf.read(10)
        with pytest.raises(BlockError):
            buf.page_of(-1)

    def test_dense_roundtrip(self, pool):
        buf = BlockBuffer(10, 4, 2, np.float64, PoolGroup([pool]))
        data = np.arange(20.0).reshape(10, 2)
        buf.load_dense(data)
        np.testing.assert_array_equal(buf.dense(), data)

    def test_write_read(self, pool):
        buf = BlockBuffer(6, 2, 1, np.float64, PoolGroup([pool]))
        buf.write(5, 3.25)
        assert buf.read(5)[0] == 3.25


class TestMultiBuffer:
    def test_swap_exchanges_read_and_write(self, pool):
        mb = MultiBuffer(4, 2, 1, np.float64, PoolGroup([pool]), depth=2)
        mb.write_buffer.write(0, 42.0)
        assert mb.read_buffer.read(0)[0] != 42.0
        mb.swap()
        assert mb.read_buffer.read(0)[0] == 42.0
        assert mb.swaps == 1

    def test_depth_one_reads_own_writes(self, pool):
        mb = MultiBuffer(4, 2, 1, np.float64, PoolGroup([pool]), depth=1)
        mb.write_buffer.write(1, 7.0)
        assert mb.read_buffer.read(1)[0] == 7.0

    def test_depth_three_rotation(self, pool):
        mb = MultiBuffer(2, 2, 1, np.float64, PoolGroup([pool]), depth=3)
        for step in range(3):
            mb.write_buffer.write(0, float(step))
            mb.swap()
            assert mb.read_buffer.read(0)[0] == float(step)

    def test_invalid_depth(self, pool):
        with pytest.raises(BlockError):
            MultiBuffer(4, 2, 1, np.float64, PoolGroup([pool]), depth=0)

    def test_release_returns_chunks(self):
        pool = MemoryPool(1 << 16)
        mb = MultiBuffer(16, 4, 1, np.float64, PoolGroup([pool]), depth=2)
        assert pool.used_bytes > 0
        mb.release()
        assert pool.used_bytes == 0
