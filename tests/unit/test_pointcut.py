"""Unit tests for pointcut expressions and their boolean algebra."""

from __future__ import annotations

import pytest

from repro.aop import (
    JoinPointKind,
    PointcutSyntaxError,
    any_joinpoint,
    call,
    execution,
    named,
    no_joinpoint,
    subtype_of,
    tagged,
    within,
)
from repro.aop.joinpoint import JoinPointShadow


def make_shadow(
    name="refresh",
    cls="Env",
    module="repro.memory.env",
    kind=JoinPointKind.EXECUTION,
    tags=(),
):
    return JoinPointShadow(kind=kind, module=module, cls=cls, name=name, tags=frozenset(tags))


class TestExecutionPointcut:
    def test_exact_match(self):
        assert execution("Env.refresh").matches(make_shadow())

    def test_wildcard_method(self):
        assert execution("Env.*").matches(make_shadow(name="get_blocks"))

    def test_wildcard_class(self):
        assert execution("*.refresh").matches(make_shadow(cls="OtherEnv"))

    def test_bare_function_pattern_matches_any_class(self):
        assert execution("refresh").matches(make_shadow(cls="Whatever"))

    def test_mismatched_name(self):
        assert not execution("Env.refresh").matches(make_shadow(name="initialize"))

    def test_kind_filter(self):
        shadow = make_shadow(kind=JoinPointKind.CALL)
        assert not execution("Env.refresh").matches(shadow)
        assert call("Env.refresh").matches(shadow)

    def test_named_matches_both_kinds(self):
        assert named("Env.refresh").matches(make_shadow(kind=JoinPointKind.CALL))
        assert named("Env.refresh").matches(make_shadow(kind=JoinPointKind.EXECUTION))

    @pytest.mark.parametrize("bad", ["", "   ", "Env.", None])
    def test_bad_patterns_raise(self, bad):
        with pytest.raises((PointcutSyntaxError, AttributeError)):
            execution(bad)


class TestSemanticPointcuts:
    def test_within_module(self):
        assert within("repro.memory.*").matches(make_shadow())
        assert not within("repro.runtime.*").matches(make_shadow())

    def test_within_requires_pattern(self):
        with pytest.raises(PointcutSyntaxError):
            within("")

    def test_tagged_single(self):
        shadow = make_shadow(tags={"memory.refresh"})
        assert tagged("memory.refresh").matches(shadow)
        assert not tagged("memory.get_blocks").matches(shadow)

    def test_tagged_requires_all(self):
        shadow = make_shadow(tags={"a", "b"})
        assert tagged("a", "b").matches(shadow)
        assert not tagged("a", "c").matches(shadow)

    def test_tagged_requires_at_least_one_tag(self):
        with pytest.raises(PointcutSyntaxError):
            tagged()

    def test_subtype_of_uses_class_chain_tags(self):
        class Base:
            pass

        shadow = make_shadow(tags={"class:Base", "class:Derived"})
        assert subtype_of(Base).matches(shadow)

    def test_subtype_of_negative(self):
        class Unrelated:
            pass

        shadow = make_shadow(tags={"class:Base"})
        assert not subtype_of(Unrelated).matches(shadow)


class TestPointcutAlgebra:
    def test_and(self):
        pc = execution("Env.*") & tagged("memory.refresh")
        assert pc.matches(make_shadow(tags={"memory.refresh"}))
        assert not pc.matches(make_shadow())

    def test_or(self):
        pc = execution("Env.refresh") | execution("Env.get_blocks")
        assert pc.matches(make_shadow(name="get_blocks"))
        assert not pc.matches(make_shadow(name="initialize"))

    def test_not(self):
        pc = ~execution("Env.refresh")
        assert not pc.matches(make_shadow())
        assert pc.matches(make_shadow(name="other"))

    def test_any_and_none(self):
        assert any_joinpoint().matches(make_shadow())
        assert not no_joinpoint().matches(make_shadow())

    def test_de_morgan_like_composition(self):
        a = execution("Env.refresh")
        b = tagged("x")
        shadow = make_shadow(tags={"x"})
        assert (~(a & b)).matches(shadow) == (not (a & b).matches(shadow))

    def test_description_strings(self):
        pc = execution("Env.refresh") & ~tagged("x")
        assert "execution(Env.refresh)" in pc.description
        assert "tagged(x)" in pc.description
