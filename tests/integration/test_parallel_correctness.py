"""Integration tests: the woven parallel configurations must reproduce the
serial / handwritten numerical results for all three sample DSLs.

This is the platform's core promise (paper §VI): "we built several test
DSL processing systems and confirmed that they could be parallelized
using a combination of the aspect module provided by the platform."
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.annotation import Platform
from repro.apps import (
    HandwrittenParticle,
    HandwrittenSGrid,
    HandwrittenUSGrid,
    JacobiSGrid,
    JacobiUSGrid,
    ParticleSimulation,
)
from repro.aspects import hybrid_aspects, mpi_aspects, openmp_aspects


def _init(x, y):
    return 0.05 * x - 0.02 * y + 1.0


SGRID_CONFIG = dict(region=16, block_size=4, page_elements=8, loops=3, init=_init)
USGRID_CONFIG = dict(region=16, block_cells=32, page_elements=8, loops=3, init=_init)
PARTICLE_CONFIG = dict(particles=128, block_buckets=4, page_elements=4, loops=2)


@pytest.fixture(scope="module")
def references():
    return {
        "sgrid": HandwrittenSGrid(16, loops=3, init=_init).run(),
        "usgrid_c": HandwrittenUSGrid(16, case="C", loops=3, init=_init).run(),
        "usgrid_r": HandwrittenUSGrid(16, case="R", loops=3, init=_init).run(),
        "particle": HandwrittenParticle(128, loops=2, block_buckets=4).run(),
    }


def assert_matches_reference(result, reference):
    """Compare a (possibly rank-local, NaN-padded) result with the reference."""
    result = np.asarray(result)
    mask = ~np.isnan(result)
    assert mask.any(), "run produced no locally-owned data"
    np.testing.assert_allclose(result[mask], np.asarray(reference)[mask], atol=1e-10)


ASPECT_STACKS = {
    "serial": lambda: None,
    "nop": lambda: [],
    "omp2": lambda: openmp_aspects(2),
    "omp4": lambda: openmp_aspects(4),
    "mpi2": lambda: mpi_aspects(2),
    "mpi4": lambda: mpi_aspects(4),
    "hybrid2x2": lambda: hybrid_aspects(2, 2),
}


class TestSGridConfigurations:
    @pytest.mark.parametrize("stack", list(ASPECT_STACKS))
    @pytest.mark.parametrize("mmat", [False, True])
    def test_matches_handwritten(self, references, stack, mmat):
        platform = Platform(aspects=ASPECT_STACKS[stack](), mmat=mmat)
        run = platform.run(JacobiSGrid, config=dict(SGRID_CONFIG))
        assert_matches_reference(run.result, references["sgrid"])


class TestUSGridConfigurations:
    @pytest.mark.parametrize("case,key", [("C", "usgrid_c"), ("R", "usgrid_r")])
    @pytest.mark.parametrize("stack", ["serial", "omp2", "mpi2", "hybrid2x2"])
    def test_matches_handwritten(self, references, case, key, stack):
        platform = Platform(aspects=ASPECT_STACKS[stack](), mmat=True)
        run = platform.run(JacobiUSGrid, config=dict(USGRID_CONFIG, case=case))
        assert_matches_reference(run.result, references[key])


class TestParticleConfigurations:
    @pytest.mark.parametrize("stack", ["serial", "nop", "omp2", "mpi2"])
    def test_matches_handwritten(self, references, stack):
        platform = Platform(aspects=ASPECT_STACKS[stack](), mmat=True)
        run = platform.run(ParticleSimulation, config=dict(PARTICLE_CONFIG))
        result = run.result
        reference = references["particle"]
        # Particle runs report only locally-owned particles; match them by id.
        assert result.shape[1] == 7
        ref_by_id = {row[0]: row for row in reference}
        assert len(result) > 0
        for row in result:
            np.testing.assert_allclose(row, ref_by_id[row[0]], atol=1e-10)


class TestCommunicationBehaviour:
    def test_mpi_run_moves_pages(self, references):
        platform = Platform(aspects=mpi_aspects(4), mmat=True)
        run = platform.run(JacobiSGrid, config=dict(SGRID_CONFIG))
        assert run.network["page_fetches"] > 0
        assert run.network["bytes_moved"] > 0
        assert sum(c.pages_fetched for c in run.counters.values()) > 0

    def test_omp_run_moves_no_pages(self, references):
        platform = Platform(aspects=openmp_aspects(4), mmat=True)
        run = platform.run(JacobiSGrid, config=dict(SGRID_CONFIG))
        assert run.network == {}
        assert sum(c.pages_fetched for c in run.counters.values()) == 0

    def test_dry_run_avoids_recomputation_after_first_step(self, references):
        platform = Platform(aspects=mpi_aspects(2), mmat=True)
        run = platform.run(JacobiSGrid, config=dict(SGRID_CONFIG))
        # With the Dry-run prefetch, at most the first step per rank fails;
        # later steps must succeed on their first attempt.
        for counters in run.counters.values():
            assert counters.recomputed_steps <= 1

    def test_every_task_contributes_updates(self):
        platform = Platform(aspects=hybrid_aspects(2, 2), mmat=True)
        run = platform.run(JacobiSGrid, config=dict(SGRID_CONFIG))
        assert len(run.counters) == 4
        assert all(c.updates > 0 for c in run.counters.values())

    def test_case_r_fetches_more_pages_than_case_c(self):
        config = dict(USGRID_CONFIG, loops=2)
        run_c = Platform(aspects=mpi_aspects(2), mmat=True).run(
            JacobiUSGrid, config=dict(config, case="C")
        )
        run_r = Platform(aspects=mpi_aspects(2), mmat=True).run(
            JacobiUSGrid, config=dict(config, case="R")
        )
        pages_c = sum(c.pages_fetched for c in run_c.counters.values())
        pages_r = sum(c.pages_fetched for c in run_r.counters.values())
        assert pages_r > pages_c


class TestMmatBehaviour:
    def test_mmat_eliminates_searches_after_warmup(self):
        run_without = Platform(mmat=False).run(JacobiUSGrid, config=dict(USGRID_CONFIG))
        run_with = Platform(mmat=True).run(JacobiUSGrid, config=dict(USGRID_CONFIG))
        assert run_with.env_stats.searches < run_without.env_stats.searches
        assert run_with.env_stats.mmat_hits > 0

    def test_mmat_does_not_change_results(self, references):
        run_with = Platform(mmat=True).run(JacobiUSGrid, config=dict(USGRID_CONFIG))
        assert_matches_reference(run_with.result, references["usgrid_c"])
