"""End-to-end observability: traced runs across all backends.

The ISSUE's acceptance criterion: a 4-rank process-backend Jacobi run,
traced, must produce a Perfetto-loadable Chrome trace in which each
rank's interior-sweep span overlaps a halo-flight async window — visual
proof that the overlap machinery hides communication behind computation.

These tests run a traced Jacobi on the serial, threads and process
backends, save the trace, and check the exported document against
:func:`repro.obs.validate_chrome_trace` plus the structural properties
the exporter promises (one track per (rank, thread), paired async
begin/end events, non-negative durations).
"""

from __future__ import annotations

import json

import pytest

from repro.annotation import Platform
from repro.apps import JacobiSGrid
from repro.obs import validate_chrome_trace

CONFIG = dict(
    region=24, block_size=4, page_elements=8, loops=3,
    init=lambda x, y: 0.05 * x - 0.02 * y + 1.0,
)


def _traced_run(backend: str, ranks: int):
    return Platform.preset(
        "mpi", ranks=ranks, backend=backend, mmat=True, tracing=True,
    ).run(JacobiSGrid, config=dict(CONFIG))


class TestTraceExport:
    @pytest.mark.parametrize("backend,ranks", [
        ("serial", 1),
        ("threads", 4),
        ("process", 4),
    ])
    def test_trace_document_is_schema_valid(self, backend, ranks, tmp_path):
        run = _traced_run(backend, ranks)
        assert run.tracing
        events = run.timeline()
        assert events, "traced run produced no spans"

        path = tmp_path / f"trace_{backend}.json"
        run.save_trace(path)
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["metadata"]["backend"] == backend

        trace_events = doc["traceEvents"]
        # pid == rank; every rank's track is present and named.
        pids = {e["pid"] for e in trace_events if e.get("name") == "process_name"}
        assert pids == set(range(ranks))
        # All complete events have non-negative, µs-scaled durations.
        assert all(e["dur"] >= 0 for e in trace_events if e["ph"] == "X")
        # Async halo flights come in matched begin/end pairs.
        begins = [e for e in trace_events if e["ph"] == "b"]
        ends = [e for e in trace_events if e["ph"] == "e"]
        assert len(begins) == len(ends)
        if ranks > 1:
            assert begins, "multi-rank overlapped run issued no halo flights"

    @pytest.mark.parametrize("backend,ranks", [
        ("threads", 4),
        ("process", 4),
    ])
    def test_every_rank_contributes_sweep_spans(self, backend, ranks):
        run = _traced_run(backend, ranks)
        interior = [e for e in run.timeline()
                    if e["ph"] == "X" and e["name"] == "sweep.interior"]
        assert {e["rank"] for e in interior} == set(range(ranks))
        # Phase spans from the MonitoringAspect appear once per rank
        # (the woven phases execute SPMD on every rank).
        names = [e["name"] for e in run.timeline() if e["ph"] == "X"]
        for phase in ("phase.initialize", "phase.processing", "phase.finalize"):
            assert names.count(phase) == ranks

    def test_interior_sweeps_overlap_halo_flights_process_backend(self):
        """Acceptance criterion: interior compute inside flight windows."""
        run = _traced_run("process", 4)
        events = run.timeline()
        flights = {}  # (rank, id) -> [begin_ts, end_ts]
        for e in events:
            if e["ph"] == "b" and e["name"] == "halo.flight":
                flights.setdefault((e["rank"], e["id"]), [None, None])[0] = e["ts_ns"]
            elif e["ph"] == "e" and e["name"] == "halo.flight":
                flights.setdefault((e["rank"], e["id"]), [None, None])[1] = e["ts_ns"]
        windows = {}
        for (rank, _), (t0, t1) in flights.items():
            assert t0 is not None and t1 is not None and t1 >= t0
            windows.setdefault(rank, []).append((t0, t1))
        assert set(windows) == {0, 1, 2, 3}

        interior = [e for e in events
                    if e["ph"] == "X" and e["name"] == "sweep.interior"]
        assert interior
        for span in interior:
            rank = span["rank"]
            mid = span["ts_ns"] + span["dur_ns"] // 2
            assert any(t0 <= mid <= t1 for t0, t1 in windows.get(rank, [])), (
                f"rank {rank} interior sweep at {mid} outside every halo flight"
            )

    def test_metrics_surface_halo_and_exchange_histograms(self):
        run = _traced_run("process", 4)
        metrics = run.metrics()
        hists = metrics["histograms"]
        assert "exchange.pages" in hists
        assert "halo.wait_ns" in hists
        assert hists["exchange.pages"]["all"]["count"] > 0
        imbalance = run.imbalance()
        assert imbalance["ranks"] == 4
        assert imbalance["updates_imbalance"] >= 1.0
        assert "imb=upd:" in run.summary()

    def test_untraced_run_records_nothing(self, tmp_path):
        run = Platform.preset("mpi", ranks=2, mmat=True).run(
            JacobiSGrid, config=dict(CONFIG)
        )
        assert not run.tracing
        assert run.timeline() == []
        assert run.metrics() == {}
        with pytest.raises(ValueError):
            run.save_trace(tmp_path / "never.json")

    def test_phase_report_renders_from_run(self):
        run = _traced_run("threads", 2)
        report = run.phase_report(limit=3)
        lines = report.splitlines()
        assert len(lines) == 4  # header + 3 rows
        assert "%wall" in lines[0]
