"""Seeded interleaving stress for the process backend's overlapped exchange.

The pipe-mesh transport promises that reply *ordering* never matters:
every ``brep``/``prep`` is matched to its request id, every blocking
wait only consumes buffered messages (the receiver thread does all the
pumping), and an overlapped exchange completed late must still observe
the owner's data from the step it was issued in — never a later step's.

These tests install the :class:`ProcessTransport` reply shim — a
deterministic, seed-driven delay applied to every outgoing page reply
before it reaches the sender thread — and drive many shuffled reply
schedules through one world, proving (a) no deadlock and (b) no stale
or cross-matched page read, plus a full application run under the shim.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.annotation import Platform
from repro.apps import JacobiSGrid
from repro.aspects import mpi_aspects
from repro.runtime import get_backend
from repro.runtime.backends.process import ProcessTransport

RANKS = 3
ROUNDS = 50
SEED = 0x5EED


def _delay_for(seed: int, rank: int, peer: int, req_id: int) -> float:
    """Deterministic pseudo-random delay in [0, 4) ms."""
    digest = hashlib.sha256(f"{seed}:{rank}:{peer}:{req_id}".encode()).digest()
    return (digest[0] / 255.0) * 0.004


def _shim(rank: int, peer: int, reply: tuple) -> float:
    # reply = ("brep"|"prep"|"perr", req_id, ...): delay keyed by req id,
    # so consecutive requests from one peer complete out of order.
    return _delay_for(SEED, rank, peer, reply[1])


@pytest.fixture
def reply_shim():
    """Install the deterministic reply shim; always restore afterwards."""
    assert ProcessTransport.reply_shim is None
    ProcessTransport.reply_shim = staticmethod(_shim)
    try:
        yield
    finally:
        ProcessTransport.reply_shim = None


class VersionedEndpoint:
    """Env stand-in whose page values encode (rank, key, current round).

    A reply served in round ``r`` must carry round ``r``'s values; if a
    delayed reply were matched to the wrong request — or an overlapped
    fetch read a page after the owner advanced — the round stamp in the
    payload would betray it.
    """

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.version = -1

    def page_snapshot(self, key):
        base = 1000.0 * self.rank + 10.0 * key.page_index
        return np.arange(4, dtype=np.float64) + base + 100_000.0 * self.version


def expected_page(owner: int, page: int, version: int) -> np.ndarray:
    return np.arange(4, dtype=np.float64) + 1000.0 * owner + 10.0 * page + 100_000.0 * version


class TestShuffledReplySchedules:
    def test_fifty_shuffled_schedules_no_deadlock_no_stale_read(self, reply_shim):
        """50 rounds of overlapped mixed-owner fetches under scrambled replies.

        Each round bumps every owner's version between two barriers, so
        any reply served outside its round — or matched to another
        round's request — produces values with the wrong round stamp.
        """
        world = get_backend("process").create_world(RANKS, timeout=30.0)

        def body(ctx):
            rank = ctx.mpi_rank
            endpoint = VersionedEndpoint(rank)
            world.register_env(rank, endpoint)
            world.register_block(("blk", rank), rank, 40 + rank, owner=True)
            world.commit_registration()
            bad = []
            for round_no in range(ROUNDS):
                endpoint.version = round_no
                world.barrier()  # every owner is at this round's version
                # Two overlapping in-flight exchanges per round, waited in
                # reverse issue order (the second's replies often arrive
                # first thanks to the shim's per-request delays).
                first = world.fetch_pages_bulk_async(
                    rank, [(("blk", owner), rank) for owner in range(RANKS)]
                )
                second = world.fetch_pages_bulk_async(
                    rank, [(("blk", (rank + 1) % RANKS), 7)]
                )
                for result in (second.wait(), first.wait(), first.wait()):
                    for (key, owner_rank), page, data in (
                        ((k, k[1]), p, d) for k, p, d in result.pages
                    ):
                        want = expected_page(owner_rank, page, round_no)
                        if not np.array_equal(np.asarray(data), want):
                            bad.append((round_no, key, page))
                world.barrier()  # all waits done before versions advance
            return bad

        results = world.run_spmd(body)
        for result in results:
            assert result.value == []
        stats = world.traffic_summary()
        # Every round moved RANKS+1 pages per rank through bulk exchanges.
        assert stats["bulk_pages"] == RANKS * ROUNDS * (RANKS + 1)

    def test_jacobi_under_scrambled_replies_matches_reference(self, reply_shim):
        """A real app run with delayed/reordered replies stays bit-identical."""
        config = dict(
            region=16, block_size=4, page_elements=8, loops=3,
            init=lambda x, y: 0.04 * x - 0.03 * y + 1.5,
        )
        shimmed = Platform(
            aspects=mpi_aspects(2, backend="process", overlap=True), mmat=True
        ).run(JacobiSGrid, config=dict(config))
        ProcessTransport.reply_shim = None  # reference run: no shim
        reference = Platform(
            aspects=mpi_aspects(2, backend="process", overlap=True), mmat=True
        ).run(JacobiSGrid, config=dict(config))
        a = np.asarray(shimmed.result, dtype=np.float64)
        b = np.asarray(reference.result, dtype=np.float64)
        np.testing.assert_array_equal(np.isnan(a), np.isnan(b))
        mask = ~np.isnan(a)
        np.testing.assert_array_equal(a[mask], b[mask])
