"""Integration tests for the measurable platform properties the paper reports.

These are not performance assertions in absolute terms (CI machines vary);
they check the *relationships* the paper's evaluation section claims:
weaving without aspects is cheap, MMAT reduces Env searches, the platform
uses more memory than handwritten code, woven programs are bigger, and the
App-part LoC is comparable to handwritten code.
"""

from __future__ import annotations

import pytest

from repro.analysis import class_code_bytes, measure_env, measure_handwritten
from repro.annotation import Platform
from repro.apps import HandwrittenSGrid, JacobiSGrid
from repro.aspects import hybrid_aspects, mpi_aspects, openmp_aspects
from repro.bench import (
    fig12_memory_usage,
    sgrid_workload,
    run_handwritten,
    run_platform,
    table1_binary_size,
    table2_loc,
)


CONFIG = dict(region=16, block_size=8, page_elements=16, loops=2,
              init=lambda x, y: float(x + y))


class TestWeavingOverheadStructure:
    def test_nop_weave_only_adds_wrappers(self):
        woven = Platform(aspects=[]).build(JacobiSGrid)
        info = woven.__aop_woven__
        assert info.wrapped_sites > 0
        assert info.advised_sites == 0

    def test_aspect_weave_advises_platform_joinpoints(self):
        woven = Platform(aspects=mpi_aspects(2)).build(JacobiSGrid)
        info = woven.__aop_woven__
        assert info.advised_sites > 0

    def test_env_class_is_woven_once_per_platform(self):
        platform = Platform(aspects=openmp_aspects(2))
        assert platform.env_class is not None
        assert platform.env_class.__aop_woven__.wrapped_sites >= 2  # get_blocks, refresh


class TestMemoryUsageRelationships:
    def test_platform_uses_more_working_memory_than_handwritten(self):
        work = sgrid_workload(16, loops=1)
        _e, _r, hw_bytes = run_handwritten(work)
        run = run_platform(work, mmat=True, pool_bytes=4 * 1024 * 1024)
        platform_breakdown = measure_env(run.app.env, label="platform")
        handwritten_breakdown = measure_handwritten(hw_bytes, label="handwritten")
        assert platform_breakdown.working > handwritten_breakdown.working
        assert platform_breakdown.used_pool > 0
        assert platform_breakdown.unused_pool > 0

    def test_fig12_rows_cover_all_configurations(self):
        rows = fig12_memory_usage(region=16, particles=64,
                                  configurations=("serial", "omp"))
        labels = {row["label"] for row in rows}
        assert any("/ H" in label for label in labels)
        assert any("Platform OMP" in label for label in labels)
        assert all(row["total_MB"] > 0 for row in rows)


class TestProgramSizeRelationships:
    def test_woven_configurations_are_monotonically_larger(self):
        sizes = {}
        for label, aspects in (
            ("plain", None),
            ("nop", []),
            ("omp", openmp_aspects(2)),
            ("mpi", mpi_aspects(2)),
            ("hybrid", hybrid_aspects(2, 2)),
        ):
            platform = Platform(aspects=aspects)
            sizes[label] = class_code_bytes(platform.build(JacobiSGrid))
        assert sizes["plain"] < sizes["nop"] <= sizes["omp"]

    def test_table1_ordering(self):
        rows = table1_binary_size()
        for row in rows:
            assert row["H_KiB"] < row["P_KiB"] < row["P_NOP_KiB"]
            assert row["P_NOP_KiB"] < row["P_OMP_KiB"] < row["P_MPI+OMP_KiB"]
            assert row["P_MPI_KiB"] < row["P_MPI+OMP_KiB"]

    def test_table2_app_part_comparable_to_handwritten(self):
        rows = table2_loc()
        assert {row["benchmark"] for row in rows} == {"SGrid", "USGrid", "Particle"}
        for row in rows:
            assert row["platform_part"] > row["dsl_part"] > 0
            # The paper's point: end-user code is about the size of handwritten code.
            assert row["app_part"] < 3 * row["handwritten"]
            assert row["handwritten"] < 5 * row["app_part"]


class TestEnvSearchRelationships:
    def test_mmat_reduces_search_steps(self):
        run_plain = Platform(mmat=False).run(JacobiSGrid, config=dict(CONFIG))
        run_mmat = Platform(mmat=True).run(JacobiSGrid, config=dict(CONFIG))
        assert run_mmat.env_stats.search_steps < run_plain.env_stats.search_steps

    def test_inside_hint_avoids_searches_entirely_for_interior_points(self):
        run = Platform().run(JacobiSGrid, config=dict(CONFIG))
        stats = run.env_stats
        # Most stencil reads carry the "inside" hint (i>0, j>0, ...), so
        # in-block reads must dominate out-of-block ones.
        assert stats.in_block_reads > stats.out_of_block_reads
