"""Integration tests for the scaling-figure generators (shape assertions).

Each test runs a miniature version of one evaluation figure and asserts
the qualitative property the paper reports — who wins, in which
direction the curve bends — rather than absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    fig6_overhead,
    fig7_strong_scaling_mpi,
    fig8_weak_scaling_mpi,
    fig9_strong_scaling_omp,
    fig10_weak_scaling_omp,
    fig11_hybrid,
    sgrid_workload,
    usgrid_workload,
)


@pytest.fixture(scope="module")
def tiny_series():
    return {
        "SGrid": sgrid_workload(16, block_size=4),
        "USGrid CaseR": usgrid_workload(16, case="R", block_cells=32),
    }


class TestFig6:
    def test_overhead_rows_structure(self):
        rows = fig6_overhead(
            workloads=[sgrid_workload(16, loops=1)],
            configurations=("serial", "nop"),
            include_mmat=True,
        )
        configs = {row["configuration"] for row in rows}
        assert {"Handwritten", "Platform", "Platform NOP"} <= configs
        handwritten = [r for r in rows if r["configuration"] == "Handwritten"][0]
        assert handwritten["relative_pct"] == 100.0
        platform_rows = [r for r in rows if r["configuration"] != "Handwritten"]
        # The platform has overhead over handwritten code on a single task.
        assert all(r["relative_pct"] > 100.0 for r in platform_rows)

    def test_mmat_reduces_usgrid_overhead(self):
        rows = fig6_overhead(
            workloads=[usgrid_workload(24, block_cells=32, loops=2)],
            configurations=("serial",),
            include_mmat=True,
        )
        without = [r for r in rows if r["mmat"] == "w/o MMAT"][0]
        with_mmat = [r for r in rows if r["mmat"] == "w MMAT"][0]
        # Wall-clock on tiny problems is noisy; allow a small tolerance but
        # MMAT must not make the indirect-access benchmark meaningfully slower.
        assert with_mmat["elapsed_s"] < without["elapsed_s"] * 1.05


class TestStrongScaling:
    def test_fig7_mpi_strong_scaling_is_nearly_linear(self, tiny_series):
        rows = fig7_strong_scaling_mpi(counts=(1, 2, 4), series={"SGrid": tiny_series["SGrid"]})
        by_tasks = {row["tasks"]: row["relative"] for row in rows}
        assert by_tasks[1] == pytest.approx(1.0)
        assert 0.4 < by_tasks[2] < 0.95
        assert 0.2 < by_tasks[4] < 0.7
        assert by_tasks[4] < by_tasks[2] < by_tasks[1]

    def test_fig9_omp_strong_scaling_is_nearly_linear(self, tiny_series):
        rows = fig9_strong_scaling_omp(counts=(1, 4), series={"SGrid": tiny_series["SGrid"]})
        by_tasks = {row["tasks"]: row["relative"] for row in rows}
        assert by_tasks[4] < 0.6


class TestWeakScaling:
    def test_fig8_caser_degrades_more_than_sgrid(self, tiny_series):
        rows = fig8_weak_scaling_mpi(counts=(1, 4), series=tiny_series)
        by_series = {}
        for row in rows:
            by_series.setdefault(row["series"], {})[row["tasks"]] = row["relative"]
        assert by_series["SGrid"][4] >= 0.99  # roughly flat
        assert by_series["USGrid CaseR"][4] > by_series["SGrid"][4]

    def test_fig10_weak_omp_degrades_gradually(self, tiny_series):
        rows = fig10_weak_scaling_omp(counts=(1, 4), series={"SGrid": tiny_series["SGrid"]})
        by_tasks = {row["tasks"]: row["relative"] for row in rows}
        assert 1.0 <= by_tasks[4] < 2.0


class TestHybrid:
    def test_fig11_rows_cover_all_combinations(self, tiny_series):
        combos = ((1, 4), (2, 2), (4, 1))
        rows = fig11_hybrid(combinations=combos, series={"SGrid": tiny_series["SGrid"]})
        seen = {(row["processes"], row["threads"]) for row in rows}
        assert seen == set(combos)
        # 4 tasks in any split beat the single-task baseline.
        assert all(row["relative_pct"] < 100.0 for row in rows)
