"""Backend-conformance suite: every registered backend honours one contract.

Parametrised over the registered execution backends, each section
exercises one capability of the :class:`ExecutionWorld` interface —
SPMD launch, allreduce/barrier semantics, the page fetch protocol and
error propagation from a failing rank — and the final section is the
platform-level property: on all three DSL applications, every backend
produces numerically identical results to the ``serial`` reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Platform
from repro.apps import JacobiSGrid, JacobiUSGrid, ParticleSimulation
from repro.runtime import get_backend

#: (backend name, world sizes it supports in this suite).
BACKEND_SIZES = [
    ("serial", (1,)),
    ("threads", (1, 2, 3)),
    ("process", (1, 2, 3)),
]

CASES = [
    pytest.param(name, size, id=f"{name}-{size}")
    for name, sizes in BACKEND_SIZES
    for size in sizes
]

TIMEOUT = 15.0


def make_world(backend: str, size: int):
    return get_backend(backend).create_world(size, timeout=TIMEOUT)


# ----------------------------------------------------------------------
# SPMD launch
# ----------------------------------------------------------------------


class TestSpmdLaunch:
    @pytest.mark.parametrize("backend,size", CASES)
    def test_every_rank_runs_with_its_context(self, backend, size):
        world = make_world(backend, size)
        results = world.run_spmd(lambda ctx: (ctx.mpi_rank, ctx.mpi_size, ctx.omp_thread))
        assert [r.rank for r in results] == list(range(size))
        assert [r.value for r in results] == [(r, size, 0) for r in range(size)]

    @pytest.mark.parametrize("backend,size", CASES)
    def test_omp_threads_reach_the_task_context(self, backend, size):
        world = make_world(backend, size)
        results = world.run_spmd(lambda ctx: ctx.omp_threads, omp_threads=4)
        assert [r.value for r in results] == [4] * size


# ----------------------------------------------------------------------
# collectives
# ----------------------------------------------------------------------


class TestCollectives:
    @pytest.mark.parametrize("backend,size", CASES)
    def test_allreduce_sum_of_ranks(self, backend, size):
        world = make_world(backend, size)
        results = world.run_spmd(lambda ctx: world.allreduce_sum(float(ctx.mpi_rank)))
        expected = float(sum(range(size)))
        assert [r.value for r in results] == [expected] * size

    @pytest.mark.parametrize("backend,size", CASES)
    def test_allreduce_and_is_false_if_any_rank_fails(self, backend, size):
        world = make_world(backend, size)
        results = world.run_spmd(
            lambda ctx: world.allreduce_and(ctx.mpi_rank != size - 1)
        )
        # the last rank contributes False, so everyone must see False
        assert [r.value for r in results] == [False] * size
        results = world.run_spmd(lambda ctx: world.allreduce_and(True))
        assert [r.value for r in results] == [True] * size

    @pytest.mark.parametrize("backend,size", [p for p in CASES if "1" not in p.id])
    def test_large_collective_payload_does_not_deadlock(self, backend, size):
        # Regression: a contribution far larger than the OS pipe buffer
        # must not deadlock the process backend's fan-out (every rank
        # used to block in Connection.send with nobody receiving).
        world = make_world(backend, size)

        def body(ctx):
            big = list(range(60_000))  # ~0.5 MiB pickled per peer message
            return world.allreduce(big, lambda values: sum(len(v) for v in values))

        results = world.run_spmd(body)
        assert [r.value for r in results] == [60_000 * size] * size

    @pytest.mark.parametrize("backend,size", CASES)
    def test_barrier_separates_phases(self, backend, size):
        world = make_world(backend, size)

        def body(ctx):
            before = world.allreduce_sum(1.0)
            world.barrier()
            after = world.allreduce_sum(2.0)
            return (before, after)

        results = world.run_spmd(body)
        assert [r.value for r in results] == [(float(size), 2.0 * size)] * size
        assert world.traffic_summary()["barriers"] >= 1


# ----------------------------------------------------------------------
# page fetch
# ----------------------------------------------------------------------


class PageEndpoint:
    """Minimal Env stand-in serving deterministic page snapshots."""

    def __init__(self, rank: int) -> None:
        self.rank = rank

    def page_snapshot(self, key):
        base = 1000.0 * self.rank + 10.0 * key.block_id + key.page_index
        return np.arange(4, dtype=np.float64) + base


class TestPageFetch:
    @pytest.mark.parametrize("backend,size", CASES)
    def test_fetch_from_owning_rank(self, backend, size):
        world = make_world(backend, size)

        def body(ctx):
            rank = ctx.mpi_rank
            world.register_env(rank, PageEndpoint(rank))
            world.register_block(("blk", rank), rank, 7 + rank, owner=True)
            world.commit_registration()
            owner = (rank + 1) % size
            data = world.fetch_page_by_logical(rank, ("blk", owner), 3)
            world.barrier()  # keep every rank serving until all fetched
            return list(data)

        results = world.run_spmd(body)
        for rank, result in enumerate(results):
            owner = (rank + 1) % size
            expected = np.arange(4) + 1000.0 * owner + 10.0 * (7 + owner) + 3
            np.testing.assert_allclose(result.value, expected)
        assert world.traffic_summary()["page_fetches"] == size

    @pytest.mark.parametrize("backend,size", CASES)
    def test_directory_is_globally_consistent_after_commit(self, backend, size):
        world = make_world(backend, size)

        def body(ctx):
            rank = ctx.mpi_rank
            world.register_env(rank, PageEndpoint(rank))
            world.register_block(("blk", rank), rank, 100 + rank, owner=True)
            world.commit_registration()
            return sorted(
                (key, world.directory.owner_of(key)) for key in world.directory.known_blocks()
            )

        results = world.run_spmd(body)
        expected = sorted((("blk", r), r) for r in range(size))
        for result in results:
            assert result.value == expected


# ----------------------------------------------------------------------
# batched page transport (comm-plan exchange)
# ----------------------------------------------------------------------


class TestBulkFetch:
    """Every backend honours the batched transport op's contract."""

    @staticmethod
    def _register(world, ctx):
        rank = ctx.mpi_rank
        world.register_env(rank, PageEndpoint(rank))
        world.register_block(("blk", rank), rank, 7 + rank, owner=True)
        world.commit_registration()
        return rank

    @pytest.mark.parametrize("backend,size", CASES)
    def test_empty_request_set(self, backend, size):
        world = make_world(backend, size)

        def body(ctx):
            rank = self._register(world, ctx)
            result = world.fetch_pages_bulk(rank, [])
            world.barrier()
            return (len(result.pages), result.exchanges, result.nbytes)

        results = world.run_spmd(body)
        assert [r.value for r in results] == [(0, 0, 0)] * size
        assert world.traffic_summary()["bulk_fetches"] == 0

    @pytest.mark.parametrize("backend,size", CASES)
    def test_self_rank_request(self, backend, size):
        world = make_world(backend, size)

        def body(ctx):
            rank = self._register(world, ctx)
            result = world.fetch_pages_bulk(
                rank, [(("blk", rank), 0), (("blk", rank), 2)]
            )
            world.barrier()
            return (result.exchanges, [list(data) for _, _, data in result.pages])

        results = world.run_spmd(body)
        for rank, result in enumerate(results):
            exchanges, pages = result.value
            assert exchanges == 1  # one owner (the rank itself) -> one exchange
            base = 1000.0 * rank + 10.0 * (7 + rank)
            np.testing.assert_allclose(pages[0], np.arange(4) + base + 0)
            np.testing.assert_allclose(pages[1], np.arange(4) + base + 2)

    @pytest.mark.parametrize("backend,size", CASES)
    def test_mixed_owner_batch(self, backend, size):
        world = make_world(backend, size)

        def body(ctx):
            rank = self._register(world, ctx)
            requests = [(("blk", owner), 1) for owner in range(size)]
            result = world.fetch_pages_bulk(rank, requests)
            world.barrier()  # keep every rank serving until all fetched
            return (
                result.exchanges,
                [(key, list(data)) for key, _, data in result.pages],
            )

        results = world.run_spmd(body)
        for result in results:
            exchanges, pages = result.value
            assert exchanges == size  # one aggregated exchange per owner
            assert [key for key, _ in pages] == [("blk", o) for o in range(size)]
            for (_, owner), values in pages:
                expected = np.arange(4) + 1000.0 * owner + 10.0 * (7 + owner) + 1
                np.testing.assert_allclose(values, expected)
        stats = world.traffic_summary()
        assert stats["page_fetches"] == size * size
        assert stats["bulk_fetches"] == size * size  # size exchanges per rank
        assert stats["bulk_pages"] == size * size

    @pytest.mark.parametrize("backend,size", CASES)
    def test_unresolvable_owner_raises(self, backend, size):
        from repro.runtime import NetworkError

        world = make_world(backend, size)

        def body(ctx):
            rank = self._register(world, ctx)
            try:
                with pytest.raises(NetworkError, match="no owner registered"):
                    world.fetch_pages_bulk(rank, [(("ghost", 99), 0)])
            finally:
                world.barrier()
            return "ok"

        results = world.run_spmd(body)
        assert [r.value for r in results] == ["ok"] * size


# ----------------------------------------------------------------------
# nonblocking batched transport (overlapped halo exchange)
# ----------------------------------------------------------------------


class TestAsyncBulkFetch:
    """Every backend honours the nonblocking transport op's contract.

    ``fetch_pages_bulk_async`` must return a :class:`CommHandle` whose
    (idempotent) ``wait()`` yields exactly what the blocking
    ``fetch_pages_bulk`` would have returned — same pages, same order,
    same exchange count, same traffic accounting — regardless of when
    the handle is waited relative to the in-flight transfers.
    """

    @staticmethod
    def _register(world, ctx):
        rank = ctx.mpi_rank
        world.register_env(rank, PageEndpoint(rank))
        world.register_block(("blk", rank), rank, 7 + rank, owner=True)
        world.commit_registration()
        return rank

    @pytest.mark.parametrize("backend,size", CASES)
    def test_empty_request_set(self, backend, size):
        world = make_world(backend, size)

        def body(ctx):
            rank = self._register(world, ctx)
            handle = world.fetch_pages_bulk_async(rank, [])
            result = handle.wait()
            world.barrier()
            return (len(result.pages), result.exchanges, result.nbytes)

        results = world.run_spmd(body)
        assert [r.value for r in results] == [(0, 0, 0)] * size
        assert world.traffic_summary()["bulk_fetches"] == 0

    @pytest.mark.parametrize("backend,size", CASES)
    def test_self_rank_request(self, backend, size):
        world = make_world(backend, size)

        def body(ctx):
            rank = self._register(world, ctx)
            handle = world.fetch_pages_bulk_async(
                rank, [(("blk", rank), 0), (("blk", rank), 2)]
            )
            result = handle.wait()
            world.barrier()
            return (result.exchanges, [list(data) for _, _, data in result.pages])

        results = world.run_spmd(body)
        for rank, result in enumerate(results):
            exchanges, pages = result.value
            assert exchanges == 1  # one owner (the rank itself) -> one exchange
            base = 1000.0 * rank + 10.0 * (7 + rank)
            np.testing.assert_allclose(pages[0], np.arange(4) + base + 0)
            np.testing.assert_allclose(pages[1], np.arange(4) + base + 2)

    @pytest.mark.parametrize("backend,size", CASES)
    def test_mixed_owner_batch_matches_blocking(self, backend, size):
        world = make_world(backend, size)

        def body(ctx):
            rank = self._register(world, ctx)
            requests = [(("blk", owner), 1) for owner in range(size)]
            asynchronous = world.fetch_pages_bulk_async(rank, requests).wait()
            blocking = world.fetch_pages_bulk(rank, requests)
            world.barrier()  # keep every rank serving until all fetched
            return (
                asynchronous.exchanges == blocking.exchanges,
                asynchronous.nbytes == blocking.nbytes,
                [
                    (ka, pa, list(da)) == (kb, pb, list(db))
                    for (ka, pa, da), (kb, pb, db) in zip(
                        asynchronous.pages, blocking.pages
                    )
                ],
            )

        results = world.run_spmd(body)
        for result in results:
            same_exchanges, same_bytes, same_pages = result.value
            assert same_exchanges and same_bytes and all(same_pages)

    @pytest.mark.parametrize("backend,size", CASES)
    def test_wait_before_send_completes(self, backend, size):
        """Waiting immediately after issue (no compute in between) is legal."""
        world = make_world(backend, size)

        def body(ctx):
            rank = self._register(world, ctx)
            owner = (rank + 1) % size
            handle = world.fetch_pages_bulk_async(rank, [(("blk", owner), 3)])
            result = handle.wait()  # the reply may not even have left yet
            world.barrier()
            return [list(data) for _, _, data in result.pages]

        results = world.run_spmd(body)
        for rank, result in enumerate(results):
            owner = (rank + 1) % size
            expected = np.arange(4) + 1000.0 * owner + 10.0 * (7 + owner) + 3
            np.testing.assert_allclose(result.value[0], expected)

    @pytest.mark.parametrize("backend,size", CASES)
    def test_double_wait_is_idempotent(self, backend, size):
        """A second wait() returns the same result and recounts nothing."""
        world = make_world(backend, size)

        def body(ctx):
            rank = self._register(world, ctx)
            requests = [(("blk", owner), 2) for owner in range(size)]
            handle = world.fetch_pages_bulk_async(rank, requests)
            first = handle.wait()
            second = handle.wait()
            world.barrier()
            return (first is second, handle.done)

        results = world.run_spmd(body)
        assert [r.value for r in results] == [(True, True)] * size
        stats = world.traffic_summary()
        # Counted once per rank's batch despite the double wait.
        assert stats["page_fetches"] == size * size
        assert stats["bulk_pages"] == size * size

    @pytest.mark.parametrize("backend,size", CASES)
    def test_unresolvable_owner_raises_at_issue(self, backend, size):
        from repro.runtime import NetworkError

        world = make_world(backend, size)

        def body(ctx):
            rank = self._register(world, ctx)
            try:
                with pytest.raises(NetworkError, match="no owner registered"):
                    world.fetch_pages_bulk_async(rank, [(("ghost", 99), 0)])
            finally:
                world.barrier()
            return "ok"

        results = world.run_spmd(body)
        assert [r.value for r in results] == ["ok"] * size


# ----------------------------------------------------------------------
# error propagation
# ----------------------------------------------------------------------


class TestErrorPropagation:
    @pytest.mark.parametrize("backend,size", CASES)
    def test_failing_rank_fails_the_world(self, backend, size):
        world = make_world(backend, size)

        def body(ctx):
            if ctx.mpi_rank == size - 1:
                raise ValueError(f"boom on rank {ctx.mpi_rank}")
            return "ok"

        with pytest.raises(RuntimeError, match=r"rank\(s\) failed") as excinfo:
            world.run_spmd(body)
        cause = excinfo.value.__cause__
        assert isinstance(cause, ValueError)
        assert f"boom on rank {size - 1}" in str(cause)

    @pytest.mark.parametrize("backend,size", CASES)
    def test_world_survives_a_failed_run(self, backend, size):
        world = make_world(backend, size)

        def failing(ctx):
            raise RuntimeError("every rank fails")

        with pytest.raises(RuntimeError):
            world.run_spmd(failing)
        results = world.run_spmd(lambda ctx: ctx.mpi_rank)
        assert [r.value for r in results] == list(range(size))


# ----------------------------------------------------------------------
# platform-level property: identical numerics on the three DSL apps
# ----------------------------------------------------------------------


def _init(x, y):
    return 0.05 * x - 0.02 * y + 1.0


SGRID_CONFIG = dict(region=16, block_size=4, page_elements=8, loops=3, init=_init)
USGRID_CONFIG = dict(region=16, block_cells=32, page_elements=8, loops=3, init=_init)
PARTICLE_CONFIG = dict(particles=128, block_buckets=4, page_elements=4, loops=2)

APPS = {
    "sgrid": (JacobiSGrid, SGRID_CONFIG),
    "usgrid": (JacobiUSGrid, USGRID_CONFIG),
    "particle": (ParticleSimulation, PARTICLE_CONFIG),
}


@pytest.fixture(scope="module")
def serial_references():
    refs = {}
    for name, (app_cls, config) in APPS.items():
        run = Platform.preset("serial").run(app_cls, config=dict(config))
        refs[name] = np.asarray(run.result)
    return refs


class TestNumericalEquivalence:
    @pytest.mark.parametrize("app_name", list(APPS))
    @pytest.mark.parametrize("backend", ["serial", "threads", "process"])
    def test_backend_matches_serial_reference(self, serial_references, backend, app_name):
        app_cls, config = APPS[app_name]
        ranks = 1 if backend == "serial" else 2
        run = Platform.preset("mpi", mpi=ranks, backend=backend, mmat=True).run(
            app_cls, config=dict(config)
        )
        assert run.backend == backend
        result = np.asarray(run.result)
        reference = serial_references[app_name]
        if app_name == "particle":
            # Particle runs report locally-owned particles; match by id.
            ref_by_id = {row[0]: row for row in reference}
            assert len(result) > 0
            for row in result:
                np.testing.assert_allclose(row, ref_by_id[row[0]], atol=1e-10)
        else:
            # Grid results may be NaN-padded to the rank-local domain.
            mask = ~np.isnan(result)
            assert mask.any()
            np.testing.assert_allclose(result[mask], reference[mask], atol=1e-10)

    @pytest.mark.parametrize("app_name", ["sgrid", "usgrid"])
    def test_process_and_threads_agree_exactly(self, app_name):
        app_cls, config = APPS[app_name]
        runs = {
            backend: Platform.preset("mpi", mpi=2, backend=backend, mmat=True).run(
                app_cls, config=dict(config)
            )
            for backend in ("threads", "process")
        }
        a = np.asarray(runs["threads"].result)
        b = np.asarray(runs["process"].result)
        np.testing.assert_array_equal(np.isnan(a), np.isnan(b))
        mask = ~np.isnan(a)
        np.testing.assert_allclose(a[mask], b[mask], atol=0.0)

    def test_hybrid_process_matches_serial(self, serial_references):
        run = Platform.preset("hybrid", mpi=2, omp=2, backend="process").run(
            JacobiSGrid, config=dict(SGRID_CONFIG)
        )
        result = np.asarray(run.result)
        mask = ~np.isnan(result)
        assert mask.any()
        np.testing.assert_allclose(
            result[mask], serial_references["sgrid"][mask], atol=1e-10
        )

    @pytest.mark.parametrize("backend", ["serial", "threads", "process"])
    def test_traffic_counters_are_uniform_across_backends(self, backend):
        ranks = 1 if backend == "serial" else 2
        run = Platform.preset("mpi", mpi=ranks, backend=backend).run(
            JacobiSGrid, config=dict(SGRID_CONFIG)
        )
        assert set(run.network) == {
            "messages", "bytes_moved", "barriers", "allreduces", "page_fetches",
            "bulk_fetches", "bulk_pages", "per_neighbor", "peer_dead",
            "shm_fetches", "shm_bytes", "shm_fallbacks",
        }
        assert run.network["peer_dead"] == 0  # healthy run: no dead peers
        if ranks > 1:
            assert run.network["page_fetches"] > 0
            assert run.network["bytes_moved"] > 0
        # Per-task trace counters agree with the transport counters.
        assert sum(c.pages_fetched for c in run.counters.values()) == (
            run.network["page_fetches"]
        )
