"""Transport-conformance suite: the shm data plane honours the pipe contract.

The process backend's shared-memory page transport promises to be an
invisible substitution for the packed-pipe path: identical page data,
identical *logical* traffic accounting (messages, bytes moved,
per-neighbor links) and identical error behaviour — only the physical
route of the page bytes changes, recorded separately in the ``shm_*``
counters.  This suite runs the bulk-fetch contract cases under both
transports side by side, checks the fallback path for pages shared
memory cannot carry, and pins the segment-hygiene guarantees (clean
finalize, dead-rank sweep; the mid-run kill regression for leaked
``/dev/shm`` entries lives in ``TestSegmentHygiene``).
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro import Platform
from repro.apps import JacobiSGrid
from repro.resilience import FaultPlan, ResiliencePolicy
from repro.runtime import get_backend
from repro.runtime.shm import shm_available

pytestmark = pytest.mark.skipif(
    not get_backend("process").available() or not shm_available(),
    reason="process backend with shared memory unavailable",
)

TIMEOUT = 15.0
TRANSPORTS = ["pipe", "shm"]
SIZES = [2, 3]
CASES = [
    pytest.param(transport, size, id=f"{transport}-{size}")
    for transport in TRANSPORTS
    for size in SIZES
]

#: traffic_summary keys that must be *identical* between transports.
LOGICAL_KEYS = (
    "messages",
    "bytes_moved",
    "page_fetches",
    "bulk_fetches",
    "bulk_pages",
    "per_neighbor",
)


def make_world(size: int, transport: str):
    return get_backend("process").create_world(
        size, timeout=TIMEOUT, page_transport=transport
    )


class PageEndpoint:
    """Float pages, deterministic per (rank, block, page)."""

    def __init__(self, rank: int) -> None:
        self.rank = rank

    def page_snapshot(self, key):
        base = 1000.0 * self.rank + 10.0 * key.block_id + key.page_index
        return np.arange(4, dtype=np.float64) + base


class EmptyPageEndpoint(PageEndpoint):
    """Odd pages are zero-length — ineligible for shared memory.

    (Object-dtype pages are the other ineligible class, but those are
    unservable by the packed path too — ``tobytes`` of pointers does not
    survive a process hop — so the conformance case uses the ineligible
    shape both transports can actually carry.)
    """

    def page_snapshot(self, key):
        if key.page_index % 2:
            return np.array([], dtype=np.float64)
        return super().page_snapshot(key)


def run_fetch(size, transport, *, endpoint_cls=PageEndpoint, page_indices=(0, 2)):
    """One bulk fetch per rank from every peer; returns (world, rank dicts)."""
    world = make_world(size, transport)

    def body(ctx):
        rank = ctx.mpi_rank
        world.register_env(rank, endpoint_cls(rank))
        world.register_block(("blk", rank), rank, 7 + rank, owner=True)
        world.commit_registration()
        requests = [
            (("blk", owner), index)
            for owner in range(size)
            if owner != rank
            for index in page_indices
        ]
        result = world.fetch_pages_bulk(rank, requests)
        world.barrier()
        return {
            "rank": rank,
            "pages": {key: np.asarray(data).tolist() for key, _, data in result.pages},
            "exchanges": result.exchanges,
        }

    try:
        results = world.run_spmd(body)
        return world, [r.value for r in results]
    finally:
        world.finalize()


def leftover_segments(pattern: str = "repro_shm_*") -> list:
    return glob.glob(f"/dev/shm/{pattern}")


# ----------------------------------------------------------------------
# contract cases, transport x size
# ----------------------------------------------------------------------


class TestBulkFetchContract:
    @pytest.mark.parametrize("transport,size", CASES)
    def test_empty_request_set(self, transport, size):
        world = make_world(size, transport)

        def body(ctx):
            rank = ctx.mpi_rank
            world.register_env(rank, PageEndpoint(rank))
            world.register_block(("blk", rank), rank, 7 + rank, owner=True)
            world.commit_registration()
            result = world.fetch_pages_bulk(rank, [])
            world.barrier()
            return (len(result.pages), result.exchanges, result.nbytes)

        try:
            results = world.run_spmd(body)
        finally:
            world.finalize()
        assert [r.value for r in results] == [(0, 0, 0)] * size
        assert world.traffic_summary()["shm_fetches"] == 0

    @pytest.mark.parametrize("transport,size", CASES)
    def test_self_rank_request_never_uses_segments(self, transport, size):
        world = make_world(size, transport)

        def body(ctx):
            rank = ctx.mpi_rank
            world.register_env(rank, PageEndpoint(rank))
            world.register_block(("blk", rank), rank, 7 + rank, owner=True)
            world.commit_registration()
            result = world.fetch_pages_bulk(rank, [(("blk", rank), 0), (("blk", rank), 2)])
            world.barrier()
            return [np.asarray(data).tolist() for _, _, data in result.pages]

        try:
            results = world.run_spmd(body)
        finally:
            world.finalize()
        for rank, result in enumerate(results):
            base = 1000.0 * rank + 10.0 * (7 + rank)
            np.testing.assert_allclose(result.value[0], np.arange(4) + base + 0)
            np.testing.assert_allclose(result.value[1], np.arange(4) + base + 2)
        # Local pages never travel, so neither transport touches segments.
        assert world.traffic_summary()["shm_fetches"] == 0

    @pytest.mark.parametrize("size", SIZES)
    def test_mixed_owner_pages_are_identical_across_transports(self, size):
        _, pipe_results = run_fetch(size, "pipe")
        _, shm_results = run_fetch(size, "shm")
        for pipe_rank, shm_rank in zip(pipe_results, shm_results):
            assert pipe_rank["pages"] == shm_rank["pages"]
            assert pipe_rank["exchanges"] == shm_rank["exchanges"]

    @pytest.mark.parametrize("size", SIZES)
    def test_logical_accounting_is_transport_invariant(self, size):
        pipe_world, _ = run_fetch(size, "pipe")
        shm_world, _ = run_fetch(size, "shm")
        pipe_stats = pipe_world.traffic_summary()
        shm_stats = shm_world.traffic_summary()
        for key in LOGICAL_KEYS:
            assert pipe_stats[key] == shm_stats[key], key
        # The physical split is recorded on top: every remote page came
        # through a descriptor in shm mode, none in pipe mode.
        remote_pages = 2 * size * (size - 1)
        assert pipe_stats["shm_fetches"] == 0
        assert pipe_stats["shm_bytes"] == 0
        assert shm_stats["shm_fetches"] == remote_pages
        assert shm_stats["shm_bytes"] == remote_pages * 32
        assert shm_stats["shm_fallbacks"] == 0

    @pytest.mark.parametrize("size", SIZES)
    def test_ineligible_pages_fall_back_to_the_pipe(self, size):
        _, pipe_results = run_fetch(
            size, "pipe", endpoint_cls=EmptyPageEndpoint, page_indices=(0, 1)
        )
        shm_world, shm_results = run_fetch(
            size, "shm", endpoint_cls=EmptyPageEndpoint, page_indices=(0, 1)
        )
        for pipe_rank, shm_rank in zip(pipe_results, shm_results):
            assert pipe_rank["pages"] == shm_rank["pages"]
        stats = shm_world.traffic_summary()
        # Page 0 of each pair is eligible, page 1 (zero-length) is not.
        per_transport = size * (size - 1)
        assert stats["shm_fetches"] == per_transport
        assert stats["shm_fallbacks"] == per_transport

    def test_shm_request_on_unavailable_platform_is_rejected_cleanly(self):
        # "auto" must degrade silently; explicit "shm" must raise upfront.
        world = make_world(2, "auto")
        try:
            assert world.page_transport == "auto"
        finally:
            world.finalize()
        with pytest.raises(ValueError):
            make_world(2, "tcp")


# ----------------------------------------------------------------------
# segment hygiene
# ----------------------------------------------------------------------


class TestSegmentHygiene:
    def test_finalize_leaves_no_segments(self):
        world, _ = run_fetch(3, "shm")
        assert leftover_segments(f"repro_shm_{world.shm_uid}*") == []

    def test_killed_rank_leaves_no_segments(self):
        """Regression: a rank killed mid-refresh must not leak its arena.

        The dead child never runs its transport close, so its named
        segments survive it — until the parent's ``finalize()`` probe
        sweep unlinks them.  A leak here would surface as
        ``resource_tracker`` warnings at interpreter shutdown and stale
        ``/dev/shm`` entries accumulating across recoveries.
        """
        before = set(leftover_segments())
        plan = FaultPlan().kill(1, phase="refresh", epoch=2)
        policy = ResiliencePolicy(fault_plan=plan)
        platform = (
            Platform.builder()
            .mpi(4)
            .mmat()
            .backend("process")
            .page_transport("shm")
            .resilience(policy)
            .comm_timeout(20.0)
            .build()
        )
        run = platform.run(
            JacobiSGrid,
            config=dict(
                region=16,
                block_size=4,
                page_elements=8,
                loops=4,
                init=lambda x, y: 0.05 * x - 0.04 * y + 1.25,
            ),
        )
        assert np.isfinite(np.asarray(run.result)[~np.isnan(np.asarray(run.result))]).all()
        # The shm plane actually carried pages before/after the kill.
        assert sum(c.shm_fetches for c in run.counters.values()) > 0
        assert set(leftover_segments()) == before
