"""Chaos battery: injected failures across the backend matrix.

The acceptance bar of the resilience subsystem: a seeded fault plan
kills a rank mid-run (before registration commits, at refresh entry,
or right after a successful refresh while overlapped prefetches are in
flight), the surviving world detects the death well inside the
communication timeout, re-partitions the dead rank's blocks onto the
survivors, resumes from the last complete checkpoint epoch, and ends
bit-identical to an unfailed serial run — on every backend and every
DSL app.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.annotation import Platform
from repro.apps import JacobiSGrid, JacobiUSGrid, ParticleSimulation
from repro.resilience import FaultPlan, ResiliencePolicy
from repro.runtime import SpmdFailure


def _init(x, y):
    return 0.05 * x - 0.04 * y + 1.25


SGRID_CONFIG = dict(region=16, block_size=4, page_elements=8, loops=4, init=_init)
USGRID_CONFIG = dict(region=16, block_cells=32, page_elements=8, loops=4, init=_init)
PARTICLE_CONFIG = dict(particles=256, block_buckets=4, page_elements=4, loops=4)

APPS = {
    "sgrid": (JacobiSGrid, SGRID_CONFIG),
    "usgrid": (JacobiUSGrid, USGRID_CONFIG),
    "particle": (ParticleSimulation, PARTICLE_CONFIG),
}


@pytest.fixture(scope="module")
def serial_references():
    refs = {}
    for name, (app_cls, config) in APPS.items():
        run = Platform.builder().mpi(1).mmat().build().run(app_cls, config=dict(config))
        refs[name] = np.asarray(run.result)
    return refs


def assert_matches_reference(app_name, result, reference):
    result = np.asarray(result)
    if app_name == "particle":
        # Particle runs report locally-owned particles; match by id.
        ref_by_id = {row[0]: row for row in reference}
        assert len(result) > 0
        for row in result:
            np.testing.assert_array_equal(row, ref_by_id[row[0]])
    else:
        # Grid results are NaN-padded to the rank-local domain.
        mask = ~np.isnan(result)
        assert mask.any()
        np.testing.assert_array_equal(result[mask], reference[mask])


def resilient_platform(backend, ranks, plan, **policy_kwargs):
    policy = ResiliencePolicy(fault_plan=plan, **policy_kwargs)
    return (
        Platform.builder()
        .mpi(ranks)
        .mmat()
        .backend(backend)
        .resilience(policy)
        .comm_timeout(20.0)
        .build()
    )


# ---------------------------------------------------------------------------
# Kill matrix: failure phase x backend
# ---------------------------------------------------------------------------
class TestKillMatrix:
    """``register`` = before registration commits; ``refresh`` = at
    refresh entry (mid-step); ``epoch`` = right after a successful
    refresh, i.e. while the overlapped halo prefetch is in flight."""

    PHASES = ["register", "refresh", "epoch"]

    @pytest.mark.parametrize("phase", PHASES)
    @pytest.mark.parametrize("backend", ["threads", "process"])
    def test_killed_rank_recovers_bit_identical(
        self, serial_references, backend, phase
    ):
        epoch = None if phase == "register" else 2
        plan = FaultPlan().kill(1, phase=phase, epoch=epoch)
        platform = resilient_platform(backend, 4, plan)
        run = platform.run(JacobiSGrid, config=dict(SGRID_CONFIG))
        assert run.restarts == 1
        event = run.recovery_events[0]
        assert event.dead_ranks == (1,)
        assert event.old_size == 4 and event.new_size == 3
        assert_matches_reference("sgrid", run.result, serial_references["sgrid"])

    @pytest.mark.parametrize("phase", PHASES)
    def test_serial_backend_death_is_unrecoverable_but_clean(self, phase):
        # The serial world has one rank; killing it leaves no survivors,
        # which must surface as a diagnosable failure — never a hang.
        epoch = None if phase == "register" else 2
        plan = FaultPlan().kill(0, phase=phase, epoch=epoch)
        platform = resilient_platform("serial", 1, plan)
        with pytest.raises(SpmdFailure, match="every rank died"):
            platform.run(JacobiSGrid, config=dict(SGRID_CONFIG))

    def test_detection_is_faster_than_comm_timeout(self, serial_references):
        plan = FaultPlan().kill(1, phase="refresh", epoch=2)
        platform = resilient_platform("process", 4, plan)
        run = platform.run(JacobiSGrid, config=dict(SGRID_CONFIG))
        # A real forked child died; survivors noticed via the closed
        # pipes, not by burning the 20s communication timeout.
        assert run.recovery_events[0].elapsed < 20.0
        assert_matches_reference("sgrid", run.result, serial_references["sgrid"])

    def test_restart_budget_exhaustion_reraises(self):
        plan = FaultPlan().kill(1, phase="refresh", epoch=2)
        platform = resilient_platform("threads", 4, plan, max_restarts=0)
        with pytest.raises(SpmdFailure, match="restart budget"):
            platform.run(JacobiSGrid, config=dict(SGRID_CONFIG))

    def test_two_successive_kills_two_recoveries(self, serial_references):
        plan = FaultPlan().kill(1, phase="refresh", epoch=2).kill(2, phase="epoch", epoch=2)
        platform = resilient_platform("threads", 4, plan)
        run = platform.run(JacobiSGrid, config=dict(SGRID_CONFIG))
        assert run.restarts == 2
        assert run.recovery_events[-1].new_size == 2
        assert_matches_reference("sgrid", run.result, serial_references["sgrid"])


# ---------------------------------------------------------------------------
# Chaos battery: every DSL app, real forked ranks
# ---------------------------------------------------------------------------
class TestChaosAllApps:
    @pytest.mark.parametrize("app_name", list(APPS))
    def test_process_backend_kill_recovers_every_app(
        self, serial_references, app_name
    ):
        app_cls, config = APPS[app_name]
        plan = FaultPlan().kill(1, phase="refresh", epoch=2)
        platform = resilient_platform("process", 4, plan)
        run = platform.run(app_cls, config=dict(config))
        assert run.restarts == 1
        assert "resume from epoch" in run.recovery_report()
        assert_matches_reference(app_name, run.result, serial_references[app_name])

    def test_seeded_plan_is_reproducible(self, serial_references):
        runs = []
        for _ in range(2):
            plan = FaultPlan.seeded(1234, ranks=4, epochs=3, spare_rank0=True)
            platform = resilient_platform("threads", 4, plan)
            run = platform.run(JacobiSGrid, config=dict(SGRID_CONFIG))
            assert_matches_reference("sgrid", run.result, serial_references["sgrid"])
            runs.append(run)
        assert runs[0].recovery_events[0].dead_ranks == runs[1].recovery_events[0].dead_ranks
        assert runs[0].recovery_events[0].resume_epoch == runs[1].recovery_events[0].resume_epoch


# ---------------------------------------------------------------------------
# Reply faults: degraded links rather than dead ranks
# ---------------------------------------------------------------------------
class TestReplyFaults:
    def test_delayed_reply_only_slows_the_run(self, serial_references):
        plan = FaultPlan().delay_reply(1, seconds=0.2, count=2)
        platform = resilient_platform("process", 2, plan)
        run = platform.run(JacobiSGrid, config=dict(SGRID_CONFIG))
        assert run.restarts == 0
        assert_matches_reference("sgrid", run.result, serial_references["sgrid"])

    def test_corrupted_reply_is_detected_not_silently_computed(self):
        # Corruption is *detected* (checksum mismatch), not recovered:
        # it is a link fault, not a rank death, so it must surface.
        plan = FaultPlan().corrupt_reply(1, count=1)
        policy = ResiliencePolicy(fault_plan=plan)
        platform = (
            Platform.builder().mpi(2).mmat().backend("process")
            .resilience(policy).comm_timeout(5.0).build()
        )
        with pytest.raises(SpmdFailure) as excinfo:
            platform.run(JacobiSGrid, config=dict(SGRID_CONFIG))
        assert any(
            "integrity check" in str(r.error)
            for r in excinfo.value.results
            if r.error is not None
        )

    def test_dropped_reply_times_out_with_pending_manifest(self):
        plan = FaultPlan().drop_reply(1, count=1)
        policy = ResiliencePolicy(fault_plan=plan)
        platform = (
            Platform.builder().mpi(2).mmat().backend("process")
            .resilience(policy).comm_timeout(3.0).build()
        )
        with pytest.raises(SpmdFailure) as excinfo:
            platform.run(JacobiSGrid, config=dict(SGRID_CONFIG))
        messages = [str(r.error) for r in excinfo.value.results if r.error is not None]
        assert any("timed out" in m or "outstanding" in m for m in messages)
