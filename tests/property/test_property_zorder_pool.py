"""Property-based tests for the Morton indexing and the memory pool."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import (
    MemoryPool,
    PoolExhaustedError,
    morton_decode,
    morton_encode,
    pdep,
    pext,
)

coords_2d = st.tuples(
    st.integers(min_value=0, max_value=2 ** 16 - 1),
    st.integers(min_value=0, max_value=2 ** 16 - 1),
)
coords_nd = st.lists(
    st.integers(min_value=0, max_value=2 ** 10 - 1), min_size=1, max_size=4
)


class TestMortonProperties:
    @given(coords_2d)
    def test_roundtrip_2d(self, coords):
        assert morton_decode(morton_encode(coords), 2) == coords

    @given(coords_nd)
    def test_roundtrip_nd(self, coords):
        coords = tuple(coords)
        assert morton_decode(morton_encode(coords), len(coords)) == coords

    @given(coords_2d, coords_2d)
    def test_injective(self, a, b):
        if a != b:
            assert morton_encode(a) != morton_encode(b)

    @given(st.integers(min_value=0, max_value=2 ** 20 - 1))
    def test_doubling_a_coordinate_shifts_its_bits(self, x):
        # Doubling x moves each of its bits up one position, which lands two
        # positions higher in the 2-D interleaved code.
        assert morton_encode((2 * x, 0), nbits=22) == morton_encode((x, 0), nbits=22) << 2

    @given(
        st.integers(min_value=0, max_value=2 ** 16 - 1),
        st.integers(min_value=0, max_value=2 ** 20 - 1),
    )
    def test_pdep_pext_inverse(self, value, mask):
        bits_in_mask = bin(mask).count("1")
        value &= (1 << bits_in_mask) - 1
        assert pext(pdep(value, mask), mask) == value

    @given(st.integers(min_value=0, max_value=2 ** 20 - 1), st.integers(min_value=0, max_value=2 ** 20 - 1))
    def test_pdep_only_sets_mask_bits(self, value, mask):
        assert pdep(value, mask) & ~mask == 0


@st.composite
def allocation_programs(draw):
    """A random sequence of allocate/free operations."""
    ops = []
    live = 0
    for _ in range(draw(st.integers(min_value=1, max_value=30))):
        if live == 0 or draw(st.booleans()):
            ops.append(("alloc", draw(st.integers(min_value=1, max_value=4096))))
            live += 1
        else:
            ops.append(("free", draw(st.integers(min_value=0, max_value=live - 1))))
            live -= 1
    return ops


class TestPoolProperties:
    @given(allocation_programs())
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_for_any_program(self, program):
        pool = MemoryPool(64 * 1024)
        live = []
        for op, arg in program:
            if op == "alloc":
                try:
                    live.append(pool.allocate(arg))
                except PoolExhaustedError:
                    pass
            else:
                if live:
                    live.pop(arg % len(live)).free()
            pool.check_invariants()
            assert 0 <= pool.used_bytes <= pool.capacity_bytes
            assert pool.used_bytes == sum(c.size for c in live)
        for chunk in live:
            chunk.free()
        pool.check_invariants()
        assert pool.used_bytes == 0

    @given(st.lists(st.integers(min_value=1, max_value=512), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_chunks_never_overlap(self, sizes):
        pool = MemoryPool(64 * 1024)
        chunks = []
        for size in sizes:
            try:
                chunks.append(pool.allocate(size))
            except PoolExhaustedError:
                break
        ranges = sorted((c.offset, c.offset + c.size) for c in chunks)
        for (a_start, a_end), (b_start, b_end) in zip(ranges, ranges[1:]):
            assert a_end <= b_start

    @given(st.lists(st.integers(min_value=1, max_value=2048), min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_free_then_full_reallocation_succeeds(self, sizes):
        pool = MemoryPool(32 * 1024)
        chunks = []
        for size in sizes:
            try:
                chunks.append(pool.allocate(size))
            except PoolExhaustedError:
                break
        for chunk in chunks:
            chunk.free()
        assert pool.allocate(pool.capacity_bytes).size == pool.capacity_bytes
