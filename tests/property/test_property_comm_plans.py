"""Property tests: aggregated comm-plan refresh ≡ per-page refresh.

The communication-plan layer promises bit-identical results: for every
DSL app and every execution backend, a run whose halo moves through
compiled CommPlans (one aggregated message pair per neighbor) must
produce exactly the same Env contents as a run using the original
one-message-pair-per-page protocol — including when MMAT is disabled
(no plans exist, per-page fallback everywhere) and when every plan is
invalidated mid-run (transparent recompilation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.annotation import Platform
from repro.apps import JacobiSGrid, JacobiUSGrid, ParticleSimulation
from repro.aspects import mpi_aspects
from repro.memory.block import BufferOnlyBlock, DataBlock


def _init(x, y):
    return 0.04 * x - 0.03 * y + 1.5


SGRID_CONFIG = dict(region=16, block_size=4, page_elements=8, loops=3, init=_init)
USGRID_CONFIG = dict(region=16, block_cells=32, page_elements=8, loops=3, init=_init)
PARTICLE_CONFIG = dict(particles=256, block_buckets=4, page_elements=4, loops=2)

APPS = [
    ("sgrid", JacobiSGrid, SGRID_CONFIG),
    ("usgrid", JacobiUSGrid, USGRID_CONFIG),
    ("particle", ParticleSimulation, PARTICLE_CONFIG),
]

BACKENDS = [("serial", 1), ("threads", 2), ("threads", 4), ("process", 2)]


def run_app(app_cls, config, *, backend, ranks, comm_plans, mmat=True):
    platform = Platform(
        aspects=mpi_aspects(ranks, backend=backend, comm_plans=comm_plans), mmat=mmat
    )
    return platform.run(app_cls, config=dict(config))


def env_contents(run) -> dict:
    """Master rank's Env contents: every Data Block's dense read buffer.

    Buffer-only (halo) replicas are included too: both protocols must
    leave the same page data behind after the final prefetch.
    """
    contents = {}
    env = run.app.env
    for block in env.data_blocks(include_buffer_only=True):
        key = getattr(block, "logical_key", block.name)
        kind = "halo" if isinstance(block, BufferOnlyBlock) else "data"
        contents[(kind, key)] = block.buffer.read_buffer.dense().copy()
    return contents


def assert_same_env(plan_run, perpage_run) -> None:
    a = env_contents(plan_run)
    b = env_contents(perpage_run)
    assert a.keys() == b.keys()
    for key in a:
        np.testing.assert_array_equal(a[key], b[key], err_msg=str(key))


class TestCommPlanEquivalence:
    @pytest.mark.parametrize("backend,ranks", BACKENDS)
    @pytest.mark.parametrize("name,app_cls,config", APPS)
    def test_batched_refresh_matches_per_page(self, name, app_cls, config, backend, ranks):
        perpage = run_app(app_cls, config, backend=backend, ranks=ranks, comm_plans=False)
        planned = run_app(app_cls, config, backend=backend, ranks=ranks, comm_plans=True)
        np.testing.assert_array_equal(
            np.asarray(perpage.result, dtype=np.float64),
            np.asarray(planned.result, dtype=np.float64),
        )
        assert_same_env(planned, perpage)
        # Identical page traffic volume, fewer (or equal) messages.
        perpage_msgs = sum(c.messages for c in perpage.counters.values())
        plan_msgs = sum(c.messages for c in planned.counters.values())
        assert plan_msgs <= perpage_msgs
        assert sum(c.pages_fetched for c in planned.counters.values()) == sum(
            c.pages_fetched for c in perpage.counters.values()
        )
        if ranks > 1:
            # The halo actually moved through aggregated exchanges.
            assert sum(c.comm_plan_pages for c in planned.counters.values()) > 0

    @pytest.mark.parametrize("name,app_cls,config", APPS)
    def test_fallback_without_mmat_is_per_page(self, name, app_cls, config):
        """MMAT off -> no access plans -> the per-page protocol runs as-is."""
        perpage = run_app(app_cls, config, backend="threads", ranks=2,
                          comm_plans=False, mmat=False)
        planned = run_app(app_cls, config, backend="threads", ranks=2,
                          comm_plans=True, mmat=False)
        np.testing.assert_array_equal(
            np.asarray(perpage.result, dtype=np.float64),
            np.asarray(planned.result, dtype=np.float64),
        )
        assert_same_env(planned, perpage)
        counters = planned.counters.values()
        assert sum(c.comm_plan_exchanges for c in counters) == 0
        assert sum(c.comm_plan_compiles for c in counters) == 0


class MidRunResetJacobi(JacobiSGrid):
    """Vectorized Jacobi that drops every compiled plan halfway through.

    The reset invalidates the aspect's CommPlans (their page set is
    derived from the access plans); the next sweep transparently
    recompiles and re-aggregates.  MMAT is then disabled entirely, so
    the remaining steps have no plans at all and the refresh protocol
    must fall back to the per-page path.
    """

    def processing(self) -> None:
        self.warm_up(self.kernel)
        half = max(self.loops // 2, 1)
        for _ in range(half):
            self.run(self.kernel)
        self.env.mmat.reset()           # drop plans -> CommPlan invalidated
        self.run(self.kernel)           # recompiles + re-aggregates
        self.env.mmat.enabled = False   # stop compiling plans …
        self.env.mmat.reset()           # … and drop the cached ones:
        for _ in range(self.loops - half - 1):
            self.run(self.kernel)       # per-page fallback from here on


class TestMidRunInvalidation:
    @pytest.mark.parametrize("backend,ranks", [("threads", 2), ("process", 2)])
    def test_reset_falls_back_then_reaggregates(self, backend, ranks):
        # loops=5 leaves two steps after MMAT is fully disabled: the first
        # still reads the halo the last aggregated prefetch installed, the
        # second finds it invalidated and exercises the per-page repair.
        config = dict(SGRID_CONFIG, loops=5)
        perpage = Platform(
            aspects=mpi_aspects(ranks, backend=backend, comm_plans=False), mmat=True
        ).run(JacobiSGrid, config=dict(config))
        planned = Platform(
            aspects=mpi_aspects(ranks, backend=backend, comm_plans=True), mmat=True
        ).run(MidRunResetJacobi, config=dict(config))
        a = np.asarray(perpage.result, dtype=np.float64)
        b = np.asarray(planned.result, dtype=np.float64)
        np.testing.assert_array_equal(np.isnan(a), np.isnan(b))
        mask = ~np.isnan(a)
        np.testing.assert_array_equal(a[mask], b[mask])
        counters = planned.counters.values()
        # Both regimes ran: aggregated exchanges before/after the reset,
        # per-page fetches right after it (no plans -> no comm plan).
        assert sum(c.comm_plan_exchanges for c in counters) > 0
        assert sum(c.comm_plan_fallback_pages for c in counters) > 0
