"""Property-based tests for Env addressing, buffers and address conversions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import (
    DataBlock,
    Env,
    MultiBuffer,
    PoolGroup,
    MemoryPool,
    offset_in_box,
    to_global,
    to_local,
)


origins = st.tuples(st.integers(-64, 64), st.integers(-64, 64))
locals_2d = st.tuples(st.integers(0, 7), st.integers(0, 7))


class TestAddressProperties:
    @given(origins, locals_2d)
    def test_local_global_roundtrip(self, origin, local):
        assert to_local(origin, to_global(origin, local)) == local

    @given(locals_2d)
    def test_offset_is_unique_within_box(self, local):
        shape = (8, 8)
        offsets = {offset_in_box(shape, (i, j)) for i in range(8) for j in range(8)}
        assert len(offsets) == 64
        assert offset_in_box(shape, local) in offsets

    @given(st.lists(st.integers(1, 6), min_size=1, max_size=4))
    def test_offset_covers_exact_range(self, shape):
        total = int(np.prod(shape))
        seen = set()

        def walk(prefix):
            if len(prefix) == len(shape):
                seen.add(offset_in_box(shape, prefix))
                return
            for coord in range(shape[len(prefix)]):
                walk(prefix + [coord])

        walk([])
        assert seen == set(range(total))


class TestBufferProperties:
    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_dense_load_roundtrip(self, elements, page_elements, components):
        pool = PoolGroup([MemoryPool(1 << 20)])
        buffer = MultiBuffer(elements, page_elements, components, np.float64, pool)
        data = np.random.default_rng(0).random((elements, components))
        buffer.write_buffer.load_dense(data)
        buffer.swap()
        np.testing.assert_allclose(buffer.read_buffer.dense(), data)

    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=1, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_swap_cycles_through_depth(self, depth, swaps):
        pool = PoolGroup([MemoryPool(1 << 18)])
        buffer = MultiBuffer(4, 2, 1, np.float64, pool, depth=depth)
        start = buffer.read_buffer
        for _ in range(swaps):
            buffer.swap()
        if swaps % depth == 0:
            assert buffer.read_buffer is start
        assert buffer.swaps == swaps


@st.composite
def block_layouts(draw):
    """A random 1-row layout of adjacent 4x4 blocks plus probe addresses."""
    count = draw(st.integers(min_value=1, max_value=4))
    probes = draw(
        st.lists(
            st.tuples(st.integers(0, count * 4 - 1), st.integers(0, 3)),
            min_size=1,
            max_size=8,
        )
    )
    return count, probes


class TestEnvProperties:
    @given(block_layouts())
    @settings(max_examples=40, deadline=None)
    def test_search_always_finds_covering_block(self, layout):
        count, probes = layout
        env = Env(pool_bytes=1 << 20)
        blocks = []
        for index in range(count):
            block = DataBlock((index * 4, 0), (4, 4), components=1, page_elements=4,
                              allocator=env.allocator)
            env.add_data_block(block)
            blocks.append(block)
        for probe in probes:
            found = env.find_block(probe, start=blocks[0])
            assert found is not None
            assert found.contains(probe)

    @given(block_layouts(), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_read_equals_written_value_regardless_of_mmat(self, layout, mmat):
        count, probes = layout
        env = Env(pool_bytes=1 << 20, mmat_enabled=mmat)
        blocks = []
        for index in range(count):
            block = DataBlock((index * 4, 0), (4, 4), components=1, page_elements=4,
                              allocator=env.allocator)
            env.add_data_block(block)
            blocks.append(block)
        expected = {}
        for i, probe in enumerate(probes):
            value = float(i + 1)
            env.write_from(blocks[0], probe, value)
            expected[probe] = value
        env.refresh()
        for probe, value in expected.items():
            # Reading twice exercises both the search path and the MMAT path.
            assert env.read_from(blocks[0], probe) == value
            assert env.read_from(blocks[0], probe) == value

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_refresh_step_counter_matches_successful_refreshes(self, steps):
        env = Env(pool_bytes=1 << 18)
        block = DataBlock((0, 0), (4, 4), components=1, page_elements=4,
                          allocator=env.allocator)
        env.add_data_block(block)
        for _ in range(steps):
            assert env.refresh() is True
        assert env.step == steps
        assert env.stats.refreshes == steps
