"""Property: a seeded kill-and-recover run is bit-identical to serial.

For any seed-derived fault plan (victim rank, refresh epoch, phase),
a 4-rank Jacobi run that loses a rank mid-flight must recover and
produce, on the covered subdomain, exactly the bytes of an unfailed
serial run — resumed from a checkpoint, re-partitioned, and replayed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.annotation import Platform
from repro.apps import JacobiSGrid
from repro.resilience import FaultPlan, ResiliencePolicy


def _init(x, y):
    return 0.07 * x - 0.03 * y + 0.9


CONFIG = dict(region=16, block_size=4, page_elements=8, loops=4, init=_init)


@pytest.fixture(scope="module")
def serial_reference():
    run = Platform.builder().mpi(1).mmat().build().run(JacobiSGrid, config=dict(CONFIG))
    return np.asarray(run.result)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_seeded_kill_recovers_bit_identical(serial_reference, seed):
    plan = FaultPlan.seeded(seed, ranks=4, epochs=CONFIG["loops"], spare_rank0=True)
    platform = (
        Platform.builder()
        .mpi(4)
        .mmat()
        .backend("threads")
        .resilience(ResiliencePolicy(fault_plan=plan))
        .comm_timeout(20.0)
        .build()
    )
    run = platform.run(JacobiSGrid, config=dict(CONFIG))
    assert run.restarts >= 1
    result = np.asarray(run.result)
    mask = ~np.isnan(result)
    assert mask.any()
    np.testing.assert_array_equal(result[mask], serial_reference[mask])
