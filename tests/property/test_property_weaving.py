"""Property-based tests for the AOP engine: weaving must preserve behaviour."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.aop import (
    Aspect,
    Weaver,
    annotate,
    around,
    before,
    after,
    execution,
    tagged,
)
from repro.aop.joinpoint import JoinPointKind, JoinPointShadow


shadow_names = st.sampled_from(["refresh", "get_blocks", "processing", "main", "step"])
shadow_classes = st.sampled_from(["Env", "Target", "App", None])
tag_sets = st.sets(st.sampled_from(["a", "b", "c", "memory.refresh"]), max_size=3)


@st.composite
def shadows(draw):
    return JoinPointShadow(
        kind=draw(st.sampled_from(list(JoinPointKind))),
        module=draw(st.sampled_from(["m1", "m2.sub"])),
        cls=draw(shadow_classes),
        name=draw(shadow_names),
        tags=frozenset(draw(tag_sets)),
    )


class TestPointcutAlgebraProperties:
    @given(shadows(), tag_sets)
    def test_complement_is_exact(self, shadow, tags):
        if not tags:
            return
        pc = tagged(*tags)
        assert pc.matches(shadow) != (~pc).matches(shadow)

    @given(shadows())
    def test_and_or_consistency(self, shadow):
        a = execution("Env.*")
        b = tagged("memory.refresh")
        assert (a & b).matches(shadow) == (a.matches(shadow) and b.matches(shadow))
        assert (a | b).matches(shadow) == (a.matches(shadow) or b.matches(shadow))

    @given(shadows())
    def test_double_negation(self, shadow):
        pc = execution("*.refresh")
        assert (~~pc).matches(shadow) == pc.matches(shadow)


@annotate("prop.cls")
class Arith:
    @annotate("prop.op")
    def compute(self, x, y):
        return 3 * x - y

    @annotate("prop.op")
    def accumulate(self, values):
        return sum(values)


class Observer(Aspect):
    def __init__(self):
        super().__init__()
        self.seen = []

    @before(tagged("prop.op"))
    def observe(self, jp):
        self.seen.append(jp.shadow.name)

    @after(tagged("prop.op"))
    def observe_after(self, jp):
        self.seen.append("after:" + jp.shadow.name)


class PassthroughAround(Aspect):
    @around(tagged("prop.op"))
    def passthrough(self, jp):
        return jp.proceed()


class TestWeavingPreservesSemantics:
    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    @settings(max_examples=60, deadline=None)
    def test_nop_weave_is_identity_on_results(self, x, y):
        woven = Weaver([]).weave_class(Arith)
        assert woven().compute(x, y) == Arith().compute(x, y)

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    @settings(max_examples=60, deadline=None)
    def test_passthrough_around_is_identity_on_results(self, x, y):
        woven = Weaver([PassthroughAround()]).weave_class(Arith)
        assert woven().compute(x, y) == Arith().compute(x, y)

    @given(st.lists(st.integers(-100, 100), max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_observer_sees_every_invocation_in_order(self, values):
        observer = Observer()
        woven = Weaver([observer]).weave_class(Arith)
        instance = woven()
        instance.accumulate(values)
        instance.compute(1, 2)
        assert observer.seen == [
            "accumulate",
            "after:accumulate",
            "compute",
            "after:compute",
        ]

    @given(st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_weaving_is_idempotent_on_behaviour(self, times):
        cls = Arith
        for _ in range(times):
            cls = Weaver([PassthroughAround()]).weave_class(cls)
        assert cls().compute(2, 1) == Arith().compute(2, 1)
