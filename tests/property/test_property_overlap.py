"""Property tests: overlapped halo refresh ≡ blocking ≡ per-page.

The overlapped exchange promises bit-identical results: for every DSL
app and every execution backend, a run whose halo moves through
nonblocking per-neighbor exchanges completed mid-sweep
(``overlap=True``) must produce exactly the same Env contents as the
blocking aggregated exchange (``overlap=False``) and as the original
per-page protocol (``comm_plans=False``) — including when MMAT is
disabled (no plans, no overlap at all), when every plan is invalidated
mid-run (transparent fallback and re-aggregation), and across world
sizes 1, 2 and 4.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.annotation import Platform
from repro.apps import JacobiSGrid, JacobiUSGrid, ParticleSimulation
from repro.aspects import mpi_aspects
from repro.memory.block import BufferOnlyBlock


def _init(x, y):
    return 0.04 * x - 0.03 * y + 1.5


SGRID_CONFIG = dict(region=16, block_size=4, page_elements=8, loops=3, init=_init)
USGRID_CONFIG = dict(region=16, block_cells=32, page_elements=8, loops=3, init=_init)
PARTICLE_CONFIG = dict(particles=256, block_buckets=4, page_elements=4, loops=2)

APPS = [
    ("sgrid", JacobiSGrid, SGRID_CONFIG),
    ("usgrid", JacobiUSGrid, USGRID_CONFIG),
    ("particle", ParticleSimulation, PARTICLE_CONFIG),
]

#: ranks ∈ {1, 2, 4} across the three backends (serial is rank-1 only).
BACKENDS = [("serial", 1), ("threads", 2), ("threads", 4), ("process", 2)]


def run_app(app_cls, config, *, backend, ranks, overlap, comm_plans=True, mmat=True):
    platform = Platform(
        aspects=mpi_aspects(
            ranks, backend=backend, comm_plans=comm_plans, overlap=overlap
        ),
        mmat=mmat,
    )
    return platform.run(app_cls, config=dict(config))


def env_contents(run) -> dict:
    """Master rank's Env contents, halo replicas included: both refresh
    modes must leave the same page data behind after the final drain."""
    contents = {}
    env = run.app.env
    for block in env.data_blocks(include_buffer_only=True):
        key = getattr(block, "logical_key", block.name)
        kind = "halo" if isinstance(block, BufferOnlyBlock) else "data"
        contents[(kind, key)] = block.buffer.read_buffer.dense().copy()
    return contents


def assert_same_env(a_run, b_run) -> None:
    a = env_contents(a_run)
    b = env_contents(b_run)
    assert a.keys() == b.keys()
    for key in a:
        np.testing.assert_array_equal(a[key], b[key], err_msg=str(key))


def assert_same_result(a_run, b_run) -> None:
    a = np.asarray(a_run.result, dtype=np.float64)
    b = np.asarray(b_run.result, dtype=np.float64)
    np.testing.assert_array_equal(np.isnan(a), np.isnan(b))
    mask = ~np.isnan(a)
    np.testing.assert_array_equal(a[mask], b[mask])


class TestOverlapEquivalence:
    @pytest.mark.parametrize("backend,ranks", BACKENDS)
    @pytest.mark.parametrize("name,app_cls,config", APPS)
    def test_overlap_matches_blocking_and_per_page(
        self, name, app_cls, config, backend, ranks
    ):
        overlapped = run_app(app_cls, config, backend=backend, ranks=ranks, overlap=True)
        blocking = run_app(app_cls, config, backend=backend, ranks=ranks, overlap=False)
        perpage = run_app(
            app_cls, config, backend=backend, ranks=ranks, overlap=False,
            comm_plans=False,
        )
        assert_same_result(overlapped, blocking)
        assert_same_result(overlapped, perpage)
        assert_same_env(overlapped, blocking)
        assert_same_env(overlapped, perpage)
        counters = overlapped.counters.values()
        blocking_counters = blocking.counters.values()
        # Identical traffic: same pages, same message count as blocking.
        assert sum(c.pages_fetched for c in counters) == sum(
            c.pages_fetched for c in blocking_counters
        )
        assert sum(c.messages for c in counters) == sum(
            c.messages for c in blocking_counters
        )
        if ranks > 1:
            # The halo genuinely moved through overlapped exchanges …
            assert sum(c.overlap_exchanges for c in counters) > 0
            assert sum(c.overlap_pages for c in counters) > 0
            # … and the blocking run overlapped nothing.
            assert sum(c.overlap_exchanges for c in blocking_counters) == 0

    @pytest.mark.parametrize("name,app_cls,config", APPS)
    def test_process_backend_four_ranks(self, name, app_cls, config):
        """ranks=4 on real forked processes: the acceptance configuration."""
        overlapped = run_app(app_cls, config, backend="process", ranks=4, overlap=True)
        blocking = run_app(app_cls, config, backend="process", ranks=4, overlap=False)
        assert_same_result(overlapped, blocking)
        assert_same_env(overlapped, blocking)
        counters = overlapped.counters.values()
        assert sum(c.overlap_exchanges for c in counters) > 0
        assert sum(c.messages for c in counters) == sum(
            c.messages for c in blocking.counters.values()
        )

    @pytest.mark.parametrize("name,app_cls,config", APPS)
    def test_mmat_off_falls_back_to_per_page(self, name, app_cls, config):
        """MMAT off -> no plans -> no overlap; the per-page protocol runs as-is."""
        overlapped = run_app(
            app_cls, config, backend="threads", ranks=2, overlap=True, mmat=False
        )
        perpage = run_app(
            app_cls, config, backend="threads", ranks=2, overlap=False,
            comm_plans=False, mmat=False,
        )
        assert_same_result(overlapped, perpage)
        assert_same_env(overlapped, perpage)
        counters = overlapped.counters.values()
        assert sum(c.overlap_issues for c in counters) == 0
        assert sum(c.overlap_exchanges for c in counters) == 0


class MidRunResetJacobi(JacobiSGrid):
    """Vectorized Jacobi that drops every compiled plan halfway through.

    The reset invalidates the access plans (and with them the CommPlans
    and any reason to overlap); the next sweep transparently recompiles,
    re-aggregates and resumes overlapping.  MMAT is then disabled
    entirely, so the remaining steps fall back to the per-page protocol
    with no overlap at all.
    """

    def processing(self) -> None:
        self.warm_up(self.kernel)
        half = max(self.loops // 2, 1)
        for _ in range(half):
            self.run(self.kernel)
        self.env.mmat.reset()           # drop plans -> CommPlan + overlap reset
        self.run(self.kernel)           # recompiles + overlaps again
        self.env.mmat.enabled = False   # stop compiling plans …
        self.env.mmat.reset()           # … and drop the cached ones:
        for _ in range(self.loops - half - 1):
            self.run(self.kernel)       # per-page fallback from here on


class TestMidRunInvalidation:
    @pytest.mark.parametrize("backend,ranks", [("threads", 2), ("process", 2)])
    def test_reset_falls_back_then_overlaps_again(self, backend, ranks):
        config = dict(SGRID_CONFIG, loops=5)
        blocking = Platform(
            aspects=mpi_aspects(ranks, backend=backend, comm_plans=False),
            mmat=True,
        ).run(JacobiSGrid, config=dict(config))
        overlapped = Platform(
            aspects=mpi_aspects(ranks, backend=backend, overlap=True), mmat=True
        ).run(MidRunResetJacobi, config=dict(config))
        assert_same_result(overlapped, blocking)
        counters = overlapped.counters.values()
        # Both regimes ran: overlapped exchanges before/after the reset,
        # per-page fetches right after it (no plans -> nothing to overlap).
        assert sum(c.overlap_exchanges for c in counters) > 0
        assert sum(c.comm_plan_fallback_pages for c in counters) > 0
