"""Property tests: vectorized (access-plan) kernels ≡ scalar kernels.

The platform promise of the access-plan compilation layer is strict
numerical equivalence: for every DSL app, every execution backend and
every plan state (compiled, invalidated mid-run, disabled fallback) the
batched kernels must produce the same fields as the per-element
reference kernels.  Gather-level equivalence is additionally checked
property-style with randomly drawn stencils and address tables.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.annotation import Platform
from repro.apps import JacobiSGrid, JacobiUSGrid, ParticleSimulation
from repro.aspects import mpi_aspects
from repro.memory import ArithmeticBlock, DataBlock, Env, MemoryPool, PoolGroup


def _init(x, y):
    return 0.03 * x - 0.05 * y + 2.0


SGRID_CONFIG = dict(region=16, block_size=4, page_elements=8, loops=3, init=_init)
USGRID_CONFIG = dict(region=16, block_cells=32, page_elements=8, loops=3, init=_init)
PARTICLE_CONFIG = dict(particles=128, block_buckets=4, page_elements=4, loops=2)

APPS = [
    ("sgrid", JacobiSGrid, SGRID_CONFIG),
    ("sgrid-neumann", JacobiSGrid, dict(SGRID_CONFIG, boundary="neumann")),
    ("usgrid-c", JacobiUSGrid, USGRID_CONFIG),
    ("usgrid-r", JacobiUSGrid, dict(USGRID_CONFIG, case="R")),
    ("particle", ParticleSimulation, PARTICLE_CONFIG),
]

BACKENDS = [("serial", 1), ("threads", 2), ("process", 2)]


def run_pair(app_cls, config, *, backend=None, ranks=1, mmat=True):
    """Run the app with scalar and vectorized kernels; return both results."""
    def one(kernel):
        aspects = None if backend is None else mpi_aspects(ranks, backend=backend)
        platform = Platform(aspects=aspects, mmat=mmat)
        return platform.run(app_cls, config=dict(config, kernel=kernel))

    return one("scalar"), one("vectorized")


def assert_equivalent(scalar_run, vector_run, *, atol=1e-12):
    a = np.asarray(scalar_run.result, dtype=np.float64)
    b = np.asarray(vector_run.result, dtype=np.float64)
    assert a.shape == b.shape
    np.testing.assert_allclose(
        np.nan_to_num(a, nan=-1.0), np.nan_to_num(b, nan=-1.0), atol=atol
    )


class TestVectorizedEquivalenceAcrossBackends:
    @pytest.mark.parametrize("backend,ranks", BACKENDS)
    @pytest.mark.parametrize("name,app_cls,config", APPS)
    def test_vectorized_matches_scalar(self, name, app_cls, config, backend, ranks):
        scalar_run, vector_run = run_pair(app_cls, config, backend=backend, ranks=ranks)
        assert_equivalent(scalar_run, vector_run, atol=1e-10)
        # The vectorized run must actually have used compiled plans.
        assert sum(c.plan_sites for c in vector_run.counters.values()) > 0

    @pytest.mark.parametrize("name,app_cls,config", APPS)
    def test_fallback_without_mmat_matches_scalar(self, name, app_cls, config):
        scalar_run, vector_run = run_pair(app_cls, config, mmat=False)
        assert_equivalent(scalar_run, vector_run, atol=1e-10)
        # No MMAT → no plans; every batched access fell back to scalar.
        assert sum(c.plan_sites for c in vector_run.counters.values()) == 0
        assert sum(c.plan_fallback_sites for c in vector_run.counters.values()) > 0


class MidRunResetJacobi(JacobiSGrid):
    """Vectorized Jacobi that invalidates all plans halfway through the run.

    After the reset the next batched gather transparently recompiles
    (plans are a pure cache), and — for the second half — MMAT is
    disabled entirely so the remaining sweeps take the scalar fallback.
    """

    def processing(self) -> None:
        self.warm_up(self.kernel)
        half = max(self.loops // 2, 1)
        for _ in range(half):
            self.run(self.kernel)
        self.env.mmat.reset()           # drop every compiled plan mid-run
        self.run(self.kernel)           # forces recompilation
        self.env.mmat.enabled = False   # scalar fallback from here on
        for _ in range(self.loops - half - 1):
            self.run(self.kernel)


class TestMidRunInvalidation:
    @pytest.mark.parametrize("backend,ranks", BACKENDS)
    def test_reset_then_fallback_still_matches_scalar(self, backend, ranks):
        config = dict(SGRID_CONFIG, loops=4)
        aspects = mpi_aspects(ranks, backend=backend)
        scalar_run = Platform(aspects=aspects, mmat=True).run(
            JacobiSGrid, config=dict(config, kernel="scalar")
        )
        vector_run = Platform(aspects=aspects, mmat=True).run(
            MidRunResetJacobi, config=dict(config, kernel="vectorized")
        )
        assert_equivalent(scalar_run, vector_run)
        counters = vector_run.counters.values()
        assert sum(c.plan_sites for c in counters) > 0          # plan phase ran
        assert sum(c.plan_fallback_sites for c in counters) > 0  # fallback phase ran
        # Reset → the run compiled the same plans (at least) twice.
        assert vector_run.mmat_stats["resets"] >= 2  # warm-up reset + mid-run


class TestGatherProperties:
    """Hypothesis: random stencils/tables gather exactly what scalar reads."""

    @staticmethod
    def _make_env(fill_seed: int) -> Env:
        pool = PoolGroup([MemoryPool(1 << 22, name="prop-pool")])
        env = Env(allocator=pool, name="prop-env", mmat_enabled=True)
        rng = np.random.default_rng(fill_seed)
        for origin in ((0, 0), (4, 0), (0, 4), (4, 4)):
            block = DataBlock(origin, (4, 4), components=1, page_elements=4,
                              allocator=pool)
            env.add_data_block(block)
            data = rng.uniform(-10, 10, size=(16, 1))
            for buf in block.buffer.buffers:
                buf.load_dense(data)
                buf.clear_dirty()
        env.add_boundary_block(
            ArithmeticBlock((-4, -4), (16, 16),
                            lambda addr: float(addr[0] - addr[1]), name="ring")
        )
        return env

    @settings(max_examples=30, deadline=None)
    @given(
        offsets=st.lists(
            st.tuples(st.integers(-4, 4), st.integers(-4, 4)),
            min_size=1, max_size=6, unique=True,
        ),
        seed=st.integers(0, 2 ** 16),
    )
    def test_offsets_gather_matches_elementwise_reads(self, offsets, seed):
        from repro.dsl.base import BlockKernel

        env = self._make_env(seed)
        block = env.data_blocks()[0]
        kernel = BlockKernel(env, block)
        gathered = kernel.gather(offsets)
        for oi, (dx, dy) in enumerate(offsets):
            for i in range(4):
                for j in range(4):
                    expected = env.read_from(block, (i + dx, j + dy))
                    assert gathered[oi, i, j] == expected

    @settings(max_examples=30, deadline=None)
    @given(
        addrs=st.lists(st.integers(0, 15), min_size=1, max_size=12),
        seed=st.integers(0, 2 ** 16),
    )
    def test_address_gather_matches_elementwise_reads(self, addrs, seed):
        from repro.dsl.base import BlockKernel

        pool = PoolGroup([MemoryPool(1 << 22, name="prop-pool-1d")])
        env = Env(allocator=pool, name="prop-env-1d", mmat_enabled=True)
        rng = np.random.default_rng(seed)
        for origin in ((0,), (8,)):
            block = DataBlock(origin, (8,), components=1, page_elements=4,
                              allocator=pool)
            env.add_data_block(block)
            data = rng.uniform(-10, 10, size=(8, 1))
            for buf in block.buffer.buffers:
                buf.load_dense(data)
                buf.clear_dirty()
        block = env.data_blocks()[0]
        kernel = BlockKernel(env, block)
        gathered = kernel.gather_global(np.asarray(addrs))
        for site, addr in enumerate(addrs):
            assert gathered[site] == env.read_from(block, (addr,))
