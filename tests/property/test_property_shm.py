"""Property tests: the shm page transport is an invisible substitution.

The zero-copy data plane promises bit-identical results and identical
*logical* traffic accounting: for every DSL app, a process-backend run
whose halo pages travel as shared-memory descriptors must end exactly
like a run whose pages are packed into the pipe replies — and both
must match the ``threads`` backend, where pages never serialise at
all.  The physical split is visible only in the ``shm_*`` counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.annotation import Platform
from repro.apps import JacobiSGrid, JacobiUSGrid, ParticleSimulation
from repro.memory.block import BufferOnlyBlock
from repro.runtime import get_backend
from repro.runtime.shm import shm_available

pytestmark = pytest.mark.skipif(
    not get_backend("process").available() or not shm_available(),
    reason="process backend with shared memory unavailable",
)


def _init(x, y):
    return 0.04 * x - 0.03 * y + 1.5


SGRID_CONFIG = dict(region=16, block_size=4, page_elements=8, loops=3, init=_init)
USGRID_CONFIG = dict(region=16, block_cells=32, page_elements=8, loops=3, init=_init)
PARTICLE_CONFIG = dict(particles=256, block_buckets=4, page_elements=4, loops=2)

APPS = [
    ("sgrid", JacobiSGrid, SGRID_CONFIG),
    ("usgrid", JacobiUSGrid, USGRID_CONFIG),
    ("particle", ParticleSimulation, PARTICLE_CONFIG),
]


def run_app(app_cls, config, *, backend, transport=None, ranks=2):
    builder = Platform.builder().mpi(ranks).mmat().backend(backend)
    if transport is not None:
        builder.page_transport(transport)
    return builder.build().run(app_cls, config=dict(config))


def env_contents(run) -> dict:
    """Master rank's Env contents: every Data Block's dense read buffer."""
    contents = {}
    env = run.app.env
    for block in env.data_blocks(include_buffer_only=True):
        key = getattr(block, "logical_key", block.name)
        kind = "halo" if isinstance(block, BufferOnlyBlock) else "data"
        contents[(kind, key)] = block.buffer.read_buffer.dense().copy()
    return contents


def assert_same_result(a, b) -> None:
    np.testing.assert_array_equal(
        np.asarray(a.result, dtype=np.float64), np.asarray(b.result, dtype=np.float64)
    )
    contents_a, contents_b = env_contents(a), env_contents(b)
    assert contents_a.keys() == contents_b.keys()
    for key in contents_a:
        np.testing.assert_array_equal(contents_a[key], contents_b[key], err_msg=str(key))


def logical_traffic(run) -> dict:
    return {
        "messages": sum(c.messages for c in run.counters.values()),
        "pages": sum(c.pages_fetched for c in run.counters.values()),
        "bytes": sum(c.bytes_fetched for c in run.counters.values()),
    }


class TestTransportEquivalence:
    @pytest.mark.parametrize("name,app_cls,config", APPS)
    def test_shm_matches_pipe_bit_identical(self, name, app_cls, config):
        pipe = run_app(app_cls, config, backend="process", transport="pipe")
        shm = run_app(app_cls, config, backend="process", transport="shm")
        assert_same_result(pipe, shm)
        # Logically the same exchange — the pipes just carried less.
        assert logical_traffic(pipe) == logical_traffic(shm)
        assert sum(c.shm_fetches for c in pipe.counters.values()) == 0
        assert sum(c.shm_fetches for c in shm.counters.values()) > 0

    @pytest.mark.parametrize("name,app_cls,config", APPS)
    def test_shm_matches_threads(self, name, app_cls, config):
        threads = run_app(app_cls, config, backend="threads")
        shm = run_app(app_cls, config, backend="process", transport="shm")
        assert_same_result(threads, shm)

    @pytest.mark.parametrize("name,app_cls,config", APPS)
    def test_auto_resolves_to_shm_here(self, name, app_cls, config):
        auto = run_app(app_cls, config, backend="process", transport="auto")
        assert sum(c.shm_fetches for c in auto.counters.values()) > 0

    def test_summary_reports_the_shm_section(self):
        shm = run_app(JacobiSGrid, SGRID_CONFIG, backend="process", transport="shm")
        pipe = run_app(JacobiSGrid, SGRID_CONFIG, backend="process", transport="pipe")
        assert " shm=" in shm.summary()
        assert " shm=" not in pipe.summary()


class MidRunResetJacobi(JacobiSGrid):
    """Vectorized Jacobi that drops every compiled plan halfway through.

    The MMAT reset invalidates the aspect's CommPlans, so the refresh
    protocol transitions shm through all of its serving regimes:
    aggregated exchanges with generation-memoized slots, recompilation,
    and the per-page repair path once MMAT is disabled entirely.  The
    shm plane must stay invisible across every transition.
    """

    def processing(self) -> None:
        self.warm_up(self.kernel)
        half = max(self.loops // 2, 1)
        for _ in range(half):
            self.run(self.kernel)
        self.env.mmat.reset()           # drop plans -> CommPlan invalidated
        self.run(self.kernel)           # recompiles + re-aggregates
        self.env.mmat.enabled = False   # stop compiling plans …
        self.env.mmat.reset()           # … and drop the cached ones:
        for _ in range(self.loops - half - 1):
            self.run(self.kernel)       # per-page fallback from here on


class TestMidRunInvalidation:
    def test_mmat_reset_mid_run_stays_equivalent(self):
        config = dict(SGRID_CONFIG, loops=5)
        pipe = run_app(MidRunResetJacobi, config, backend="process", transport="pipe")
        shm = run_app(MidRunResetJacobi, config, backend="process", transport="shm")
        assert_same_result(pipe, shm)
        assert logical_traffic(pipe) == logical_traffic(shm)
        assert sum(c.shm_fetches for c in shm.counters.values()) > 0
