"""Property tests: fused kernels ≡ vectorized kernels ≡ scalar kernels.

The plan-fusion layer (:mod:`repro.kernels`) promises *bit-identical*
results to the vectorized access-plan path: the generated kernel applies
the same elementwise ``fn`` to the same IEEE values in the same
per-element order, only gathered through a padded scratch field instead
of the ``(n_offsets, n_elem)`` tensor.  These tests check that promise
for every DSL app, every execution backend and every temporal-blocking
depth, including plan invalidation mid-run (``MMAT.reset()``) and the
numba-absent codegen fallback.

Apps whose sweeps cannot be fused (address plans — USGrid; multi-
component buckets — Particle) must degrade transparently to the
vectorized path and still match exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.annotation import Platform
from repro.apps import JacobiSGrid, JacobiUSGrid, ParticleSimulation
from repro.aspects import mpi_aspects
from repro.kernels import resolve_codegen


def _init(x, y):
    return 0.03 * x - 0.05 * y + 2.0


SGRID_CONFIG = dict(region=16, block_size=4, page_elements=8, loops=3, init=_init)
USGRID_CONFIG = dict(region=16, block_cells=32, page_elements=8, loops=3, init=_init)
PARTICLE_CONFIG = dict(particles=128, block_buckets=4, page_elements=4, loops=2)

APPS = [
    ("sgrid", JacobiSGrid, SGRID_CONFIG, True),
    ("sgrid-neumann", JacobiSGrid, dict(SGRID_CONFIG, boundary="neumann"), True),
    ("usgrid-c", JacobiUSGrid, USGRID_CONFIG, False),
    ("usgrid-r", JacobiUSGrid, dict(USGRID_CONFIG, case="R"), False),
    ("particle", ParticleSimulation, PARTICLE_CONFIG, False),
]

BACKENDS = [("serial", 1), ("threads", 2), ("process", 2)]
TEMPORAL = [1, 2, 4]


def run_app(app_cls, config, *, backend="serial", ranks=1, temporal=1, **platform_kw):
    aspects = mpi_aspects(ranks, backend=backend)
    platform = Platform(aspects=aspects, mmat=True, temporal_block=temporal,
                        **platform_kw)
    return platform.run(app_cls, config=dict(config))


def fused_calls(run) -> int:
    return sum(c.kernel_fused_calls for c in run.counters.values())


def assert_bit_identical(run_a, run_b):
    a = np.asarray(run_a.result, dtype=np.float64)
    b = np.asarray(run_b.result, dtype=np.float64)
    assert a.shape == b.shape
    # Ranks other than 0 leave NaN holes in the assembled field.
    assert np.array_equal(a, b, equal_nan=True)


class TestFusedEquivalence:
    @pytest.mark.parametrize("temporal", TEMPORAL)
    @pytest.mark.parametrize("backend,ranks", BACKENDS)
    @pytest.mark.parametrize("name,app_cls,config,fusable", APPS)
    def test_fused_bit_identical_to_vectorized(
        self, name, app_cls, config, fusable, backend, ranks, temporal
    ):
        vec = run_app(app_cls, dict(config, fuse=False, kernel="vectorized"),
                      backend=backend, ranks=ranks)
        fused = run_app(app_cls, dict(config, kernel="vectorized"),
                        backend=backend, ranks=ranks, temporal=temporal)
        assert_bit_identical(vec, fused)
        if fusable:
            assert fused_calls(fused) > 0
        else:
            # Unfusable sweeps degrade to the vectorized path transparently.
            assert fused_calls(fused) == 0
        assert fused_calls(vec) == 0

    @pytest.mark.parametrize("backend,ranks", BACKENDS)
    @pytest.mark.parametrize(
        "name,app_cls,config",
        [(n, a, c) for (n, a, c, _f) in APPS],
    )
    def test_fused_matches_scalar(self, name, app_cls, config, backend, ranks):
        scalar = run_app(app_cls, dict(config, kernel="scalar"),
                         backend=backend, ranks=ranks)
        fused = run_app(app_cls, dict(config, kernel="vectorized"),
                        backend=backend, ranks=ranks)
        a = np.asarray(scalar.result, dtype=np.float64)
        b = np.asarray(fused.result, dtype=np.float64)
        assert a.shape == b.shape
        np.testing.assert_allclose(
            np.nan_to_num(a, nan=-1.0), np.nan_to_num(b, nan=-1.0), atol=1e-10
        )


class MidRunResetJacobi(JacobiSGrid):
    """Fused Jacobi that drops every plan and fused kernel mid-run."""

    def processing(self) -> None:
        self.warm_up(self.kernel)
        half = max(self.loops // 2, 1)
        for _ in range(half):
            self.run(self.kernel)
        self.env.mmat.reset()   # drop plans AND fused kernels mid-run
        for _ in range(self.loops - half):
            self.run(self.kernel)  # transparently recompiles + refuses


class TestMidRunReset:
    @pytest.mark.parametrize("temporal", TEMPORAL)
    @pytest.mark.parametrize("backend,ranks", BACKENDS)
    def test_reset_recompiles_and_stays_identical(self, backend, ranks, temporal):
        config = dict(SGRID_CONFIG, loops=4, kernel="vectorized")
        vec = run_app(JacobiSGrid, dict(config, fuse=False),
                      backend=backend, ranks=ranks)
        fused = run_app(MidRunResetJacobi, config,
                        backend=backend, ranks=ranks, temporal=temporal)
        assert_bit_identical(vec, fused)
        counters = fused.counters.values()
        assert sum(c.kernel_fused_calls for c in counters) > 0
        # The mid-run reset forces a second fusion pass per kernel.
        n_blocks = (SGRID_CONFIG["region"] // SGRID_CONFIG["block_size"]) ** 2
        assert sum(c.kernel_fuse for c in counters) >= 2 * n_blocks / max(ranks, 1)


class TestCodegenFallback:
    def test_numba_absent_falls_back_to_numpy_src(self):
        """codegen="numba" must degrade to the default generator when the
        numba import is unavailable — same results, still fused."""
        config = dict(SGRID_CONFIG, kernel="vectorized")
        vec = run_app(JacobiSGrid, dict(config, fuse=False))
        fused = run_app(JacobiSGrid, dict(config, codegen="numba"))
        assert_bit_identical(vec, fused)
        try:
            import numba  # noqa: F401
        except ImportError:
            # Fallback took the numpy_src path and still fused everything.
            assert resolve_codegen("numba").name == "numpy_src"
        assert fused_calls(fused) > 0

    def test_unknown_codegen_falls_back(self):
        config = dict(SGRID_CONFIG, kernel="vectorized", codegen="no-such-codegen")
        vec = run_app(JacobiSGrid, dict(SGRID_CONFIG, fuse=False, kernel="vectorized"))
        fused = run_app(JacobiSGrid, config)
        assert_bit_identical(vec, fused)
        assert fused_calls(fused) > 0
