"""Default codegen: specialised NumPy source, ``exec``-compiled.

The emitted module performs one whole-block sweep as

1. ``fill_interior`` — copy the block's own read buffer into the
   interior of a padded scratch field ``P`` and fill the ring cells
   served by locally-owned sources (mirror boundaries, neighbour Data
   Blocks) with precomputed gather tables;
2. ``fill_boundary`` — fill the ring cells served by Buffer-only (halo)
   sources, recording missing pages exactly like
   :meth:`~repro.memory.mmat.AccessPlan.gather_segments`;
3. ``compute`` — call the elementwise ``fn`` on one shifted *view* of
   ``P`` per stencil offset (no per-offset gather arrays are ever
   materialised — this is the fusion);
4. ``store`` — scatter the result straight into the write-buffer pages.

Shapes, pads, view slices and the page layout are baked into the source
as literals; the compiled code object is cached per structural
signature, so every block of the same shape/stencil shares it.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..memory.page import PageKey

__all__ = ["NumpySourceCodegen"]


def _index(bounds) -> str:
    """Render ``P[a0:b0, a1:b1, ...]`` slice text from (start, stop) pairs."""
    return ", ".join(f"{a}:{b}" for a, b in bounds)


def emit_source(signature: Tuple) -> str:
    """Emit the fused-sweep module source for one structural signature."""
    shape, pad_lo, pshape, offsets, page_elements = signature
    nd = len(shape)
    n_elem = 1
    for s in shape:
        n_elem *= int(s)
    psize = 1
    for s in pshape:
        psize *= int(s)
    interior = _index(
        [(pad_lo[d], pad_lo[d] + shape[d]) for d in range(nd)]
    )
    views = [
        "P["
        + _index(
            [
                (pad_lo[d] + off[d], pad_lo[d] + off[d] + shape[d])
                for d in range(nd)
            ]
        )
        + "]"
        for off in offsets
    ]
    shape_r = repr(tuple(int(s) for s in shape))
    lines = [
        f"# fused sweep: shape={shape_r} pad={tuple(pad_lo)!r} offsets={offsets!r}",
        "",
        "def fill_interior(K, env):",
        "    P = K.alloc()",
        f"    F = P.reshape({psize})",
        f"    P[{interior}] = env.dense_read(K.block)[:, 0].reshape({shape_r})",
        "    for blk, src, pos in K.data_groups:",
        "        F[pos] = env.dense_read(blk)[src, 0]",
        "    return P, F",
        "",
        "def fill_boundary(K, env, F):",
        "    missing = 0",
        "    for g in K.halo_groups:",
        "        blk = g.block",
        "        vals = env.dense_read(blk)[g.src, 0]",
        "        if not blk.is_valid:",
        "            bad = g.invalid_pages()",
        "            if bad:",
        "                bid = blk.block_id",
        "                for p in bad:",
        "                    env.missing_pages.add(PageKey(bid, p))",
        "                missing += len(bad)",
        "                vals[np.isin(g.entry_pages, bad)] = 0.0",
        "        F[g.pos] = vals",
        "    return missing",
        "",
        "def compute(P, fn):",
        f"    return fn({', '.join(views)})",
        "",
        "def store(K, env, res):",
        "    res = np.asarray(res)",
        f"    if res.size == {n_elem}:",
        f"        flat = res.reshape({n_elem})",
        "    else:",
        f"        flat = np.broadcast_to(res, {shape_r}).reshape({n_elem})",
        "    views, pages = K.store_plan(env)",
        "    s = 0",
        "    for v in views:",
        "        e = s + v.shape[0]",
        "        v[:] = flat[s:e]",
        "        s = e",
        "    for p in pages:",
        "        p.dirty = True",
        "    env.note_full_store(K.block, flat)",
        "",
        "def fused_sweep(K, env, fn):",
        "    P, F = fill_interior(K, env)",
        "    missing = fill_boundary(K, env, F)",
        "    store(K, env, compute(P, fn))",
        "    K.release(P)",
        "    return missing",
        "",
    ]
    return "\n".join(lines)


class NumpySourceCodegen:
    """Generated-NumPy-source codegen (the default backend)."""

    name = "numpy_src"

    def __init__(self) -> None:
        #: Compiled code objects keyed by structural signature; every
        #: block with the same shape/stencil/page layout shares one.
        self._code: Dict[Tuple, object] = {}

    def compile(self, signature: Tuple) -> dict:
        """Return a fresh namespace holding the generated functions."""
        code = self._code.get(signature)
        if code is None:
            source = emit_source(signature)
            code = builtins_compile(source, signature)
            self._code[signature] = code
        namespace = {"np": np, "PageKey": PageKey}
        exec(code, namespace)
        return namespace


def builtins_compile(source: str, signature: Tuple):
    """Compile the emitted source with a descriptive pseudo-filename."""
    shape = signature[0]
    label = "x".join(str(int(s)) for s in shape)
    return compile(source, f"<fused-kernel {label}>", "exec")
