"""Codegen-backend registry for fused sweep kernels.

The fusion pass (:mod:`repro.kernels.fused`) compiles an
:class:`~repro.memory.mmat.AccessPlan` plus an elementwise kernel ``fn``
into one generated function that gathers, applies and scatters without
materialising the intermediate ``(n_offsets, n_elem)`` tensor.  *How*
that function is produced is pluggable, mirroring the execution-backend
registry (:mod:`repro.runtime.backends`)::

    from repro.kernels import get_codegen, register_codegen

    codegen = get_codegen("numpy_src")

    class MyCodegen:
        name = "cython"
        def compile(self, signature): ...
    register_codegen(MyCodegen())

The two built-in codegens:

=============  ========================================================
``numpy_src``  emits NumPy source specialised to the plan's shape and
               stencil and ``exec``-compiles it (the default; no
               dependencies beyond NumPy)
``numba``      same generated source, plus a ``numba.njit`` of the
               elementwise ``fn`` with transparent fallback; only
               available when numba is importable (import-guarded)
=============  ========================================================

A codegen's ``compile(signature)`` returns a namespace (dict) holding
the generated functions ``fill_interior`` / ``fill_boundary`` /
``compute`` / ``store`` / ``fused_sweep``; its constructor may raise
:class:`CodegenError` when its dependencies are unavailable —
:func:`resolve_codegen` then falls back to the default.
"""

from __future__ import annotations

import importlib
import os
from typing import Dict, List, Optional

__all__ = [
    "CodegenError",
    "DEFAULT_CODEGEN",
    "FusedKernel",
    "UNFUSABLE",
    "available_codegens",
    "fused_kernel_for",
    "get_codegen",
    "register_codegen",
    "resolve_codegen",
]


class CodegenError(RuntimeError):
    """A codegen backend is unavailable or cannot fuse the given plan."""


#: Codegen used when none is named: generated-and-``exec``'d NumPy source.
DEFAULT_CODEGEN = "numpy_src"

#: Environment variable overriding the codegen choice for a whole process.
CODEGEN_ENV_VAR = "REPRO_KERNEL_CODEGEN"

#: Built-in codegens, resolved lazily: name -> (module, factory attribute).
_BUILTIN = {
    "numpy_src": ("repro.kernels.numpy_src", "NumpySourceCodegen"),
    "numba": ("repro.kernels.numba_src", "NumbaCodegen"),
}

_REGISTRY: Dict[str, object] = {}

#: Built-ins whose instantiation already failed (e.g. numba missing);
#: cached so every fusion attempt does not retry the import.
_FAILED: Dict[str, str] = {}


def register_codegen(codegen, *, replace: bool = False):
    """Register a codegen instance under its ``name``.

    Re-registering a name raises unless ``replace=True`` (shadowing a
    built-in is allowed that way, e.g. to instrument it in tests).
    """
    name = getattr(codegen, "name", None)
    if not name or not isinstance(name, str):
        raise CodegenError(f"codegen {codegen!r} has no usable 'name'")
    if not replace and (name in _REGISTRY or name in _BUILTIN):
        raise CodegenError(f"codegen {name!r} is already registered")
    _REGISTRY[name] = codegen
    _FAILED.pop(name, None)
    return codegen


def get_codegen(name: str):
    """Resolve a codegen by name (instantiating built-ins on first use)."""
    codegen = _REGISTRY.get(name)
    if codegen is not None:
        return codegen
    failed = _FAILED.get(name)
    if failed is not None:
        raise CodegenError(failed)
    builtin = _BUILTIN.get(name)
    if builtin is None:
        raise CodegenError(
            f"unknown kernel codegen {name!r} "
            f"(available: {', '.join(available_codegens())})"
        )
    module_name, attr = builtin
    codegen_cls = getattr(importlib.import_module(module_name), attr)
    try:
        codegen = codegen_cls()
    except CodegenError as exc:
        _FAILED[name] = str(exc)
        raise
    _REGISTRY[name] = codegen
    return codegen


def available_codegens() -> List[str]:
    """Sorted names of every registered (or registerable built-in) codegen."""
    return sorted(set(_BUILTIN) | set(_REGISTRY))


def resolve_codegen(name: Optional[str] = None):
    """Resolve the preferred codegen, falling back to the default.

    Preference order: explicit ``name`` argument, the
    ``REPRO_KERNEL_CODEGEN`` environment variable, then
    :data:`DEFAULT_CODEGEN`.  A named backend whose dependencies are
    missing (``numba`` without numba installed) silently falls back to
    the default — fusion degrades, it never breaks a run.
    """
    if name is None:
        name = os.environ.get(CODEGEN_ENV_VAR) or DEFAULT_CODEGEN
    try:
        return get_codegen(name)
    except CodegenError:
        if name == DEFAULT_CODEGEN:
            raise
        return get_codegen(DEFAULT_CODEGEN)


from .fused import FusedKernel, UNFUSABLE, fused_kernel_for  # noqa: E402
