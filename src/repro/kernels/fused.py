"""Plan fusion: compile an AccessPlan + elementwise fn into one kernel.

A :class:`FusedKernel` wires a compiled offsets plan
(:func:`~repro.memory.mmat.compile_offsets_plan`) and the user's
elementwise sweep ``fn`` into a generated function (see
:mod:`repro.kernels.numpy_src`) that performs gather + apply + scatter
against a single padded scratch field, instead of materialising the
``(n_offsets, n_elem)`` gather tensor and re-indexing it per offset:

* the block's own read buffer is *copied once* into the interior of a
  padded field ``P``;
* only the out-of-block plan sites — the boundary "ring": mirror
  boundaries, neighbour blocks, halo pages, compile-time constants —
  are filled through precomputed (deduplicated) gather tables;
* ``fn`` is applied to one shifted **view** of ``P`` per offset, and
  the result is scattered straight into the write-buffer pages.

The kernel preserves the overlapped-sweep structure of
``BlockKernel.sweep_segment`` (interior first, halo wait, boundary
rim), and adds multi-step **temporal blocking**: with
``temporal_block=N`` the halo-independent interior is advanced up to
``N`` steps per full gather; the lookahead levels are cached per
absolute step and merged with a recomputed rim on the following steps.
The erosion-based lookahead only ever reads values it computed itself,
so results stay bit-identical to the step-by-step path (``fn`` must be
elementwise and step-invariant — true for every stencil update).

Fused kernels are cached on the :class:`~repro.memory.mmat.MMAT`
keyed ``(plan version, fn identity, dtype, temporal depth)``;
``MMAT.reset()`` clears them together with the plans, and a recompiled
plan's fresh version implicitly invalidates its old fusions.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..memory.page import PageKey  # noqa: F401  (exec namespace re-export)
from ..obs.spans import global_tracer
from . import CodegenError, resolve_codegen

__all__ = ["FusedKernel", "UNFUSABLE", "fused_kernel_for"]

#: Cache sentinel: this (plan, fn, dtype, temporal) combination cannot be
#: fused — stored so the dispatch does not retry the codegen every sweep.
UNFUSABLE = "unfusable"


def _as_field(res, shape, dtype) -> np.ndarray:
    """Normalise an ``fn`` result to a writable, contiguous block field."""
    arr = np.asarray(res)
    if arr.shape != shape:
        if arr.size == int(np.prod(shape)):
            arr = arr.reshape(shape)
        else:
            arr = np.broadcast_to(arr, shape)
    if not (arr.flags.c_contiguous and arr.flags.writeable):
        arr = np.array(arr, dtype=dtype)
    return arr


class _HaloGroup:
    """Ring-fill table against one Buffer-only (halo) source block."""

    __slots__ = ("block", "src", "pos", "entry_pages", "check_pages", "_objs")

    def __init__(self, block, src: np.ndarray, pos: np.ndarray) -> None:
        self.block = block
        self.src = src
        self.pos = pos
        self.entry_pages = src // block.page_elements
        self.check_pages = np.unique(self.entry_pages)
        self._objs = None

    def invalid_pages(self) -> list:
        """Not-yet-valid halo pages this group reads (lazy page objects)."""
        objs = self._objs
        if objs is None:
            pages = self.block.buffer.read_buffer.pages
            objs = [(int(p), pages[p]) for p in self.check_pages]
            self._objs = objs
        return [index for index, page in objs if not page.valid]


class FusedKernel:
    """One plan + fn fused into generated gather/apply/scatter code."""

    def __init__(self, block, plan, temporal: int, codegen) -> None:
        if plan.kind != "offsets" or plan.offsets is None:
            raise CodegenError(
                f"only offsets plans can be fused (got {plan.kind!r})"
            )
        if plan.components != 1:
            raise CodegenError(
                f"fusion supports single-component blocks "
                f"(got components={plan.components})"
            )
        self.block = block
        self.plan = plan
        self.temporal = max(int(temporal), 1)
        shape = plan.shape
        nd = len(shape)
        self.shape = shape
        self.n_elem = n_elem = int(np.prod(shape))
        self.dtype = plan.dtype
        off_arr = np.asarray(plan.offsets, dtype=np.int64)
        if off_arr.ndim != 2 or off_arr.shape[1] != nd:
            raise CodegenError(f"malformed offsets {plan.offsets!r}")
        self._off_arr = off_arr
        pad_lo = tuple(int(max(0, -int(off_arr[:, d].min()))) for d in range(nd))
        pad_hi = tuple(int(max(0, int(off_arr[:, d].max()))) for d in range(nd))
        self.pad_lo = pad_lo
        self.pshape = tuple(shape[d] + pad_lo[d] + pad_hi[d] for d in range(nd))
        self._interior_slices = tuple(
            slice(pad_lo[d], pad_lo[d] + shape[d]) for d in range(nd)
        )
        self._view_slices = [
            tuple(
                slice(
                    pad_lo[d] + int(off_arr[oi, d]),
                    pad_lo[d] + int(off_arr[oi, d]) + shape[d],
                )
                for d in range(nd)
            )
            for oi in range(off_arr.shape[0])
        ]

        # -- ring-fill tables (out-of-block plan sites only) -----------
        interior_segs, boundary_segs = plan.split()
        self.data_groups: List[tuple] = []
        for seg in interior_segs:
            pos, src = self._ring_entries(seg.dst_idx, seg.src_idx)
            if pos.size:
                self.data_groups.append((seg.block, src, pos))
        self.halo_groups: List[_HaloGroup] = []
        for seg in boundary_segs:
            pos, src = self._ring_entries(seg.dst_idx, seg.src_idx)
            if pos.size:
                self.halo_groups.append(_HaloGroup(seg.block, src, pos))
        if plan.const_dst is not None:
            pos, first = self._ring_positions(plan.const_dst)
            self.const_pos = pos
            self.const_vals = np.ascontiguousarray(
                plan.const_vals[first, 0], dtype=self.dtype
            )
        else:
            self.const_pos = None
            self.const_vals = None

        # -- generated code --------------------------------------------
        module = codegen.compile(self._signature())
        self._fill_interior = module["fill_interior"]
        self._fill_boundary = module["fill_boundary"]
        self._compute = module["compute"]
        self._store = module["store"]
        self._fused_sweep = module["fused_sweep"]

        #: Padded-field pool (list pop/append is GIL-atomic, so hybrid
        #: threads sweeping concurrently never alias one field).
        self._pool: List[np.ndarray] = []
        self._merge_scratch: List[np.ndarray] = []
        #: Per-write-buffer store plans: trimmed 1-D page views + pages.
        #: Pages are only ever refilled in place (never replaced), so the
        #: views stay valid for the lifetime of the buffer generation.
        self._store_plans: List[tuple] = []
        #: Per-offset padded-flat indices of the halo-touching elements
        #: (the overlap rim), resolved lazily.
        self._boundary_pidx = None
        #: Temporal lookahead tables + the per-absolute-step value cache.
        self._temporal_tables = None
        self._cache: dict = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _site_coords(self, dst: np.ndarray):
        """Padded-field coordinates + geometric-inside mask of plan sites."""
        shape = self.shape
        nd = len(shape)
        oi = dst // self.n_elem
        e = dst - oi * self.n_elem
        ec = np.unravel_index(e, shape)
        coords = []
        inside = np.ones(dst.shape, dtype=bool)
        for d in range(nd):
            c = ec[d] + self._off_arr[oi, d]
            inside &= (c >= 0) & (c < shape[d])
            coords.append(c + self.pad_lo[d])
        return coords, inside

    def _ring_entries(self, dst: np.ndarray, src: np.ndarray):
        """Deduplicated ``(padded positions, source indices)`` ring table.

        Sites that fall geometrically inside the block are covered by the
        interior copy (they are exactly the in-block bulk gathers) and
        are dropped; duplicate padded positions (several sites reading
        one global address) resolve to one entry — the value at a padded
        cell is pure in the global address it mirrors.
        """
        coords, inside = self._site_coords(dst)
        keep = ~inside
        if not keep.any():
            empty = np.empty(0, dtype=np.intp)
            return empty, empty
        pos = np.ravel_multi_index(
            tuple(c[keep] for c in coords), self.pshape
        ).astype(np.intp)
        uniq, first = np.unique(pos, return_index=True)
        return uniq.astype(np.intp), np.ascontiguousarray(src[keep][first])

    def _ring_positions(self, dst: np.ndarray):
        """Deduplicated padded positions of constant sites (always ring)."""
        coords, _ = self._site_coords(dst)
        pos = np.ravel_multi_index(tuple(coords), self.pshape).astype(np.intp)
        uniq, first = np.unique(pos, return_index=True)
        return uniq.astype(np.intp), first

    def _signature(self):
        return (
            self.shape,
            self.pad_lo,
            self.pshape,
            self.plan.offsets,
            int(self.block.page_elements),
        )

    # ------------------------------------------------------------------
    # scratch management (called from the generated code)
    # ------------------------------------------------------------------
    def alloc(self) -> np.ndarray:
        """Pop (or create) a padded scratch field, constants pre-filled."""
        try:
            return self._pool.pop()
        except IndexError:
            P = np.zeros(self.pshape, dtype=self.dtype)
            if self.const_pos is not None:
                P.reshape(-1)[self.const_pos] = self.const_vals
            return P

    def release(self, P: np.ndarray) -> None:
        """Return a padded field to the pool (constants stay in place)."""
        self._pool.append(P)

    def store_plan(self, env) -> tuple:
        """Trimmed 1-D views over the current write buffer's pages.

        Runs of pages whose pool chunks are byte-adjacent in the same
        arena are merged into one view over the arena (the usual case —
        a buffer's pages are allocated back to back), so the generated
        ``store`` pays one slice-assignment per contiguous *run*, not
        per page.  Cached per buffer (double buffering alternates
        between a fixed set of :class:`BlockBuffer` objects).
        """
        buf = self.block.buffer.write_buffer
        for plan in self._store_plans:
            if plan[0] is buf:
                return plan[1], plan[2]
        itemsize = np.dtype(self.dtype).itemsize
        views: List[np.ndarray] = []
        run = None  # (pool, start_byte, end_byte)
        lo = 0
        for page in buf.pages:
            n = min(page.elements, self.n_elem - lo)
            if n <= 0:
                break
            lo += n
            chunk = page.chunk
            nbytes = n * itemsize
            if run is not None and run[0] is chunk.pool and run[2] == chunk.offset:
                run = (run[0], run[1], chunk.offset + nbytes)
                continue
            if run is not None:
                views.append(run[0]._backing[run[1]:run[2]].view(self.dtype))
            run = (chunk.pool, chunk.offset, chunk.offset + nbytes)
        if run is not None:
            views.append(run[0]._backing[run[1]:run[2]].view(self.dtype))
        plan = (buf, views, list(buf.pages))
        self._store_plans.append(plan)
        return views, plan[2]

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def __call__(self, env, fn, trace, work: int) -> None:
        """One fused whole-block sweep with full legacy side effects."""
        plan = self.plan
        tracer = global_tracer()
        if self.temporal > 1:
            missing = self._temporal_step(env, fn, tracer)
        elif plan.has_halo and env.has_pending_halo():
            missing = self._overlap_step(env, fn, tracer)
        else:
            # No halo dependence (or no exchange in flight): leave any
            # pending exchange alone — another block's boundary sweep is
            # the one meant to hide behind it.
            with tracer.span("sweep"):
                missing = self._fused_sweep(self, env, fn)
        plan.account(env, missing)
        env.mmat.note_execution(plan)
        trace.plan_gathers += 1
        trace.plan_sites += plan.n_sites
        trace.kernel_fused_calls += 1
        trace.updates += work * self.n_elem

    # ------------------------------------------------------------------
    # overlapped sweep (interior-first / halo-wait / boundary-rim)
    # ------------------------------------------------------------------
    def _boundary_indices(self):
        bp = self._boundary_pidx
        if bp is None:
            _, boundary = self.plan.element_partition()
            bp = (boundary, self._pidx_for(boundary))
            self._boundary_pidx = bp
        return bp

    def _pidx_for(self, elems: np.ndarray) -> List[np.ndarray]:
        """Per-offset padded-flat read indices for an element subset."""
        shape = self.shape
        nd = len(shape)
        ec = np.unravel_index(elems, shape)
        out = []
        for oi in range(self._off_arr.shape[0]):
            coords = tuple(
                ec[d] + int(self._off_arr[oi, d]) + self.pad_lo[d]
                for d in range(nd)
            )
            out.append(np.ravel_multi_index(coords, self.pshape).astype(np.intp))
        return out

    def _apply_at(self, fn, F: np.ndarray, pidx: List[np.ndarray], count: int):
        """Apply ``fn`` to per-offset 1-D gathers of an element subset."""
        vals = np.asarray(fn(*[F[p] for p in pidx]))
        if vals.shape != (count,):
            vals = np.broadcast_to(vals, (count,))
        return vals

    def _overlap_step(self, env, fn, tracer) -> int:
        """Fused equivalent of ``sweep_segment``'s overlapped path."""
        boundary_elems, bpidx = self._boundary_indices()
        interior = self.n_elem - int(boundary_elems.size)
        with tracer.span("sweep.interior", sites=interior):
            P, F = self._fill_interior(self, env)
            # Full-field compute while the halo is in flight: rim values
            # read unfilled ring cells and are recomputed below.
            res = _as_field(self._compute(P, fn), self.shape, self.dtype)
        env.complete_pending_halo()
        with tracer.span("sweep.boundary", sites=int(boundary_elems.size)):
            missing = self._fill_boundary(self, env, F)
            if boundary_elems.size:
                res.reshape(-1)[boundary_elems] = self._apply_at(
                    fn, F, bpidx, int(boundary_elems.size)
                )
        self._store(self, env, res)
        self.release(P)
        return missing

    # ------------------------------------------------------------------
    # temporal blocking (interior advanced N steps per full gather)
    # ------------------------------------------------------------------
    def _tables(self):
        t = self._temporal_tables
        if t is None:
            shape = self.shape
            nd = len(shape)
            n_off = self._off_arr.shape[0]
            strides = [1] * nd
            for d in range(nd - 2, -1, -1):
                strides[d] = strides[d + 1] * shape[d + 1]
            doff = [
                int(sum(int(self._off_arr[oi, d]) * strides[d] for d in range(nd)))
                for oi in range(n_off)
            ]
            # Erode the computable set one stencil radius per lookahead
            # level: an element is in level l+1 iff every offset lands
            # geometrically in-block *and* inside level l.
            mask = np.ones(shape, dtype=bool)
            levels = {}
            for level in range(2, self.temporal + 1):
                padded = np.zeros(self.pshape, dtype=bool)
                padded[self._interior_slices] = mask
                nxt = np.ones(shape, dtype=bool)
                for oi in range(n_off):
                    nxt &= padded[self._view_slices[oi]]
                mask = nxt
                idx = np.flatnonzero(mask.reshape(-1)).astype(np.intp)
                rim = np.flatnonzero(~mask.reshape(-1)).astype(np.intp)
                levels[level] = (idx, rim, self._pidx_for(rim))
            t = (doff, levels)
            self._temporal_tables = t
        return t

    def _temporal_step(self, env, fn, tracer) -> int:
        step = env.step
        entry = self._cache.get(step)
        if entry is not None:
            return self._temporal_hit(env, fn, tracer, entry)
        return self._temporal_miss(env, fn, tracer, step)

    def _temporal_miss(self, env, fn, tracer, step: int) -> int:
        plan = self.plan
        if plan.has_halo and env.has_pending_halo():
            boundary_elems, bpidx = self._boundary_indices()
            interior = self.n_elem - int(boundary_elems.size)
            with tracer.span("sweep.interior", sites=interior):
                P, F = self._fill_interior(self, env)
                res = _as_field(self._compute(P, fn), self.shape, self.dtype)
            env.complete_pending_halo()
            with tracer.span("sweep.boundary", sites=int(boundary_elems.size)):
                missing = self._fill_boundary(self, env, F)
                if boundary_elems.size:
                    res.reshape(-1)[boundary_elems] = self._apply_at(
                        fn, F, bpidx, int(boundary_elems.size)
                    )
        else:
            with tracer.span("sweep"):
                P, F = self._fill_interior(self, env)
                missing = self._fill_boundary(self, env, F)
                res = _as_field(self._compute(P, fn), self.shape, self.dtype)
        self._store(self, env, res)
        self.release(P)

        # Lookahead: advance the eroding interior up to temporal-1 extra
        # steps from data this block just computed itself.  A re-executed
        # step (failed refresh) misses again — ``step`` did not advance —
        # and overwrites any stale entries.
        doff, levels = self._tables()
        self._cache.clear()
        cur = res.reshape(-1)
        for level in range(2, self.temporal + 1):
            idx, _rim, _rimp = levels[level]
            if not idx.size:
                break
            vals = np.asarray(fn(*[cur[idx + d] for d in doff]), dtype=self.dtype)
            if vals.shape != idx.shape:
                vals = np.ascontiguousarray(np.broadcast_to(vals, idx.shape))
            self._cache[step + level - 1] = (level, vals)
            if level < self.temporal:
                cur[idx] = vals
        return missing

    def _temporal_hit(self, env, fn, tracer, entry) -> int:
        level, vals = entry
        if self.plan.has_halo and env.has_pending_halo():
            env.complete_pending_halo()
        _doff, levels = self._tables()
        idx, rim, rimp = levels[level]
        with tracer.span("sweep", temporal=level):
            P, F = self._fill_interior(self, env)
            missing = self._fill_boundary(self, env, F)
            try:
                out = self._merge_scratch.pop()
            except IndexError:
                out = np.empty(self.n_elem, dtype=self.dtype)
            out[idx] = vals
            if rim.size:
                out[rim] = self._apply_at(fn, F, rimp, int(rim.size))
            self._store(self, env, out.reshape(self.shape))
            self._merge_scratch.append(out)
            self.release(P)
        return missing


def fused_kernel_for(
    env,
    block,
    plan,
    fn,
    *,
    temporal: int = 1,
    codegen: Optional[str] = None,
    trace=None,
) -> Optional[FusedKernel]:
    """Cached-or-compiled fused kernel for ``(plan, fn)``, or None.

    Returns None when the combination cannot be fused (address plans,
    multi-component blocks, codegen failure) — the caller falls back to
    the gather/apply/scatter path.  Failures are cached as
    :data:`UNFUSABLE` under the same key, so the fallback costs one dict
    lookup per sweep.  The key includes ``plan.version``: a plan
    recompiled after ``MMAT.reset`` can never resurrect a stale kernel.
    """
    mmat = env.mmat
    fn_id = getattr(fn, "__code__", None) or fn
    key = (plan.version, fn_id, str(plan.dtype), int(temporal))
    kern = mmat.fused_lookup(key)
    if kern is not None:
        return None if kern is UNFUSABLE else kern
    try:
        chosen = resolve_codegen(codegen)
        with global_tracer().span("kernel.fuse", sites=plan.n_sites):
            kern = FusedKernel(block, plan, temporal, chosen)
    except CodegenError:
        mmat.fused_store(key, UNFUSABLE)
        return None
    mmat.fused_store(key, kern)
    if trace is not None:
        trace.kernel_fuse += 1
    return kern
