"""Optional numba codegen (import-guarded).

Emits the exact same specialised source as
:class:`~repro.kernels.numpy_src.NumpySourceCodegen` and additionally
routes the elementwise ``fn`` through ``numba.njit`` (non-fastmath, so
results stay IEEE-identical to the NumPy path).  Any jit failure — an
``fn`` numba cannot type, a dispatch error at call time — falls back to
the plain Python ``fn`` transparently.

The constructor raises :class:`~repro.kernels.CodegenError` when numba
is not importable; :func:`~repro.kernels.resolve_codegen` then falls
back to ``numpy_src``, so naming this backend on a numba-less machine
degrades to the default instead of failing the run.
"""

from __future__ import annotations

from typing import Dict, Tuple

from . import CodegenError
from .numpy_src import NumpySourceCodegen

__all__ = ["NumbaCodegen"]


class NumbaCodegen(NumpySourceCodegen):
    """numba-accelerated variant of the generated-source codegen."""

    name = "numba"

    def __init__(self) -> None:
        try:
            import numba
        except ImportError as exc:  # pragma: no cover - depends on env
            raise CodegenError(
                "the 'numba' codegen requires numba to be installed; "
                "falling back to 'numpy_src'"
            ) from exc
        self._numba = numba
        #: Jitted elementwise fns keyed by code identity; a value equal
        #: to the original fn marks "numba could not handle it".
        self._jitted: Dict[object, object] = {}
        super().__init__()

    def compile(self, signature: Tuple) -> dict:
        namespace = super().compile(signature)
        base_compute = namespace["compute"]
        jitted = self._jitted
        numba = self._numba

        def compute(P, fn):
            key = getattr(fn, "__code__", None) or fn
            jf = jitted.get(key)
            if jf is None:
                try:
                    jf = numba.njit(fn)
                except Exception:
                    jf = fn
                jitted[key] = jf
            if jf is fn:
                return base_compute(P, fn)
            try:
                result = base_compute(P, jf)
            except Exception:
                # Typing/dispatch failed at call time: pin the fallback
                # and re-run with the plain Python fn.
                jitted[key] = fn
                result = base_compute(P, fn)
            return result

        # Rebind inside the generated module so fused_sweep picks the
        # wrapped compute up too.
        namespace["compute"] = compute
        return namespace
