"""Aspect base class.

An *aspect module* groups the pointcut/advice pairs that implement one
cross-cutting concern.  In the paper each aspect module corresponds to
one layer of the HPC system (MPI layer, OpenMP layer, ...) and bundles
its AspectType I/II/III advice; the platform-independent machinery —
collecting advice declarations, binding them to the aspect instance,
precedence — lives here.

Usage::

    class TraceAspect(Aspect):
        order = 10                       # precedence (lower = outer)

        @before("tagged('platform.processing')")   # textual pointcut …
        def log_enter(self, jp):
            print("entering", jp.shadow.qualname)

        @before(tagged("platform.finalize"))       # … or a Pointcut object
        def log_done(self, jp):
            print("done")

Aspects are *instantiated* before weaving so they may carry state (the
MPI aspect owns the simulated communicator, the OpenMP aspect owns the
thread team).
"""

from __future__ import annotations

from typing import Any, Dict, List

from .advice import Advice, AdviceKind
from .errors import AspectDefinitionError

__all__ = ["Aspect"]


class Aspect:
    """Base class for aspect modules.

    Subclasses declare advice methods with the decorators from
    :mod:`repro.aop.advice`.  The class attribute :attr:`order` sets
    the aspect's precedence (lower = applied "outside" other aspects).
    """

    #: Aspect precedence; lower values wrap higher values.
    order: int = 100

    #: Human readable name used in diagnostics and bench reports.
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            self.name = type(self).__name__

    # ------------------------------------------------------------------
    def advices(self) -> List[Advice]:
        """Collect this aspect's advice, bound to this instance.

        Advice declared on base classes is included (so an aspect module
        may extend another and inherit its advice), with subclasses able
        to override an advice method by redefining it under the same
        name.
        """
        collected: Dict[str, Any] = {}
        for klass in reversed(type(self).__mro__):
            for attr_name, attr in vars(klass).items():
                if hasattr(attr, "__aop_advice__"):
                    collected[attr_name] = attr
        advices: List[Advice] = []
        for attr_name, func in collected.items():
            declarations = getattr(func, "__aop_advice__", ())
            if not declarations:
                continue
            for kind, pointcut, order in declarations:
                if not isinstance(kind, AdviceKind):
                    raise AspectDefinitionError(
                        f"{type(self).__name__}.{attr_name}: bad advice kind {kind!r}"
                    )
                advices.append(
                    Advice(
                        kind=kind,
                        pointcut=pointcut,
                        body=func,
                        order=self.order * 1000 + order,
                        name=f"{self.name}.{attr_name}",
                    ).bind(self)
                )
        if not advices:
            raise AspectDefinitionError(
                f"aspect {type(self).__name__} declares no advice; "
                "did you forget the @before/@after/@around decorators?"
            )
        return advices

    # ------------------------------------------------------------------
    # Lifecycle hooks invoked by the Platform driver (not by the weaver).
    # They let aspect modules allocate/release per-run resources without
    # needing an extra join point on the driver itself.
    def on_attach(self, platform) -> None:
        """Called when the aspect is attached to a Platform (before weaving)."""

    def on_detach(self, platform) -> None:
        """Called when the Platform run finishes."""

    def describe(self) -> str:
        """Return a one-line description used in benchmark reports."""
        return f"{self.name}(order={self.order})"
