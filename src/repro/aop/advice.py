"""Advice declarations.

Advice is the behaviour an aspect injects at matched join points.  As in
AspectC++ there are several insertion positions (§III-A1: "There are
several ways to insert Advice: before, after, or replacing the entire
process"):

* ``before``          — runs before the intercepted body;
* ``after``           — runs after the body, whether it returned or raised;
* ``after_returning`` — runs only after a normal return;
* ``after_throwing``  — runs only when the body raised;
* ``around``          — replaces the body; the advice decides whether and
  how often to call :meth:`JoinPoint.proceed`.

Advice bodies are plain callables receiving the :class:`JoinPoint`.
Inside an :class:`~repro.aop.aspect.Aspect` subclass they are declared
with the :func:`before` / :func:`after` / :func:`around` decorators and
receive ``(self, jp)``.

Each decorator (and :class:`Advice` itself) accepts either a
:class:`~repro.aop.pointcut.Pointcut` object or a *textual pointcut
expression* compiled by :func:`repro.aop.pcparser.parse_pointcut`::

    @before("execution() && tagged('kernel')")
    def count(self, jp): ...
"""

from __future__ import annotations

import enum
import functools
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Union

from .errors import AdviceSignatureError
from .joinpoint import JoinPoint
from .pcparser import as_pointcut
from .pointcut import Pointcut

__all__ = [
    "AdviceKind",
    "Advice",
    "before",
    "after",
    "after_returning",
    "after_throwing",
    "around",
]


class AdviceKind(enum.Enum):
    """Insertion position of an advice relative to the join point body."""

    BEFORE = "before"
    AFTER = "after"
    AFTER_RETURNING = "after_returning"
    AFTER_THROWING = "after_throwing"
    AROUND = "around"


@dataclass
class Advice:
    """A single advice: *what* to run (``body``), *where* (``pointcut``),
    *when* (``kind``) and in what relative ``order``.

    ``order`` follows AspectJ-style precedence: lower numbers are
    "outer".  For ``before``/``around`` advice lower order runs first;
    for ``after*`` advice lower order runs last (it wraps the others).
    """

    kind: AdviceKind
    pointcut: Union[Pointcut, str]
    body: Callable[..., Any]
    order: int = 0
    name: str = field(default="")

    def __post_init__(self) -> None:
        if isinstance(self.pointcut, str):
            self.pointcut = as_pointcut(self.pointcut)
        if not callable(self.body):
            raise AdviceSignatureError(f"advice body must be callable, got {self.body!r}")
        if not self.name:
            self.name = getattr(self.body, "__name__", "<advice>")
        try:
            params = inspect.signature(self.body).parameters
        except (TypeError, ValueError):  # pragma: no cover - builtins
            params = {}
        if params is not None and len(params) == 0:
            raise AdviceSignatureError(
                f"advice {self.name!r} must accept the join point as a parameter"
            )

    # ------------------------------------------------------------------
    def bind(self, instance: Any) -> "Advice":
        """Return a copy of this advice with ``body`` bound to ``instance``.

        Used by :class:`~repro.aop.aspect.Aspect` so that advice methods
        declared on an aspect class receive the aspect instance as
        ``self`` (aspects are stateful in this platform: e.g. the MPI
        aspect stores the simulated communicator).
        """
        bound = functools.partial(self.body, instance)
        functools.update_wrapper(bound, self.body)
        return Advice(
            kind=self.kind,
            pointcut=self.pointcut,
            body=bound,
            order=self.order,
            name=self.name,
        )

    def applies_to(self, shadow) -> bool:
        """Return True when this advice's pointcut selects ``shadow``."""
        return self.pointcut.matches(shadow)

    def invoke(self, jp: JoinPoint) -> Any:
        """Invoke the advice body with the join point."""
        return self.body(jp)


# ----------------------------------------------------------------------
# decorators for declaring advice inside Aspect subclasses
# ----------------------------------------------------------------------

def _make_decorator(kind: AdviceKind):
    def decorator(pointcut: Union[Pointcut, str], *, order: int = 0):
        if isinstance(pointcut, str):
            # Compiled at declaration time so a typo fails at import with
            # the caret diagnostic, not silently at weave time.
            pointcut = as_pointcut(pointcut)
        elif not isinstance(pointcut, Pointcut):
            raise AdviceSignatureError(
                f"@{kind.value} expects a Pointcut or a pointcut expression "
                f"string, got {pointcut!r}"
            )

        def wrap(func: Callable) -> Callable:
            declarations = list(getattr(func, "__aop_advice__", ()))
            declarations.append((kind, pointcut, order))
            func.__aop_advice__ = tuple(declarations)
            return func

        return wrap

    decorator.__name__ = kind.value
    decorator.__doc__ = f"Declare a method of an Aspect as '{kind.value}' advice."
    return decorator


before = _make_decorator(AdviceKind.BEFORE)
after = _make_decorator(AdviceKind.AFTER)
after_returning = _make_decorator(AdviceKind.AFTER_RETURNING)
after_throwing = _make_decorator(AdviceKind.AFTER_THROWING)
around = _make_decorator(AdviceKind.AROUND)
