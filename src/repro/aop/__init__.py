"""Aspect-Oriented Programming engine (the platform's weaving substrate).

This package is the Python counterpart of the paper's use of AspectC++:
it implements the JoinPoint Model — pointcuts selecting join point
shadows, advice (before/after/around) executed at those join points,
aspects grouping advice, and a weaver that produces woven classes and
functions.

Public API
----------

* pointcuts: :func:`execution`, :func:`call`, :func:`named`,
  :func:`within`, :func:`tagged`, :func:`subtype_of`,
  :func:`any_joinpoint`
* the textual pointcut language: :func:`parse_pointcut` /
  :func:`as_pointcut` (``"execution() && tagged('kernel')"``)
* advice decorators: :func:`before`, :func:`after`,
  :func:`after_returning`, :func:`after_throwing`, :func:`around` —
  each accepting a :class:`Pointcut` or a pointcut expression string
* :class:`Aspect`, :class:`Weaver`, :class:`WeavePlan`, :class:`JoinPoint`
* annotations: :func:`annotate`, :func:`platform_pointcuts`
"""

from .advice import (
    Advice,
    AdviceKind,
    after,
    after_returning,
    after_throwing,
    around,
    before,
)
from .aspect import Aspect
from .errors import (
    AdviceSignatureError,
    AopError,
    AspectDefinitionError,
    PointcutSyntaxError,
    WeaveError,
    WeaveWarning,
)
from .joinpoint import JoinPoint, JoinPointKind, JoinPointShadow, shadow_of
from .pcparser import as_pointcut, parse_pointcut
from .pointcut import (
    Pointcut,
    any_call,
    any_execution,
    any_joinpoint,
    call,
    execution,
    named,
    no_joinpoint,
    subtype_named,
    subtype_of,
    tagged,
    tagged_like,
    within,
)
from .registry import (
    TAG_ENTRY,
    TAG_FINALIZE,
    TAG_GET_BLOCKS,
    TAG_INITIALIZE,
    TAG_KERNEL,
    TAG_PROCESSING,
    TAG_REFRESH,
    TAG_TARGET,
    PointcutRegistry,
    annotate,
    platform_pointcuts,
    tags_of,
)
from .weaver import PlanEntry, WeavePlan, Weaver, WovenInfo, is_woven

__all__ = [
    "Advice",
    "AdviceKind",
    "Aspect",
    "JoinPoint",
    "JoinPointKind",
    "JoinPointShadow",
    "Pointcut",
    "PointcutRegistry",
    "Weaver",
    "WeavePlan",
    "PlanEntry",
    "WovenInfo",
    "AopError",
    "PointcutSyntaxError",
    "WeaveError",
    "WeaveWarning",
    "AdviceSignatureError",
    "AspectDefinitionError",
    "annotate",
    "tags_of",
    "platform_pointcuts",
    "shadow_of",
    "is_woven",
    "parse_pointcut",
    "as_pointcut",
    "execution",
    "call",
    "any_execution",
    "any_call",
    "named",
    "within",
    "tagged",
    "tagged_like",
    "subtype_of",
    "subtype_named",
    "any_joinpoint",
    "no_joinpoint",
    "before",
    "after",
    "after_returning",
    "after_throwing",
    "around",
    "TAG_ENTRY",
    "TAG_TARGET",
    "TAG_INITIALIZE",
    "TAG_PROCESSING",
    "TAG_FINALIZE",
    "TAG_GET_BLOCKS",
    "TAG_REFRESH",
    "TAG_KERNEL",
]
