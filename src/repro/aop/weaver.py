"""The weaver: applies aspects to classes and functions.

AspectC++ is a source-to-source *transcompiler*: it takes the
application code plus the selected aspect modules and emits new C++
code in which every matched join point is wrapped by the advice.  The
Python equivalent implemented here performs the same transformation at
class-object level:

* :meth:`Weaver.weave_class` returns a **new subclass** whose matched
  methods are replaced with wrappers that drive the advice chain.  The
  original class is left untouched (it corresponds to the paper's
  "Platform" configuration, compiled directly by the C++ compiler).
* :meth:`Weaver.weave_function` does the same for a free function
  (used for the program entry point, the ``main`` of C++ programs).

Weaving with an empty aspect list is permitted and still produces the
wrapper shell around every *taggable* method — this reproduces the
paper's "Platform NOP" configuration ("transcompiled through the AC++
compiler without aspects module"), whose cost the evaluation shows to
be a few percent.

Advice dispatch order
---------------------

For one join point activation the wrapper executes, in order:

1. all matching ``before`` advice (ascending ``order``);
2. the ``around`` chain: matching ``around`` advice sorted by ascending
   ``order`` nests outermost-first; the innermost ``proceed`` runs the
   original body;
3. ``after_returning`` or ``after_throwing`` advice;
4. ``after`` advice (always).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from .advice import Advice, AdviceKind
from .aspect import Aspect
from .errors import WeaveError
from .joinpoint import JoinPoint, JoinPointKind, JoinPointShadow, shadow_of

__all__ = ["Weaver", "WovenInfo", "is_woven"]


class WovenInfo:
    """Weave metadata stored on woven classes/functions (for tests & reports)."""

    def __init__(self) -> None:
        self.joinpoints: List[Tuple[JoinPointShadow, Tuple[str, ...]]] = []

    def record(self, shadow: JoinPointShadow, advice: Sequence[Advice]) -> None:
        self.joinpoints.append((shadow, tuple(a.name for a in advice)))

    @property
    def advised_sites(self) -> int:
        return sum(1 for _, names in self.joinpoints if names)

    @property
    def wrapped_sites(self) -> int:
        return len(self.joinpoints)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WovenInfo(wrapped={self.wrapped_sites}, advised={self.advised_sites})"


def is_woven(obj) -> bool:
    """Return True if ``obj`` (class or function) was produced by a Weaver."""
    return getattr(obj, "__aop_woven__", None) is not None


class Weaver:
    """Applies a set of aspect modules to classes and functions."""

    def __init__(self, aspects: Iterable[Aspect] = ()) -> None:
        self.aspects: List[Aspect] = list(aspects)
        for aspect in self.aspects:
            if not isinstance(aspect, Aspect):
                raise WeaveError(
                    f"Weaver expects Aspect instances, got {aspect!r}; "
                    "did you pass the class instead of an instance?"
                )
        self._advices: List[Advice] = []
        for aspect in self.aspects:
            self._advices.extend(aspect.advices())
        # Stable overall ordering by (order, declaration position).
        self._advices.sort(key=lambda a: a.order)

    # ------------------------------------------------------------------
    @property
    def advices(self) -> List[Advice]:
        return list(self._advices)

    def matching_advice(self, shadow: JoinPointShadow) -> List[Advice]:
        """Return the advice (already ordered) applying to ``shadow``."""
        return [a for a in self._advices if a.applies_to(shadow)]

    # ------------------------------------------------------------------
    def weave_class(
        self,
        cls: type,
        *,
        methods: Optional[Sequence[str]] = None,
        name: Optional[str] = None,
    ) -> type:
        """Return a woven subclass of ``cls``.

        Parameters
        ----------
        cls:
            Class to weave.  Every method reachable on the class (own or
            inherited) that either carries platform annotation tags or is
            explicitly listed in ``methods`` becomes a join point shadow.
        methods:
            Explicit method names to wrap in addition to tagged ones.
        name:
            Name of the generated class; defaults to ``cls.__name__ +
            "__woven"``.
        """
        if not isinstance(cls, type):
            raise WeaveError(f"weave_class() expects a class, got {cls!r}")
        info = WovenInfo()
        overrides: dict = {}
        wanted = set(methods or ())
        mro_tags = tuple(f"class:{base.__name__}" for base in cls.__mro__)

        # Collect candidate method names across the whole MRO: a method is a
        # join point shadow if *any* definition of that name in the class
        # hierarchy carries annotation tags (so an end-user override of the
        # platform's tagged ``Processing`` is still woven), or if it was
        # explicitly requested via ``methods``.
        candidates: set = set(wanted)
        for klass in cls.__mro__:
            if klass is object:
                continue
            for attr_name, attr in vars(klass).items():
                if attr_name.startswith("__") and attr_name.endswith("__"):
                    continue
                if callable(attr) and getattr(attr, "__aop_tags__", ()):
                    candidates.add(attr_name)

        missing = [name for name in wanted if not callable(getattr(cls, name, None))]
        if missing:
            raise WeaveError(
                f"none of the requested methods {sorted(missing)} exist on {cls.__name__}"
            )

        for attr_name in sorted(candidates):
            func = getattr(cls, attr_name, None)
            if func is None or not callable(func):
                continue
            shadow = shadow_of(
                func,
                kind=JoinPointKind.EXECUTION,
                cls=cls,
                extra_tags=mro_tags,
            )
            advice = self.matching_advice(shadow)
            info.record(shadow, advice)
            overrides[attr_name] = self._make_method_wrapper(func, shadow, advice)

        if not overrides and (methods or self._advices):
            # Weaving a class with no matched join points usually means a
            # pointcut typo; surface it early like AC++ does with a warning
            # that it did not weave anything.  We only raise when explicit
            # methods were requested.
            if methods:
                raise WeaveError(
                    f"none of the requested methods {sorted(wanted)} exist on {cls.__name__}"
                )

        woven_name = name or f"{cls.__name__}__woven"
        woven = type(woven_name, (cls,), overrides)
        woven.__aop_woven__ = info
        woven.__aop_weaver__ = self
        woven.__module__ = cls.__module__
        woven.__doc__ = cls.__doc__
        return woven

    # ------------------------------------------------------------------
    def weave_function(self, func: Callable, *, tags: Tuple[str, ...] = ()) -> Callable:
        """Return a woven wrapper around a free function (e.g. ``main``)."""
        shadow = shadow_of(func, kind=JoinPointKind.EXECUTION, extra_tags=tags)
        advice = self.matching_advice(shadow)
        wrapper = self._make_function_wrapper(func, shadow, advice)
        info = WovenInfo()
        info.record(shadow, advice)
        wrapper.__aop_woven__ = info
        wrapper.__aop_weaver__ = self
        return wrapper

    # ------------------------------------------------------------------
    # wrapper construction
    # ------------------------------------------------------------------
    def _make_method_wrapper(
        self, func: Callable, shadow: JoinPointShadow, advice: Sequence[Advice]
    ) -> Callable:
        dispatch = _build_dispatch(func, shadow, advice, is_method=True)

        @functools.wraps(func)
        def wrapper(self, *args: Any, **kwargs: Any) -> Any:
            return dispatch(self, args, kwargs)

        wrapper.__aop_shadow__ = shadow
        wrapper.__aop_advice_names__ = tuple(a.name for a in advice)
        return wrapper

    def _make_function_wrapper(
        self, func: Callable, shadow: JoinPointShadow, advice: Sequence[Advice]
    ) -> Callable:
        dispatch = _build_dispatch(func, shadow, advice, is_method=False)

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            return dispatch(None, args, kwargs)

        wrapper.__aop_shadow__ = shadow
        wrapper.__aop_advice_names__ = tuple(a.name for a in advice)
        return wrapper


# ----------------------------------------------------------------------
# dispatch machinery shared by method and function wrappers
# ----------------------------------------------------------------------

def _build_dispatch(
    func: Callable,
    shadow: JoinPointShadow,
    advice: Sequence[Advice],
    *,
    is_method: bool,
) -> Callable[[Any, tuple, dict], Any]:
    """Build the closure that executes the advice chain for one shadow."""
    befores = [a for a in advice if a.kind is AdviceKind.BEFORE]
    arounds = [a for a in advice if a.kind is AdviceKind.AROUND]
    after_ret = [a for a in advice if a.kind is AdviceKind.AFTER_RETURNING]
    after_throw = [a for a in advice if a.kind is AdviceKind.AFTER_THROWING]
    afters = [a for a in advice if a.kind is AdviceKind.AFTER]

    def dispatch(target: Any, args: tuple, kwargs: dict) -> Any:
        jp = JoinPoint(shadow, target, args, kwargs)

        def call_body(*call_args: Any, **call_kwargs: Any) -> Any:
            if is_method:
                return func(target, *call_args, **call_kwargs)
            return func(*call_args, **call_kwargs)

        # Build the around chain from the innermost (original body) out.
        proceed = call_body
        for adv in reversed(arounds):
            proceed = _wrap_around(adv, jp, proceed)

        for adv in befores:
            adv.invoke(jp)
        try:
            jp._proceed = proceed
            result = proceed(*jp.args, **jp.kwargs)
            jp.result = result
        except BaseException as exc:
            jp.exception = exc
            for adv in after_throw:
                adv.invoke(jp)
            for adv in afters:
                adv.invoke(jp)
            raise
        for adv in after_ret:
            adv.invoke(jp)
        for adv in afters:
            adv.invoke(jp)
        return jp.result

    return dispatch


def _wrap_around(adv: Advice, jp: JoinPoint, inner: Callable) -> Callable:
    """Wrap ``inner`` with one level of around advice."""

    def around_call(*args: Any, **kwargs: Any) -> Any:
        if args or kwargs:
            jp.args = args
            jp.kwargs = kwargs
        saved = jp._proceed
        jp._proceed = inner
        try:
            return adv.invoke(jp)
        finally:
            jp._proceed = saved

    return around_call
