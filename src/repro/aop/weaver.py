"""The weaver: applies aspects to classes and functions.

AspectC++ is a source-to-source *transcompiler*: it takes the
application code plus the selected aspect modules and emits new C++
code in which every matched join point is wrapped by the advice.  The
Python equivalent implemented here performs the same transformation at
class-object level, split into two phases that mirror AspectC++'s
"match then transform" pipeline:

* :meth:`Weaver.plan_class` performs the *match* phase: it scans the
  class for join point shadows and resolves which advice applies to
  each, producing an inspectable :class:`WeavePlan`.  Plans are pure
  functions of the ``(class, weaver)`` pair, so they are computed once
  and cached on the weaver.
* :meth:`Weaver.weave_class` performs the *transform* phase: it
  executes the plan, returning a **new subclass** whose matched methods
  are replaced with wrappers that drive the advice chain.  The original
  class is left untouched (it corresponds to the paper's "Platform"
  configuration, compiled directly by the C++ compiler).
* :meth:`Weaver.weave_function` does the same for a free function
  (used for the program entry point, the ``main`` of C++ programs).

Weaving with an empty aspect list is permitted and still produces the
wrapper shell around every *taggable* method — this reproduces the
paper's "Platform NOP" configuration ("transcompiled through the AC++
compiler without aspects module"), whose cost the evaluation shows to
be a few percent.  Shadows with no matching advice get a minimal
pass-through wrapper (no join point object, no advice chain), so that
NOP overhead stays as close to a plain method call as Python allows.

Advice dispatch order
---------------------

For one join point activation the wrapper executes, in order:

1. all matching ``before`` advice (ascending ``order``);
2. the ``around`` chain: matching ``around`` advice sorted by ascending
   ``order`` nests outermost-first; the innermost ``proceed`` runs the
   original body;
3. ``after_returning`` or ``after_throwing`` advice;
4. ``after`` advice (always).
"""

from __future__ import annotations

import functools
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .advice import Advice, AdviceKind
from .aspect import Aspect
from .errors import WeaveError, WeaveWarning
from .joinpoint import JoinPoint, JoinPointKind, JoinPointShadow, shadow_of

__all__ = ["Weaver", "WeavePlan", "PlanEntry", "WovenInfo", "is_woven"]


@dataclass(frozen=True)
class PlanEntry:
    """One join point shadow of a plan and the advice resolved for it."""

    attr_name: str
    shadow: JoinPointShadow
    advice: Tuple[Advice, ...]

    @property
    def advised(self) -> bool:
        return bool(self.advice)

    def describe(self) -> str:
        names = ", ".join(a.name for a in self.advice) or "<no advice>"
        return f"{self.shadow.qualname}: {names}"


@dataclass(frozen=True)
class WeavePlan:
    """The match-phase result for one class: shadow → matched advice.

    Plans are immutable and inspectable — benchmarks and tests can ask a
    platform what it *would* weave without actually weaving — and are
    cached per ``(class, weaver)`` pair so repeated builds of the same
    application skip the MRO scan and pointcut evaluation entirely.
    """

    cls: type
    entries: Tuple[PlanEntry, ...]

    @property
    def wrapped_sites(self) -> int:
        return len(self.entries)

    @property
    def advised_sites(self) -> int:
        return sum(1 for entry in self.entries if entry.advised)

    def describe(self) -> str:
        """Multi-line human-readable description of the plan."""
        header = (
            f"WeavePlan for {self.cls.__name__}: "
            f"{self.wrapped_sites} shadow(s), {self.advised_sites} advised"
        )
        return "\n".join([header] + [f"  {entry.describe()}" for entry in self.entries])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WeavePlan({self.cls.__name__}, wrapped={self.wrapped_sites}, "
            f"advised={self.advised_sites})"
        )


class WovenInfo:
    """Weave metadata stored on woven classes/functions (for tests & reports)."""

    def __init__(self) -> None:
        self.joinpoints: List[Tuple[JoinPointShadow, Tuple[str, ...]]] = []

    def record(self, shadow: JoinPointShadow, advice: Sequence[Advice]) -> None:
        self.joinpoints.append((shadow, tuple(a.name for a in advice)))

    @classmethod
    def from_plan(cls, plan: WeavePlan) -> "WovenInfo":
        info = cls()
        for entry in plan.entries:
            info.record(entry.shadow, entry.advice)
        return info

    @property
    def advised_sites(self) -> int:
        return sum(1 for _, names in self.joinpoints if names)

    @property
    def wrapped_sites(self) -> int:
        return len(self.joinpoints)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WovenInfo(wrapped={self.wrapped_sites}, advised={self.advised_sites})"


def is_woven(obj) -> bool:
    """Return True if ``obj`` (class or function) was produced by a Weaver."""
    return getattr(obj, "__aop_woven__", None) is not None


class Weaver:
    """Applies a set of aspect modules to classes and functions."""

    def __init__(self, aspects: Iterable[Aspect] = ()) -> None:
        self.aspects: List[Aspect] = list(aspects)
        for aspect in self.aspects:
            if not isinstance(aspect, Aspect):
                raise WeaveError(
                    f"Weaver expects Aspect instances, got {aspect!r}; "
                    "did you pass the class instead of an instance?"
                )
        self._advices: List[Advice] = []
        for aspect in self.aspects:
            self._advices.extend(aspect.advices())
        # Stable overall ordering by (order, declaration position).
        self._advices.sort(key=lambda a: a.order)
        #: (class, extra methods) → WeavePlan; the match phase is a pure
        #: function of the class and this weaver's advice, so one plan
        #: serves every weave of the same class.
        self._plans: Dict[Tuple[type, Tuple[str, ...]], WeavePlan] = {}
        #: (class, extra methods, name) → woven class, so repeated builds
        #: (e.g. a Platform building the same app twice) return the same
        #: transformed class instead of re-synthesising it.
        self._woven: Dict[Tuple[type, Tuple[str, ...], Optional[str]], type] = {}

    # ------------------------------------------------------------------
    @property
    def advices(self) -> List[Advice]:
        return list(self._advices)

    def matching_advice(self, shadow: JoinPointShadow) -> List[Advice]:
        """Return the advice (already ordered) applying to ``shadow``."""
        return [a for a in self._advices if a.applies_to(shadow)]

    # ------------------------------------------------------------------
    # match phase
    # ------------------------------------------------------------------
    def plan_class(
        self, cls: type, *, methods: Optional[Sequence[str]] = None
    ) -> WeavePlan:
        """Compute (or fetch from cache) the :class:`WeavePlan` for ``cls``.

        Every method reachable on the class (own or inherited) that
        either carries platform annotation tags or is explicitly listed
        in ``methods`` becomes a join point shadow; the plan records the
        advice each shadow attracts.
        """
        if not isinstance(cls, type):
            raise WeaveError(f"weave_class() expects a class, got {cls!r}")
        wanted = tuple(sorted(set(methods or ())))
        cached = self._plans.get((cls, wanted))
        if cached is not None:
            return cached
        plan = self._compute_plan(cls, wanted)
        self._plans[(cls, wanted)] = plan
        return plan

    def _compute_plan(self, cls: type, wanted: Tuple[str, ...]) -> WeavePlan:
        mro_tags = tuple(f"class:{base.__name__}" for base in cls.__mro__)

        # Collect candidate method names across the whole MRO: a method is a
        # join point shadow if *any* definition of that name in the class
        # hierarchy carries annotation tags (so an end-user override of the
        # platform's tagged ``Processing`` is still woven), or if it was
        # explicitly requested via ``methods``.
        candidates: set = set(wanted)
        for klass in cls.__mro__:
            if klass is object:
                continue
            for attr_name, attr in vars(klass).items():
                if attr_name.startswith("__") and attr_name.endswith("__"):
                    continue
                if callable(attr) and getattr(attr, "__aop_tags__", ()):
                    candidates.add(attr_name)

        missing = [name for name in wanted if not callable(getattr(cls, name, None))]
        if missing:
            raise WeaveError(
                f"none of the requested methods {sorted(missing)} exist on {cls.__name__}"
            )

        entries: List[PlanEntry] = []
        for attr_name in sorted(candidates):
            func = getattr(cls, attr_name, None)
            if func is None or not callable(func):
                continue
            shadow = shadow_of(
                func,
                kind=JoinPointKind.EXECUTION,
                cls=cls,
                extra_tags=mro_tags,
            )
            advice = tuple(self.matching_advice(shadow))
            entries.append(PlanEntry(attr_name=attr_name, shadow=shadow, advice=advice))

        plan = WeavePlan(cls=cls, entries=tuple(entries))
        if not entries and self._advices:
            # Aspects were supplied but the class exposes no join point
            # shadow at all (no tagged method anywhere in its MRO).  That is
            # a legal weave, but it usually means the wrong class — or a
            # class that forgot the platform annotations — was handed to the
            # weaver, so surface it the way AC++ warns that it did not weave
            # anything.
            warnings.warn(
                f"weaving {cls.__name__} with {len(self._advices)} advice(s) "
                f"found no join point shadow: {cls.__name__} has no "
                "annotated (tagged) method and none was requested explicitly",
                WeaveWarning,
                stacklevel=3,
            )
        return plan

    # ------------------------------------------------------------------
    # transform phase
    # ------------------------------------------------------------------
    def weave_class(
        self,
        cls: type,
        *,
        methods: Optional[Sequence[str]] = None,
        name: Optional[str] = None,
    ) -> type:
        """Return a woven subclass of ``cls`` executing this weaver's plan.

        Parameters
        ----------
        cls:
            Class to weave (see :meth:`plan_class` for shadow selection).
        methods:
            Explicit method names to wrap in addition to tagged ones.
        name:
            Name of the generated class; defaults to ``cls.__name__ +
            "__woven"``.
        """
        plan = self.plan_class(cls, methods=methods)
        wanted = tuple(sorted(set(methods or ())))
        cache_key = (cls, wanted, name)
        cached = self._woven.get(cache_key)
        if cached is not None:
            return cached

        overrides: dict = {
            entry.attr_name: self._make_method_wrapper(
                getattr(cls, entry.attr_name), entry.shadow, entry.advice
            )
            for entry in plan.entries
        }
        woven_name = name or f"{cls.__name__}__woven"
        woven = type(woven_name, (cls,), overrides)
        woven.__aop_woven__ = WovenInfo.from_plan(plan)
        woven.__aop_plan__ = plan
        woven.__aop_weaver__ = self
        woven.__module__ = cls.__module__
        woven.__doc__ = cls.__doc__
        self._woven[cache_key] = woven
        return woven

    # ------------------------------------------------------------------
    def weave_function(self, func: Callable, *, tags: Tuple[str, ...] = ()) -> Callable:
        """Return a woven wrapper around a free function (e.g. ``main``)."""
        shadow = shadow_of(func, kind=JoinPointKind.EXECUTION, extra_tags=tags)
        advice = self.matching_advice(shadow)
        wrapper = self._make_function_wrapper(func, shadow, advice)
        info = WovenInfo()
        info.record(shadow, advice)
        wrapper.__aop_woven__ = info
        wrapper.__aop_weaver__ = self
        return wrapper

    # ------------------------------------------------------------------
    # wrapper construction
    # ------------------------------------------------------------------
    def _make_method_wrapper(
        self, func: Callable, shadow: JoinPointShadow, advice: Sequence[Advice]
    ) -> Callable:
        if not advice:
            wrapper = _make_nop_wrapper(func, is_method=True)
        else:
            dispatch = _build_dispatch(func, shadow, advice, is_method=True)

            @functools.wraps(func)
            def wrapper(self, *args: Any, **kwargs: Any) -> Any:
                return dispatch(self, args, kwargs)

        wrapper.__aop_shadow__ = shadow
        wrapper.__aop_advice_names__ = tuple(a.name for a in advice)
        return wrapper

    def _make_function_wrapper(
        self, func: Callable, shadow: JoinPointShadow, advice: Sequence[Advice]
    ) -> Callable:
        if not advice:
            wrapper = _make_nop_wrapper(func, is_method=False)
        else:
            dispatch = _build_dispatch(func, shadow, advice, is_method=False)

            @functools.wraps(func)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                return dispatch(None, args, kwargs)

        wrapper.__aop_shadow__ = shadow
        wrapper.__aop_advice_names__ = tuple(a.name for a in advice)
        return wrapper


# ----------------------------------------------------------------------
# dispatch machinery shared by method and function wrappers
# ----------------------------------------------------------------------

def _make_nop_wrapper(func: Callable, *, is_method: bool) -> Callable:
    """Minimal pass-through shell for shadows with no matching advice.

    This is the fast path behind the paper's "Platform NOP" numbers: the
    wrapper exists (the site *was* transcompiled) but no join point
    object or advice chain is materialised, so the residual overhead is
    one extra Python call frame.
    """
    if is_method:

        @functools.wraps(func)
        def wrapper(self, *args: Any, **kwargs: Any) -> Any:
            return func(self, *args, **kwargs)

    else:

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            return func(*args, **kwargs)

    wrapper.__aop_fastpath__ = True
    return wrapper


def _build_dispatch(
    func: Callable,
    shadow: JoinPointShadow,
    advice: Sequence[Advice],
    *,
    is_method: bool,
) -> Callable[[Any, tuple, dict], Any]:
    """Build the closure that executes the advice chain for one shadow."""
    befores = [a for a in advice if a.kind is AdviceKind.BEFORE]
    arounds = [a for a in advice if a.kind is AdviceKind.AROUND]
    after_ret = [a for a in advice if a.kind is AdviceKind.AFTER_RETURNING]
    after_throw = [a for a in advice if a.kind is AdviceKind.AFTER_THROWING]
    afters = [a for a in advice if a.kind is AdviceKind.AFTER]

    def dispatch(target: Any, args: tuple, kwargs: dict) -> Any:
        jp = JoinPoint(shadow, target, args, kwargs)

        def call_body(*call_args: Any, **call_kwargs: Any) -> Any:
            if is_method:
                return func(target, *call_args, **call_kwargs)
            return func(*call_args, **call_kwargs)

        # Build the around chain from the innermost (original body) out.
        proceed = call_body
        for adv in reversed(arounds):
            proceed = _wrap_around(adv, jp, proceed)

        for adv in befores:
            adv.invoke(jp)
        try:
            jp._proceed = proceed
            result = proceed(*jp.args, **jp.kwargs)
            jp.result = result
        except BaseException as exc:
            jp.exception = exc
            for adv in after_throw:
                adv.invoke(jp)
            for adv in afters:
                adv.invoke(jp)
            raise
        for adv in after_ret:
            adv.invoke(jp)
        for adv in afters:
            adv.invoke(jp)
        return jp.result

    return dispatch


def _wrap_around(adv: Advice, jp: JoinPoint, inner: Callable) -> Callable:
    """Wrap ``inner`` with one level of around advice.

    Argument rebinding semantics (pinned by ``tests/unit/test_weaver.py``):
    calling ``proceed(new_args)`` rebinds ``jp.args``/``jp.kwargs`` for
    the remainder of the activation, so inner around advice and the
    ``after*`` advice observe the rebound arguments — matching
    AspectC++, where mutating ``tjp->arg<i>()`` changes the arguments
    the join point reports from then on.  Advice that must not perturb
    the shared join point state should use ``jp.continuation()``.
    """

    def around_call(*args: Any, **kwargs: Any) -> Any:
        if args or kwargs:
            jp.args = args
            jp.kwargs = kwargs
        saved = jp._proceed
        jp._proceed = inner
        try:
            return adv.invoke(jp)
        finally:
            jp._proceed = saved

    return around_call
