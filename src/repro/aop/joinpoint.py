"""Join points for the JoinPoint Model (JPM).

The paper's platform relies on AspectC++'s JoinPoint Model: *pointcuts*
(pattern matches over the static program structure) select *join point
shadows*; at run time, every activation of a shadow produces a *join
point*, and *advice* bodies receive the join point so they can inspect
and alter the intercepted call.

In this Python reproduction:

* A :class:`JoinPointShadow` is the static description of a weavable
  site — a function or method, identified by module, class, name and a
  set of *annotation tags* (the equivalent of the paper's "Pointcuts
  defined for the classes in the annotation library and memory
  library", §III-B5).
* A :class:`JoinPoint` is the dynamic record passed to advice.  For
  ``around`` advice it also exposes :meth:`JoinPoint.proceed`, which
  invokes the next advice in the chain (or the original body).

AspectC++ distinguishes ``call`` and ``execution`` join points.  Both
are supported here through :class:`JoinPointKind`; because Python has
no separate call sites after weaving, ``call`` join points are realised
by weaving wrapper *proxies* around references obtained through the
platform registry, while ``execution`` join points wrap the function
body itself.  The platform's own aspect modules only need ``execution``
join points (entry point, ``Initialize``/``Processing``/``Finalize``,
``Env.get_blocks``, ``Env.refresh``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple


class JoinPointKind(enum.Enum):
    """Kind of join point, mirroring AspectC++'s ``call``/``execution``."""

    CALL = "call"
    EXECUTION = "execution"


@dataclass(frozen=True)
class JoinPointShadow:
    """Static description of a weavable program point.

    Attributes
    ----------
    kind:
        ``CALL`` or ``EXECUTION``.
    module:
        Dotted module name in which the callable is defined.
    cls:
        Name of the class owning the method, or ``None`` for a free
        function (e.g. the program entry point).
    name:
        Unqualified function/method name.
    tags:
        Annotation tags attached by the platform libraries (see
        :func:`repro.aop.registry.annotate`).  Pointcuts can match tags
        to avoid accidental join points in user code.
    signature:
        Human-readable signature used in diagnostics.
    """

    kind: JoinPointKind
    module: str
    cls: Optional[str]
    name: str
    tags: frozenset = field(default_factory=frozenset)
    signature: str = ""

    @property
    def qualname(self) -> str:
        """Return ``Class.method`` or plain ``function`` name."""
        if self.cls:
            return f"{self.cls}.{self.name}"
        return self.name

    @property
    def full_name(self) -> str:
        """Return ``module.Class.method`` (or ``module.function``)."""
        return f"{self.module}.{self.qualname}"

    def with_kind(self, kind: JoinPointKind) -> "JoinPointShadow":
        """Return a copy of this shadow with a different kind."""
        return JoinPointShadow(
            kind=kind,
            module=self.module,
            cls=self.cls,
            name=self.name,
            tags=self.tags,
            signature=self.signature,
        )


class JoinPoint:
    """Dynamic join point handed to advice bodies.

    A :class:`JoinPoint` wraps one activation of a woven callable.  It
    carries the target object (``self`` for methods, ``None`` for free
    functions), the positional and keyword arguments, and — once the
    wrapped body or an ``around`` advice has run — the result or the
    exception raised.

    ``around`` advice receives a join point whose :meth:`proceed`
    method continues the advice chain.  Calling :meth:`proceed` more
    than once re-executes the remainder of the chain, which matches
    AspectC++'s ``tjp->proceed()`` semantics and is occasionally useful
    (e.g. the platform uses it to re-run a step whose ``refresh``
    failed).
    """

    __slots__ = (
        "shadow",
        "target",
        "args",
        "kwargs",
        "result",
        "exception",
        "_proceed",
        "context",
    )

    def __init__(
        self,
        shadow: JoinPointShadow,
        target: Any,
        args: Tuple[Any, ...],
        kwargs: dict,
        proceed: Optional[Callable[..., Any]] = None,
    ) -> None:
        self.shadow = shadow
        self.target = target
        self.args = args
        self.kwargs = kwargs
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._proceed = proceed
        #: Scratch dict shared by all advice applied to one activation.
        #: Aspect modules use it to pass data between their before/after
        #: advice without polluting the target object.
        self.context: dict = {}

    # ------------------------------------------------------------------
    def proceed(self, *args: Any, **kwargs: Any) -> Any:
        """Run the rest of the advice chain (and ultimately the body).

        If positional or keyword arguments are supplied they replace
        the intercepted ones for the remainder of the chain; otherwise
        the original arguments are forwarded unchanged.
        """
        if self._proceed is None:
            raise RuntimeError(
                f"proceed() is not available for {self.shadow.full_name}: "
                "only 'around' advice may proceed"
            )
        if args or kwargs:
            self.args = args
            self.kwargs = kwargs
        self.result = self._proceed(*self.args, **self.kwargs)
        return self.result

    def continuation(self) -> Callable[..., Any]:
        """Return the rest of the advice chain as a plain callable.

        ``around`` advice that needs to execute the continuation on
        *other threads or tasks* (e.g. the distributed-memory aspect
        running the program once per rank) should use this instead of
        :meth:`proceed`, because the returned callable does not mutate
        this join point's shared ``args``/``result`` fields.
        """
        if self._proceed is None:
            raise RuntimeError(
                f"continuation() is not available for {self.shadow.full_name}: "
                "only 'around' advice may proceed"
            )
        return self._proceed

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JoinPoint({self.shadow.kind.value} {self.shadow.full_name}, "
            f"args={self.args!r}, kwargs={self.kwargs!r})"
        )


def shadow_of(
    func: Callable,
    *,
    kind: JoinPointKind = JoinPointKind.EXECUTION,
    cls: Optional[type] = None,
    extra_tags: Tuple[str, ...] = (),
) -> JoinPointShadow:
    """Build a :class:`JoinPointShadow` describing ``func``.

    Tags previously attached via :func:`repro.aop.registry.annotate`
    are collected from the function itself and from the owning class
    (including base classes), so that a pointcut written against the
    platform's virtual class matches all user subclasses, exactly as
    the paper prescribes ("inherits classes of them to avoid the
    [unintended join point] problem", §III-B5).
    """
    tags = set(extra_tags)
    tags.update(getattr(func, "__aop_tags__", ()))
    cls_name = None
    module = getattr(func, "__module__", "<unknown>") or "<unknown>"
    if cls is not None:
        cls_name = cls.__name__
        for base in cls.__mro__:
            tags.update(getattr(base, "__aop_tags__", ()))
            base_func = base.__dict__.get(func.__name__)
            if base_func is not None:
                tags.update(getattr(base_func, "__aop_tags__", ()))
    try:
        import inspect

        signature = str(inspect.signature(func))
    except (TypeError, ValueError):  # pragma: no cover - builtins
        signature = "(...)"
    return JoinPointShadow(
        kind=kind,
        module=module,
        cls=cls_name,
        name=func.__name__,
        tags=frozenset(tags),
        signature=signature,
    )
