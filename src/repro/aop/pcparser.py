"""Textual pointcut language: tokenizer, parser and compiler.

The paper's platform writes its pointcuts as AspectC++ *match
expressions* — strings such as ``execution("% Env::refresh(...)") &&
within("memory")`` — which is precisely what makes the aspect language
separable from the host language and approachable for non-expert HPC
users (the ANTAREX DSL makes the same argument).  This module gives the
Python reproduction the same string-level surface:

    >>> from repro.aop import parse_pointcut
    >>> pc = parse_pointcut("execution(Env.refresh) && tagged('kernel')")

Grammar (``!`` binds tighter than ``&&``, which binds tighter than
``||``; parentheses group)::

    expr      := or
    or        := and ( '||' and )*
    and       := unary ( '&&' unary )*
    unary     := '!' unary | atom
    atom      := '(' expr ')' | primitive
    primitive := NAME '(' [ arg ( ',' arg )* ] ')'
    arg       := STRING | BAREWORD

Arguments may be quoted (``'…'`` or ``"…"``) or bare words
(``execution(Env.refresh)``); bare words may contain the usual glob
metacharacters.  The primitives compile 1:1 onto the combinators in
:mod:`repro.aop.pointcut`:

===================  ====================================================
``execution()``      any *execution* join point (``execution(pat)`` with
                     a pattern restricts by qualified name)
``call()``           any *call* join point (pattern form as above)
``named(pat)``       either kind, qualified name matches ``pat``
``within(pat)``      defining module matches ``pat``
``tagged(p, …)``     every pattern matches some annotation tag (full tag
                     or its last dotted component, globs allowed)
``subtype_of(Name)`` target class inherits a class named ``Name``
``ref(name)``        a named platform pointcut from
                     :func:`repro.aop.registry.platform_pointcuts`
``any()``            every join point
``none()``           no join point
===================  ====================================================

Syntax errors raise :class:`~repro.aop.errors.PointcutSyntaxError`
carrying the source text and the exact 0-based offset of the problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from .errors import AopError, PointcutSyntaxError
from . import pointcut as _pc
from .pointcut import Pointcut

__all__ = ["parse_pointcut", "as_pointcut", "PRIMITIVES"]


# ----------------------------------------------------------------------
# tokenizer
# ----------------------------------------------------------------------

_PUNCT = {"(": "LPAREN", ")": "RPAREN", ",": "COMMA", "!": "NOT"}
#: Characters that terminate a bare-word argument.
_BARE_STOP = set("(),!&|'\"")


@dataclass(frozen=True)
class Token:
    kind: str  # AND OR NOT LPAREN RPAREN COMMA NAME STRING BAREWORD EOF
    value: str
    pos: int


def _tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, i))
            i += 1
            continue
        if ch in "&|":
            if i + 1 < n and text[i + 1] == ch:
                tokens.append(Token("AND" if ch == "&" else "OR", ch * 2, i))
                i += 2
                continue
            raise PointcutSyntaxError(
                f"single {ch!r} is not an operator; use {ch * 2!r}",
                text=text,
                position=i,
            )
        if ch in "'\"":
            end = text.find(ch, i + 1)
            if end < 0:
                raise PointcutSyntaxError(
                    "unterminated string literal", text=text, position=i
                )
            tokens.append(Token("STRING", text[i + 1 : end], i))
            i = end + 1
            continue
        # NAME (primitive) or BAREWORD (unquoted argument) — disambiguated
        # by the parser from context; lexically they are the same run of
        # characters up to whitespace/punctuation.
        j = i
        while j < n and not text[j].isspace() and text[j] not in _BARE_STOP:
            j += 1
        if j == i:
            raise PointcutSyntaxError(
                f"unexpected character {ch!r}", text=text, position=i
            )
        tokens.append(Token("WORD", text[i:j], i))
        i = j
    tokens.append(Token("EOF", "", n))
    return tokens


# ----------------------------------------------------------------------
# primitive compilers
# ----------------------------------------------------------------------

def _compile_execution(args: List[str]) -> Pointcut:
    if not args:
        return _pc.any_execution()
    if len(args) == 1:
        return _pc.execution(args[0])
    raise ValueError("execution() takes at most one pattern")


def _compile_call(args: List[str]) -> Pointcut:
    if not args:
        return _pc.any_call()
    if len(args) == 1:
        return _pc.call(args[0])
    raise ValueError("call() takes at most one pattern")


def _one_arg(fn: Callable[[str], Pointcut], name: str) -> Callable[[List[str]], Pointcut]:
    def compile_(args: List[str]) -> Pointcut:
        if len(args) != 1:
            raise ValueError(f"{name}() takes exactly one argument")
        return fn(args[0])

    return compile_


def _no_arg(fn: Callable[[], Pointcut], name: str) -> Callable[[List[str]], Pointcut]:
    def compile_(args: List[str]) -> Pointcut:
        if args:
            raise ValueError(f"{name}() takes no arguments")
        return fn()

    return compile_


_REGISTRY = None


def _compile_ref(args: List[str]) -> Pointcut:
    if len(args) != 1:
        raise ValueError("ref() takes exactly one pointcut name")
    global _REGISTRY
    if _REGISTRY is None:
        from .registry import platform_pointcuts

        _REGISTRY = platform_pointcuts()
    try:
        return _REGISTRY.get(args[0])
    except AopError as exc:
        raise ValueError(str(exc)) from None


#: Primitive name → compiler taking the (string) argument list.
PRIMITIVES = {
    "execution": _compile_execution,
    "call": _compile_call,
    "named": _one_arg(_pc.named, "named"),
    "within": _one_arg(_pc.within, "within"),
    "tagged": lambda args: _pc.tagged_like(*args),
    "subtype_of": _one_arg(_pc.subtype_named, "subtype_of"),
    "ref": _compile_ref,
    "any": _no_arg(_pc.any_joinpoint, "any"),
    "none": _no_arg(_pc.no_joinpoint, "none"),
}


# ----------------------------------------------------------------------
# recursive-descent parser
# ----------------------------------------------------------------------

class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers --------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def expect(self, kind: str, what: str) -> Token:
        if self.current.kind != kind:
            self.fail(f"expected {what}")
        return self.advance()

    def fail(self, message: str, pos: Optional[int] = None) -> None:
        position = self.current.pos if pos is None else pos
        raise PointcutSyntaxError(message, text=self.text, position=position)

    # -- grammar --------------------------------------------------------
    def parse(self) -> Pointcut:
        if self.current.kind == "EOF":
            self.fail("empty pointcut expression")
        result = self.parse_or()
        if self.current.kind != "EOF":
            self.fail(f"unexpected {self.current.value!r} after expression")
        return result

    def parse_or(self) -> Pointcut:
        result = self.parse_and()
        while self.current.kind == "OR":
            self.advance()
            result = result | self.parse_and()
        return result

    def parse_and(self) -> Pointcut:
        result = self.parse_unary()
        while self.current.kind == "AND":
            self.advance()
            result = result & self.parse_unary()
        return result

    def parse_unary(self) -> Pointcut:
        if self.current.kind == "NOT":
            self.advance()
            return ~self.parse_unary()
        return self.parse_atom()

    def parse_atom(self) -> Pointcut:
        if self.current.kind == "LPAREN":
            self.advance()
            inner = self.parse_or()
            self.expect("RPAREN", "')'")
            return inner
        if self.current.kind == "WORD":
            return self.parse_primitive()
        self.fail(
            f"expected a pointcut primitive, got {self.current.value or 'end of input'!r}"
        )
        raise AssertionError("unreachable")  # pragma: no cover

    def parse_primitive(self) -> Pointcut:
        name_token = self.advance()
        name = name_token.value
        compiler = PRIMITIVES.get(name)
        if compiler is None:
            self.fail(
                f"unknown pointcut primitive {name!r} "
                f"(expected one of: {', '.join(sorted(PRIMITIVES))})",
                pos=name_token.pos,
            )
        if self.current.kind != "LPAREN":
            self.fail(f"expected '(' after {name!r}")
        self.advance()
        args: List[str] = []
        if self.current.kind != "RPAREN":
            args.append(self.parse_argument())
            while self.current.kind == "COMMA":
                self.advance()
                args.append(self.parse_argument())
        self.expect("RPAREN", "')'")
        try:
            return compiler(args)
        except (ValueError, PointcutSyntaxError) as exc:
            message = getattr(exc, "message", None) or str(exc)
            raise PointcutSyntaxError(
                message, text=self.text, position=name_token.pos
            ) from None

    def parse_argument(self) -> str:
        if self.current.kind in ("STRING", "WORD"):
            return self.advance().value
        self.fail("expected a pattern argument")
        raise AssertionError("unreachable")  # pragma: no cover


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------

def parse_pointcut(text: str) -> Pointcut:
    """Compile a textual pointcut expression into a :class:`Pointcut`.

    Raises :class:`PointcutSyntaxError` (with the source text and exact
    position) when ``text`` is not a valid expression.
    """
    if not isinstance(text, str):
        raise PointcutSyntaxError(
            f"pointcut expression must be a string, got {text!r}"
        )
    return _Parser(text).parse()


def as_pointcut(value: Union[Pointcut, str]) -> Pointcut:
    """Coerce ``value`` — a :class:`Pointcut` or a pointcut expression
    string — into a :class:`Pointcut`.

    This is the single coercion point the advice decorators,
    :class:`~repro.aop.advice.Advice` and any future API taking "a
    pointcut" funnel through.
    """
    if isinstance(value, Pointcut):
        return value
    if isinstance(value, str):
        return parse_pointcut(value)
    raise PointcutSyntaxError(
        f"expected a Pointcut or a pointcut expression string, got {value!r}"
    )
