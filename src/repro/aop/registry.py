"""Annotation tags and the named-pointcut registry.

The paper avoids unintended join points by only defining pointcuts for
classes in the platform's annotation and memory libraries (§III-B5).
This module provides the two mechanisms that make that possible in the
Python port:

* :func:`annotate` attaches *tags* to classes and functions.  Tags are
  inherited: a pointcut written against a tag on the platform's virtual
  class also selects end-user subclasses, because
  :func:`repro.aop.joinpoint.shadow_of` walks the MRO.
* :class:`PointcutRegistry` maps symbolic names (``"platform.entry"``,
  ``"memory.get_blocks"``, ...) to pointcut expressions.  Aspect
  modules reference these names instead of hard-coding patterns, which
  is what makes them reusable across DSLs — the DSL part can re-bind a
  name if it renames a method, without touching the aspect modules.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, TypeVar

from .errors import AopError
from .pointcut import Pointcut, tagged

__all__ = ["annotate", "tags_of", "PointcutRegistry", "platform_pointcuts"]

T = TypeVar("T")


def annotate(*tags: str) -> Callable[[T], T]:
    """Class/function decorator attaching AOP annotation tags.

    Examples
    --------
    >>> @annotate("platform.target")
    ... class MyTarget: ...
    """
    if not tags:
        raise AopError("annotate() requires at least one tag")

    def decorator(obj: T) -> T:
        existing = set(getattr(obj, "__aop_tags__", ()))
        existing.update(tags)
        try:
            obj.__aop_tags__ = frozenset(existing)
        except (AttributeError, TypeError) as exc:  # pragma: no cover
            raise AopError(f"cannot annotate {obj!r}: {exc}") from exc
        return obj

    return decorator


def tags_of(obj) -> frozenset:
    """Return all tags attached to ``obj`` (including inherited ones)."""
    tags = set(getattr(obj, "__aop_tags__", ()))
    for base in getattr(obj, "__mro__", ()):
        tags.update(getattr(base, "__aop_tags__", ()))
    return frozenset(tags)


class PointcutRegistry:
    """Mapping from symbolic pointcut names to :class:`Pointcut` objects."""

    def __init__(self) -> None:
        self._pointcuts: Dict[str, Pointcut] = {}

    def define(self, name: str, pointcut: Pointcut, *, override: bool = False) -> None:
        """Register ``pointcut`` under ``name``.

        Redefinition is an error unless ``override=True``; accidental
        shadowing of a platform pointcut by a DSL would otherwise be a
        silent source of missing advice.
        """
        if name in self._pointcuts and not override:
            raise AopError(f"pointcut {name!r} is already defined")
        self._pointcuts[name] = pointcut

    def get(self, name: str) -> Pointcut:
        try:
            return self._pointcuts[name]
        except KeyError:
            raise AopError(f"unknown named pointcut: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._pointcuts

    def names(self) -> Iterable[str]:
        return sorted(self._pointcuts)


#: Tags used by the platform libraries.  DSL and App code never needs to
#: use these directly; they inherit them from the platform base classes.
TAG_ENTRY = "platform.entry"
TAG_TARGET = "platform.target"
TAG_INITIALIZE = "platform.initialize"
TAG_PROCESSING = "platform.processing"
TAG_FINALIZE = "platform.finalize"
TAG_GET_BLOCKS = "memory.get_blocks"
TAG_REFRESH = "memory.refresh"
TAG_KERNEL = "platform.kernel"


def platform_pointcuts() -> PointcutRegistry:
    """Return the registry of named pointcuts the aspect modules rely on.

    These correspond one-to-one to the pointcuts the paper lists for
    its three advice groups (§III-B7):

    * AspectType I  — ``platform.entry``, ``platform.initialize``,
      ``platform.processing``, ``platform.finalize``;
    * AspectType II — ``memory.get_blocks``;
    * AspectType III — ``memory.refresh``.
    """
    registry = PointcutRegistry()
    registry.define("platform.entry", tagged(TAG_ENTRY))
    registry.define("platform.initialize", tagged(TAG_INITIALIZE))
    registry.define("platform.processing", tagged(TAG_PROCESSING))
    registry.define("platform.finalize", tagged(TAG_FINALIZE))
    registry.define("platform.kernel", tagged(TAG_KERNEL))
    registry.define("memory.get_blocks", tagged(TAG_GET_BLOCKS))
    registry.define("memory.refresh", tagged(TAG_REFRESH))
    return registry
