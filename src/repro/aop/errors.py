"""Exception hierarchy for the AOP (aspect weaving) engine.

The weaving engine mirrors AspectC++'s behaviour of failing loudly at
weave time whenever an aspect is malformed (bad pointcut expression,
advice with the wrong signature, ...) rather than silently producing a
program with missing advice.
"""

from __future__ import annotations

from typing import Optional


class AopError(Exception):
    """Base class for all errors raised by :mod:`repro.aop`."""


class PointcutSyntaxError(AopError):
    """A pointcut expression could not be parsed.

    When raised by the textual pointcut parser
    (:mod:`repro.aop.pcparser`) the error carries the offending source
    ``text`` and the 0-based ``position`` of the error, and renders a
    caret diagnostic::

        unknown pointcut primitive 'exeuction'
          exeuction(Env.refresh) && tagged('kernel')
          ^

    Errors raised by the pointcut *combinators* (bad pattern strings)
    have ``text``/``position`` set to ``None``.
    """

    def __init__(
        self,
        message: str,
        *,
        text: Optional[str] = None,
        position: Optional[int] = None,
    ) -> None:
        self.message = message
        self.text = text
        self.position = position
        rendered = message
        if text is not None and position is not None:
            rendered = (
                f"{message} (at position {position})\n"
                f"  {text}\n"
                f"  {' ' * position}^"
            )
        super().__init__(rendered)


class WeaveError(AopError):
    """A weave operation could not be completed."""


class WeaveWarning(UserWarning):
    """A weave completed but probably not as intended (e.g. no join
    point matched any aspect's pointcuts — often a pointcut typo)."""


class AdviceSignatureError(AopError):
    """An advice body does not accept the required parameters."""


class AspectDefinitionError(AopError):
    """An :class:`~repro.aop.aspect.Aspect` subclass is malformed."""
