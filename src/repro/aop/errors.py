"""Exception hierarchy for the AOP (aspect weaving) engine.

The weaving engine mirrors AspectC++'s behaviour of failing loudly at
weave time whenever an aspect is malformed (bad pointcut expression,
advice with the wrong signature, ...) rather than silently producing a
program with missing advice.
"""

from __future__ import annotations


class AopError(Exception):
    """Base class for all errors raised by :mod:`repro.aop`."""


class PointcutSyntaxError(AopError):
    """A pointcut expression could not be parsed."""


class WeaveError(AopError):
    """A weave operation could not be completed."""


class AdviceSignatureError(AopError):
    """An advice body does not accept the required parameters."""


class AspectDefinitionError(AopError):
    """An :class:`~repro.aop.aspect.Aspect` subclass is malformed."""
