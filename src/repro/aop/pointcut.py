"""Pointcut expressions.

A *pointcut* is a predicate over :class:`~repro.aop.joinpoint.JoinPointShadow`
objects.  Pointcuts form a small boolean algebra (``&``, ``|``, ``~``) so
aspect modules can compose platform-provided named pointcuts, as the
paper's Aspect Module Library does for its three advice groups
(AspectType I/II/III, §III-B7).

Two families of primitive pointcuts are provided:

* **structural** — :func:`execution`, :func:`call`, :func:`within`,
  :func:`named`: match the module/class/function name with shell-style
  wildcards (AspectC++ uses a very similar match expression syntax,
  e.g. ``"% …::Processing(...)"``).
* **semantic** — :func:`tagged`, :func:`subtype_of`: match the
  annotation tags the platform libraries attach to their classes, which
  is how the platform avoids unintended join points in end-user code.
"""

from __future__ import annotations

import fnmatch
from typing import Callable, Iterable

from .errors import PointcutSyntaxError
from .joinpoint import JoinPointKind, JoinPointShadow

__all__ = [
    "Pointcut",
    "execution",
    "call",
    "any_execution",
    "any_call",
    "within",
    "named",
    "tagged",
    "tagged_like",
    "subtype_of",
    "subtype_named",
    "any_joinpoint",
    "no_joinpoint",
]


class Pointcut:
    """Predicate over join point shadows, composable with ``& | ~``."""

    def __init__(self, predicate: Callable[[JoinPointShadow], bool], description: str) -> None:
        self._predicate = predicate
        self.description = description

    # ------------------------------------------------------------------
    def matches(self, shadow: JoinPointShadow) -> bool:
        """Return True when ``shadow`` is selected by this pointcut."""
        return bool(self._predicate(shadow))

    __call__ = matches

    # -- boolean algebra ------------------------------------------------
    def __and__(self, other: "Pointcut") -> "Pointcut":
        return Pointcut(
            lambda s: self.matches(s) and other.matches(s),
            f"({self.description} && {other.description})",
        )

    def __or__(self, other: "Pointcut") -> "Pointcut":
        return Pointcut(
            lambda s: self.matches(s) or other.matches(s),
            f"({self.description} || {other.description})",
        )

    def __invert__(self) -> "Pointcut":
        return Pointcut(lambda s: not self.matches(s), f"!{self.description}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pointcut<{self.description}>"


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _parse_pattern(pattern: str) -> tuple[str, str]:
    """Split ``"Class.method"`` / ``"method"`` patterns.

    Returns ``(class_pattern, name_pattern)`` where either component may
    be a wildcard.  An empty pattern is a syntax error — AspectC++ also
    rejects empty match expressions.
    """
    if not isinstance(pattern, str) or not pattern.strip():
        raise PointcutSyntaxError(f"empty or non-string pointcut pattern: {pattern!r}")
    pattern = pattern.strip()
    if "." in pattern:
        cls_pat, _, name_pat = pattern.rpartition(".")
    else:
        cls_pat, name_pat = "*", pattern
    if not name_pat:
        raise PointcutSyntaxError(f"pattern has empty member name: {pattern!r}")
    return cls_pat or "*", name_pat


def _match_qualname(shadow: JoinPointShadow, cls_pat: str, name_pat: str) -> bool:
    cls_name = shadow.cls if shadow.cls is not None else ""
    return fnmatch.fnmatchcase(cls_name, cls_pat) and fnmatch.fnmatchcase(
        shadow.name, name_pat
    ) or (cls_pat == "*" and fnmatch.fnmatchcase(shadow.name, name_pat))


# ----------------------------------------------------------------------
# primitive pointcuts
# ----------------------------------------------------------------------

def execution(pattern: str) -> Pointcut:
    """Match *execution* join points whose qualified name matches ``pattern``.

    ``pattern`` is ``"ClassName.method"`` with shell wildcards in either
    component, or a bare ``"function"`` name (class part treated as
    ``*``).
    """
    cls_pat, name_pat = _parse_pattern(pattern)
    return Pointcut(
        lambda s: s.kind is JoinPointKind.EXECUTION and _match_qualname(s, cls_pat, name_pat),
        f"execution({pattern})",
    )


def call(pattern: str) -> Pointcut:
    """Match *call* join points whose qualified name matches ``pattern``."""
    cls_pat, name_pat = _parse_pattern(pattern)
    return Pointcut(
        lambda s: s.kind is JoinPointKind.CALL and _match_qualname(s, cls_pat, name_pat),
        f"call({pattern})",
    )


def any_execution() -> Pointcut:
    """Match every *execution* join point, regardless of name.

    This is what a bare ``execution()`` in the textual pointcut language
    compiles to (AspectC++'s ``execution("% ...::%(...)")``).
    """
    return Pointcut(lambda s: s.kind is JoinPointKind.EXECUTION, "execution()")


def any_call() -> Pointcut:
    """Match every *call* join point, regardless of name."""
    return Pointcut(lambda s: s.kind is JoinPointKind.CALL, "call()")


def named(pattern: str) -> Pointcut:
    """Match join points of *either* kind whose qualified name matches."""
    cls_pat, name_pat = _parse_pattern(pattern)
    return Pointcut(
        lambda s: _match_qualname(s, cls_pat, name_pat),
        f"named({pattern})",
    )


def within(module_pattern: str) -> Pointcut:
    """Match join points defined inside modules matching ``module_pattern``."""
    if not module_pattern:
        raise PointcutSyntaxError("within() requires a non-empty module pattern")
    return Pointcut(
        lambda s: fnmatch.fnmatchcase(s.module, module_pattern),
        f"within({module_pattern})",
    )


def tagged(*tags: str) -> Pointcut:
    """Match join points carrying *all* of the given annotation tags.

    Annotation tags are attached by the platform's annotation/memory
    libraries via :func:`repro.aop.registry.annotate`; this is the main
    mechanism the paper uses to ensure aspects only apply to
    platform-defined join points (§III-B5).
    """
    if not tags:
        raise PointcutSyntaxError("tagged() requires at least one tag")
    tagset = frozenset(tags)
    return Pointcut(
        lambda s: tagset.issubset(s.tags),
        f"tagged({', '.join(sorted(tagset))})",
    )


def tagged_like(*patterns: str) -> Pointcut:
    """Match join points where every pattern matches *some* annotation tag.

    Unlike :func:`tagged` (exact tag membership), each pattern here is
    matched with shell-style wildcards against the full tag **or** its
    last dotted component, so the textual pointcut language can write
    ``tagged('kernel')`` for the platform tag ``platform.kernel`` the
    way AspectC++ match expressions elide namespaces.
    """
    if not patterns:
        raise PointcutSyntaxError("tagged() requires at least one tag pattern")

    def tag_hit(pattern: str, tags: frozenset) -> bool:
        for tag in tags:
            if fnmatch.fnmatchcase(tag, pattern):
                return True
            if fnmatch.fnmatchcase(tag.rpartition(".")[2], pattern):
                return True
        return False

    return Pointcut(
        lambda s: all(tag_hit(p, s.tags) for p in patterns),
        f"tagged({', '.join(patterns)})",
    )


def subtype_named(class_pattern: str) -> Pointcut:
    """Match join points on classes whose MRO contains a class matching
    ``class_pattern`` (by name, shell wildcards allowed).

    The name-based counterpart of :func:`subtype_of` used by the textual
    pointcut language (``subtype_of("DslTarget")``), matching the
    ``class:<Name>`` tags the weaver derives from the target's MRO.
    """
    if not class_pattern:
        raise PointcutSyntaxError("subtype_of() requires a non-empty class name")
    return Pointcut(
        lambda s: any(
            tag.startswith("class:")
            and fnmatch.fnmatchcase(tag[len("class:"):], class_pattern)
            for tag in s.tags
        ),
        f"subtype_of({class_pattern})",
    )


def subtype_of(base: type) -> Pointcut:
    """Match join points on classes that inherit from ``base``.

    The match is by class *name chain*, recorded as tags of the form
    ``class:<Name>`` added by the weaver when it inspects the target's
    MRO — this keeps shadows picklable and keeps the pointcut a pure
    function of the shadow.
    """
    tag = f"class:{base.__name__}"
    return Pointcut(lambda s: tag in s.tags, f"subtype_of({base.__name__})")


def any_joinpoint() -> Pointcut:
    """Pointcut matching every join point (useful for tracing aspects)."""
    return Pointcut(lambda s: True, "any")


def no_joinpoint() -> Pointcut:
    """Pointcut matching nothing (identity for ``|``)."""
    return Pointcut(lambda s: False, "none")


def union(pointcuts: Iterable[Pointcut]) -> Pointcut:
    """Return the union of an iterable of pointcuts."""
    result = no_joinpoint()
    for pc in pointcuts:
        result = result | pc
    return result
