"""End-user application: Jacobi solver on the unstructured-grid DSL.

Same arithmetic as :class:`~repro.apps.jacobi_sgrid.JacobiSGrid`, but
the neighbours of each cell are reached through the Global Addresses
stored with the cell data (indirect references), as the paper's USGrid
benchmark does.  The memory-access pattern depends on the DSL layout
(CaseC: consecutive / CaseR: random), not on this application code —
"CaseC and CaseR have the same calculation, differing only in memory
access".

The default ``"vectorized"`` kernel bulk-reads the neighbour table
through :meth:`~repro.dsl.base.BlockKernel.gather_global` (compiled
into a per-block address plan after warm-up — the indirection is
resolved once, not once per iteration); ``kernel="scalar"`` selects the
per-cell reference loop.
"""

from __future__ import annotations

from typing import Optional

from ..dsl.usgrid import USGrid2DTarget

__all__ = ["JacobiUSGrid"]


class JacobiUSGrid(USGrid2DTarget):
    """Jacobi relaxation of the Laplace equation on a 2-D unstructured grid."""

    def __init__(self, config: Optional[dict] = None) -> None:
        super().__init__(config)
        self.alpha: float = float(self.config.get("alpha", 0.2))
        self.beta: float = float(self.config.get("beta", 0.2))

    def processing(self) -> None:
        self.warm_up(self.kernel)
        for _ in range(self.loops):
            self.run(self.kernel)

    def kernel(self, warmup: bool) -> bool:
        if self.vectorized:
            return self.kernel_vectorized(warmup)
        return self.kernel_scalar(warmup)

    def kernel_vectorized(self, warmup: bool) -> bool:
        """Bulk indirect gather: one address plan per Block per table."""
        alpha, beta = self.alpha, self.beta
        for _block, k in self.block_kernels(warmup):
            e = k.gather([(0,)])[0]
            # (cells, 4) neighbour values in west/east/north/south column
            # order; the table is static, so name it for plan caching.
            neigh = k.gather_global(k.static_field("neighbors"), key="neighbors")
            ans = alpha * e + beta * (neigh[:, 1] + neigh[:, 0] + neigh[:, 3] + neigh[:, 2])
            k.scatter(ans)
        return self.refresh(warmup)

    def kernel_scalar(self, warmup: bool) -> bool:
        """Per-cell reference kernel following the stored Global Addresses."""
        alpha, beta = self.alpha, self.beta
        for block, k in self.block_kernels(warmup):
            neighbours = k.static_field("neighbors")
            count = block.shape[0]
            for offset in range(count):
                e = k.get_direct((offset,))
                west, east, north, south = neighbours[offset]
                # Neighbour cells live at arbitrary global addresses; whether
                # they are in this Block is unknown statically, so the inside
                # hint is always False (this is what makes MMAT matter here).
                e_w = k.get_global((west,))
                e_e = k.get_global((east,))
                e_n = k.get_global((north,))
                e_s = k.get_global((south,))
                ans = alpha * e + beta * (e_e + e_w + e_s + e_n)
                k.set((offset,), ans)
        return self.refresh(warmup)
