"""End-user application: Jacobi solver on the structured-grid DSL.

This is the "App Part" code — the Python counterpart of the paper's
Listing 1.  The end user inherits the DSL's virtual class
(:class:`~repro.dsl.sgrid.SGrid2DTarget`), implements ``processing``
(warm-up once, then run the kernel ``loops`` times) and the kernel
itself, which sweeps every Block the platform hands it and updates each
point from its four neighbours (five-point Laplace stencil, Jacobi
iteration).

Two kernel implementations are provided and selected by the ``kernel``
config key: the default ``"vectorized"`` kernel expresses the sweep
through the batched kernel API (one :meth:`~repro.dsl.base.BlockKernel.sweep`
per Block — compiled into an access plan after warm-up), while
``"scalar"`` keeps the paper's per-element Listing 1 loop as the
reference implementation.  Both produce identical fields.
"""

from __future__ import annotations

from typing import Optional

from ..dsl.sgrid import SGrid2DTarget

__all__ = ["JacobiSGrid"]

#: Five-point stencil: centre, north, west, east, south (matching the
#: read order of the scalar kernel below).
STENCIL = ((0, 0), (0, -1), (-1, 0), (1, 0), (0, 1))


class JacobiSGrid(SGrid2DTarget):
    """Jacobi relaxation of the Laplace equation on a 2-D structured grid.

    Extra configuration keys on top of :class:`SGrid2DTarget`:

    ``alpha`` / ``beta``
        Stencil coefficients (default 0.2 each, i.e. the standard
        five-point average when ``alpha + 4*beta == 1``).
    ``kernel``
        ``"vectorized"`` (default) or ``"scalar"`` (reference path).
    """

    def __init__(self, config: Optional[dict] = None) -> None:
        super().__init__(config)
        self.alpha: float = float(self.config.get("alpha", 0.2))
        self.beta: float = float(self.config.get("beta", 0.2))

    # -- Listing 1's Processing ------------------------------------------------
    def processing(self) -> None:
        self.warm_up(self.kernel)
        for _ in range(self.loops):
            self.run(self.kernel)

    # -- Listing 1's Kernel<isWarmUp> -------------------------------------------
    def kernel(self, warmup: bool) -> bool:
        if self.vectorized:
            return self.kernel_vectorized(warmup)
        return self.kernel_scalar(warmup)

    def kernel_vectorized(self, warmup: bool) -> bool:
        """Whole-block sweeps through the batched kernel API."""
        alpha, beta = self.alpha, self.beta
        for _block, k in self.block_kernels(warmup):
            k.sweep(
                lambda e, e_n, e_w, e_e, e_s: alpha * e + beta * (e_e + e_w + e_s + e_n),
                STENCIL,
            )
        return self.refresh(warmup)

    def kernel_scalar(self, warmup: bool) -> bool:
        """Per-element reference kernel (the paper's Listing 1)."""
        alpha, beta = self.alpha, self.beta
        for block, k in self.block_kernels(warmup):
            size_x, size_y = k.shape
            for j in range(size_y):
                for i in range(size_x):
                    e_n = k.get((i, j - 1), j > 0)
                    e_w = k.get((i - 1, j), i > 0)
                    e = k.get_direct((i, j))
                    e_e = k.get((i + 1, j), i + 1 < size_x)
                    e_s = k.get((i, j + 1), j + 1 < size_y)
                    ans = alpha * e + beta * (e_e + e_w + e_s + e_n)
                    k.set((i, j), ans)
        return self.refresh(warmup)
