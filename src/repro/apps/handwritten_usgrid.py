"""Handwritten baseline for the unstructured-grid benchmark.

Serial double-buffered Jacobi over an explicit cell array with a
neighbour table, mirroring the USGrid DSL's data layout (including the
CaseC / CaseR cell-index permutations) but without any platform
machinery.  Out-of-domain neighbours are represented by addresses past
the interior cells whose value is the constant boundary value.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

__all__ = ["HandwrittenUSGrid"]


class HandwrittenUSGrid:
    """Serial Jacobi on an unstructured (indirectly addressed) grid."""

    def __init__(
        self,
        region: int = 64,
        *,
        case: str = "C",
        alpha: float = 0.2,
        beta: float = 0.2,
        loops: int = 4,
        boundary_value: float = 0.0,
        layout_seed: int = 20220329,
        init: Optional[Callable[[int, int], float]] = None,
    ) -> None:
        self.region = region
        self.case = case.upper()
        if self.case not in ("C", "R"):
            raise ValueError(f"case must be 'C' or 'R', got {case!r}")
        self.alpha = alpha
        self.beta = beta
        self.loops = loops
        self.boundary_value = boundary_value
        self.layout_seed = layout_seed
        self.cell_count = region * region
        self.boundary_cells = 2 * (region + 2) + 2 * region

        # Layout: grid position -> cell index (identical to the DSL's).
        rowmajor = np.arange(self.cell_count, dtype=np.int64).reshape(region, region)
        if self.case == "C":
            self.index_map = rowmajor
        else:
            rng = np.random.default_rng(layout_seed)
            self.index_map = rng.permutation(self.cell_count)[rowmajor]

        total = self.cell_count + self.boundary_cells
        self.values = np.zeros(total, dtype=np.float64)
        self.values[self.cell_count :] = boundary_value
        self.next_values = self.values.copy()
        self.neighbours = np.zeros((self.cell_count, 4), dtype=np.int64)
        self._build_neighbours()
        if init is not None:
            for y in range(region):
                for x in range(region):
                    self.values[self.index_map[x, y]] = init(x, y)
            self.next_values[...] = self.values

    # ------------------------------------------------------------------
    def _boundary_address(self, x: int, y: int) -> int:
        n = self.region
        if y < 0:
            k = x + 1
        elif y >= n:
            k = (n + 2) + x + 1
        elif x < 0:
            k = 2 * (n + 2) + y
        else:
            k = 2 * (n + 2) + n + y
        return self.cell_count + k

    def _build_neighbours(self) -> None:
        n = self.region

        def address(x: int, y: int) -> int:
            if 0 <= x < n and 0 <= y < n:
                return int(self.index_map[x, y])
            return self._boundary_address(x, y)

        for y in range(n):
            for x in range(n):
                cell = int(self.index_map[x, y])
                self.neighbours[cell] = (
                    address(x - 1, y),
                    address(x + 1, y),
                    address(x, y - 1),
                    address(x, y + 1),
                )

    # ------------------------------------------------------------------
    def run(self) -> np.ndarray:
        """Execute ``loops`` Jacobi sweeps; return the field on the (x, y) grid."""
        alpha, beta = self.alpha, self.beta
        values = self.values
        next_values = self.next_values
        neighbours = self.neighbours
        for _ in range(self.loops):
            for cell in range(self.cell_count):
                w, e, n_, s = neighbours[cell]
                next_values[cell] = alpha * values[cell] + beta * (
                    values[w] + values[e] + values[n_] + values[s]
                )
            values, next_values = next_values, values
        self.values, self.next_values = values, next_values
        return self.values[self.index_map].copy()

    def memory_bytes(self) -> int:
        return int(
            self.values.nbytes + self.next_values.nbytes + self.neighbours.nbytes
        )
