"""Handwritten baseline for the particle-method benchmark.

Serial, double-buffered bucketed particle simulation with the same
initial particle placement, the same wall-particle model and the same
force law as :class:`~repro.apps.particle_sim.ParticleSimulation`, but
implemented directly over Python/numpy containers without the platform.
Used both as the Fig. 6 performance baseline and as the numerical
reference the platform version is validated against.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

__all__ = ["HandwrittenParticle"]


class HandwrittenParticle:
    """Serial bucketed particle simulation (reference implementation)."""

    def __init__(
        self,
        particles: int = 1024,
        *,
        bucket_capacity: int = 16,
        bucket_size: float = 1.0,
        block_buckets: int = 8,
        dt: float = 1e-3,
        loops: int = 2,
        cutoff: float | None = None,
        stiffness: float = 5.0,
    ) -> None:
        self.particles = particles
        self.bucket_capacity = bucket_capacity
        self.bucket_size = bucket_size
        self.dt = dt
        self.loops = loops
        self.cutoff = bucket_size if cutoff is None else cutoff
        self.stiffness = stiffness

        # Bucket grid sized exactly like the DSL's (see ParticleTarget).
        density = bucket_capacity // 2
        buckets_needed = max(1, -(-particles // density))
        grid = 1
        while grid * grid < buckets_needed:
            grid *= 2
        self.bucket_grid = max(grid, block_buckets)

        #: bucket (bx, by) -> list of particle records
        #: [id, px, py, pz, vx, vy, vz, ax, ay, az]
        self.buckets: Dict[Tuple[int, int], List[np.ndarray]] = {}
        self._initialise()

    # ------------------------------------------------------------------
    def _initialise(self) -> None:
        n = self.bucket_grid
        per_bucket = -(-self.particles // (n * n))
        if per_bucket > self.bucket_capacity:
            raise ValueError("too many particles per bucket")
        size = self.bucket_size
        for by in range(n):
            for bx in range(n):
                bucket_linear = bx + by * n
                remaining = min(
                    per_bucket, max(0, self.particles - bucket_linear * per_bucket)
                )
                per_edge = max(1, int(np.ceil(np.sqrt(remaining))))
                records = []
                for index in range(remaining):
                    gx = index % per_edge
                    gy = index // per_edge
                    px = (bx + (gx + 0.5) / per_edge) * size
                    py = (by + (gy + 0.5) / per_edge) * size
                    particle_id = float(bucket_linear * self.bucket_capacity + index)
                    records.append(
                        np.array(
                            [particle_id, px, py, 0.5 * size, 0, 0, 0, 0, 0, 0],
                            dtype=np.float64,
                        )
                    )
                self.buckets[(bx, by)] = records

    # ------------------------------------------------------------------
    def _wall_positions(self, bx: int, by: int) -> np.ndarray:
        """Positions of the fixed wall particles of an out-of-domain bucket."""
        capacity = self.bucket_capacity
        size = self.bucket_size
        per_edge = min(4, int(np.sqrt(capacity)))
        positions = []
        for j in range(per_edge):
            for i in range(per_edge):
                if len(positions) >= capacity:
                    break
                positions.append(
                    (
                        (bx + (i + 0.5) / per_edge) * size,
                        (by + (j + 0.5) / per_edge) * size,
                        0.5 * size,
                    )
                )
        return np.array(positions, dtype=np.float64)

    def _neighbour_positions(self, bx: int, by: int) -> np.ndarray:
        n = self.bucket_grid
        chunks = []
        for dj in (-1, 0, 1):
            for di in (-1, 0, 1):
                x, y = bx + di, by + dj
                if 0 <= x < n and 0 <= y < n:
                    records = self.buckets[(x, y)]
                    if records:
                        chunks.append(np.array([r[1:4] for r in records]))
                else:
                    chunks.append(self._wall_positions(x, y))
        if not chunks:
            return np.empty((0, 3))
        return np.concatenate(chunks, axis=0)

    # ------------------------------------------------------------------
    def step(self) -> None:
        dt = self.dt
        cutoff = self.cutoff
        stiffness = self.stiffness
        new_buckets: Dict[Tuple[int, int], List[np.ndarray]] = {}
        for (bx, by), records in self.buckets.items():
            others = self._neighbour_positions(bx, by)
            updated = []
            for rec in records:
                rec = rec.copy()
                pos = rec[1:4]
                vel = rec[4:7]
                acc = np.zeros(3)
                if len(others):
                    delta = pos[None, :] - others
                    dist = np.sqrt((delta ** 2).sum(axis=1))
                    mask = (dist > 1e-12) & (dist < cutoff)
                    if mask.any():
                        d = dist[mask][:, None]
                        w = stiffness * (1.0 - d / cutoff) ** 2
                        acc = (w * delta[mask] / d).sum(axis=0)
                vel = vel + acc * dt
                rec[1:4] = pos + vel * dt
                rec[4:7] = vel
                rec[7:10] = acc
                updated.append(rec)
            new_buckets[(bx, by)] = updated
        self.buckets = new_buckets

    def run(self) -> np.ndarray:
        """Run ``loops`` steps; return sorted (id, px, py, pz, vx, vy, vz) rows."""
        for _ in range(self.loops):
            self.step()
        rows = []
        for records in self.buckets.values():
            for rec in records:
                rows.append(rec[:7].copy())
        if not rows:
            return np.empty((0, 7))
        return np.array(sorted(rows, key=lambda r: r[0]))

    def memory_bytes(self) -> int:
        total = 0
        for records in self.buckets.values():
            total += sum(int(r.nbytes) for r in records)
        return total
