"""App Part: end-user applications and the handwritten baselines.

* Platform applications (end-user code on the sample DSLs):
  :class:`JacobiSGrid`, :class:`JacobiUSGrid`, :class:`ParticleSimulation`.
* Handwritten serial baselines (the paper's "Handwritten" codes):
  :class:`HandwrittenSGrid`, :class:`HandwrittenUSGrid`,
  :class:`HandwrittenParticle`.
"""

from .handwritten_particle import HandwrittenParticle
from .handwritten_sgrid import DoubleBufferedGrid, HandwrittenSGrid
from .handwritten_usgrid import HandwrittenUSGrid
from .jacobi_sgrid import JacobiSGrid
from .jacobi_usgrid import JacobiUSGrid
from .particle_sim import ParticleSimulation

__all__ = [
    "JacobiSGrid",
    "JacobiUSGrid",
    "ParticleSimulation",
    "HandwrittenSGrid",
    "HandwrittenUSGrid",
    "HandwrittenParticle",
    "DoubleBufferedGrid",
]
