"""End-user application: short-range particle simulation on the particle DSL.

Particles interact with every particle in their own bucket and in the
eight surrounding buckets through a repulsive weight function of the
inter-particle distance (the paper: "From the weight function of the
influence distance between particles, the App Part can calculate the
force by interacting with the particles in the surrounding eight
buckets outside the target bucket").  The domain boundary is modelled
by fixed wall particles supplied by the DSL's Arithmetic Block.

The default ``"vectorized"`` kernel gathers the whole 3×3 bucket
neighbourhood of every bucket of a Block in one batched call (one
access plan per Block after warm-up) and evaluates all pair
interactions as a single broadcast NumPy expression;
``kernel="scalar"`` keeps the per-bucket/per-particle reference loop.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dsl.particle import _FIELDS_PER_PARTICLE, BucketView, ParticleTarget

__all__ = ["ParticleSimulation"]

#: 3×3×1 bucket neighbourhood in the scalar kernel's read order
#: (``dj`` outer, ``di`` inner); the centre bucket is NEIGHBOURHOOD[4].
NEIGHBOURHOOD = tuple((di, dj, 0) for dj in (-1, 0, 1) for di in (-1, 0, 1))

_ESCAPE_MESSAGE = (
    "particle left its bucket; reduce dt/loops (the prototype, like the "
    "paper's, does not implement particle movement between buckets)"
)


class ParticleSimulation(ParticleTarget):
    """Repulsive short-range particle dynamics on the bucketed particle DSL.

    Extra configuration keys:

    ``cutoff``
        Interaction cut-off radius (default: one bucket edge).
    ``stiffness``
        Strength of the repulsive force (default 5.0).
    ``kernel``
        ``"vectorized"`` (default) or ``"scalar"`` (reference path).
    """

    def __init__(self, config: Optional[dict] = None) -> None:
        super().__init__(config)
        self.cutoff: float = float(self.config.get("cutoff", self.bucket_size))
        self.stiffness: float = float(self.config.get("stiffness", 5.0))

    def processing(self) -> None:
        self.warm_up(self.kernel)
        for _ in range(self.loops):
            self.run(self.kernel)

    # ------------------------------------------------------------------
    def kernel(self, warmup: bool) -> bool:
        if self.vectorized:
            return self.kernel_vectorized(warmup)
        return self.kernel_scalar(warmup)

    # ------------------------------------------------------------------
    def kernel_vectorized(self, warmup: bool) -> bool:
        """All buckets of a Block against their 3×3 neighbourhoods at once."""
        dt = self.dt
        cutoff = self.cutoff
        stiffness = self.stiffness
        cap = self.bucket_capacity
        slots = np.arange(cap)

        for block, k in self.block_kernels(warmup):
            # (9, buckets, components) bucket records for the whole block.
            hood = k.gather(NEIGHBOURHOOD)
            n = hood.shape[1]
            counts = hood[:, :, 0]
            recs = hood[:, :, 1:].reshape(9, n, cap, _FIELDS_PER_PARTICLE)
            # Neighbour particles per bucket, in the scalar read order:
            # offset-major, slot order within each bucket.
            others = recs[..., 1:4].transpose(1, 0, 2, 3).reshape(n, 9 * cap, 3)
            others_valid = (
                (slots[None, None, :] < counts[..., None])
                .transpose(1, 0, 2)
                .reshape(n, 9 * cap)
            )

            centre = recs[4]                       # (buckets, cap, 10)
            centre_valid = slots[None, :] < counts[4][:, None]
            pos = centre[..., 1:4]
            vel = centre[..., 4:7]

            delta = pos[:, :, None, :] - others[:, None, :, :]
            dist = np.sqrt((delta ** 2).sum(axis=-1))
            mask = others_valid[:, None, :] & (dist > 1e-12) & (dist < cutoff)
            d = np.where(mask, dist, 1.0)
            w = stiffness * (1.0 - d / cutoff) ** 2
            contrib = np.where(mask[..., None], (w / d)[..., None] * delta, 0.0)
            acc = contrib.sum(axis=2)              # (buckets, cap, 3)

            new_vel = vel + acc * dt
            new_pos = pos + new_vel * dt
            self._check_block_stays_in_buckets(block, new_pos, centre_valid)

            updated = np.concatenate(
                [centre[..., 0:1], new_pos, new_vel, acc], axis=-1
            )
            updated = np.where(centre_valid[..., None], updated, 0.0)
            out = np.zeros((n, self.components))
            out[:, 0] = counts[4]
            out[:, 1:] = updated.reshape(n, cap * _FIELDS_PER_PARTICLE)
            k.scatter(out)
        return self.refresh(warmup)

    def _check_block_stays_in_buckets(self, block, new_pos, valid) -> None:
        """Vectorized version of the per-particle bucket-containment guard."""
        sx, sy, _sz = block.shape
        coords = np.indices((sx, sy, 1)).reshape(3, -1)
        size = self.bucket_size
        bx = (block.origin[0] + coords[0]) * size
        by = (block.origin[1] + coords[1]) * size
        x = new_pos[..., 0]
        y = new_pos[..., 1]
        escaped = valid & (
            (x < bx[:, None] - 1e-9)
            | (x > bx[:, None] + size + 1e-9)
            | (y < by[:, None] - 1e-9)
            | (y > by[:, None] + size + 1e-9)
        )
        if escaped.any():
            raise RuntimeError(_ESCAPE_MESSAGE)

    # ------------------------------------------------------------------
    def kernel_scalar(self, warmup: bool) -> bool:
        """Per-bucket/per-particle reference kernel."""
        dt = self.dt
        cutoff = self.cutoff
        stiffness = self.stiffness
        capacity = self.bucket_capacity

        for block, k in self.block_kernels(warmup):
            size_x, size_y, _ = k.shape
            for j in range(size_y):
                for i in range(size_x):
                    centre = BucketView(np.array(k.get_direct((i, j, 0))), capacity)
                    # Gather neighbour particles (including wall particles from
                    # the Arithmetic Block outside the domain).
                    neighbour_positions = []
                    for dj in (-1, 0, 1):
                        for di in (-1, 0, 1):
                            inside = (0 <= i + di < size_x) and (0 <= j + dj < size_y)
                            raw = k.get((i + di, j + dj, 0), inside)
                            view = BucketView(np.array(raw), capacity)
                            if view.count:
                                neighbour_positions.append(view.positions())
                    if neighbour_positions:
                        others = np.concatenate(neighbour_positions, axis=0)
                    else:
                        others = np.empty((0, 3))

                    updated = []
                    for p in range(centre.count):
                        rec = centre.particle(p).copy()
                        pos = rec[1:4]
                        vel = rec[4:7]
                        acc = np.zeros(3)
                        if len(others):
                            delta = pos[None, :] - others
                            dist = np.sqrt((delta ** 2).sum(axis=1))
                            mask = (dist > 1e-12) & (dist < cutoff)
                            if mask.any():
                                d = dist[mask][:, None]
                                w = stiffness * (1.0 - d / cutoff) ** 2
                                acc = (w * delta[mask] / d).sum(axis=0)
                        vel = vel + acc * dt
                        new_pos = pos + vel * dt
                        self._check_stays_in_bucket(block, (i, j), new_pos)
                        rec[1:4] = new_pos
                        rec[4:7] = vel
                        rec[7:10] = acc
                        updated.append(rec)
                    k.set((i, j, 0), BucketView.pack(updated, capacity))
        return self.refresh(warmup)

    # ------------------------------------------------------------------
    def _check_stays_in_bucket(self, block, local, position) -> None:
        """The prototype does not move particles between buckets; enforce it."""
        i, j = local
        bx = block.origin[0] + i
        by = block.origin[1] + j
        size = self.bucket_size
        x, y = position[0], position[1]
        if not (bx * size - 1e-9 <= x <= (bx + 1) * size + 1e-9) or not (
            by * size - 1e-9 <= y <= (by + 1) * size + 1e-9
        ):
            raise RuntimeError(_ESCAPE_MESSAGE)
