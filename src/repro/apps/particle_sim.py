"""End-user application: short-range particle simulation on the particle DSL.

Particles interact with every particle in their own bucket and in the
eight surrounding buckets through a repulsive weight function of the
inter-particle distance (the paper: "From the weight function of the
influence distance between particles, the App Part can calculate the
force by interacting with the particles in the surrounding eight
buckets outside the target bucket").  The domain boundary is modelled
by fixed wall particles supplied by the DSL's Arithmetic Block.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dsl.particle import BucketView, ParticleTarget

__all__ = ["ParticleSimulation"]


class ParticleSimulation(ParticleTarget):
    """Repulsive short-range particle dynamics on the bucketed particle DSL.

    Extra configuration keys:

    ``cutoff``
        Interaction cut-off radius (default: one bucket edge).
    ``stiffness``
        Strength of the repulsive force (default 5.0).
    """

    def __init__(self, config: Optional[dict] = None) -> None:
        super().__init__(config)
        self.cutoff: float = float(self.config.get("cutoff", self.bucket_size))
        self.stiffness: float = float(self.config.get("stiffness", 5.0))

    def processing(self) -> None:
        self.warm_up(self.kernel)
        for _ in range(self.loops):
            self.run(self.kernel)

    # ------------------------------------------------------------------
    def kernel(self, warmup: bool) -> bool:
        dt = self.dt
        cutoff = self.cutoff
        stiffness = self.stiffness
        capacity = self.bucket_capacity

        for block, k in self.block_kernels(warmup):
            size_x, size_y, _ = k.shape
            for j in range(size_y):
                for i in range(size_x):
                    centre = BucketView(np.array(k.get_direct((i, j, 0))), capacity)
                    # Gather neighbour particles (including wall particles from
                    # the Arithmetic Block outside the domain).
                    neighbour_positions = []
                    for dj in (-1, 0, 1):
                        for di in (-1, 0, 1):
                            inside = (0 <= i + di < size_x) and (0 <= j + dj < size_y)
                            raw = k.get((i + di, j + dj, 0), inside)
                            view = BucketView(np.array(raw), capacity)
                            if view.count:
                                neighbour_positions.append(view.positions())
                    if neighbour_positions:
                        others = np.concatenate(neighbour_positions, axis=0)
                    else:
                        others = np.empty((0, 3))

                    updated = []
                    for p in range(centre.count):
                        rec = centre.particle(p).copy()
                        pos = rec[1:4]
                        vel = rec[4:7]
                        acc = np.zeros(3)
                        if len(others):
                            delta = pos[None, :] - others
                            dist = np.sqrt((delta ** 2).sum(axis=1))
                            mask = (dist > 1e-12) & (dist < cutoff)
                            if mask.any():
                                d = dist[mask][:, None]
                                w = stiffness * (1.0 - d / cutoff) ** 2
                                acc = (w * delta[mask] / d).sum(axis=0)
                        vel = vel + acc * dt
                        new_pos = pos + vel * dt
                        self._check_stays_in_bucket(block, (i, j), new_pos)
                        rec[1:4] = new_pos
                        rec[4:7] = vel
                        rec[7:10] = acc
                        updated.append(rec)
                    k.set((i, j, 0), BucketView.pack(updated, capacity))
        return self.refresh(warmup)

    # ------------------------------------------------------------------
    def _check_stays_in_bucket(self, block, local, position) -> None:
        """The prototype does not move particles between buckets; enforce it."""
        i, j = local
        bx = block.origin[0] + i
        by = block.origin[1] + j
        size = self.bucket_size
        x, y = position[0], position[1]
        if not (bx * size - 1e-9 <= x <= (bx + 1) * size + 1e-9) or not (
            by * size - 1e-9 <= y <= (by + 1) * size + 1e-9
        ):
            raise RuntimeError(
                "particle left its bucket; reduce dt/loops (the prototype, like the "
                "paper's, does not implement particle movement between buckets)"
            )
