"""Handwritten baseline for the structured-grid benchmark.

The Python counterpart of the paper's Listing 2: "a simple serial code
with double-buffering without MPI, OpenMP, and SIMD optimization".  The
data lives in a flat array behind a small wrapper whose ``get`` applies
the boundary condition when the address falls outside the region, and
the kernel is a plain nested loop over all points — deliberately the
same per-point style as the platform kernel, so the Fig. 6 comparison
measures the platform's Env/search/weaving overhead rather than a
difference in programming style.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

__all__ = ["HandwrittenSGrid", "DoubleBufferedGrid"]


class DoubleBufferedGrid:
    """Double-buffered 2-D array with boundary handling in ``get``."""

    def __init__(self, size: int, boundary_value: float = 0.0) -> None:
        self.size = size
        self.boundary_value = boundary_value
        self._read = np.zeros((size, size), dtype=np.float64)
        self._write = np.zeros((size, size), dtype=np.float64)

    def get(self, x: int, y: int) -> float:
        if 0 <= x < self.size and 0 <= y < self.size:
            return float(self._read[x, y])
        return self.boundary_value

    def set(self, x: int, y: int, value: float) -> None:
        self._write[x, y] = value

    def refresh(self) -> None:
        """Exchange the read and write buffers."""
        self._read, self._write = self._write, self._read

    def fill(self, init: Callable[[int, int], float]) -> None:
        for y in range(self.size):
            for x in range(self.size):
                self._read[x, y] = init(x, y)
        self._write[...] = self._read

    def snapshot(self) -> np.ndarray:
        return self._read.copy()


class HandwrittenSGrid:
    """Serial Jacobi solver used as the "Handwritten" reference."""

    def __init__(
        self,
        region: int = 64,
        *,
        alpha: float = 0.2,
        beta: float = 0.2,
        loops: int = 4,
        boundary_value: float = 0.0,
        init: Optional[Callable[[int, int], float]] = None,
    ) -> None:
        self.region = region
        self.alpha = alpha
        self.beta = beta
        self.loops = loops
        self.mem = DoubleBufferedGrid(region, boundary_value)
        if init is not None:
            self.mem.fill(init)

    # ------------------------------------------------------------------
    def run(self) -> np.ndarray:
        """Execute ``loops`` Jacobi sweeps and return the final field."""
        mem = self.mem
        size = self.region
        alpha, beta = self.alpha, self.beta
        for _ in range(self.loops):
            for y in range(size):
                for x in range(size):
                    v1 = alpha * mem.get(x, y)
                    v2 = beta * (
                        mem.get(x - 1, y)
                        + mem.get(x + 1, y)
                        + mem.get(x, y - 1)
                        + mem.get(x, y + 1)
                    )
                    mem.set(x, y, v1 + v2)
            mem.refresh()
        return mem.snapshot()

    def memory_bytes(self) -> int:
        """Working-set size of the handwritten program (Fig. 12 baseline)."""
        return int(self.mem._read.nbytes + self.mem._write.nbytes)
