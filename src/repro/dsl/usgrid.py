"""DSL processing system for 2-D unstructured grids ("USGrid").

Unlike the structured grid, every cell of the unstructured grid stores
the *Global Addresses of its neighbours* as part of its data
(§V-B2): the kernel follows those indirections instead of computing
neighbour coordinates arithmetically.  Cell addresses are a 1-D global
index space, and the paper evaluates two layouts with identical
arithmetic but different memory behaviour:

* **CaseC** — consecutive layout with spatial locality (cell index is
  the row-major position, like the structured grid but with indirect
  references);
* **CaseR** — a pseudo-random permutation of the cell indices: no
  spatial locality, violating Assumption III (this is the case where
  MMAT and the platform's communication behave worst).

Cells outside the computational domain live at dedicated addresses
served by a :class:`~repro.memory.block.StaticDataBlock` (Dirichlet
data), exactly as described in the paper.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..memory.block import DataBlock, StaticDataBlock
from ..memory.env import Env
from .base import BlockKernel, BlockSpec, DslTarget

__all__ = ["USGrid2DTarget"]


def _case_r_permutation(count: int, seed: int) -> np.ndarray:
    """Deterministic pseudo-random permutation used for the CaseR layout."""
    rng = np.random.default_rng(seed)
    return rng.permutation(count)


class USGrid2DTarget(DslTarget):
    """DSL target for 2-D unstructured-grid applications.

    Configuration keys:

    ``region``
        Edge length of the (logically square) domain in cells (default 64).
    ``case``
        ``"C"`` (consecutive, default) or ``"R"`` (random layout).
    ``block_cells``
        Cells per Block in the 1-D cell-index space (default 256;
        the paper uses 256×256 cells per Block).
    ``page_elements``
        Elements per page (default 64).
    ``boundary_value``
        Value of out-of-domain cells (default 0.0).
    ``layout_seed``
        Seed of the CaseR permutation (default 20220329).
    ``init``
        Optional callable ``(x, y) -> float`` for the initial field.
    """

    ACCESS_PATTERN = "contiguous"  # overridden to "random" for CaseR
    BYTES_PER_UPDATE = 5 * 8 + 4 * 8  # value reads + neighbour-index reads

    def __init__(self, config: Optional[dict] = None) -> None:
        super().__init__(config)
        self.region: int = int(self.config.get("region", 64))
        self.case: str = str(self.config.get("case", "C")).upper()
        if self.case not in ("C", "R"):
            raise ValueError(f"USGrid case must be 'C' or 'R', got {self.case!r}")
        self.block_cells: int = int(self.config.get("block_cells", 256))
        self.page_elements: int = int(self.config.get("page_elements", 64))
        self.boundary_value: float = float(self.config.get("boundary_value", 0.0))
        self.layout_seed: int = int(self.config.get("layout_seed", 20220329))
        self.init_fn = self.config.get("init")
        self.cell_count = self.region * self.region
        if self.cell_count % self.block_cells != 0:
            raise ValueError(
                f"total cells {self.cell_count} must be a multiple of block_cells "
                f"{self.block_cells}"
            )
        if self.case == "R":
            self.ACCESS_PATTERN = "random"
        #: Mapping grid position (x, y) -> cell index, layout dependent.
        self._cell_index: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    def cell_index_map(self) -> np.ndarray:
        """Return the (region, region) array of cell indices for this layout."""
        if self._cell_index is None:
            rowmajor = np.arange(self.cell_count, dtype=np.int64).reshape(
                self.region, self.region
            )
            if self.case == "C":
                self._cell_index = rowmajor
            else:
                perm = _case_r_permutation(self.cell_count, self.layout_seed)
                self._cell_index = perm[rowmajor]
        return self._cell_index

    def boundary_address(self, x: int, y: int) -> int:
        """Cell index used for the out-of-domain neighbour at (x, y).

        The addresses start right after the interior cells; each ring
        position gets its own address (matching Fig. 5's distinct
        negative addresses) even though they all serve the same static
        Dirichlet value.
        """
        n = self.region
        # enumerate the ring positions deterministically
        if y < 0:
            k = x + 1
        elif y >= n:
            k = (n + 2) + x + 1
        elif x < 0:
            k = 2 * (n + 2) + y
        else:  # x >= n
            k = 2 * (n + 2) + n + y
        return self.cell_count + k

    @property
    def boundary_cells(self) -> int:
        return 2 * (self.region + 2) + 2 * self.region

    # ------------------------------------------------------------------
    # Env construction
    # ------------------------------------------------------------------
    def block_specs(self) -> List[BlockSpec]:
        n_blocks = self.cell_count // self.block_cells
        specs = []
        for b in range(n_blocks):
            specs.append(
                BlockSpec(
                    origin=(b * self.block_cells,),
                    shape=(self.block_cells,),
                    logical_key=("usgrid", self.case, b),
                    grid_coords=(b,),
                )
            )
        return specs

    def build_env(self) -> Env:
        env = self.make_env(name=f"usgrid{self.case}{self.region}")
        blocks = self.materialize_blocks(
            env,
            self.block_specs(),
            components=1,
            page_elements=self.page_elements,
        )
        static = StaticDataBlock(
            (self.cell_count,),
            (self.boundary_cells,),
            self.boundary_value,
            name="usgrid-static-boundary",
        )
        env.add_boundary_block(static)
        self._initialise_cells(blocks)
        return env

    def _initialise_cells(self, blocks: List[DataBlock]) -> None:
        """Fill values and neighbour tables of this rank's Data Blocks."""
        index_map = self.cell_index_map()
        n = self.region
        init = self.init_fn or (lambda x, y: 0.0)

        # Invert the layout: cell index -> (x, y); then per cell compute its
        # four neighbour addresses (or boundary addresses).
        positions = np.empty((self.cell_count, 2), dtype=np.int64)
        xs, ys = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        positions[index_map.reshape(-1)] = np.stack(
            [xs.reshape(-1), ys.reshape(-1)], axis=1
        )

        def neighbour_address(x: int, y: int) -> int:
            if 0 <= x < n and 0 <= y < n:
                return int(index_map[x, y])
            return self.boundary_address(x, y)

        for block in blocks:
            if block.kind != "data":
                continue
            start = block.origin[0]
            count = block.shape[0]
            values = np.empty((count, 1), dtype=np.float64)
            neighbours = np.empty((count, 4), dtype=np.int64)
            for offset in range(count):
                cell = start + offset
                x, y = positions[cell]
                values[offset, 0] = init(int(x), int(y))
                neighbours[offset] = (
                    neighbour_address(x - 1, y),
                    neighbour_address(x + 1, y),
                    neighbour_address(x, y - 1),
                    neighbour_address(x, y + 1),
                )
            for buf in block.buffer.buffers:
                buf.load_dense(values)
                buf.clear_dirty()
            block.static_fields["neighbors"] = neighbours

    # ------------------------------------------------------------------
    # kernel-side sugar
    # ------------------------------------------------------------------
    def block_kernels(self, warmup: bool = False) -> Iterator[Tuple[DataBlock, BlockKernel]]:
        assert self.env is not None
        for block in self.env.get_blocks(warmup):
            yield block, self.kernel_for(block, warmup)

    def refresh(self, warmup: bool = False) -> bool:
        assert self.env is not None
        return self.env.refresh(warmup)

    # ------------------------------------------------------------------
    def local_field(self) -> np.ndarray:
        """Assemble this rank's cells back onto the (region, region) grid."""
        assert self.env is not None
        index_map = self.cell_index_map()
        field = np.full((self.region, self.region), np.nan, dtype=np.float64)
        flat = np.full(self.cell_count + self.boundary_cells, np.nan)
        for block in self.env.data_blocks():
            start = block.origin[0]
            count = block.shape[0]
            flat[start : start + count] = block.dense()[..., 0].reshape(-1)
        field[...] = flat[index_map]
        return field

    def finalize(self) -> None:
        self.result = self.local_field()
