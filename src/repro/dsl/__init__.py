"""DSL Part: sample DSL processing systems built on the platform.

Three DSLs matching the paper's prototype (§IV-B):

* :class:`SGrid2DTarget` — 2-D structured grid;
* :class:`USGrid2DTarget` — 2-D unstructured grid (CaseC / CaseR layouts);
* :class:`ParticleTarget` — bucketed particle method (one z layer).
"""

from .base import BlockKernel, BlockSpec, DslTarget
from .particle import PARTICLE_FIELDS, BucketView, ParticleTarget
from .sgrid import SGrid2DTarget
from .usgrid import USGrid2DTarget

__all__ = [
    "DslTarget",
    "BlockKernel",
    "BlockSpec",
    "SGrid2DTarget",
    "USGrid2DTarget",
    "ParticleTarget",
    "BucketView",
    "PARTICLE_FIELDS",
]
