"""DSL processing system for 2-D structured grids ("SGrid").

The paper's ``SU_Target_SGrid2D<double, 8, 9>`` virtual class: a DSL
for iterative stencil computations on a regular 2-D grid.  The DSL
defines

* the Env structure: the domain ``region × region`` is tiled into
  square Blocks of ``block_size × block_size`` points; a Dirichlet
  boundary is provided by an :class:`~repro.memory.block.ArithmeticBlock`
  ring around the domain (optionally a Neumann boundary through a
  :class:`~repro.memory.block.ReferenceBlock`);
* the address mapping: global addresses are ``(x, y)`` grid
  coordinates, local addresses are block-relative;
* the kernel sugar: :meth:`SGrid2DTarget.block_kernels` yields a
  :class:`~repro.dsl.base.BlockKernel` per Block of the calling task.

End users subclass :class:`SGrid2DTarget` and implement
``processing`` plus their stencil kernel (see
:mod:`repro.apps.jacobi_sgrid` and the examples).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from ..memory.block import ArithmeticBlock, DataBlock, ReferenceBlock
from ..memory.env import Env
from .base import BlockKernel, BlockSpec, DslTarget

__all__ = ["SGrid2DTarget"]


class SGrid2DTarget(DslTarget):
    """DSL target for 2-D structured-grid applications.

    Configuration keys (``config`` dict passed by the Platform):

    ``region``
        Edge length of the square domain in grid points (default 64).
    ``block_size``
        Edge length of one Block (default 16; paper uses 256).
    ``page_elements``
        Elements per page (default 256; paper uses 2^8 = 256 points).
    ``boundary_value``
        Dirichlet value outside the domain (default 0.0).
    ``boundary``
        ``"dirichlet"`` (Arithmetic Block, default) or ``"neumann"``
        (Reference Block mirroring the interior).
    ``loops``
        Number of time steps to run (default 4).
    ``init``
        Optional callable ``(x, y) -> float`` providing the initial field.
    """

    ACCESS_PATTERN = "contiguous"
    BYTES_PER_UPDATE = 5 * 8  # five-point stencil of float64

    def __init__(self, config: Optional[dict] = None) -> None:
        super().__init__(config)
        self.region: int = int(self.config.get("region", 64))
        self.block_size: int = int(self.config.get("block_size", 16))
        self.page_elements: int = int(self.config.get("page_elements", 256))
        self.boundary_value: float = float(self.config.get("boundary_value", 0.0))
        self.boundary_kind: str = str(self.config.get("boundary", "dirichlet"))
        self.init_fn: Optional[Callable[[int, int], float]] = self.config.get("init")
        if self.region % self.block_size != 0:
            raise ValueError(
                f"region {self.region} must be a multiple of block_size {self.block_size}"
            )

    # ------------------------------------------------------------------
    # Env construction (the Memory Library for Target Apps)
    # ------------------------------------------------------------------
    def block_specs(self) -> List[BlockSpec]:
        n_blocks = self.region // self.block_size
        specs: List[BlockSpec] = []
        for by in range(n_blocks):
            for bx in range(n_blocks):
                origin = (bx * self.block_size, by * self.block_size)
                specs.append(
                    BlockSpec(
                        origin=origin,
                        shape=(self.block_size, self.block_size),
                        logical_key=("sgrid", bx, by),
                        grid_coords=(bx, by),
                    )
                )
        return specs

    def build_env(self) -> Env:
        env = self.make_env(name=f"sgrid{self.region}")
        blocks = self.materialize_blocks(
            env,
            self.block_specs(),
            components=1,
            page_elements=self.page_elements,
        )
        self._attach_boundary(env)
        self._initialise_field(blocks)
        return env

    def _attach_boundary(self, env: Env) -> None:
        n = self.region
        if self.boundary_kind == "dirichlet":
            value = self.boundary_value
            boundary = ArithmeticBlock(
                (-1, -1),
                (n + 2, n + 2),
                lambda addr, v=value: v,
                name="dirichlet-ring",
            )
        elif self.boundary_kind == "neumann":
            def mirror(addr):
                x, y = addr
                x = min(max(x, 0), n - 1)
                y = min(max(y, 0), n - 1)
                from ..memory.address import GlobalAddress

                return GlobalAddress((x, y))

            boundary = ReferenceBlock((-1, -1), (n + 2, n + 2), mirror, name="neumann-ring")
        else:
            raise ValueError(f"unknown boundary kind {self.boundary_kind!r}")
        env.add_boundary_block(boundary)

    def _initialise_field(self, blocks: List[DataBlock]) -> None:
        """Fill this rank's Data Blocks with the initial field (both buffers)."""
        init = self.init_fn or (lambda x, y: 0.0)
        for block in blocks:
            if not block.holds_data or block.kind != "data":
                continue
            bx0, by0 = block.origin
            sx, sy = block.shape
            field = np.empty((sx, sy), dtype=np.float64)
            for j in range(sy):
                for i in range(sx):
                    field[i, j] = init(bx0 + i, by0 + j)
            flat = field.reshape(-1, 1)
            # Load the same initial data into every buffer generation so the
            # first step reads well-defined values regardless of swap parity.
            for buf in block.buffer.buffers:
                buf.load_dense(flat)
                buf.clear_dirty()

    # ------------------------------------------------------------------
    # kernel-side sugar
    # ------------------------------------------------------------------
    def block_kernels(self, warmup: bool = False) -> Iterator[Tuple[DataBlock, BlockKernel]]:
        """Yield ``(block, kernel accessor)`` for each Block of the calling task."""
        assert self.env is not None
        for block in self.env.get_blocks(warmup):
            yield block, self.kernel_for(block, warmup)

    def refresh(self, warmup: bool = False) -> bool:
        assert self.env is not None
        return self.env.refresh(warmup)

    # ------------------------------------------------------------------
    # result gathering (post-processing helpers, serial-friendly)
    # ------------------------------------------------------------------
    def local_field(self) -> np.ndarray:
        """Assemble this rank's Data Blocks into a dense array (NaN elsewhere)."""
        assert self.env is not None
        field = np.full((self.region, self.region), np.nan, dtype=np.float64)
        for block in self.env.data_blocks():
            x0, y0 = block.origin
            sx, sy = block.shape
            field[x0 : x0 + sx, y0 : y0 + sy] = block.dense()[..., 0]
        return field

    def finalize(self) -> None:
        """Expose the locally-owned part of the field as the run result."""
        self.result = self.local_field()
