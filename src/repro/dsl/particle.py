"""DSL processing system for the particle method ("Particle").

Three-dimensional bucketed particle simulation with a single layer of
buckets along the z axis (§V-B3).  The element of this DSL is a
*bucket*: a fixed-capacity container of particles; one Block packs
``bucket_grid × bucket_grid × 1`` buckets.  Out-of-domain neighbour
buckets are served by an :class:`~repro.memory.block.ArithmeticBlock`
that generates buckets of fixed dummy "wall" particles.

Bucket record layout (one element = one bucket, ``components`` floats):

``[count, (id, px, py, pz, vx, vy, vz, ax, ay, az) × capacity]``

The paper's prototype does not implement particle movement between
buckets, and neither does this DSL: time steps are kept small enough
that particles stay inside their bucket (a guard raises if one would
escape, so the limitation is explicit rather than silent).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..memory.block import ArithmeticBlock, DataBlock
from ..memory.env import Env
from .base import BlockKernel, BlockSpec, DslTarget

__all__ = ["ParticleTarget", "BucketView", "PARTICLE_FIELDS"]

#: Per-particle scalar fields stored inside a bucket record.
PARTICLE_FIELDS = ("id", "px", "py", "pz", "vx", "vy", "vz", "ax", "ay", "az")
_FIELDS_PER_PARTICLE = len(PARTICLE_FIELDS)


class BucketView:
    """Structured view over one bucket record (a single Env element)."""

    __slots__ = ("raw", "capacity")

    def __init__(self, raw: np.ndarray, capacity: int) -> None:
        self.raw = np.asarray(raw, dtype=np.float64).reshape(-1)
        self.capacity = capacity

    @property
    def count(self) -> int:
        return int(self.raw[0])

    def particle(self, index: int) -> np.ndarray:
        """Return the 10-float record of particle ``index`` (id, pos, vel, acc)."""
        start = 1 + index * _FIELDS_PER_PARTICLE
        return self.raw[start : start + _FIELDS_PER_PARTICLE]

    def positions(self) -> np.ndarray:
        """Return an ``(count, 3)`` array of particle positions."""
        count = self.count
        out = np.empty((count, 3), dtype=np.float64)
        for i in range(count):
            rec = self.particle(i)
            out[i] = rec[1:4]
        return out

    @staticmethod
    def empty(capacity: int) -> np.ndarray:
        return np.zeros(1 + capacity * _FIELDS_PER_PARTICLE, dtype=np.float64)

    @staticmethod
    def pack(particles: List[np.ndarray], capacity: int) -> np.ndarray:
        """Pack particle records into one bucket record array."""
        if len(particles) > capacity:
            raise ValueError(
                f"bucket overflow: {len(particles)} particles, capacity {capacity}"
            )
        raw = BucketView.empty(capacity)
        raw[0] = len(particles)
        for i, record in enumerate(particles):
            start = 1 + i * _FIELDS_PER_PARTICLE
            raw[start : start + _FIELDS_PER_PARTICLE] = record
        return raw


class ParticleTarget(DslTarget):
    """DSL target for bucketed particle simulations.

    Configuration keys:

    ``particles``
        Total number of movable particles (default 1024).  Particles are
        placed uniformly over the interior buckets at initialisation.
    ``bucket_capacity``
        Maximum particles per bucket (default 16, as in the paper).
    ``block_buckets``
        Buckets per Block edge (default 8, i.e. 8×8×1 buckets per Block).
    ``page_elements``
        Bucket records per page (default 8; paper uses 2^3).
    ``bucket_size``
        Physical edge length of a bucket (default 1.0).
    ``dt``
        Time-step length (default 1e-3).
    ``loops``
        Number of steps (default 2 — the paper also keeps this small
        because particles must not leave their bucket).
    """

    ACCESS_PATTERN = "bucketed"
    #: One kernel ``set`` updates a whole bucket; report its true compute load
    #: (every particle against its ~9-bucket neighbourhood) to the cost model
    #: in units of the reference grid-point update.
    BYTES_PER_UPDATE = 48  # bytes streamed per pair interaction
    WORK_PER_UPDATE = 1    # recomputed per instance from the bucket capacity

    def __init__(self, config: Optional[dict] = None) -> None:
        super().__init__(config)
        self.particles: int = int(self.config.get("particles", 1024))
        self.bucket_capacity: int = int(self.config.get("bucket_capacity", 16))
        self.block_buckets: int = int(self.config.get("block_buckets", 8))
        self.page_elements: int = int(self.config.get("page_elements", 8))
        self.bucket_size: float = float(self.config.get("bucket_size", 1.0))
        self.dt: float = float(self.config.get("dt", 1e-3))
        self.components = 1 + self.bucket_capacity * _FIELDS_PER_PARTICLE
        # A bucket update interacts each of its particles with the particles
        # of the 3x3 bucket neighbourhood; one pair interaction costs roughly
        # half a reference grid-point update (a few flops plus a sqrt share).
        self.WORK_PER_UPDATE = max(1, self.bucket_capacity * self.bucket_capacity * 9 // 2)
        # Choose a square bucket grid able to hold every particle at half
        # occupancy (room to breathe inside each bucket).
        density = self.bucket_capacity // 2
        buckets_needed = max(1, -(-self.particles // density))
        grid = 1
        while grid * grid < buckets_needed:
            grid *= 2
        self.bucket_grid: int = max(grid, self.block_buckets)
        if self.bucket_grid % self.block_buckets != 0:
            raise ValueError(
                f"bucket grid {self.bucket_grid} not divisible by block_buckets "
                f"{self.block_buckets}"
            )

    # ------------------------------------------------------------------
    # Env construction
    # ------------------------------------------------------------------
    def block_specs(self) -> List[BlockSpec]:
        nb = self.bucket_grid // self.block_buckets
        specs = []
        for by in range(nb):
            for bx in range(nb):
                origin = (bx * self.block_buckets, by * self.block_buckets, 0)
                specs.append(
                    BlockSpec(
                        origin=origin,
                        shape=(self.block_buckets, self.block_buckets, 1),
                        logical_key=("particle", bx, by),
                        grid_coords=(bx, by),
                    )
                )
        return specs

    def build_env(self) -> Env:
        env = self.make_env(name=f"particle{self.particles}")
        blocks = self.materialize_blocks(
            env,
            self.block_specs(),
            components=self.components,
            page_elements=self.page_elements,
        )
        self._attach_wall(env)
        self._initialise_particles(blocks)
        return env

    def _attach_wall(self, env: Env) -> None:
        """Arithmetic Block returning buckets of fixed wall particles."""
        capacity = self.bucket_capacity
        size = self.bucket_size

        def wall_bucket(addr) -> np.ndarray:
            bx, by, _bz = addr
            # A regular 4x4 grid of stationary wall particles inside the bucket.
            per_edge = min(4, int(np.sqrt(capacity)))
            records = []
            for j in range(per_edge):
                for i in range(per_edge):
                    if len(records) >= capacity:
                        break
                    px = (bx + (i + 0.5) / per_edge) * size
                    py = (by + (j + 0.5) / per_edge) * size
                    records.append(
                        np.array(
                            [-1.0, px, py, 0.5 * size, 0, 0, 0, 0, 0, 0],
                            dtype=np.float64,
                        )
                    )
            return BucketView.pack(records, capacity)

        n = self.bucket_grid
        wall = ArithmeticBlock(
            (-1, -1, 0),
            (n + 2, n + 2, 1),
            wall_bucket,
            components=self.components,
            name="wall-buckets",
        )
        env.add_boundary_block(wall)

    def _initialise_particles(self, blocks: List[DataBlock]) -> None:
        """Place movable particles uniformly over the interior buckets."""
        n = self.bucket_grid
        total_buckets = n * n
        per_bucket = -(-self.particles // total_buckets)
        if per_bucket > self.bucket_capacity:
            raise ValueError(
                f"{self.particles} particles need {per_bucket} per bucket, "
                f"exceeding capacity {self.bucket_capacity}"
            )
        size = self.bucket_size

        def bucket_record(bx: int, by: int) -> np.ndarray:
            # Particle ids are a pure function of bucket position and slot so
            # that serial and parallel runs produce identical particle sets.
            bucket_linear = bx + by * n
            records = []
            remaining_here = min(
                per_bucket, max(0, self.particles - bucket_linear * per_bucket)
            )
            per_edge = max(1, int(np.ceil(np.sqrt(remaining_here))))
            for index in range(remaining_here):
                gx = index % per_edge
                gy = index // per_edge
                px = (bx + (gx + 0.5) / per_edge) * size
                py = (by + (gy + 0.5) / per_edge) * size
                particle_id = float(bucket_linear * self.bucket_capacity + index)
                records.append(
                    np.array(
                        [particle_id, px, py, 0.5 * size, 0, 0, 0, 0, 0, 0],
                        dtype=np.float64,
                    )
                )
            return BucketView.pack(records, self.bucket_capacity)

        for block in blocks:
            if block.kind != "data":
                continue
            x0, y0, _ = block.origin
            sx, sy, _ = block.shape
            dense = np.zeros((block.element_count, self.components), dtype=np.float64)
            for j in range(sy):
                for i in range(sx):
                    linear = (i * sy + j) * 1  # z extent is 1
                    dense[linear] = bucket_record(x0 + i, y0 + j)
            for buf in block.buffer.buffers:
                buf.load_dense(dense)
                buf.clear_dirty()

    # ------------------------------------------------------------------
    # kernel-side sugar
    # ------------------------------------------------------------------
    def block_kernels(self, warmup: bool = False) -> Iterator[Tuple[DataBlock, BlockKernel]]:
        assert self.env is not None
        for block in self.env.get_blocks(warmup):
            yield block, self.kernel_for(block, warmup)

    def refresh(self, warmup: bool = False) -> bool:
        assert self.env is not None
        return self.env.refresh(warmup)

    def bucket_view(self, raw) -> BucketView:
        return BucketView(raw, self.bucket_capacity)

    # ------------------------------------------------------------------
    def local_particles(self) -> np.ndarray:
        """Gather (id, px, py, pz, vx, vy, vz) rows for locally-owned particles."""
        assert self.env is not None
        rows = []
        for block in self.env.data_blocks():
            dense = block.dense().reshape(block.element_count, self.components)
            for element in dense:
                view = BucketView(element, self.bucket_capacity)
                for p in range(view.count):
                    rec = view.particle(p)
                    if rec[0] >= 0:
                        rows.append(rec[:7].copy())
        if not rows:
            return np.empty((0, 7))
        return np.array(sorted(rows, key=lambda r: r[0]))

    def finalize(self) -> None:
        self.result = self.local_particles()
