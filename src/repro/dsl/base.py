"""Shared machinery for DSL processing systems (the paper's "DSL Part").

A DSL processing system on the platform consists of an "Annotation
Library for Target Apps" and a "Memory Library for Target Apps"
(§III-B8): it defines the Block/Env structure for its application
class, how application coordinates map to Blocks, and the sugar the
end-user kernels use.  The three sample DSLs of the paper (structured
grid, unstructured grid, particle method) share a fair amount of that
machinery, collected here:

* :class:`DslTarget` — the base class DSL targets inherit (itself a
  :class:`~repro.annotation.target.TargetApplication`), providing the
  Z-order task assignment (paper §IV-C) and per-rank Block
  materialisation (Data Block locally, Buffer-only Block for remote
  owners — paper Fig. 2b/2c);
* :class:`BlockKernel` — the equivalent of Listing 1's
  ``InitKernelMacros`` / ``GetD`` / ``GetDD`` / ``SetD`` macros.
"""

from __future__ import annotations

import itertools
import math
from operator import add
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..annotation.target import TargetApplication
from ..kernels import fused_kernel_for
from ..memory.block import BufferOnlyBlock, DataBlock
from ..memory.env import Env
from ..memory.mmat import compile_address_plan, compile_offsets_plan
from ..memory.zorder import morton_encode
from ..obs.spans import global_tracer
from ..runtime.task import SERIAL_TASK, current_task
from ..runtime.tracing import global_trace

__all__ = ["DslTarget", "BlockKernel", "BlockSpec"]


class BlockSpec:
    """Static description of one Block the DSL wants to materialise."""

    __slots__ = ("origin", "shape", "logical_key", "grid_coords", "_zorder")

    def __init__(
        self,
        origin: Sequence[int],
        shape: Sequence[int],
        logical_key: Any,
        grid_coords: Sequence[int],
    ) -> None:
        self.origin = tuple(int(c) for c in origin)
        self.shape = tuple(int(c) for c in shape)
        self.logical_key = logical_key
        #: Coordinates of the block in units of blocks; the Z-order index
        #: of these coordinates drives the task assignment.
        self.grid_coords = tuple(int(c) for c in grid_coords)
        self._zorder: Optional[int] = None

    def zorder(self) -> int:
        # Morton encoding is pure in grid_coords; cache it because the
        # task assignment evaluates it once per spec per rank warm-up.
        if self._zorder is None:
            self._zorder = morton_encode(tuple(max(c, 0) for c in self.grid_coords))
        return self._zorder


class BlockKernel:
    """Per-Block accessor used inside kernels (GetD / GetDD / SetD).

    ``get(local, inside)`` mirrors the paper's ``GetD(LA_t{{...}}, cond)``:
    ``inside`` is the statically/dynamically supplied flag meaning "the
    address is certainly within this Block", letting the platform skip
    the Env search.  ``get_direct`` mirrors ``GetDD`` (always skip), and
    ``set`` mirrors ``SetD`` (write into the Block's write buffer).

    ``work_per_set`` is the amount of work (in units of the reference
    grid-point update the cost model is calibrated on) one ``set``
    represents; grid DSLs use 1, the particle DSL uses the per-bucket
    pair-interaction count so the cost model sees the true compute load.

    Besides the scalar accessors the kernel offers a **batched API**
    (:meth:`gather` / :meth:`gather_global` / :meth:`scatter` /
    :meth:`sweep`): when MMAT is enabled the access pattern is compiled
    once into an :class:`~repro.memory.mmat.AccessPlan` and every later
    iteration executes as a handful of NumPy gathers instead of
    ``size_x * size_y`` scalar calls.  Without MMAT (or after
    ``MMAT.reset`` until the next compile) the batched calls fall back
    transparently to the scalar path, element by element.
    """

    __slots__ = (
        "env",
        "block",
        "origin",
        "_trace",
        "_work",
        "_fuse",
        "_temporal",
        "_codegen",
        "_warmup",
    )

    def __init__(
        self,
        env: Env,
        block: DataBlock,
        *,
        work_per_set: int = 1,
        fuse: bool = True,
        temporal_block: int = 1,
        codegen: Optional[str] = None,
        warmup: bool = False,
    ) -> None:
        self.env = env
        self.block = block
        self.origin = block.origin
        self._trace = global_trace().for_task()
        self._work = max(int(work_per_set), 1)
        #: Whether sweeps may run through fused kernels (plan + fn
        #: compiled into one generated function); warm-up sweeps always
        #: use the legacy path — their results are discarded and the
        #: step counter (the temporal-cache key) does not advance.
        self._fuse = bool(fuse)
        self._temporal = max(int(temporal_block), 1)
        self._codegen = codegen
        self._warmup = bool(warmup)

    # ------------------------------------------------------------------
    def get(self, local: Sequence[int], inside: bool = False):
        """Read the element at block-relative coordinates ``local``."""
        addr = tuple(map(add, self.origin, local))
        return self.env.read_from(self.block, addr, assume_inside=bool(inside))

    def get_global(self, addr: Sequence[int], inside: bool = False):
        """Read the element at a *global* address (unstructured-grid neighbours)."""
        return self.env.read_from(self.block, tuple(addr), assume_inside=bool(inside))

    def get_direct(self, local: Sequence[int]):
        """Read skipping the Env search entirely (the paper's ``GetDD``)."""
        addr = tuple(map(add, self.origin, local))
        return self.env.read_from(self.block, addr, assume_inside=True)

    def set(self, local: Sequence[int], value) -> None:
        """Write the element at block-relative coordinates ``local``."""
        self.env.discard_full_store(self.block.block_id)
        self.block.write_local(tuple(local), value)
        self._trace.updates += self._work

    def set_global(self, addr: Sequence[int], value) -> None:
        self.env.discard_full_store(self.block.block_id)
        self.block.write(tuple(addr), value)
        self._trace.updates += self._work

    # ------------------------------------------------------------------
    # batched (vectorized) API
    # ------------------------------------------------------------------
    def gather(self, offsets: Sequence[Sequence[int]]) -> np.ndarray:
        """Read every element of the Block at each stencil ``offset``, in bulk.

        Returns ``(len(offsets),) + shape`` for single-component Blocks,
        ``(len(offsets), element_count, components)`` otherwise.  With
        MMAT enabled the offsets are compiled once into an access plan;
        otherwise every site is read through the scalar path.
        """
        offsets = tuple(tuple(int(c) for c in off) for off in offsets)
        env = self.env
        block = self.block
        if not env.mmat.enabled:
            out = self._gather_offsets_scalar(offsets)
        else:
            plan = self._offsets_plan(offsets)
            out = plan.execute(env)
            env.mmat.note_execution(plan)
            self._trace.plan_gathers += 1
            self._trace.plan_sites += plan.n_sites
        if block.components == 1:
            return out.reshape((len(offsets),) + block.shape)
        return out.reshape(len(offsets), block.element_count, block.components)

    def _offsets_plan(self, offsets):
        """Cached-or-compiled access plan for normalized stencil ``offsets``."""
        env = self.env
        block = self.block
        mmat = env.mmat
        key = (block.block_id, "offsets", offsets)
        plan = mmat.plan_lookup(key)
        if plan is None:
            with global_tracer().span("plan.compile", sites=block.element_count):
                plan = compile_offsets_plan(env, block, offsets)
            mmat.plan_store(key, plan)
            self._trace.plan_compiles += 1
        return plan

    def gather_global(self, addresses, *, key: Optional[str] = None) -> np.ndarray:
        """Bulk-read arbitrary *global* addresses (indirect neighbours).

        ``addresses`` is an integer array (any shape for 1-D address
        spaces; last axis = coordinates otherwise); the result has the
        site shape of ``addresses`` (plus a components axis for
        multi-component Blocks).  ``key`` names the address table for
        plan caching — pass it whenever the table is static (Assumption
        II), e.g. ``key="neighbors"`` for the USGrid neighbour lists.
        Without a ``key`` the plan is compiled per call and never
        cached (a content-derived cache key would retain one plan per
        distinct table for the life of the memo, and every stale plan's
        halo pages would keep being prefetched).
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        block = self.block
        sites_shape = addresses.shape if block.ndim == 1 else addresses.shape[:-1]
        env = self.env
        mmat = env.mmat
        if not mmat.enabled:
            out = self._gather_addresses_scalar(addresses)
        else:
            plan = None
            if key is not None:
                cache_key = (block.block_id, "addresses", key, addresses.shape)
                plan = mmat.plan_lookup(cache_key)
            if plan is None:
                plan = compile_address_plan(env, block, addresses)
                if key is not None:
                    mmat.plan_store(cache_key, plan)
                    self._trace.plan_compiles += 1
                else:
                    # Per-call compiles are by design, not cache misses:
                    # counting them as plan_compiles would make coverage
                    # numbers report near-zero hit rates for apps with
                    # dynamic address tables.
                    mmat.note_uncached_compile()
                    self._trace.plan_compiles_uncached += 1
            out = plan.execute(env)
            mmat.note_execution(plan)
            self._trace.plan_gathers += 1
            self._trace.plan_sites += plan.n_sites
        if block.components == 1:
            return out.reshape(sites_shape)
        return out.reshape(sites_shape + (block.components,))

    def scatter(self, values: np.ndarray) -> None:
        """Write a whole block of results into the write buffer at once.

        Accepts ``shape`` (single-component) or ``(element_count,
        components)`` arrays — or anything broadcastable to them, e.g. a
        constant scalar; the write-buffer pages are marked dirty exactly
        as per-element :meth:`set` calls would.
        """
        block = self.block
        data = np.asarray(values)
        try:
            data = data.reshape(block.element_count, block.components)
        except ValueError:
            data = np.broadcast_to(data, (block.element_count, block.components))
        self.env.discard_full_store(block.block_id)
        block.load_dense(data, into_write=True)
        self._trace.updates += self._work * block.element_count

    def sweep(self, fn: Callable[..., np.ndarray], offsets: Sequence[Sequence[int]]) -> None:
        """One full-block update: gather ``offsets``, apply ``fn``, scatter.

        ``fn`` receives one array per offset (each shaped like the
        Block) and must return the new field, shaped like the Block (or
        anything broadcastable to it).  When an overlapped halo exchange
        is in flight the sweep runs interior sites first, waits for the
        halo, then finishes the boundary rim — see :meth:`sweep_segment`
        for the elementwise ``fn`` contract, which every stencil update
        satisfies by construction.

        With MMAT enabled the compiled access plan and ``fn`` are fused
        into one generated kernel (:mod:`repro.kernels`) that applies
        ``fn`` to shifted views of a padded scratch field instead of
        materialising the per-offset gather tensor; unfusable cases and
        warm-up sweeps fall back to :meth:`sweep_segment` transparently.
        """
        offsets = tuple(tuple(int(c) for c in off) for off in offsets)
        env = self.env
        if self._fuse and not self._warmup and env.mmat.enabled:
            plan = self._offsets_plan(offsets)
            kern = fused_kernel_for(
                env,
                self.block,
                plan,
                fn,
                temporal=self._temporal,
                codegen=self._codegen,
                trace=self._trace,
            )
            if kern is not None:
                kern(env, fn, self._trace, self._work)
                return
        self.sweep_segment(fn, offsets)

    def sweep_segment(
        self, fn: Callable[..., np.ndarray], offsets: Sequence[Sequence[int]]
    ) -> None:
        """Overlap-aware sweep: compute the interior while the halo travels.

        The compiled access plan is split into its interior and boundary
        sub-plans (:meth:`~repro.memory.mmat.AccessPlan.split`).  Sites
        whose stencil touches only locally-owned data are gathered *and
        updated* first; only then is the in-flight halo exchange
        completed (``Env.complete_pending_halo``) and the halo-dependent
        boundary sites finished — so the whole communication round-trip
        hides behind the interior computation.  Without a pending
        exchange, a compiled plan, or any halo dependence, this is
        exactly :meth:`gather` + ``fn`` + :meth:`scatter`.

        ``fn`` must be *elementwise over sites*: each output site may
        depend only on the per-offset values gathered **at that site**
        (true for every stencil update — the per-offset arrays exist
        precisely so ``fn`` needs no internal shifting).  ``fn`` is
        applied to 1-D site slices here, so it must not assume the
        block's 2-D/3-D shape.
        """
        offsets = tuple(tuple(int(c) for c in off) for off in offsets)
        env = self.env
        block = self.block
        tracer = global_tracer()
        plan = self._offsets_plan(offsets) if env.mmat.enabled else None
        if plan is None or not plan.has_halo or not env.has_pending_halo():
            # No overlap opportunity: the plain gather path (which itself
            # completes a pending exchange before its boundary segments).
            with tracer.span("sweep"):
                self.scatter(fn(*self.gather(offsets)))
            return

        n_off = len(offsets)
        n_elem = block.element_count
        comps = block.components
        out = np.empty((plan.n_sites, comps), dtype=plan.dtype)
        if plan.const_dst is not None:
            out[plan.const_dst] = plan.const_vals
        interior_segs, boundary_segs = plan.split()

        # Output elements whose stencil reaches halo data; everything
        # else is computable from the interior gather alone.
        interior_elems, boundary_elems = plan.element_partition()
        per_offset = out.reshape(n_off, n_elem, comps)
        result = np.empty((n_elem, comps), dtype=plan.dtype)

        def apply(elems: np.ndarray) -> None:
            if not elems.size:
                return
            # fn may return a broadcastable constant (legal on the
            # non-overlap gather+scatter path): broadcast instead of
            # reshaping so it does not crash mid-overlap.
            if comps == 1:
                args = [per_offset[oi, elems, 0] for oi in range(n_off)]
                vals = np.asarray(fn(*args))
                if vals.size == elems.size:
                    result[elems, 0] = vals.reshape(elems.size)
                else:
                    result[elems, 0] = np.broadcast_to(vals, (elems.size,))
            else:
                args = [per_offset[oi, elems] for oi in range(n_off)]
                vals = np.asarray(fn(*args))
                if vals.size == elems.size * comps:
                    result[elems] = vals.reshape(elems.size, comps)
                else:
                    result[elems] = np.broadcast_to(vals, (elems.size, comps))

        with tracer.span("sweep.interior", sites=int(interior_elems.size)):
            missing = plan.gather_segments(env, interior_segs, out)
            apply(interior_elems)        # … while the halo is in flight
        env.complete_pending_halo()      # wait + install the halo pages
        with tracer.span("sweep.boundary", sites=int(boundary_elems.size)):
            missing += plan.gather_segments(env, boundary_segs, out)
            apply(boundary_elems)        # finish the halo-dependent rim

        plan.account(env, missing)
        env.mmat.note_execution(plan)
        self._trace.plan_gathers += 1
        self._trace.plan_sites += plan.n_sites
        self.scatter(result)

    # -- scalar fallbacks (MMAT disabled: no memoization allowed) ----------
    def _gather_offsets_scalar(self, offsets) -> np.ndarray:
        env = self.env
        block = self.block
        origin = self.origin
        shape = block.shape
        n_elem = block.element_count
        out = np.empty((len(offsets) * n_elem, block.components), dtype=np.float64)
        locals_iter = list(itertools.product(*(range(s) for s in shape)))
        for oi, off in enumerate(offsets):
            base = oi * n_elem
            for linear, local in enumerate(locals_iter):
                tgt = tuple(map(add, local, off))
                inside = all(0 <= t < s for t, s in zip(tgt, shape))
                addr = tuple(map(add, origin, tgt))
                out[base + linear] = env.read_from(block, addr, assume_inside=inside)
        env.mmat.note_fallback(len(offsets) * n_elem)
        self._trace.plan_fallback_sites += len(offsets) * n_elem
        return out

    def _gather_addresses_scalar(self, addresses: np.ndarray) -> np.ndarray:
        env = self.env
        block = self.block
        nd = block.ndim
        flat = addresses.reshape(-1) if nd == 1 else addresses.reshape(-1, nd)
        n_sites = flat.shape[0]
        out = np.empty((n_sites, block.components), dtype=np.float64)
        for site in range(n_sites):
            addr = (int(flat[site]),) if nd == 1 else tuple(int(c) for c in flat[site])
            out[site] = env.read_from(block, addr, assume_inside=False)
        env.mmat.note_fallback(n_sites)
        self._trace.plan_fallback_sites += n_sites
        return out

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.block.shape

    def static_field(self, name: str) -> np.ndarray:
        """Access a static per-element side array registered by the DSL."""
        return self.block.static_fields[name]


class DslTarget(TargetApplication):
    """Base class for DSL processing-system targets.

    Subclasses (SGrid2D, USGrid2D, Particle) implement
    :meth:`build_env` and whatever accessors their application class
    needs; this base provides the task assignment and the Block
    materialisation that every DSL shares.
    """

    #: Qualitative access pattern reported to the cost model
    #: ('contiguous' | 'random' | 'bucketed').
    ACCESS_PATTERN = "contiguous"
    #: Approximate bytes touched per element update (cost-model contention term).
    BYTES_PER_UPDATE = 40
    #: Work (in reference grid-point-update units) that one kernel ``set``
    #: represents.  Grid DSLs leave it at 1; the particle DSL raises it to
    #: the per-bucket pair-interaction count.
    WORK_PER_UPDATE = 1

    def __init__(self, config: Optional[dict] = None) -> None:
        super().__init__(config)
        self.loops: int = int(self.config.get("loops", 4))
        #: Kernel implementation the app should run: ``"vectorized"``
        #: (batched gather/scatter through access plans, the default) or
        #: ``"scalar"`` (the per-element reference path of the paper's
        #: Listing 1).  Apps consult this in their ``kernel``.
        self.kernel_mode: str = str(self.config.get("kernel", "vectorized"))
        if self.kernel_mode not in ("vectorized", "scalar"):
            raise ValueError(
                f"kernel must be 'vectorized' or 'scalar', got {self.kernel_mode!r}"
            )
        #: Whether sweeps may compile plan+fn into fused kernels
        #: (config ``fuse``, default on; only effective with MMAT).
        self.fuse_kernels: bool = bool(self.config.get("fuse", True))
        #: Temporal blocking depth override (config ``temporal_block``);
        #: None defers to the platform's ``temporal_block`` attribute.
        tb = self.config.get("temporal_block")
        self.temporal_block: Optional[int] = None if tb is None else max(int(tb), 1)
        #: Codegen backend override for fused kernels (config
        #: ``codegen``; None = registry default / env var).
        self.kernel_codegen: Optional[str] = self.config.get("codegen")

    @property
    def vectorized(self) -> bool:
        return self.kernel_mode == "vectorized"

    # ------------------------------------------------------------------
    # task assignment (paper §IV-C: Z-order done in the DSL layer)
    # ------------------------------------------------------------------
    def assign_tasks(self, specs: List[BlockSpec]) -> List[Tuple[BlockSpec, int]]:
        """Assign each Block spec to a task using the Z-order curve.

        Blocks are sorted by the Morton index of their block-grid
        coordinates and dealt out in contiguous runs, so neighbouring
        Blocks tend to share a task (spatial locality across the
        partition).  Returns ``(spec, task_id)`` pairs in Z-order.
        """
        total = max(self.total_tasks, 1)
        # An elastically shrunk world (rank recovery) has fewer live
        # ranks than the platform was built with; the task context
        # carries the actual world size, so size the deal by it — a
        # stale total would assign Blocks to ranks that no longer exist.
        task = current_task()
        if task is not SERIAL_TASK:
            total = max(task.mpi_size * self.omp_threads(), 1)
        keys = [spec.zorder() for spec in specs]
        # 1-D DSLs (and pre-sorted spec lists in general) are already in
        # Z-order; skip the re-sort that shows up in warm-up profiles.
        if all(a <= b for a, b in zip(keys, keys[1:])):
            ordered = list(specs)
        else:
            ordered = [spec for _, spec in sorted(zip(keys, specs), key=lambda kv: kv[0])]
        # After a rank failure the recovery manager re-partitions the dead
        # rank's blocks onto the survivors; the resulting logical-key →
        # rank map overrides the default contiguous deal.
        override = None
        if self.platform is not None:
            override = self.platform.context.get("resilience_ownership")
        per_task = math.ceil(len(ordered) / total)
        omp = self.omp_threads()
        per_rank_count: dict = {}
        assignment: List[Tuple[BlockSpec, int]] = []
        for position, spec in enumerate(ordered):
            rank = override.get(spec.logical_key) if override else None
            if rank is not None:
                # Deal the rank's blocks round-robin over its omp threads,
                # mirroring the contiguous deal's task granularity.
                nth = per_rank_count.get(rank, 0)
                per_rank_count[rank] = nth + 1
                task_id = rank * omp + (nth % omp)
            else:
                task_id = min(position // per_task, total - 1) if per_task else 0
            assignment.append((spec, task_id))
        return assignment

    def omp_threads(self) -> int:
        if self.platform is None:
            return 1
        return max(self.platform.parallelism_of("omp"), 1)

    # ------------------------------------------------------------------
    # per-rank Block materialisation (paper Fig. 2b/2c)
    # ------------------------------------------------------------------
    def materialize_blocks(
        self,
        env: Env,
        specs: List[BlockSpec],
        *,
        components: int,
        page_elements: int,
        dtype=np.float64,
    ) -> List[DataBlock]:
        """Create this rank's view of every Block and attach it to ``env``.

        Blocks assigned to the current rank become Data Blocks; Blocks
        owned by other ranks become Buffer-only Blocks (storage for
        pages fetched on demand, initially invalid).  In shared-memory
        or serial runs every Block is a Data Block.
        """
        task = current_task()
        my_rank = task.mpi_rank
        omp = self.omp_threads()
        created: List[DataBlock] = []
        for spec, task_id in self.assign_tasks(specs):
            owner_rank = task_id // omp
            master_tid = owner_rank * omp
            if owner_rank == my_rank or task.mpi_size == 1:
                block = DataBlock(
                    spec.origin,
                    spec.shape,
                    components=components,
                    page_elements=page_elements,
                    allocator=env.allocator,
                    dtype=dtype,
                    name=f"data{spec.logical_key}",
                )
            else:
                block = BufferOnlyBlock(
                    spec.origin,
                    spec.shape,
                    components=components,
                    page_elements=page_elements,
                    allocator=env.allocator,
                    dtype=dtype,
                    owner_tid=owner_rank,
                    name=f"remote{spec.logical_key}",
                )
            block.logical_key = spec.logical_key
            block.dm_tid = master_tid
            block.ch_tid = task_id
            env.add_data_block(block)
            created.append(block)
        return created

    # ------------------------------------------------------------------
    def register_access_profile(self) -> None:
        """Record the workload's qualitative access profile for the cost model."""
        counters = global_trace().for_task()
        counters.access_pattern = self.ACCESS_PATTERN
        counters.bytes_per_update = self.BYTES_PER_UPDATE

    # ------------------------------------------------------------------
    def build_env(self) -> Env:  # pragma: no cover - abstract
        """Build and return this target's Env (implemented by each DSL)."""
        raise NotImplementedError

    def initialize(self) -> None:
        """Default initialise: build the Env and record the access profile."""
        self.register_access_profile()
        self.build_env()

    def kernel_for(self, block: DataBlock, warmup: bool = False) -> BlockKernel:
        """Return the kernel accessor for ``block`` (Listing 1's InitKernelMacros)."""
        assert self.env is not None, "initialize() must build the Env first"
        temporal = self.temporal_block
        if temporal is None:
            platform = getattr(self, "platform", None)
            temporal = getattr(platform, "temporal_block", 1) if platform else 1
        return BlockKernel(
            self.env,
            block,
            work_per_set=self.WORK_PER_UPDATE,
            fuse=self.fuse_kernels,
            temporal_block=temporal,
            codegen=self.kernel_codegen,
            warmup=warmup,
        )
