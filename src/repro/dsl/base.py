"""Shared machinery for DSL processing systems (the paper's "DSL Part").

A DSL processing system on the platform consists of an "Annotation
Library for Target Apps" and a "Memory Library for Target Apps"
(§III-B8): it defines the Block/Env structure for its application
class, how application coordinates map to Blocks, and the sugar the
end-user kernels use.  The three sample DSLs of the paper (structured
grid, unstructured grid, particle method) share a fair amount of that
machinery, collected here:

* :class:`DslTarget` — the base class DSL targets inherit (itself a
  :class:`~repro.annotation.target.TargetApplication`), providing the
  Z-order task assignment (paper §IV-C) and per-rank Block
  materialisation (Data Block locally, Buffer-only Block for remote
  owners — paper Fig. 2b/2c);
* :class:`BlockKernel` — the equivalent of Listing 1's
  ``InitKernelMacros`` / ``GetD`` / ``GetDD`` / ``SetD`` macros.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..annotation.target import TargetApplication
from ..memory.block import BufferOnlyBlock, DataBlock
from ..memory.env import Env
from ..memory.zorder import morton_encode
from ..runtime.task import current_task
from ..runtime.tracing import global_trace

__all__ = ["DslTarget", "BlockKernel", "BlockSpec"]


class BlockSpec:
    """Static description of one Block the DSL wants to materialise."""

    __slots__ = ("origin", "shape", "logical_key", "grid_coords")

    def __init__(
        self,
        origin: Sequence[int],
        shape: Sequence[int],
        logical_key: Any,
        grid_coords: Sequence[int],
    ) -> None:
        self.origin = tuple(int(c) for c in origin)
        self.shape = tuple(int(c) for c in shape)
        self.logical_key = logical_key
        #: Coordinates of the block in units of blocks; the Z-order index
        #: of these coordinates drives the task assignment.
        self.grid_coords = tuple(int(c) for c in grid_coords)

    def zorder(self) -> int:
        return morton_encode(tuple(max(c, 0) for c in self.grid_coords))


class BlockKernel:
    """Per-Block accessor used inside kernels (GetD / GetDD / SetD).

    ``get(local, inside)`` mirrors the paper's ``GetD(LA_t{{...}}, cond)``:
    ``inside`` is the statically/dynamically supplied flag meaning "the
    address is certainly within this Block", letting the platform skip
    the Env search.  ``get_direct`` mirrors ``GetDD`` (always skip), and
    ``set`` mirrors ``SetD`` (write into the Block's write buffer).

    ``work_per_set`` is the amount of work (in units of the reference
    grid-point update the cost model is calibrated on) one ``set``
    represents; grid DSLs use 1, the particle DSL uses the per-bucket
    pair-interaction count so the cost model sees the true compute load.
    """

    __slots__ = ("env", "block", "origin", "_trace", "_work")

    def __init__(self, env: Env, block: DataBlock, *, work_per_set: int = 1) -> None:
        self.env = env
        self.block = block
        self.origin = block.origin
        self._trace = global_trace().for_task()
        self._work = max(int(work_per_set), 1)

    # ------------------------------------------------------------------
    def get(self, local: Sequence[int], inside: bool = False):
        """Read the element at block-relative coordinates ``local``."""
        addr = tuple(o + l for o, l in zip(self.origin, local))
        return self.env.read_from(self.block, addr, assume_inside=bool(inside))

    def get_global(self, addr: Sequence[int], inside: bool = False):
        """Read the element at a *global* address (unstructured-grid neighbours)."""
        return self.env.read_from(self.block, tuple(addr), assume_inside=bool(inside))

    def get_direct(self, local: Sequence[int]):
        """Read skipping the Env search entirely (the paper's ``GetDD``)."""
        addr = tuple(o + l for o, l in zip(self.origin, local))
        return self.env.read_from(self.block, addr, assume_inside=True)

    def set(self, local: Sequence[int], value) -> None:
        """Write the element at block-relative coordinates ``local``."""
        self.block.write_local(tuple(local), value)
        self._trace.updates += self._work

    def set_global(self, addr: Sequence[int], value) -> None:
        self.block.write(tuple(addr), value)
        self._trace.updates += self._work

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.block.shape

    def static_field(self, name: str) -> np.ndarray:
        """Access a static per-element side array registered by the DSL."""
        return self.block.static_fields[name]


class DslTarget(TargetApplication):
    """Base class for DSL processing-system targets.

    Subclasses (SGrid2D, USGrid2D, Particle) implement
    :meth:`build_env` and whatever accessors their application class
    needs; this base provides the task assignment and the Block
    materialisation that every DSL shares.
    """

    #: Qualitative access pattern reported to the cost model
    #: ('contiguous' | 'random' | 'bucketed').
    ACCESS_PATTERN = "contiguous"
    #: Approximate bytes touched per element update (cost-model contention term).
    BYTES_PER_UPDATE = 40
    #: Work (in reference grid-point-update units) that one kernel ``set``
    #: represents.  Grid DSLs leave it at 1; the particle DSL raises it to
    #: the per-bucket pair-interaction count.
    WORK_PER_UPDATE = 1

    def __init__(self, config: Optional[dict] = None) -> None:
        super().__init__(config)
        self.loops: int = int(self.config.get("loops", 4))

    # ------------------------------------------------------------------
    # task assignment (paper §IV-C: Z-order done in the DSL layer)
    # ------------------------------------------------------------------
    def assign_tasks(self, specs: List[BlockSpec]) -> List[Tuple[BlockSpec, int]]:
        """Assign each Block spec to a task using the Z-order curve.

        Blocks are sorted by the Morton index of their block-grid
        coordinates and dealt out in contiguous runs, so neighbouring
        Blocks tend to share a task (spatial locality across the
        partition).  Returns ``(spec, task_id)`` pairs in Z-order.
        """
        total = max(self.total_tasks, 1)
        ordered = sorted(specs, key=BlockSpec.zorder)
        per_task = math.ceil(len(ordered) / total)
        assignment: List[Tuple[BlockSpec, int]] = []
        for position, spec in enumerate(ordered):
            task_id = min(position // per_task, total - 1) if per_task else 0
            assignment.append((spec, task_id))
        return assignment

    def omp_threads(self) -> int:
        if self.platform is None:
            return 1
        return max(self.platform.parallelism_of("omp"), 1)

    # ------------------------------------------------------------------
    # per-rank Block materialisation (paper Fig. 2b/2c)
    # ------------------------------------------------------------------
    def materialize_blocks(
        self,
        env: Env,
        specs: List[BlockSpec],
        *,
        components: int,
        page_elements: int,
        dtype=np.float64,
    ) -> List[DataBlock]:
        """Create this rank's view of every Block and attach it to ``env``.

        Blocks assigned to the current rank become Data Blocks; Blocks
        owned by other ranks become Buffer-only Blocks (storage for
        pages fetched on demand, initially invalid).  In shared-memory
        or serial runs every Block is a Data Block.
        """
        task = current_task()
        my_rank = task.mpi_rank
        omp = self.omp_threads()
        created: List[DataBlock] = []
        for spec, task_id in self.assign_tasks(specs):
            owner_rank = task_id // omp
            master_tid = owner_rank * omp
            if owner_rank == my_rank or task.mpi_size == 1:
                block = DataBlock(
                    spec.origin,
                    spec.shape,
                    components=components,
                    page_elements=page_elements,
                    allocator=env.allocator,
                    dtype=dtype,
                    name=f"data{spec.logical_key}",
                )
            else:
                block = BufferOnlyBlock(
                    spec.origin,
                    spec.shape,
                    components=components,
                    page_elements=page_elements,
                    allocator=env.allocator,
                    dtype=dtype,
                    owner_tid=owner_rank,
                    name=f"remote{spec.logical_key}",
                )
            block.logical_key = spec.logical_key
            block.dm_tid = master_tid
            block.ch_tid = task_id
            env.add_data_block(block)
            created.append(block)
        return created

    # ------------------------------------------------------------------
    def register_access_profile(self) -> None:
        """Record the workload's qualitative access profile for the cost model."""
        counters = global_trace().for_task()
        counters.access_pattern = self.ACCESS_PATTERN
        counters.bytes_per_update = self.BYTES_PER_UPDATE

    # ------------------------------------------------------------------
    def build_env(self) -> Env:  # pragma: no cover - abstract
        """Build and return this target's Env (implemented by each DSL)."""
        raise NotImplementedError

    def initialize(self) -> None:
        """Default initialise: build the Env and record the access profile."""
        self.register_access_profile()
        self.build_env()

    def kernel_for(self, block: DataBlock) -> BlockKernel:
        """Return the kernel accessor for ``block`` (Listing 1's InitKernelMacros)."""
        assert self.env is not None, "initialize() must build the Env first"
        return BlockKernel(self.env, block, work_per_set=self.WORK_PER_UPDATE)
