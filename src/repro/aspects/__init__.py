"""Aspect Module Library (Platform Part A.3 of the paper).

One reusable aspect module per HPC-system layer:

* :class:`DistributedMemoryAspect` — the "MPI" layer (AspectType I/II/III);
* :class:`SharedMemoryAspect` — the "OpenMP" layer (AspectType I/II);
* :func:`hybrid_aspects` / :func:`mpi_aspects` / :func:`openmp_aspects` —
  the standard combinations used by the evaluation;
* :class:`PhaseTraceAspect` — diagnostic example aspect.
"""

from .base import LayerAspect
from .hybrid import PhaseTraceAspect, hybrid_aspects, mpi_aspects, openmp_aspects
from .mpi_aspect import CommPlan, DistributedMemoryAspect, PendingHalo
from .openmp_aspect import SharedMemoryAspect

__all__ = [
    "LayerAspect",
    "CommPlan",
    "DistributedMemoryAspect",
    "PendingHalo",
    "SharedMemoryAspect",
    "PhaseTraceAspect",
    "hybrid_aspects",
    "mpi_aspects",
    "openmp_aspects",
]
