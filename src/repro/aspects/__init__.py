"""Aspect Module Library (Platform Part A.3 of the paper).

One reusable aspect module per HPC-system layer, woven into annotated
application classes by the :mod:`repro.aop` weaver:

* :class:`DistributedMemoryAspect` — the "MPI" layer (AspectType
  I/II/III).  Runs on any registered execution backend
  (``serial``/``threads``/``process`` — see
  :mod:`repro.runtime.backends`), compiles :class:`CommPlan` aggregated
  halo exchanges from the MMAT's access plans, overlaps them behind
  interior computation (:class:`PendingHalo`), and on the process
  backend selects the page data plane via ``page_transport``
  (zero-copy shared memory or the packed-pipe path).
* :class:`SharedMemoryAspect` — the "OpenMP" layer (AspectType I/II):
  thread teams, worksharing and ``single`` regions per rank.
* :func:`hybrid_aspects` / :func:`mpi_aspects` / :func:`openmp_aspects`
  — the standard layer combinations used by the evaluation, all
  accepting ``backend=`` / ``page_transport=`` overrides.
* :class:`PhaseTraceAspect` — diagnostic example aspect.

Cross-cutting platform services are aspect modules too:
:class:`repro.obs.MonitoringAspect` (phase spans) and
:class:`repro.resilience.CheckpointAspect` (epoch snapshots) are woven
the same way and compose freely with the layer aspects.
"""

from .base import LayerAspect
from .hybrid import PhaseTraceAspect, hybrid_aspects, mpi_aspects, openmp_aspects
from .mpi_aspect import CommPlan, DistributedMemoryAspect, PendingHalo
from .openmp_aspect import SharedMemoryAspect

__all__ = [
    "LayerAspect",
    "CommPlan",
    "DistributedMemoryAspect",
    "PendingHalo",
    "SharedMemoryAspect",
    "PhaseTraceAspect",
    "hybrid_aspects",
    "mpi_aspects",
    "openmp_aspects",
]
