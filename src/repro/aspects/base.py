"""Base class of the platform's layer aspect modules.

"The aspect module is a module that corresponds to each layer of an HPC
system, and it manages the runtime of the corresponding layer. […]
Each aspect module is composed of three main functions:

* AspectType I   — Control of the runtime and tasks
* AspectType II  — Assigning Blocks to tasks
* AspectType III — Communication of data between tasks"  (§III-B7)

:class:`LayerAspect` adds to the generic :class:`~repro.aop.aspect.Aspect`
the two attributes the Platform driver and the DSL layers need from a
layer module — which layer it manages (``layer``) and how many tasks it
creates (``parallelism``) — plus shared helpers for accessing the
current task's trace counters.
"""

from __future__ import annotations

from ..aop.aspect import Aspect
from ..runtime.task import TaskContext, current_task
from ..runtime.tracing import TaskCounters, global_trace

__all__ = ["LayerAspect"]


class LayerAspect(Aspect):
    """An aspect module managing one layer of the HPC system hierarchy."""

    #: Name of the layer ("mpi", "omp", ...); the Platform exposes the
    #: attached layers to the DSL so it can assign Blocks to tasks.
    layer: str = ""

    def __init__(self, parallelism: int = 1) -> None:
        super().__init__()
        if parallelism < 1:
            raise ValueError(f"{type(self).__name__} parallelism must be >= 1")
        #: Number of tasks this layer splits its parent task into.
        self.parallelism = int(parallelism)
        #: The Platform this aspect is currently attached to (set by on_attach).
        self.platform = None

    # ------------------------------------------------------------------
    def on_attach(self, platform) -> None:
        self.platform = platform

    def on_detach(self, platform) -> None:
        self.platform = None

    # ------------------------------------------------------------------
    @staticmethod
    def task() -> TaskContext:
        return current_task()

    @staticmethod
    def trace() -> TaskCounters:
        return global_trace().for_task()

    def describe(self) -> str:
        return f"{self.name}(layer={self.layer!r}, parallelism={self.parallelism})"
