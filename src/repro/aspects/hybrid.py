"""Helpers for composing layer aspect modules (MPI + OpenMP, tracing, …).

The whole point of the paper's platform is that aspect modules are
*combinable*: "developers can build DSL processing systems for specific
HPC systems by combining AOP modules corresponding to the target HPC
system hierarchy."  This module provides the standard combinations used
by the benchmarks plus a diagnostic tracing aspect.
"""

from __future__ import annotations

from typing import List, Optional

from ..aop.advice import after_returning, before
from ..aop.aspect import Aspect
from .base import LayerAspect
from .mpi_aspect import DistributedMemoryAspect
from .openmp_aspect import SharedMemoryAspect

__all__ = ["hybrid_aspects", "mpi_aspects", "openmp_aspects", "PhaseTraceAspect"]


def mpi_aspects(
    processes: int,
    *,
    backend: Optional[str] = None,
    page_transport: Optional[str] = None,
    comm_plans: bool = True,
    overlap: bool = True,
) -> List[LayerAspect]:
    """Aspect stack for a distributed-memory-only run ("Platform MPI").

    ``backend`` picks the execution backend of the layer ("serial" |
    "threads" | "process"); None defers to the Platform's choice.
    ``page_transport`` picks the process backend's bulk page data plane
    ("auto" | "shm" | "pipe"); None defers to the Platform's choice.
    ``comm_plans=False`` disables the aggregated per-neighbor halo
    exchange and keeps the per-page protocol (benchmark reference);
    ``overlap=False`` keeps the aggregated exchange blocking instead of
    hiding it behind the next sweep's interior computation.
    """
    return [
        DistributedMemoryAspect(
            processes=processes,
            backend=backend,
            page_transport=page_transport,
            comm_plans=comm_plans,
            overlap=overlap,
        )
    ]


def openmp_aspects(threads: int) -> List[LayerAspect]:
    """Aspect stack for a shared-memory-only run ("Platform OMP")."""
    return [SharedMemoryAspect(threads=threads)]


def hybrid_aspects(
    processes: int,
    threads: int,
    *,
    backend: Optional[str] = None,
    page_transport: Optional[str] = None,
    comm_plans: bool = True,
    overlap: bool = True,
) -> List[LayerAspect]:
    """Aspect stack for a hybrid run ("Platform MPI+OMP").

    Order matters only through each aspect's ``order`` attribute (the
    shared-memory module is woven *outside* the distributed-memory one);
    the list order is purely cosmetic.  ``backend`` selects the
    execution backend of the distributed-memory layer, ``comm_plans``
    toggles its aggregated halo exchange and ``overlap`` whether that
    exchange hides behind the next sweep's interior computation.
    """
    return [
        SharedMemoryAspect(threads=threads),
        DistributedMemoryAspect(
            processes=processes,
            backend=backend,
            page_transport=page_transport,
            comm_plans=comm_plans,
            overlap=overlap,
        ),
    ]


class PhaseTraceAspect(Aspect):
    """Diagnostic aspect recording the sequence of platform phases.

    Not part of the paper's evaluation; used by the test suite to verify
    that weaving preserves the Initialize → Processing → Finalize order
    and that refresh join points fire, and available to users as a
    template for writing their own aspects (e.g. timers, logging).
    """

    order = 5

    def __init__(self, sink: Optional[list] = None) -> None:
        super().__init__()
        self.events: list = sink if sink is not None else []

    @before("tagged('platform.initialize')")
    def on_initialize(self, jp):
        self.events.append(("initialize", type(jp.target).__name__))

    @before("tagged('platform.processing')")
    def on_processing(self, jp):
        self.events.append(("processing", type(jp.target).__name__))

    @before("tagged('platform.finalize')")
    def on_finalize(self, jp):
        self.events.append(("finalize", type(jp.target).__name__))

    @after_returning("tagged('memory.refresh')")
    def on_refresh(self, jp):
        self.events.append(("refresh", bool(jp.result)))
