"""Shared-memory aspect module (the paper's "aspect of OpenMP").

"In the aspect of OpenMP, the starting tasks Advices is performed
before Processing as AspectType I.  Moreover, AspectType III is not
implemented because OpenMP is a shared-memory parallel system."
(§IV-A)

Concretely this module provides:

* **AspectType I** — around ``Processing``: create a
  :class:`~repro.runtime.simomp.ThreadTeam` and run the processing body
  once per team member, all sharing the application instance and its
  Env (the paper's "tasks share the Env [to] save the memory usage").
* **AspectType II** — around ``Env.get_blocks``: keep only the Blocks
  whose ``ch_tid`` equals the calling thread's global task id.
* **AspectType III** — intentionally absent (shared memory).  The only
  refresh involvement is making the buffer swap happen exactly once per
  team step (an OpenMP ``single`` with its implicit barriers).

Pointcuts are declared in the textual pointcut language
(``"tagged('platform.processing')"``), the Python analogue of
AspectC++'s string match expressions.
"""

from __future__ import annotations

from typing import Optional

from ..aop.advice import around
from ..runtime.simomp import ThreadTeam
from ..runtime.task import current_task
from ..runtime.tracing import global_trace
from .base import LayerAspect

__all__ = ["SharedMemoryAspect"]


class SharedMemoryAspect(LayerAspect):
    """Aspect module managing the shared-memory (OpenMP-like) layer."""

    layer = "omp"
    #: Precedence: *outside* the distributed-memory aspect so that team
    #: members funnel through the ``single`` construct before the rank-level
    #: collective protocol runs (exactly one participant per rank).
    order = 10

    def __init__(self, threads: int = 1, *, timeout: float = 60.0) -> None:
        super().__init__(parallelism=threads)
        self.timeout = timeout
        #: One team per rank; keyed by mpi rank because in hybrid runs the
        #: same aspect instance serves every rank's threads.
        self._teams: dict[int, ThreadTeam] = {}

    # ------------------------------------------------------------------
    def team(self) -> Optional[ThreadTeam]:
        """The calling rank's thread team (None outside a parallel region)."""
        return self._teams.get(current_task().mpi_rank)

    # ------------------------------------------------------------------
    # AspectType I — control of the runtime and tasks
    # ------------------------------------------------------------------
    @around("tagged('platform.processing')", order=0)
    def start_tasks(self, jp):
        """Spawn the shared-memory task team and run Processing on every member."""
        rank = current_task().mpi_rank
        team = ThreadTeam(self.parallelism, timeout=self.timeout)
        self._teams[rank] = team
        processing = jp.continuation()
        try:
            team.parallel(lambda _ctx: processing())
        finally:
            self._teams.pop(rank, None)
        return None

    # ------------------------------------------------------------------
    # AspectType II — assigning Blocks to tasks
    # ------------------------------------------------------------------
    @around("tagged('memory.get_blocks')", order=0)
    def assign_blocks(self, jp):
        """Divide the Blocks allocated by the upper layer among the team."""
        blocks = jp.proceed()
        task = current_task()
        if task.omp_threads <= 1 or self.team() is None:
            return blocks
        my_tid = task.global_task_id
        return [b for b in blocks if b.ch_tid == my_tid]

    # ------------------------------------------------------------------
    # Refresh coordination (no data communication: shared memory)
    # ------------------------------------------------------------------
    @around("tagged('memory.refresh')", order=0)
    def synchronise_refresh(self, jp):
        """Perform the per-step refresh exactly once per team (OpenMP ``single``)."""
        team = self.team()
        if team is None or team.size <= 1:
            return jp.proceed()
        trace = global_trace().for_task()
        trace.collectives += 1
        proceed = jp.continuation()
        args, kwargs = jp.args, jp.kwargs
        return team.single(lambda: proceed(*args, **kwargs))

    # ------------------------------------------------------------------
    def on_detach(self, platform) -> None:
        """Dissolve every rank's thread team when unwoven from a platform."""
        super().on_detach(platform)
        self._teams.clear()
