"""Distributed-memory aspect module (the paper's "aspect of MPI").

This module weaves the distributed-memory layer into an application:

* **AspectType I — control of the runtime and tasks.**  Around the
  program entry point it creates the simulated MPI world, runs the
  whole program once per rank (SPMD) and finalises the runtime — the
  direct analogue of "the initialization runtime and finalization
  runtime Advices are performed before and after the entry point
  (main of C++ programs)".
* **AspectType II — assigning Blocks to tasks.**  Around
  ``Env.get_blocks`` it restricts the returned Blocks to those whose
  data-manage task belongs to the caller's rank.  (As in the paper's
  prototype, the actual Z-order assignment is computed by the DSL layer
  when it builds each rank's Env; the advice enforces/documents the
  ownership split.)
* **AspectType III — communication of data between tasks.**  Around
  ``Env.refresh`` it implements the collective step protocol: agree
  whether every rank's step succeeded, fetch the pages recorded as
  non-existent from their owners when it did not, and — via the
  **Dry-run** record — prefetch, after every successful refresh, the
  pages this rank is known to need so later steps do not fail at all.
  When MMAT warm-up has compiled access plans, the steady-state halo is
  statically known and the prefetch is compiled into a :class:`CommPlan`
  executed as **one aggregated message pair per neighbor rank**
  (:meth:`ExecutionWorld.fetch_pages_bulk`); without plans the original
  per-page protocol runs unchanged.  In the default **overlapped** mode
  (``overlap=True``) the planned exchange is issued *nonblocking*
  (:meth:`ExecutionWorld.fetch_pages_bulk_async`) right after the step
  barrier and parked on the Env as a :class:`PendingHalo`; the next
  sweep computes its interior segment while the pages travel and
  completes the exchange only when it first touches halo data — hiding
  the communication round-trip behind computation, with numerically
  identical results.

The module also registers every rank's Env and Blocks in the world's
:class:`~repro.runtime.simmpi.BlockDirectory` (after ``Initialize``),
which is what lets page fetches name remote Blocks by logical key.

Pointcuts are declared in the textual pointcut language
(``"tagged('platform.entry')"``), matching the annotation tags of
:mod:`repro.aop.registry` — the Python analogue of AspectC++'s string
match expressions.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Set, Tuple

from ..aop.advice import after_returning, around, before
from ..memory.block import BufferOnlyBlock, DataBlock
from ..memory.page import PageKey
from ..obs.metrics import record as metric_record
from ..obs.spans import global_tracer
from ..runtime.backends import DEFAULT_BACKEND, get_backend
from ..runtime.backends.base import CommHandle, ExecutionWorld
from ..runtime.errors import NetworkError, PageFetchError
from ..runtime.shm import validate_page_transport
from ..runtime.task import current_task
from ..runtime.tracing import global_trace
from .base import LayerAspect

__all__ = ["CommPlan", "DistributedMemoryAspect", "PendingHalo"]


@dataclass
class CommPlan:
    """A compiled communication schedule for one rank's steady-state halo.

    Once MMAT warm-up has compiled access plans, the rank's full remote
    page set is statically known (``Env.plan_page_requirements`` united
    with the Dry-run record).  A CommPlan freezes that set into a
    transport manifest — ``(local PageKey, logical block key, page
    index)`` per page — so every subsequent refresh can hand the whole
    halo to :meth:`ExecutionWorld.fetch_pages_bulk` in one call and the
    world moves **one aggregated message pair per neighbor rank**
    instead of one pair per page.  The plan is a pure cache keyed by its
    page set: when the requirement set changes (MMAT reset, new plans
    compiled, dry-run growth) the aspect transparently recompiles it.
    """

    #: The halo page set this plan covers (cache key).
    keys: frozenset
    #: Transport manifest, sorted by local page key.
    requests: List[Tuple[PageKey, Any, int]]

    def __post_init__(self) -> None:
        self._index: Dict[Tuple[Any, int], PageKey] = {
            (lk, page): key for key, lk, page in self.requests
        }

    def key_for(self, logical_key: Any, page_index: int) -> PageKey:
        """Map a transport result back to the local page it fills."""
        return self._index[(logical_key, page_index)]


class PendingHalo:
    """One rank's overlapped halo exchange, issued but not yet installed.

    Created by the refresh advice right after the step barrier (the
    ``breq`` manifests are already on the wire / the background fetches
    running) and attached to the rank's Env via
    :meth:`~repro.memory.env.Env.set_pending_halo`.  The first reader
    that needs halo data — the boundary phase of
    :meth:`~repro.dsl.base.BlockKernel.sweep_segment`, a boundary plan
    segment, a scalar Buffer-only access, or the next refresh — calls
    :meth:`complete`, which waits the :class:`CommHandle`, bulk-installs
    the pages through the CommPlan's manifest and accounts the traffic
    plus the ``overlap_*`` timing counters.  Everything between issue
    and completion is computation the exchange latency hid behind.
    """

    __slots__ = ("plan", "handle", "trace", "issued_ns", "span_token")

    def __init__(self, plan: CommPlan, handle: CommHandle, trace, span_token=None) -> None:
        self.plan = plan
        self.handle = handle
        self.trace = trace
        self.issued_ns = time.perf_counter_ns()
        #: Async span token of the issue→complete flight (None untraced).
        self.span_token = span_token

    def complete(self, env, *, drained: bool = False) -> None:
        """Wait for the exchange, install its pages, account the traffic.

        ``drained=True`` marks a completion at a synchronisation point
        (refresh entry, finalize, re-issue) where no interior compute
        ran in between — counted separately so the overlap-efficiency
        report distinguishes hidden from merely deferred latency.
        """
        trace = self.trace
        tracer = global_tracer()
        wait_start = time.perf_counter_ns()
        try:
            with tracer.span("halo.wait", drained=drained):
                result = self.handle.wait()
        except PageFetchError:
            raise
        except NetworkError as exc:
            raise PageFetchError(
                f"overlapped halo exchange of {len(self.plan.requests)} pages "
                f"failed: {exc}"
            ) from exc
        completed = time.perf_counter_ns()
        tracer.async_end(self.span_token, drained=drained)
        plan = self.plan
        env.page_install_many(
            (plan.key_for(lk, page), data) for lk, page, data in result.pages
        )
        trace.pages_fetched += len(result.pages)
        trace.bytes_fetched += result.nbytes
        trace.messages += 2 * result.exchanges
        # The exchange is still a comm-plan exchange (aggregated per
        # neighbor); the overlap_* counters add the async dimension.
        trace.comm_plan_exchanges += result.exchanges
        trace.comm_plan_pages += len(result.pages)
        trace.overlap_exchanges += result.exchanges
        trace.overlap_pages += len(result.pages)
        if drained:
            # Drained latency was deferred, not hidden: keep it out of
            # the wait/flight sums so overlap efficiency only measures
            # exchanges a sweep actually computed behind.
            trace.overlap_drained += 1
        else:
            trace.overlap_wait_ns += completed - wait_start
            trace.overlap_flight_ns += completed - self.issued_ns
            metric_record("halo.wait_ns", completed - wait_start)
            metric_record("halo.flight_ns", completed - self.issued_ns)
        metric_record("exchange.pages", len(result.pages))


class DistributedMemoryAspect(LayerAspect):
    """Aspect module managing the distributed-memory (MPI-like) layer.

    The runtime itself is pluggable: ``backend`` selects an execution
    backend from :mod:`repro.runtime.backends` (``serial`` | ``threads``
    | ``process`` | any registered custom backend).  When left unset the
    aspect falls back to the Platform's configured backend and finally
    to the default ``threads`` simulation.
    """

    layer = "mpi"
    #: Precedence: *inside* the shared-memory aspect (see aspects/__init__),
    #: so that in hybrid runs only each rank's master thread executes the
    #: collective refresh protocol.
    order = 20

    def __init__(
        self,
        processes: int = 1,
        *,
        timeout: float | None = None,
        backend: str | None = None,
        page_transport: str | None = None,
        comm_plans: bool = True,
        overlap: bool = True,
    ) -> None:
        super().__init__(parallelism=processes)
        #: Communication timeout override; ``None`` defers to the
        #: Platform's ``comm_timeout`` and finally to 60 seconds.
        self.timeout = timeout
        self.backend_name = backend
        #: Bulk page-fetch data plane override (``"auto"``/``"shm"``/
        #: ``"pipe"``); ``None`` defers to the Platform's
        #: ``page_transport`` and finally to ``"auto"``.  Only the
        #: process backend distinguishes them.
        self.page_transport = (
            validate_page_transport(page_transport) if page_transport is not None else None
        )
        #: Whether to compile CommPlans (aggregated per-neighbor halo
        #: exchange) from warmed-up access plans; False keeps the
        #: original one-message-pair-per-page protocol everywhere.
        self.comm_plans = bool(comm_plans)
        #: Whether the planned halo refresh runs *overlapped*: issued
        #: nonblocking right after the step barrier and completed only
        #: when the next sweep first touches halo data, hiding the
        #: communication latency behind the interior computation.
        #: False keeps the blocking aggregated exchange; either way the
        #: per-page protocol remains the fallback when no plans exist.
        self.overlap = bool(overlap)
        self.world: ExecutionWorld | None = None
        #: Dry-run record: rank -> set of local PageKeys that had to be
        #: fetched at least once; prefetched after every successful refresh.
        self._dry_run: Dict[int, Set[PageKey]] = {}
        #: Compiled communication schedules: rank -> CommPlan (a cache —
        #: invalidated whenever the rank's halo requirement set changes).
        self._comm_plans: Dict[int, CommPlan] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def resolve_backend_name(self) -> str:
        """The backend this aspect will use: own setting, Platform's, default."""
        if self.backend_name:
            return self.backend_name
        platform_backend = getattr(self.platform, "backend", None)
        return platform_backend or DEFAULT_BACKEND

    def resolve_timeout(self) -> float:
        """The communication timeout: own setting, Platform's ``comm_timeout``, 60s."""
        if self.timeout is not None:
            return self.timeout
        platform_timeout = getattr(self.platform, "comm_timeout", None)
        return float(platform_timeout) if platform_timeout is not None else 60.0

    def resolve_page_transport(self) -> str:
        """The page data plane: own setting, Platform's ``page_transport``, auto."""
        if self.page_transport is not None:
            return self.page_transport
        platform_transport = getattr(self.platform, "page_transport", None)
        return platform_transport or "auto"

    # ------------------------------------------------------------------
    # AspectType I — control of the runtime and tasks
    # ------------------------------------------------------------------
    @around("tagged('platform.entry')", order=0)
    def manage_runtime(self, jp):
        """Initialise the distributed runtime, run the program per rank, finalise."""
        platform = self.platform
        backend = get_backend(self.resolve_backend_name())
        omp_threads = platform.parallelism_of("omp") if platform is not None else 1
        entry = jp.continuation()

        # With a resilience policy configured, the recovery manager owns
        # the world lifecycle: it re-creates (shrunken) worlds after
        # diagnosed rank deaths and re-runs the program from the last
        # complete checkpoint epoch.
        manager = getattr(platform, "resilience", None) if platform is not None else None
        if manager is not None:
            return manager.execute(
                backend,
                self,
                entry,
                omp_threads=omp_threads,
                timeout=self.resolve_timeout(),
                page_transport=self.resolve_page_transport(),
            )

        world = backend.create_world(
            self.parallelism,
            timeout=self.resolve_timeout(),
            page_transport=self.resolve_page_transport(),
        )
        self.world = world
        self._dry_run = {rank: set() for rank in range(world.size)}
        self._comm_plans = {}
        if platform is not None:
            platform.context["mpi_world"] = world

        try:
            results = world.run_spmd(lambda _ctx: entry(), omp_threads=omp_threads)
        finally:
            # Finalise on failure too: an un-finalised world would keep
            # every rank's Env replica alive until the next run.
            world.finalize()
        # The "result" of the program is rank 0's application instance,
        # mirroring how the paper's benchmarks report from process 0.
        return results[0].value

    # ------------------------------------------------------------------
    # Env / Block registration (runs after the DSL built each rank's Env)
    # ------------------------------------------------------------------
    @after_returning("tagged('platform.initialize')", order=0)
    def register_env(self, jp):
        """Register the rank's Env replica and its Blocks with the world."""
        world = self.world
        if world is None:
            return
        app = jp.target
        env = getattr(app, "env", None)
        if env is None:
            return
        rank = current_task().mpi_rank
        world.register_env(rank, env)
        omp_threads = current_task().omp_threads
        for block in env.data_blocks(include_buffer_only=True):
            logical_key = getattr(block, "logical_key", None)
            if logical_key is None:
                continue
            owns = isinstance(block, DataBlock) and not isinstance(block, BufferOnlyBlock)
            owns = owns and block.dm_tid == rank * omp_threads
            world.register_block(logical_key, rank, block.block_id, owner=owns)
        # Every rank must finish registering before any rank starts
        # computing (a fetch may target any rank from the first step);
        # backends without a shared directory also exchange entries here.
        world.commit_registration()

    # ------------------------------------------------------------------
    # AspectType II — assigning Blocks to tasks
    # ------------------------------------------------------------------
    @around("tagged('memory.get_blocks')", order=0)
    def assign_blocks(self, jp):
        """Restrict the Block list to those managed by the caller's rank."""
        blocks = jp.proceed()
        if self.world is None:
            return blocks
        task = current_task()
        master_tid = task.mpi_rank * task.omp_threads
        return [b for b in blocks if b.dm_tid == master_tid]

    # ------------------------------------------------------------------
    # AspectType III — communication of data between tasks
    # ------------------------------------------------------------------
    @around("tagged('memory.refresh')", order=0)
    def exchange_data(self, jp):
        """Collective refresh: agree on success, move pages, prefetch dry-run pages."""
        world = self.world
        if world is None:
            return jp.proceed()
        env = jp.target
        task = current_task()
        rank = task.mpi_rank
        trace = global_trace().for_task()

        # Finish any overlapped exchange still in flight (e.g. the sweep
        # never touched halo data this step) before agreeing on the step
        # outcome: its pages count as delivered, not missing.
        env.complete_pending_halo(drained=True)

        tracer = global_tracer()
        local_ok = not env.missing_pages
        with tracer.span("step.allreduce"):
            global_ok = world.allreduce_and(local_ok)
        trace.collectives += 1

        if not global_ok:
            # At least one rank accessed data it does not have: nobody may
            # swap; ranks that failed fetch the missing pages and the step
            # is re-executed (§III-B9).
            if local_ok:
                needed: Set[PageKey] = set()
                result = False
            else:
                result = jp.proceed()  # records last_failed_pages, no swap
                needed = set(env.last_failed_pages)
            with self._lock:
                self._dry_run.setdefault(rank, set()).update(needed)
            with tracer.span("halo.repair", pages=len(needed)):
                self._fetch_pages(env, rank, needed, trace)
            with tracer.span("step.barrier"):
                world.barrier()
            trace.collectives += 1
            return False

        # Every rank can finish the step: swap buffers (unless warm-up) …
        result = jp.proceed()
        with tracer.span("step.barrier"):
            world.barrier()
        trace.collectives += 1
        # … then prefetch, with the owners' new data, every page this rank
        # is known to need for the next step: the Dry-run record (pages
        # that were observed missing) united with the halo pages of every
        # compiled access plan.  Once access plans exist the full halo is
        # statically known, so it moves through a compiled CommPlan — one
        # aggregated message pair per neighbor rank; without plans (MMAT
        # off, plan invalidated, scalar kernels) the original per-page
        # protocol is used transparently.
        env.invalidate_buffer_only()
        with self._lock:
            prefetch = set(self._dry_run.get(rank, ()))
        plan_pages = env.plan_page_requirements()
        prefetch |= plan_pages
        if self.comm_plans and plan_pages:
            if self.overlap:
                self._exchange_planned_async(env, rank, prefetch, trace)
            else:
                with tracer.span("halo.exchange", pages=len(prefetch)):
                    self._exchange_planned(env, rank, prefetch, trace)
        else:
            with tracer.span("halo.perpage", pages=len(prefetch)):
                self._fetch_pages(env, rank, prefetch, trace)
        return result

    # ------------------------------------------------------------------
    @before("tagged('platform.finalize')", order=0)
    def drain_overlap(self, jp):
        """Complete a halo exchange still in flight when the program ends.

        The last step's refresh issues an exchange no sweep will ever
        consume; draining it here keeps the traffic accounting identical
        to the blocking path and leaves no reply in flight when the
        world tears down.
        """
        env = getattr(jp.target, "env", None)
        if env is not None:
            env.complete_pending_halo(drained=True)

    # ------------------------------------------------------------------
    def _comm_plan_for(self, env, rank: int, keys: Set[PageKey], trace) -> CommPlan:
        """Return the rank's cached CommPlan, recompiling if the halo changed."""
        frozen = frozenset(keys)
        with self._lock:
            plan = self._comm_plans.get(rank)
        if plan is not None and plan.keys == frozen:
            return plan
        with global_tracer().span("plan.comm_compile", pages=len(keys)):
            requests: List[Tuple[PageKey, Any, int]] = []
            for key in sorted(keys):
                block = env.block(key.block_id)
                logical_key = getattr(block, "logical_key", None)
                if logical_key is None:
                    raise PageFetchError(
                        f"rank {rank} cannot plan a fetch for page {key}: block "
                        f"{block.name!r} has no logical key, so its owning rank "
                        "is unresolvable"
                    )
                requests.append((key, logical_key, key.page_index))
            plan = CommPlan(keys=frozen, requests=requests)
        with self._lock:
            self._comm_plans[rank] = plan
        trace.comm_plan_compiles += 1
        return plan

    def _exchange_planned(self, env, rank: int, keys: Set[PageKey], trace) -> None:
        """Refresh the halo through the compiled CommPlan (batched transport)."""
        if not keys:
            return
        world = self.world
        assert world is not None
        plan = self._comm_plan_for(env, rank, keys, trace)
        try:
            result = world.fetch_pages_bulk(
                rank, [(lk, page) for _, lk, page in plan.requests]
            )
        except PageFetchError:
            raise
        except NetworkError as exc:
            raise PageFetchError(
                f"rank {rank} failed the aggregated halo exchange of "
                f"{len(plan.requests)} pages: {exc}"
            ) from exc
        env.page_install_many(
            (plan.key_for(lk, page), data) for lk, page, data in result.pages
        )
        trace.pages_fetched += len(result.pages)
        trace.bytes_fetched += result.nbytes
        trace.messages += 2 * result.exchanges
        trace.comm_plan_exchanges += result.exchanges
        trace.comm_plan_pages += len(result.pages)

    def _exchange_planned_async(self, env, rank: int, keys: Set[PageKey], trace) -> None:
        """Issue the planned halo refresh nonblocking (overlapped mode).

        The aggregated per-neighbor requests leave immediately
        (:meth:`ExecutionWorld.fetch_pages_bulk_async`); the resulting
        :class:`PendingHalo` is parked on the Env and completed by the
        first halo reader of the next sweep — everything computed until
        then overlaps the exchange.  Owner-resolution failures surface
        here, at issue time, exactly as on the blocking path.
        """
        if not keys:
            return
        world = self.world
        assert world is not None
        plan = self._comm_plan_for(env, rank, keys, trace)
        # The flight span opens at issue time and is closed by whichever
        # reader completes the PendingHalo — Perfetto draws the b/e pair
        # as an arrow across everything computed in between.
        token = global_tracer().async_begin("halo.flight", pages=len(plan.requests))
        try:
            handle = world.fetch_pages_bulk_async(
                rank, [(lk, page) for _, lk, page in plan.requests]
            )
        except PageFetchError:
            raise
        except NetworkError as exc:
            raise PageFetchError(
                f"rank {rank} failed to issue the overlapped halo exchange of "
                f"{len(plan.requests)} pages: {exc}"
            ) from exc
        trace.overlap_issues += 1
        env.set_pending_halo(PendingHalo(plan, handle, trace, span_token=token))

    # ------------------------------------------------------------------
    def _fetch_pages(self, env, rank: int, keys: Set[PageKey], trace) -> None:
        """Pull each page in ``keys`` from its owning rank, one message pair each."""
        world = self.world
        assert world is not None
        for key in sorted(keys):
            block = env.block(key.block_id)
            logical_key = getattr(block, "logical_key", None)
            if logical_key is None:
                raise PageFetchError(
                    f"rank {rank} cannot fetch page {key}: block {block.name!r} "
                    "has no logical key, so its owning rank is unresolvable"
                )
            try:
                data = world.fetch_page_by_logical(rank, logical_key, key.page_index)
            except PageFetchError:
                raise
            except NetworkError as exc:
                raise PageFetchError(
                    f"rank {rank} failed to fetch page {key.page_index} of "
                    f"block {logical_key!r}: {exc}"
                ) from exc
            env.page_install(key, data)
            trace.pages_fetched += 1
            trace.bytes_fetched += int(data.nbytes)
            trace.messages += 2
            trace.comm_plan_fallback_pages += 1

    # ------------------------------------------------------------------
    def on_detach(self, platform) -> None:
        """Drop the world and every cached plan when unwoven from a platform."""
        super().on_detach(platform)
        self.world = None
        self._dry_run = {}
        self._comm_plans = {}
