"""Machine model: the hardware the cost model 'runs' the platform on.

The paper's evaluation machine is Oakbridge-CX (dual Xeon Platinum 8280
nodes, Intel Omni-Path at 12.5 GB/s).  Because this reproduction cannot
run on a cluster, the scaling figures are produced by executing the
platform on the simulated runtime (which yields exact per-task work and
traffic counts) and converting those counts to time on a parametric
machine description defined here.

All rates are deliberately order-of-magnitude realistic rather than
tuned per figure; a single :class:`MachineSpec` instance is shared by
every scaling benchmark (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import MachineModelError

__all__ = ["MachineSpec", "OAKBRIDGE_CX_LIKE"]


@dataclass(frozen=True)
class MachineSpec:
    """Parametric description of a cluster node and its interconnect."""

    name: str = "generic-cluster"
    #: Cost of one element update of the reference kernel, in seconds.
    #: This is the only workload-dependent rate; the DSL layers report
    #: work in "element updates" and the model multiplies by this.
    seconds_per_update: float = 6.0e-9
    #: Sustained memory bandwidth available to one node (bytes/s).
    memory_bandwidth: float = 140e9
    #: Last-level cache per socket (bytes) — drives the cache-thrash term.
    llc_bytes: int = 38 * 1024 * 1024
    #: Cores per node usable by the shared-memory layer.
    cores_per_node: int = 56
    #: Network latency per message (seconds) and bandwidth (bytes/s).
    network_latency: float = 2.0e-6
    network_bandwidth: float = 12.5e9
    #: Cost of one barrier / collective entry per participating task.
    barrier_cost: float = 3.0e-6
    #: Overhead of spawning / joining a shared-memory thread team once.
    thread_spawn_cost: float = 15.0e-6
    #: Overhead of initialising / finalising the distributed runtime once.
    mpi_init_cost: float = 50.0e-3
    #: Multiplier applied to per-update cost when the access pattern has no
    #: spatial locality (Assumption III violated, e.g. USGrid CaseR).
    random_access_penalty: float = 2.5
    #: Fraction of per-update time that turns into extra cost per additional
    #: shared-memory thread when threads stream *contiguous* data
    #: simultaneously (cache-thrash term of Fig. 10).
    cache_thrash_factor: float = 0.018
    #: Fraction of per-update time added per additional thread for
    #: non-contiguous access (smaller: random access already misses cache).
    random_thrash_factor: float = 0.006

    def __post_init__(self) -> None:
        for attr in (
            "seconds_per_update",
            "memory_bandwidth",
            "network_latency",
            "network_bandwidth",
            "barrier_cost",
        ):
            if getattr(self, attr) <= 0:
                raise MachineModelError(f"{attr} must be positive")
        if self.cores_per_node < 1:
            raise MachineModelError("cores_per_node must be >= 1")

    # ------------------------------------------------------------------
    def update_cost(self, access_pattern: str) -> float:
        """Per-element-update cost for a given qualitative access pattern."""
        if access_pattern == "random":
            return self.seconds_per_update * self.random_access_penalty
        return self.seconds_per_update

    def thrash_factor(self, access_pattern: str) -> float:
        if access_pattern == "random":
            return self.random_thrash_factor
        return self.cache_thrash_factor


#: Default machine description loosely shaped after the paper's testbed.
OAKBRIDGE_CX_LIKE = MachineSpec(name="oakbridge-cx-like")
