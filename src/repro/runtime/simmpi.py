"""Simulated distributed-memory runtime ("MPI layer").

The distributed-memory aspect module (:mod:`repro.aspects.mpi_aspect`)
needs a runtime that can

* run the *whole end-user program* once per rank (SPMD), each rank with
  its own Env replica (paper Fig. 2b/2c),
* let ranks agree whether a step's ``refresh`` globally succeeded,
* move pages between ranks, and
* map "the Block at logical position X" to the concrete Block object of
  whichever rank owns it.

:class:`MPIWorld` provides all four on top of the in-memory
:class:`~repro.runtime.network.SimNetwork`.  Each rank executes on its
own OS thread; the GIL prevents real speed-up, which is irrelevant
because scaling numbers come from the cost model, not wall-clock
(DESIGN.md §2).

MPIWorld is the ``threads`` implementation of the execution-backend
interface (:mod:`repro.runtime.backends`); the ``process`` backend
provides the same world contract on real forked processes.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from .backends.base import (
    BulkFetchResult,
    CommHandle,
    ExecutionWorld,
    RankResult,
    group_requests_by_owner,
    raise_spmd_failures,
)
from .errors import InjectedFault, NetworkError, TaskError
from .network import SimNetwork
from .task import TaskContext, current_task, task_scope

__all__ = ["BlockDirectory", "MPIWorld", "RankResult"]


class BlockDirectory:
    """Cross-rank registry: logical block key -> (owner rank, per-rank block ids).

    DSL layers give every Data Block a *logical key* (for the grids this
    is the block's origin in units of blocks) that is identical on every
    rank.  The directory lets the communication advice translate a local
    Buffer-only Block's page into the owning rank's Data Block page.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._owner: Dict[Any, int] = {}
        self._block_ids: Dict[Tuple[Any, int], int] = {}

    def register(self, logical_key: Any, rank: int, block_id: int, *, owner: bool) -> None:
        """Record that ``rank`` materialised ``logical_key`` as ``block_id``."""
        with self._lock:
            self._block_ids[(logical_key, rank)] = block_id
            if owner:
                existing = self._owner.get(logical_key)
                if existing is not None and existing != rank:
                    raise NetworkError(
                        f"block {logical_key!r} claimed by ranks {existing} and {rank}"
                    )
                self._owner[logical_key] = rank

    def owner_of(self, logical_key: Any) -> int:
        with self._lock:
            try:
                return self._owner[logical_key]
            except KeyError:
                raise NetworkError(f"no owner registered for block {logical_key!r}") from None

    def block_id_on(self, logical_key: Any, rank: int) -> int:
        with self._lock:
            try:
                return self._block_ids[(logical_key, rank)]
            except KeyError:
                raise NetworkError(
                    f"block {logical_key!r} not materialised on rank {rank}"
                ) from None

    def known_blocks(self) -> List[Any]:
        with self._lock:
            return list(self._owner)

    def owners(self) -> Dict[Any, int]:
        """Snapshot of the full ``logical_key -> owner rank`` map.

        The recovery layer reads this post-mortem to learn which blocks
        the dead rank owned and in what order the survivors should deal
        them out again.
        """
        with self._lock:
            return dict(self._owner)


class MPIWorld(ExecutionWorld):
    """One simulated MPI world: ranks, network, block directory."""

    backend_name = "threads"

    def __init__(self, size: int, *, timeout: float = 60.0) -> None:
        if size < 1:
            raise TaskError("MPI world size must be >= 1")
        self.size = size
        self.network = SimNetwork(size, timeout=timeout)
        self.directory = BlockDirectory()
        #: Env registered by each rank (also the network endpoint).
        self.rank_envs: Dict[int, Any] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    def register_env(self, rank: int, env: Any) -> None:
        """Attach a rank's Env replica as its communication endpoint."""
        self.rank_envs[rank] = env
        self.network.register_endpoint(rank, env)

    def env_of(self, rank: int) -> Any:
        try:
            return self.rank_envs[rank]
        except KeyError:
            raise NetworkError(f"rank {rank} has not registered an Env") from None

    def register_block(self, logical_key: Any, rank: int, block_id: int, *, owner: bool) -> None:
        """Record a rank's materialisation of ``logical_key`` (shared directory)."""
        self.directory.register(logical_key, rank, block_id, owner=owner)

    def commit_registration(self) -> None:
        """Close the registration phase.

        The directory is shared between the rank threads, so committing
        is just the barrier that keeps any rank from computing before
        every rank finished registering.
        """
        if self.fault_plan is not None:
            self.fault_point(current_task().mpi_rank, "register")
        self.network.barrier()

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def install_fault_plan(self, plan: Any) -> None:
        super().install_fault_plan(plan)
        # Reply faults (delay/drop/corrupt) act in the page-serving path.
        self.network.fault_plan = plan

    def _execute_kill(self, fault: Any, rank: int) -> None:
        # Mark the rank dead *before* raising so peers blocked in (or
        # arriving at) collectives fail fast instead of waiting out the
        # full communication timeout.
        self.network.mark_dead(rank, str(fault))
        raise InjectedFault(rank, str(fault))

    # ------------------------------------------------------------------
    # collectives (delegated to the simulated interconnect)
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        self.network.barrier()

    def allreduce(self, value: Any, op: Callable[[List[Any]], Any]) -> Any:
        return self.network.allreduce(value, op)

    # ------------------------------------------------------------------
    def fetch_page_by_logical(
        self, requester: int, logical_key: Any, page_index: int
    ) -> np.ndarray:
        """Fetch a page of the Block identified by ``logical_key`` from its owner."""
        owner = self.directory.owner_of(logical_key)
        owner_block_id = self.directory.block_id_on(logical_key, owner)
        return self.network.fetch_page(requester, owner, owner_block_id, page_index)

    def fetch_pages_bulk(
        self, requester: int, requests: Sequence[Tuple[Any, int]]
    ) -> BulkFetchResult:
        """Batched fetch: one aggregated network exchange per owning rank."""
        result = BulkFetchResult()
        for owner, items in sorted(group_requests_by_owner(self.directory, requests).items()):
            datas = self.network.fetch_pages(
                requester, owner, [(block_id, page) for _, page, block_id in items]
            )
            result.pages.extend(
                (logical_key, page, data)
                for (logical_key, page, _), data in zip(items, datas)
            )
            result.exchanges += 1
            result.nbytes += sum(int(d.nbytes) for d in datas)
        return result

    def fetch_pages_bulk_async(
        self, requester: int, requests: Sequence[Tuple[Any, int]]
    ) -> CommHandle:
        """Nonblocking batched fetch: one background transfer per owner.

        Owner resolution happens at issue time (unknown keys raise
        immediately, as on the blocking path); the per-owner transfers
        then run on background threads of the simulated network and the
        returned handle assembles them — in owner order, so the result
        is deterministic and identical to :meth:`fetch_pages_bulk`.
        """
        grouped = sorted(group_requests_by_owner(self.directory, requests).items())
        batches = [
            (
                items,
                self.network.fetch_pages_async(
                    requester, owner, [(block_id, page) for _, page, block_id in items]
                ),
            )
            for owner, items in grouped
        ]
        return _ThreadedBulkHandle(batches)

    # ------------------------------------------------------------------
    def run_spmd(
        self,
        body: Callable[[TaskContext], Any],
        *,
        omp_threads: int = 1,
        use_threads: bool = True,
    ) -> List[RankResult]:
        """Execute ``body`` once per rank (SPMD).

        ``body`` receives the rank's :class:`TaskContext`.  With
        ``use_threads=True`` (default) every rank runs on its own OS
        thread so that blocking collectives work; a world of size 1
        runs inline to keep serial runs cheap and easy to debug.
        """
        results = [RankResult(rank=r) for r in range(self.size)]

        def rank_main(rank: int) -> None:
            context = TaskContext(
                mpi_rank=rank, mpi_size=self.size, omp_thread=0, omp_threads=omp_threads
            )
            try:
                with task_scope(context):
                    results[rank].value = body(context)
            except BaseException as exc:  # noqa: BLE001 - propagated below
                results[rank].error = exc

        if self.size == 1 or not use_threads:
            for rank in range(self.size):
                rank_main(rank)
        else:
            threads = [
                threading.Thread(
                    target=rank_main, args=(rank,), name=f"sim-mpi-rank-{rank}", daemon=True
                )
                for rank in range(self.size)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        raise_spmd_failures(results)
        return results

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Tear the world down (idempotent).

        Releases every rank's Env replica and the network's endpoint
        registry: a long-lived process running many platform
        configurations back to back must not accumulate one full set of
        Env replicas (pools, pages, MMAT memos) per finished run.
        Traffic statistics survive so post-run reporting keeps working.
        """
        self.rank_envs.clear()
        self.network.release_endpoints()
        self._finalized = True

    @property
    def finalized(self) -> bool:
        return self._finalized

    def traffic_summary(self) -> dict:
        """Network counters, consumed by the scaling benchmarks."""
        return self.network.stats.as_dict()


class _ThreadedBulkHandle(CommHandle):
    """Aggregates the per-owner background transfers of one async bulk fetch."""

    __slots__ = ("_batches",)

    def __init__(self, batches) -> None:
        super().__init__()
        #: ``(manifest items, AsyncBatchFetch)`` per owner, in owner order.
        self._batches = batches

    def _wait(self) -> BulkFetchResult:
        result = BulkFetchResult()
        for items, batch in self._batches:
            datas = batch.join()
            result.pages.extend(
                (logical_key, page, data)
                for (logical_key, page, _), data in zip(items, datas)
            )
            result.exchanges += 1
            result.nbytes += sum(int(d.nbytes) for d in datas)
        return result
