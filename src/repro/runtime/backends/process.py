"""The ``process`` backend: one real OS process per rank.

Unlike the ``threads`` backend (GIL-bound, scaling numbers modelled),
this backend forks one ``multiprocessing`` process per rank, so rank
compute genuinely overlaps and ``benchmarks/bench_backend_scaling.py``
can report *measured* wall-clock speed-up.

Topology and transport
----------------------

Rank 0 runs inline in the parent process (so the master application
instance, its Env and its trace counters stay native objects); ranks
1..N-1 are forked children.  Every pair of ranks is connected by one
duplex :func:`multiprocessing.Pipe`; there is no shared memory and no
coordinator — collectives are allgathers over the pipe mesh.

Messages are small tuples:

``("coll", kind, gen, payload)``
    Collective contribution, broadcast to every peer.  ``kind`` is
    ``"red"`` (allreduce), ``"bar"`` (barrier), ``"reg"`` (directory
    allgather) or ``"exit"`` (end-of-program drain barrier); ``gen`` is
    a per-kind generation counter that detects protocol corruption.
``("preq", req_id, block_id, page_index)`` / ``("prep", req_id, data)``
    Page request/reply ("perr" carries a failure message instead).
``("breq", req_id, [(block_id, page_index), …])`` / ``("brep", req_id, payload, manifest)``
    Batched page request/reply used by compiled communication plans:
    the request carries a page-key manifest, the reply one packed byte
    payload holding every requested page plus the unpacking manifest —
    a whole neighbor's halo moves in a single message pair.  Manifest
    entries come in two shapes, distinguished by tuple length (see
    ``docs/protocols.md`` for the full wire spec): a **6-tuple**
    ``(block_id, page_index, offset, nbytes, shape, dtype_str)``
    locates the page inside the packed payload, an **8-tuple**
    ``(block_id, page_index, segment, offset, nbytes, shape,
    dtype_str, version)`` is a zero-copy shared-memory descriptor —
    the requester maps the named segment and copies the page out
    directly, so only the few-dozen-byte manifest crosses the pipe.

The shared-memory data plane
----------------------------

With ``page_transport="shm"`` (the ``auto`` default resolves to it on
multi-rank worlds when :mod:`multiprocessing.shared_memory` is usable
and no integrity checksums are requested) every rank lazily creates a
:class:`~repro.runtime.shm.SharedPageArena` — named segments holding
one seqlock-stamped slot per served page — and bulk replies carry
descriptors instead of packed bytes.  Pages whose arrays cannot be
flat-mapped (object dtype, zero-byte) transparently fall back to the
packed path *per page*, counted in ``shm_fallbacks``.  Logical traffic
accounting (``messages``/``bytes_moved``/``per_neighbor``) is identical
between the two transports by design — equivalence suites compare them
directly — while ``shm_fetches``/``shm_bytes`` record how much volume
skipped the pipes.  Segment hygiene: each rank unlinks its own arena
when its transport closes; :meth:`ProcessWorld.finalize` probe-unlinks
the deterministically named segments of ranks that died before closing
(see :func:`~repro.runtime.shm.cleanup_rank_segments`).

The page-serving protocol
-------------------------

Each rank runs a dedicated **receiver thread** that continuously pumps
every connection: incoming page requests (``preq``/``breq``) are served
immediately out of the rank's registered Env snapshot — even while the
rank's main thread is deep in kernel computation — and everything else
is buffered into per-peer inboxes that the main thread's blocking waits
consume.  Eager serving is what makes the *overlapped* halo exchange
effective: a ``breq`` issued right after the step barrier is answered
while its owner computes, so by the time the requester finishes its own
interior sweep the reply is usually already buffered (the wait costs
only the unpacking).  It is also what keeps the protocol deadlock-free:
no rank ever depends on another rank reaching a blocking call before
its requests are served.

Serving from the receiver thread is safe for the same reason the
one-sided fetches of the ``threads`` backend are: owners never mutate
their *read* buffers between the synchronisation points of the refresh
protocol, and every fetch — blocking or overlapped — completes before
the collective that precedes the owner's next buffer swap (the refresh
advice drains any in-flight exchange before entering the success
allreduce).  After the program body finishes (or raises), every rank
enters a final ``exit`` drain barrier so late prefetch requests of
slower peers are still served before the process tears down.

Every rank counts its own traffic in a local
:class:`~repro.runtime.network.NetworkStats`; children ship their
counters (and their per-task trace counters) back to the parent over a
dedicated result pipe, where they are merged so that
``PlatformRun.network`` and ``PlatformRun.counters`` look exactly like
a ``threads`` run's.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import threading
import time
import warnings
import zlib
from collections import deque
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...obs.metrics import global_metrics
from ...obs.spans import global_tracer
from ..errors import CollectiveError, DeadRankError, InjectedFault, NetworkError, TaskError
from ..network import NetworkStats, _payload_nbytes
from ..shm import (
    SegmentCache,
    SharedPageArena,
    cleanup_rank_segments,
    ensure_tracker_running,
    new_shm_uid,
    shm_available,
    shm_eligible,
    validate_page_transport,
)
from ..simmpi import BlockDirectory
from ..task import TaskContext, task_scope
from ..tracing import global_trace
from .base import (
    BackendError,
    BulkFetchResult,
    CommHandle,
    CompletedCommHandle,
    ExecutionBackend,
    ExecutionWorld,
    RankResult,
    group_requests_by_owner,
    raise_spmd_failures,
)

__all__ = ["ProcessBackend", "ProcessTransport", "ProcessWorld"]

#: Collective kinds whose contributions are terminal per rank: once a
#: peer sent "exit" it will never contribute to red/bar/reg again, so a
#: buffered exit while awaiting one of those is a definitive failure.
_COLLECTIVE_KINDS = ("red", "bar", "reg", "exit")


def _concat(lists: List[list]) -> list:
    return [entry for sub in lists for entry in sub]


def _force_picklable(obj: Any, fallback: Callable[[Any], Any]):
    """Return ``obj`` if it pickles, else ``fallback(obj)`` (e.g. repr)."""
    try:
        pickle.dumps(obj)
        return obj
    except Exception:  # noqa: BLE001 - any pickling failure
        return fallback(obj)


class ProcessTransport:
    """Per-process endpoint of the pipe mesh (one instance per rank)."""

    #: Test hook (interleaving stress): when set *before the world forks*,
    #: every outgoing page reply is routed through
    #: ``reply_shim(serving_rank, peer_rank, reply_msg) -> delay_seconds``
    #: and enqueued only after that delay, so reply ordering across
    #: owners/requests can be scrambled deterministically (the shim
    #: derives the delay from a seed and the reply's request id).  Forked
    #: children inherit the class attribute.  Never set in production.
    reply_shim = None

    def __init__(
        self,
        rank: int,
        size: int,
        conns: Dict[int, Any],
        timeout: float,
        *,
        fault_plan: Any = None,
        use_shm: bool = False,
        shm_uid: str = "",
    ) -> None:
        self.rank = rank
        self.size = size
        self.conns = conns  # peer rank -> Connection
        self.timeout = timeout
        self.stats = NetworkStats()
        #: The rank's Env replica, served to peers (set by register_env).
        self.endpoint: Any = None
        #: Whether bulk replies publish pages into a shared-memory arena
        #: and ship descriptors (the zero-copy data plane) instead of
        #: packed pickled bytes.  The arena is created lazily on the
        #: first eligible serve, so worlds that never bulk-fetch create
        #: no segments at all.
        self._use_shm = bool(use_shm)
        self._shm_uid = shm_uid
        self._arena: Optional[SharedPageArena] = None
        self._segcache = SegmentCache()
        #: Installed fault plan (reply faults act in ``_post_reply``).
        self.fault_plan = fault_plan
        #: Whether page replies carry an adler32 integrity checksum, so
        #: corrupt-reply faults are *detected* (rejected by the
        #: requester) instead of silently poisoning the numerics.
        self._checksums = bool(fault_plan is not None and fault_plan.wants_checksums())
        #: First outbound send that failed because the peer's pipe was
        #: already dead — surfaced in the error raised at collect time so
        #: the failure is diagnosable instead of silently swallowed.
        self.first_send_error: Optional[str] = None
        #: Outstanding page requests of the *main* thread: ``(peer,
        #: req_id) -> description``, included in ``_await`` timeout
        #: messages so a hang names exactly what never arrived.
        self._outstanding: Dict[Tuple[int, int], str] = {}
        self._peer_of = {id(conn): peer for peer, conn in conns.items()}
        self._inbox: Dict[int, deque] = {peer: deque() for peer in conns}
        #: Guards the inboxes and the dead-peer set; the receiver thread
        #: notifies it whenever a buffered message (or an EOF) arrives.
        self._inbox_cond = threading.Condition()
        self._gens: Dict[str, int] = {}
        self._next_req = 0
        #: Peers whose connection hit EOF (or failed a send).  A clean
        #: peer closes only after completing the exit barrier, i.e.
        #: after sending us everything we will ever need — so a gone
        #: peer is fatal only when a wait for it comes up empty.
        self._dead: set = set()
        # All outbound traffic goes through a dedicated sender thread:
        # Connection.send blocks without timeout when the pipe buffer is
        # full, and two ranks fanning out a large collective payload to
        # each other (e.g. the registration allgather of a many-block
        # Env) would deadlock if anything else ever blocked in send.
        self._outbox: queue.Queue = queue.Queue()
        self._sender = threading.Thread(
            target=self._sender_main, name=f"proc-mpi-sender-{rank}", daemon=True
        )
        self._sender.start()
        # All inbound traffic goes through a dedicated receiver thread:
        # page requests are served the moment they arrive (even while the
        # main thread computes — the key to overlapped halo exchange),
        # everything else lands in the per-peer inboxes above.
        self._recv_stop = False
        self._receiver = threading.Thread(
            target=self._receiver_main, name=f"proc-mpi-recv-{rank}", daemon=True
        )
        self._receiver.start()

    # -- sending --------------------------------------------------------
    def _sender_main(self) -> None:
        while True:
            item = self._outbox.get()
            if item is None:
                return
            peer, msg = item
            try:
                self.conns[peer].send(msg)
            except Exception as exc:  # noqa: BLE001 - a failed send means the peer died;
                # waits on that peer notice via _dead and fail fast.  The
                # failure itself is recorded (counter + first description)
                # so it surfaces in the error raised at collect time
                # instead of being silently swallowed here.
                self.stats.peer_dead += 1
                # The sender thread has no task scope; attribute the event
                # to the rank's master task explicitly.
                global_trace().for_task(
                    TaskContext(
                        mpi_rank=self.rank, mpi_size=self.size, omp_thread=0, omp_threads=1
                    )
                ).peer_dead += 1
                if self.first_send_error is None:
                    self.first_send_error = (
                        f"rank {self.rank} could not send {msg[0]!r} to rank "
                        f"{peer}: {exc!r}"
                    )
                with self._inbox_cond:
                    self._dead.add(peer)
                    self._inbox_cond.notify_all()

    def _send(self, peer: int, msg: tuple) -> None:
        self._outbox.put((peer, msg))
        self.stats.messages += 1
        self.stats.bytes_moved += _payload_nbytes(msg)

    # -- receiving ------------------------------------------------------
    def _receiver_main(self) -> None:
        """Pump every connection until closed, serving page requests eagerly."""
        while not self._recv_stop:
            conns = [conn for peer, conn in self.conns.items() if peer not in self._dead]
            if not conns:
                time.sleep(0.01)
                continue
            for conn in connection_wait(conns, timeout=0.1):
                peer = self._peer_of[id(conn)]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    with self._inbox_cond:
                        self._dead.add(peer)
                        self._inbox_cond.notify_all()
                    continue
                if msg[0] == "preq":
                    self._serve_page(peer, msg)
                elif msg[0] == "breq":
                    self._serve_page_batch(peer, msg)
                else:
                    with self._inbox_cond:
                        self._inbox[peer].append(msg)
                        self._inbox_cond.notify_all()

    def _serve_page(self, peer: int, msg: tuple) -> None:
        """Answer a peer's page request from the local Env snapshot."""
        _, req_id, block_id, page_index = msg
        # The receiver thread has no task context: serve spans go on the
        # rank's explicit "recv" track (Perfetto shows them as their own
        # thread lane under the rank's process).
        with global_tracer().span_at("recv.serve", self.rank, "recv", peer=peer):
            self._serve_page_inner(peer, req_id, block_id, page_index)

    def _serve_page_inner(self, peer: int, req_id, block_id, page_index) -> None:
        try:
            if self.endpoint is None:
                raise NetworkError(f"rank {self.rank} has no registered Env")
            from ...memory.page import PageKey  # local import to avoid a cycle

            data = self.endpoint.page_snapshot(PageKey(block_id, page_index))
            if self._checksums:
                checksum = zlib.adler32(np.ascontiguousarray(data).tobytes())
                reply = ("prep", req_id, data, checksum)
            else:
                reply = ("prep", req_id, data)
        except Exception as exc:  # noqa: BLE001 - shipped to the requester
            reply = ("perr", req_id, f"rank {self.rank} could not serve page "
                                     f"({block_id}, {page_index}): {exc!r}")
        # Uncounted send: the requester accounts the fetch traffic (one
        # request plus one reply), mirroring SimNetwork.fetch_page.
        self._post_reply(peer, reply)

    def _serve_page_batch(self, peer: int, msg: tuple) -> None:
        """Answer a batched page request with one packed payload + manifest."""
        _, req_id, items = msg
        with global_tracer().span_at(
            "recv.serve_batch", self.rank, "recv", peer=peer, pages=len(items)
        ):
            self._serve_page_batch_inner(peer, req_id, items)

    def _serve_page_batch_inner(self, peer: int, req_id, items) -> None:
        try:
            if self.endpoint is None:
                raise NetworkError(f"rank {self.rank} has no registered Env")
            from ...memory.page import PageKey  # local import to avoid a cycle

            chunks: List[bytes] = []
            manifest: List[tuple] = []
            offset = 0
            for block_id, page_index in items:
                key = PageKey(block_id, page_index)
                if self._use_shm:
                    descriptor = self._publish_page(key)
                    if descriptor is not None:
                        manifest.append(descriptor)
                        continue
                data = np.ascontiguousarray(self.endpoint.page_snapshot(key))
                raw = data.tobytes()
                manifest.append(
                    (block_id, page_index, offset, len(raw), data.shape, data.dtype.str)
                )
                chunks.append(raw)
                offset += len(raw)
            payload = b"".join(chunks)
            if self._checksums:
                reply = ("brep", req_id, payload, manifest, zlib.adler32(payload))
            else:
                reply = ("brep", req_id, payload, manifest)
        except Exception as exc:  # noqa: BLE001 - shipped to the requester
            reply = ("perr", req_id, f"rank {self.rank} could not serve page batch "
                                     f"of {len(items)} pages: {exc!r}")
        # Uncounted send, as for single pages: the requester accounts it.
        self._post_reply(peer, reply)

    def _publish_page(self, key) -> Optional[tuple]:
        """Publish one page into the shm arena; descriptor 8-tuple or None.

        ``None`` means "pack it into the payload instead": the page's
        array is not flat-mappable (object dtype, zero bytes) or the
        endpoint is a bare stub without the zero-copy export hook.  The
        endpoint's :meth:`~repro.memory.env.Env.page_export` supplies a
        no-copy view plus the content generation used to reuse the
        published slot across repeat serves of an unchanged buffer;
        endpoints exposing only ``page_snapshot`` publish the snapshot
        with no generation, forcing a seqlock rewrite per serve.
        """
        exporter = getattr(self.endpoint, "page_export", None)
        if exporter is not None:
            data, generation = exporter(key)
        else:
            data, generation = self.endpoint.page_snapshot(key), None
        if not shm_eligible(data):
            return None
        if self._arena is None:
            self._arena = SharedPageArena(self._shm_uid, self.rank)
        segment, offset, nbytes, version = self._arena.publish(key, data, generation)
        return (
            key.block_id,
            key.page_index,
            segment,
            offset,
            nbytes,
            tuple(np.shape(data)),
            np.asarray(data).dtype.str,
            version,
        )

    def _post_reply(self, peer: int, reply: tuple) -> None:
        """Enqueue a page reply, via the fault plan / interleaving shim."""
        plan = self.fault_plan
        if plan is not None and reply[0] in ("prep", "brep"):
            fault = plan.take_reply(self.rank, peer)
            if fault is not None:
                if fault.kind == "drop_reply":
                    # The reply never leaves; the requester's _await hits
                    # its deadline and reports the outstanding request.
                    return
                if fault.kind == "corrupt_reply":
                    # Flip payload bytes *after* the checksum was computed
                    # over the pristine data, so the requester's integrity
                    # check rejects the reply.
                    reply = self._corrupt_reply(reply)
                elif fault.kind == "delay_reply":
                    timer = threading.Timer(
                        fault.seconds, self._outbox.put, args=((peer, reply),)
                    )
                    timer.daemon = True
                    timer.start()
                    return
        shim = type(self).reply_shim
        if shim is not None:
            delay = float(shim(self.rank, peer, reply))
            if delay > 0:
                timer = threading.Timer(delay, self._outbox.put, args=((peer, reply),))
                timer.daemon = True
                timer.start()
                return
        self._outbox.put((peer, reply))

    @staticmethod
    def _corrupt_reply(reply: tuple) -> tuple:
        """Return ``reply`` with its page payload perturbed (injected fault)."""
        if reply[0] == "brep":
            payload = bytearray(reply[2])
            if payload:
                payload[0] ^= 0xFF
            return (reply[0], reply[1], bytes(payload)) + tuple(reply[3:])
        data = np.array(reply[2], copy=True)
        flat = data.reshape(-1)
        if flat.size:
            flat.flat[0] = flat.flat[0] + 1
        return (reply[0], reply[1], data) + tuple(reply[3:])

    def _await(self, peer: int, match: Callable[[tuple], bool], what: str,
               *, fail_on_exit: bool = False) -> tuple:
        """Block until a buffered message from ``peer`` matches.

        The receiver thread does all the pumping (and page serving);
        this just consumes from the peer's inbox under the condition.
        """
        deadline = time.monotonic() + self.timeout
        with self._inbox_cond:
            while True:
                queue = self._inbox[peer]
                for index, msg in enumerate(queue):
                    if match(msg):
                        del queue[index]
                        return msg
                if fail_on_exit and any(
                    m[0] == "coll" and m[1] == "exit" for m in queue
                ):
                    raise CollectiveError(
                        f"rank {peer} exited while rank {self.rank} was waiting for {what}"
                    )
                if peer in self._dead:
                    raise DeadRankError(
                        peer,
                        f"closed its connection while rank {self.rank} was "
                        f"waiting for {what}{self._pending_manifest(peer)}",
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise CollectiveError(
                        f"rank {self.rank} timed out after {self.timeout}s waiting "
                        f"for {what} from rank {peer}{self._pending_manifest(peer)}"
                    )
                self._inbox_cond.wait(min(remaining, 0.25))

    def _pending_manifest(self, peer: Optional[int] = None) -> str:
        """Render the outstanding page requests (of ``peer``, or all) for errors."""
        pending = [
            desc
            for (req_peer, _req_id), desc in sorted(self._outstanding.items())
            if peer is None or req_peer == peer
        ]
        if not pending:
            return ""
        shown = pending[:8]
        more = f" (+{len(pending) - len(shown)} more)" if len(pending) > len(shown) else ""
        return "; outstanding requests: " + ", ".join(shown) + more

    # -- collectives ----------------------------------------------------
    def collective(self, kind: str, value: Any, op: Callable[[List[Any]], Any]) -> Any:
        """Allgather ``value`` from every rank and reduce with ``op``.

        Contributions are ordered by rank, so ``op`` sees the same list
        on every rank.
        """
        if kind not in _COLLECTIVE_KINDS:
            raise CollectiveError(f"unknown collective kind {kind!r}")
        gen = self._gens.get(kind, 0)
        self._gens[kind] = gen + 1
        for peer in self.conns:
            self._send(peer, ("coll", kind, gen, value))
        contributions = {self.rank: value}
        for peer in sorted(self.conns):
            msg = self._await(
                peer,
                # "exit" ignores the generation: during error unwinding a
                # failed rank reaches the drain barrier at a different
                # collective count than its healthy peers.
                lambda m: m[0] == "coll" and m[1] == kind
                and (kind == "exit" or m[2] == gen),
                f"{kind!r} collective (generation {gen})",
                fail_on_exit=kind != "exit",
            )
            contributions[peer] = msg[3]
        return op([contributions[rank] for rank in sorted(contributions)])

    def exit_barrier(self) -> None:
        """End-of-program drain: keep serving pages until every rank is done."""
        self.collective("exit", None, lambda values: None)

    # -- page transport -------------------------------------------------
    def fetch_page(self, owner: int, block_id: int, page_index: int):
        """Fetch one page snapshot from ``owner`` (request/reply protocol)."""
        if owner == self.rank:
            if self.endpoint is None:
                raise NetworkError(f"rank {self.rank} has no registered Env")
            from ...memory.page import PageKey  # local import to avoid a cycle

            data = self.endpoint.page_snapshot(PageKey(block_id, page_index))
        else:
            self._next_req += 1
            req_id = self._next_req
            self._outstanding[(owner, req_id)] = (
                f"page {page_index} of block {block_id} from rank {owner} (req {req_id})"
            )
            try:
                self._send(owner, ("preq", req_id, block_id, page_index))
                msg = self._await(
                    owner,
                    lambda m: m[0] in ("prep", "perr") and m[1] == req_id,
                    f"page reply {req_id} for block {block_id} page {page_index}",
                )
            finally:
                self._outstanding.pop((owner, req_id), None)
            if msg[0] == "perr":
                raise NetworkError(msg[2])
            data = msg[2]
            if len(msg) > 3 and msg[3] is not None:
                actual = zlib.adler32(np.ascontiguousarray(data).tobytes())
                if actual != msg[3]:
                    raise NetworkError(
                        f"page reply {req_id} from rank {owner} failed its "
                        f"integrity check (adler32 {actual:#010x} != {msg[3]:#010x})"
                    )
            self.stats.messages += 1  # the reply (the request was counted by _send)
            self.stats.record_neighbor(self.rank, owner, 1, 32)
            self.stats.record_neighbor(owner, self.rank, 1, int(data.nbytes))
        self.stats.page_fetches += 1
        self.stats.bytes_moved += int(data.nbytes) + 32
        return data

    def fetch_pages_batch(self, owner: int, items: List[Tuple[int, int]]) -> List[Any]:
        """Fetch a batch of pages from one owner in a single message pair.

        ``items`` holds ``(owner-local block id, page index)`` pairs; the
        reply is one packed byte payload plus an unpacking manifest, so
        the whole batch costs one request and one reply regardless of
        page count.
        """
        if owner == self.rank:
            return self._local_batch(items)
        req_id = self.issue_batch(owner, items)
        return self.await_batch(owner, req_id, items)

    def _local_batch(self, items: List[Tuple[int, int]]) -> List[Any]:
        """Serve a batch out of the rank's own Env (no messages, counted as bulk)."""
        from ...memory.page import PageKey  # local import to avoid a cycle

        if self.endpoint is None:
            raise NetworkError(f"rank {self.rank} has no registered Env")
        datas: List[Any] = [
            self.endpoint.page_snapshot(PageKey(block_id, page_index))
            for block_id, page_index in items
        ]
        self._account_batch(datas)
        return datas

    def issue_batch(self, owner: int, items: List[Tuple[int, int]]) -> int:
        """Send the batched page request *now*; returns the request id.

        The nonblocking half of the overlapped exchange: the ``breq``
        leaves immediately (the owner serves it next time it pumps,
        i.e. inside whatever collective or fetch wait it blocks on
        while this rank computes) and :meth:`await_batch` drains the
        reply later.
        """
        self._next_req += 1
        req_id = self._next_req
        self._outstanding[(owner, req_id)] = (
            f"bulk reply of {len(items)} pages from rank {owner} (req {req_id})"
        )
        self._send(owner, ("breq", req_id, list(items)))
        return req_id

    def await_batch(self, owner: int, req_id: int, items: List[Tuple[int, int]]) -> List[Any]:
        """Block until the ``brep`` for ``req_id`` arrived; unpack and account it."""
        try:
            msg = self._await(
                owner,
                lambda m: m[0] in ("brep", "perr") and m[1] == req_id,
                f"bulk page reply {req_id} ({len(items)} pages)",
            )
        finally:
            self._outstanding.pop((owner, req_id), None)
        if msg[0] == "perr":
            raise NetworkError(msg[2])
        payload, manifest = msg[2], msg[3]
        if len(msg) > 4 and msg[4] is not None:
            actual = zlib.adler32(payload)
            if actual != msg[4]:
                raise NetworkError(
                    f"bulk page reply {req_id} from rank {owner} failed its "
                    f"integrity check (adler32 {actual:#010x} != {msg[4]:#010x})"
                )
        datas: List[Any] = []
        shm_pages = 0
        shm_payload = 0
        fallback_pages = 0
        for entry in manifest:
            if len(entry) == 8:  # shm descriptor: map the segment, copy directly
                _bid, _pidx, segment, offset, nbytes, shape, dtype_str, version = entry
                data = self._segcache.read(segment, offset, nbytes, version, shape, dtype_str)
                shm_pages += 1
                shm_payload += int(data.nbytes)
            else:  # packed in the pipe payload
                _bid, _pidx, offset, nbytes, shape, dtype_str = entry
                dt = np.dtype(dtype_str)
                data = np.frombuffer(
                    payload, dtype=dt, count=nbytes // dt.itemsize, offset=offset
                ).reshape(shape)
                if self._use_shm:
                    fallback_pages += 1
            datas.append(data)
        payload_bytes = sum(int(d.nbytes) for d in datas)
        # Logical accounting — identical whether the page bytes crossed
        # the pipe or a mapped segment, so shm and pipe runs stay
        # message-for-message and byte-for-byte comparable; the shm_*
        # counters record the transport split on top.
        self.stats.messages += 1  # the reply (the request was counted by _send)
        self.stats.record_neighbor(self.rank, owner, 1, 32 + 16 * len(items))
        self.stats.record_neighbor(owner, self.rank, 1, payload_bytes)
        self._account_batch(datas)
        if shm_pages or fallback_pages:
            self.stats.shm_fetches += shm_pages
            self.stats.shm_bytes += shm_payload
            self.stats.shm_fallbacks += fallback_pages
            trace = global_trace().for_task()
            trace.shm_fetches += shm_pages
            trace.shm_bytes += shm_payload
            trace.shm_fallbacks += fallback_pages
        return datas

    def _account_batch(self, datas: List[Any]) -> None:
        self.stats.page_fetches += len(datas)
        self.stats.bulk_fetches += 1
        self.stats.bulk_pages += len(datas)
        # Payload plus request header plus per-page manifest entries —
        # the same accounting shape as SimNetwork.fetch_pages.
        self.stats.bytes_moved += sum(int(d.nbytes) for d in datas) + 32 + 16 * len(datas)

    def close(self) -> None:
        # The sentinel queues behind any pending messages, so joining the
        # sender flushes everything (e.g. the exit-barrier contribution
        # a slower peer is still waiting for) before the pipes close.
        self._outbox.put(None)
        self._sender.join(timeout=5.0)
        # Stop the receiver before closing the pipes out from under it.
        self._recv_stop = True
        self._receiver.join(timeout=5.0)
        # A transport thread still alive after its join timeout is stuck
        # in a blocking pipe operation; warn so CI hangs are diagnosable
        # instead of silently leaking the thread.
        leaked = [t.name for t in (self._sender, self._receiver) if t.is_alive()]
        if leaked:
            warnings.warn(
                f"rank {self.rank} transport leaked thread(s) {', '.join(leaked)} "
                "(still alive after the 5s close timeout; likely blocked on a "
                "full or dead pipe)",
                RuntimeWarning,
                stacklevel=2,
            )
        for conn in self.conns.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
        # Shared-memory hygiene: detach peer segments (their owners
        # unlink them), then unlink our own arena — the one unlink per
        # segment that retires its resource-tracker entry.
        self._segcache.close_all()
        if self._arena is not None:
            self._arena.close(unlink=True)
            self._arena = None


class ProcessWorld(ExecutionWorld):
    """SPMD world whose ranks are real forked processes."""

    backend_name = "process"

    def __init__(
        self, size: int, *, timeout: float = 60.0, page_transport: str = "auto"
    ) -> None:
        if size < 1:
            raise TaskError("MPI world size must be >= 1")
        self.size = size
        self.timeout = timeout
        #: Requested page transport (``"auto"`` | ``"shm"`` | ``"pipe"``);
        #: the effective choice is resolved at launch, see
        #: :meth:`resolve_page_transport`.
        self.page_transport = validate_page_transport(page_transport)
        #: Effective transport of the most recent launch (None before).
        self.page_transport_resolved: Optional[str] = None
        #: Namespace of this world's shared-memory segment names —
        #: created pre-fork so the parent can probe-unlink any segment a
        #: dead child leaked (deterministic names, contiguous sequence).
        self.shm_uid = new_shm_uid()
        self.directory = BlockDirectory()
        self.rank_envs: Dict[int, Any] = {}
        #: Parent-side aggregate of every rank's transport counters.
        self.stats = NetworkStats()
        self._transport: Optional[ProcessTransport] = None
        self._pending_blocks: List[Tuple[Any, int, int, bool]] = []
        self._finalized = False
        #: True inside a forked rank process (set in _child_main).  An
        #: injected kill there is a *real* process death (``os._exit``),
        #: so peers and the parent exercise genuine dead-pipe detection.
        self._forked_child = False
        #: First undeliverable send observed by any rank's transport,
        #: surfaced in the failure raised after collection.
        self._send_notes: List[str] = []
        #: Effective shm decision of the current launch (set pre-fork in
        #: :meth:`run_spmd` so forked children inherit it).
        self._use_shm = False

    # -- page-transport resolution ---------------------------------------
    def resolve_page_transport(self) -> str:
        """The effective page transport: ``"shm"`` or ``"pipe"``.

        ``"pipe"`` is always honoured.  ``"shm"`` requires working named
        shared memory (:class:`~repro.runtime.backends.base.BackendError`
        otherwise) but still yields to ``"pipe"`` when the installed
        fault plan wants reply checksums — corrupt-reply detection needs
        a packed payload to checksum, and a descriptor-only reply has
        none.  ``"auto"`` picks ``"shm"`` on multi-rank worlds whenever
        both conditions hold, ``"pipe"`` otherwise.
        """
        mode = self.page_transport
        if mode == "pipe":
            return "pipe"
        wants_checksums = bool(
            self.fault_plan is not None and self.fault_plan.wants_checksums()
        )
        if mode == "shm":
            if not shm_available():
                raise BackendError(
                    "page_transport='shm' needs multiprocessing.shared_memory, "
                    "which is unavailable on this platform; use 'pipe' or 'auto'"
                )
            return "pipe" if wants_checksums else "shm"
        return (
            "shm"
            if self.size > 1 and shm_available() and not wants_checksums
            else "pipe"
        )

    # -- failure injection ----------------------------------------------
    def _execute_kill(self, fault: Any, rank: int) -> None:
        if self._forked_child:
            # Hard exit: no exit barrier, no result payload, every pipe
            # closes mid-protocol.  Peers see EOF, the parent collector
            # sees a dead result pipe and a nonzero exit code.
            os._exit(1)
        raise InjectedFault(rank, str(fault))

    # -- SPMD launch ----------------------------------------------------
    def run_spmd(
        self, body: Callable[[TaskContext], Any], *, omp_threads: int = 1
    ) -> List[RankResult]:
        results = [RankResult(rank=r) for r in range(self.size)]
        self.page_transport_resolved = self.resolve_page_transport()
        if self.size == 1:
            self._run_rank_inline(results[0], body, omp_threads)
            raise_spmd_failures(results)
            return results

        self._use_shm = use_shm = self.page_transport_resolved == "shm"
        if use_shm:
            # Fork the resource tracker *now* so every child inherits it:
            # one shared tracker means segment register/unregister from
            # any rank lands in one set, and the single unlink per
            # segment (owner or parent sweep) retires it cleanly.
            ensure_tracker_running()
        ctx = multiprocessing.get_context("fork")
        # One duplex pipe per unordered rank pair, created before forking
        # so every process inherits its ends.
        conns_of: Dict[int, Dict[int, Any]] = {r: {} for r in range(self.size)}
        for i in range(self.size):
            for j in range(i + 1, self.size):
                end_i, end_j = ctx.Pipe(duplex=True)
                conns_of[i][j] = end_i
                conns_of[j][i] = end_j
        result_pipes = {r: ctx.Pipe(duplex=False) for r in range(1, self.size)}

        procs = {}
        for rank in range(1, self.size):
            proc = ctx.Process(
                target=self._child_main,
                args=(rank, conns_of, result_pipes[rank][1], body, omp_threads),
                name=f"proc-mpi-rank-{rank}",
                daemon=True,
            )
            proc.start()
            procs[rank] = proc

        # The parent is rank 0: drop the ends belonging to other ranks.
        for rank in range(1, self.size):
            for conn in conns_of[rank].values():
                conn.close()
            result_pipes[rank][1].close()
        self._transport = transport = ProcessTransport(
            0,
            self.size,
            conns_of[0],
            self.timeout,
            fault_plan=self.fault_plan,
            use_shm=self._use_shm,
            shm_uid=self.shm_uid,
        )
        try:
            self._run_rank_inline(results[0], body, omp_threads, mpi_size=self.size)
            self._collect_children(results, result_pipes, procs)
        finally:
            self.stats.merge(transport.stats)
            if transport.first_send_error is not None:
                self._send_notes.insert(0, transport.first_send_error)
            transport.close()
            self._transport = None
            for rank, proc in procs.items():
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - defensive teardown
                    proc.terminate()
                    proc.join(timeout=5.0)
        raise_spmd_failures(results, note=self._send_notes[0] if self._send_notes else None)
        return results

    def _run_rank_inline(
        self,
        result: RankResult,
        body: Callable[[TaskContext], Any],
        omp_threads: int,
        *,
        mpi_size: int = 1,
    ) -> None:
        context = TaskContext(
            mpi_rank=result.rank, mpi_size=mpi_size, omp_thread=0, omp_threads=omp_threads
        )
        try:
            with task_scope(context):
                result.value = body(context)
        except BaseException as exc:  # noqa: BLE001 - propagated by caller
            result.error = exc
        finally:
            if self._transport is not None:
                try:
                    self._transport.exit_barrier()
                except Exception as exc:  # noqa: BLE001 - secondary failure
                    if result.error is None:
                        result.error = exc

    def _child_main(
        self,
        rank: int,
        conns_of: Dict[int, Dict[int, Any]],
        result_conn,
        body: Callable[[TaskContext], Any],
        omp_threads: int,
    ) -> None:
        # Forked child: drop inherited pipe ends belonging to other ranks
        # so a dead peer is observable as EOF rather than a silent hang.
        for other, conns in conns_of.items():
            if other != rank:
                for conn in conns.values():
                    conn.close()
        self._forked_child = True
        self._transport = transport = ProcessTransport(
            rank,
            self.size,
            conns_of[rank],
            self.timeout,
            fault_plan=self.fault_plan,
            use_shm=self._use_shm,
            shm_uid=self.shm_uid,
        )
        # The child's fork-copied trace may contain pre-fork counters;
        # reset so only this rank's tasks are shipped back to the parent.
        # Likewise for the span/metric buffers: the fork copied rank 0's
        # pre-fork spans (weave, warm-up) and shipping them back would
        # duplicate them in the merged timeline.
        global_trace().reset()
        tracer = global_tracer()
        tracer.reset()
        global_metrics().reset()
        result = RankResult(rank=rank)
        self._run_rank_inline(result, body, omp_threads, mpi_size=self.size)
        payload = {
            # Rank results cross a process boundary here; values that do
            # not pickle (e.g. woven application instances) degrade to
            # None — the aspect only consumes rank 0's value, which lives
            # in the parent and never crosses this boundary.
            "value": _force_picklable(result.value, lambda _v: None),
            "error": _force_picklable(
                result.error, lambda e: RuntimeError(f"rank {rank} failed: {e!r}")
            ),
            "counters": global_trace().all_counters(),
            "stats": transport.stats,
            # Rank-local observability buffers ride the same result
            # channel; snapshot timestamps are wall-clock anchored, so
            # the parent's merge lines ranks up on one timeline.
            "spans": tracer.snapshot() if tracer.enabled else [],
            "metrics": global_metrics().export_state() if tracer.enabled else {},
            "send_error": transport.first_send_error,
        }
        try:
            result_conn.send(payload)
        finally:
            result_conn.close()
            transport.close()

    def _collect_children(self, results, result_pipes, procs) -> None:
        trace = global_trace()
        deadline = time.monotonic() + self.timeout + 10.0
        for rank in range(1, self.size):
            recv_conn = result_pipes[rank][0]
            remaining = max(deadline - time.monotonic(), 0.1)
            proc = procs.get(rank)
            exitcode = proc.exitcode if proc is not None else None
            try:
                if recv_conn.poll(remaining):
                    payload = recv_conn.recv()
                else:
                    if proc is not None:
                        proc.join(timeout=0.5)
                        exitcode = proc.exitcode
                    if exitcode is not None and exitcode != 0:
                        raise DeadRankError(
                            rank, f"process exited with code {exitcode} before reporting"
                        )
                    raise NetworkError(
                        f"rank {rank} did not report a result within {self.timeout}s"
                    )
            except (EOFError, OSError):
                # Dead result pipe: the child died (crash or injected
                # os._exit) without shipping its payload.
                if proc is not None:
                    proc.join(timeout=5.0)
                    exitcode = proc.exitcode
                results[rank].error = DeadRankError(
                    rank,
                    "died without reporting a result"
                    + (f" (exit code {exitcode})" if exitcode is not None else ""),
                )
                continue
            except NetworkError as exc:
                results[rank].error = exc
                continue
            finally:
                recv_conn.close()
            results[rank].value = payload["value"]
            results[rank].error = payload["error"]
            if payload.get("send_error"):
                self._send_notes.append(payload["send_error"])
            trace.merge_counters(payload["counters"])
            self.stats.merge(payload["stats"])
            global_tracer().merge_events(payload.get("spans", ()))
            metrics_state = payload.get("metrics")
            if metrics_state:
                global_metrics().merge_state(metrics_state)

    # -- Env / block registration --------------------------------------
    def register_env(self, rank: int, env: Any) -> None:
        self.rank_envs[rank] = env
        if self._transport is not None:
            self._transport.endpoint = env

    def env_of(self, rank: int) -> Any:
        try:
            return self.rank_envs[rank]
        except KeyError:
            raise NetworkError(f"rank {rank} has not registered an Env") from None

    def register_block(self, logical_key: Any, rank: int, block_id: int, *, owner: bool) -> None:
        self.directory.register(logical_key, rank, block_id, owner=owner)
        self._pending_blocks.append((logical_key, rank, block_id, owner))

    def commit_registration(self) -> None:
        """Allgather every rank's directory entries (doubles as a barrier)."""
        transport = self._require_transport()
        pending, self._pending_blocks = self._pending_blocks, []
        if self.fault_plan is not None:
            self.fault_point(transport.rank if transport is not None else 0, "register")
        if transport is None:
            return  # single-rank world: the local directory is complete
        own_rank = transport.rank
        for logical_key, rank, block_id, owner in transport.collective("reg", pending, _concat):
            if rank == own_rank:
                continue  # registered locally by register_block already
            self.directory.register(logical_key, rank, block_id, owner=owner)

    # -- collectives ----------------------------------------------------
    def barrier(self) -> None:
        transport = self._require_transport()
        if transport is None:
            self.stats.barriers += 1
            return
        transport.stats.barriers += 1
        transport.collective("bar", None, lambda values: None)

    def allreduce(self, value: Any, op: Callable[[List[Any]], Any]) -> Any:
        transport = self._require_transport()
        if transport is None:
            self.stats.allreduces += 1
            return op([value])
        transport.stats.allreduces += 1
        return transport.collective("red", value, op)

    def _require_transport(self) -> Optional[ProcessTransport]:
        if self._transport is None and self.size > 1:
            raise NetworkError(
                "process-backend collectives are only available inside run_spmd()"
            )
        return self._transport

    # -- page transport -------------------------------------------------
    def fetch_page_by_logical(self, requester: int, logical_key: Any, page_index: int):
        owner = self.directory.owner_of(logical_key)
        block_id = self.directory.block_id_on(logical_key, owner)
        transport = self._transport
        if transport is not None:
            return transport.fetch_page(owner, block_id, page_index)
        from ...memory.page import PageKey  # local import to avoid a cycle

        data = self.env_of(owner).page_snapshot(PageKey(block_id, page_index))
        self.stats.page_fetches += 1
        self.stats.messages += 2
        self.stats.bytes_moved += int(data.nbytes) + 32
        return data

    def fetch_pages_bulk(
        self, requester: int, requests: Sequence[Tuple[Any, int]]
    ) -> BulkFetchResult:
        """Batched fetch: one packed pipe exchange per owning rank."""
        result = BulkFetchResult()
        transport = self._transport
        from ...memory.page import PageKey  # local import to avoid a cycle

        for owner, items in sorted(group_requests_by_owner(self.directory, requests).items()):
            if transport is not None:
                datas = transport.fetch_pages_batch(
                    owner, [(block_id, page) for _, page, block_id in items]
                )
            else:  # single-rank world: serve locally, keep the accounting shape
                env = self.env_of(owner)
                datas = [
                    env.page_snapshot(PageKey(block_id, page))
                    for _, page, block_id in items
                ]
                payload_bytes = sum(int(d.nbytes) for d in datas)
                manifest_bytes = 32 + 16 * len(datas)
                self.stats.page_fetches += len(datas)
                self.stats.bulk_fetches += 1
                self.stats.bulk_pages += len(datas)
                self.stats.messages += 2
                self.stats.bytes_moved += payload_bytes + manifest_bytes
                self.stats.record_neighbor(requester, owner, 1, manifest_bytes)
                self.stats.record_neighbor(owner, requester, 1, payload_bytes)
            result.pages.extend(
                (logical_key, page, data)
                for (logical_key, page, _), data in zip(items, datas)
            )
            result.exchanges += 1
            result.nbytes += sum(int(d.nbytes) for d in datas)
        return result

    def fetch_pages_bulk_async(
        self, requester: int, requests: Sequence[Tuple[Any, int]]
    ) -> CommHandle:
        """Nonblocking batched fetch: every ``breq`` leaves immediately.

        One aggregated request per owning rank is sent right away (pages
        owned by this rank are snapshotted inline, matching the blocking
        path's timing); the returned handle drains the packed replies —
        pumping and serving peer requests meanwhile — only when waited.
        Owner resolution failures raise here, at issue time.
        """
        transport = self._transport
        if transport is None:  # single-rank world: synchronous local serve
            return CompletedCommHandle(self.fetch_pages_bulk(requester, requests))
        grouped = sorted(group_requests_by_owner(self.directory, requests).items())
        pending: List[Tuple[int, list, Optional[int], Optional[List[Any]]]] = []
        for owner, items in grouped:
            keyed = [(block_id, page) for _, page, block_id in items]
            if owner == transport.rank:
                pending.append((owner, items, None, transport._local_batch(keyed)))
            else:
                pending.append((owner, items, transport.issue_batch(owner, keyed), None))
        return _ProcessBulkHandle(transport, pending)

    # -- lifecycle / accounting -----------------------------------------
    def finalize(self) -> None:
        self.rank_envs.clear()
        self._pending_blocks = []
        if self._transport is not None:  # pragma: no cover - defensive
            self._transport.close()
            self._transport = None
        # Dead-child shared-memory sweep: ranks that closed cleanly
        # already unlinked their own arenas (the probe finds nothing);
        # ranks that died mid-run left deterministically named segments
        # the parent can still unlink — keeping /dev/shm and the
        # resource tracker free of leaks no matter how the run ended.
        if self.page_transport != "pipe" and shm_available():
            for rank in range(self.size):
                cleanup_rank_segments(self.shm_uid, rank)
        self._finalized = True

    @property
    def finalized(self) -> bool:
        return self._finalized

    def traffic_summary(self) -> dict:
        return self.stats.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessWorld(size={self.size}, stats={self.stats.as_dict()})"


class _ProcessBulkHandle(CommHandle):
    """In-flight ``breq``/``brep`` exchanges of one async bulk fetch."""

    __slots__ = ("_transport", "_pending")

    def __init__(self, transport: ProcessTransport, pending) -> None:
        super().__init__()
        self._transport = transport
        #: ``(owner, manifest items, req_id | None, local datas | None)``
        #: per owner, in owner order (req_id None means served locally).
        self._pending = pending

    def _wait(self) -> BulkFetchResult:
        result = BulkFetchResult()
        for owner, items, req_id, datas in self._pending:
            if datas is None:
                datas = self._transport.await_batch(
                    owner, req_id, [(block_id, page) for _, page, block_id in items]
                )
            result.pages.extend(
                (logical_key, page, data)
                for (logical_key, page, _), data in zip(items, datas)
            )
            result.exchanges += 1
            result.nbytes += sum(int(d.nbytes) for d in datas)
        return result


class ProcessBackend(ExecutionBackend):
    """Backend producing :class:`ProcessWorld` instances (fork start method)."""

    name = "process"

    def available(self) -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    def create_world(
        self, size: int, *, timeout: float = 60.0, page_transport: str = "auto"
    ) -> ProcessWorld:
        if not self.available():
            raise BackendError(
                "the 'process' backend needs the 'fork' multiprocessing start "
                "method (woven applications are inherited by forked ranks, not "
                "pickled); use the 'threads' backend on this platform"
            )
        return ProcessWorld(size, timeout=timeout, page_transport=page_transport)
