"""Abstract interface of the execution-backend subsystem.

The distributed-memory aspect module does not construct a runtime
directly; it asks the backend registry (:mod:`repro.runtime.backends`)
for an :class:`ExecutionBackend` and lets it create an
:class:`ExecutionWorld`.  A world bundles the four capabilities the
aspect module needs:

* **SPMD launch** — run the whole end-user program once per rank
  (:meth:`ExecutionWorld.run_spmd`), each rank with its own Env replica;
* **collectives** — :meth:`ExecutionWorld.barrier` /
  :meth:`ExecutionWorld.allreduce` between the ranks of the world;
* **block registration** — a cross-rank directory mapping logical block
  keys to owning ranks (:meth:`ExecutionWorld.register_block` +
  :meth:`ExecutionWorld.commit_registration`);
* **page transport** — :meth:`ExecutionWorld.fetch_page_by_logical`
  moves page snapshots from the owning rank to the requester.

Implementations shipped with the platform: ``serial`` (inline, world of
one), ``threads`` (one OS thread per rank — the original simulated
runtime), ``process`` (one real ``multiprocessing`` process per rank).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import CollectiveError, InjectedFault, NetworkError
from ..task import TaskContext

__all__ = [
    "BackendError",
    "BulkFetchResult",
    "CommHandle",
    "CompletedCommHandle",
    "ExecutionBackend",
    "ExecutionWorld",
    "RankResult",
    "SpmdFailure",
    "group_requests_by_owner",
    "raise_spmd_failures",
]


class BackendError(RuntimeError):
    """An execution backend is unknown, unavailable or misconfigured."""


class SpmdFailure(RuntimeError):
    """One or more ranks of an SPMD run failed.

    Subclasses :class:`RuntimeError` so existing callers that catch the
    generic failure keep working; carries the per-rank
    :class:`RankResult` list so the resilience layer can diagnose
    *which* ranks died (injected faults, dead pipes) versus which merely
    saw their peers' collectives fail.
    """

    def __init__(self, message: str, results: Optional[List["RankResult"]] = None) -> None:
        super().__init__(message)
        self.results: List["RankResult"] = list(results or [])


@dataclass
class RankResult:
    """Outcome of one rank's SPMD execution."""

    rank: int
    value: Any = None
    error: Optional[BaseException] = None


def raise_spmd_failures(results: List[RankResult], *, note: Optional[str] = None) -> None:
    """Raise a RuntimeError summarising failed ranks (no-op when all passed).

    When both root-cause errors and secondary collective timeouts are
    present (a dead rank makes its peers' collectives fail too), the
    chained cause prefers the root cause so tracebacks point at the
    actual bug.  ``note`` appends backend-level context (e.g. the first
    transport send failure) that no single rank's error captures.
    """
    errors = [r for r in results if r.error is not None]
    if not errors:
        return
    primary = next(
        (r for r in errors if not isinstance(r.error, (CollectiveError, NetworkError))),
        errors[0],
    )
    message = f"{len(errors)} rank(s) failed; first failure on rank {primary.rank}"
    if note:
        message = f"{message} ({note})"
    raise SpmdFailure(message, results) from primary.error


@dataclass
class BulkFetchResult:
    """Outcome of one batched page exchange (:meth:`ExecutionWorld.fetch_pages_bulk`).

    ``pages`` holds ``(logical_key, page_index, data)`` triples in
    request order per owner; ``exchanges`` is the number of aggregated
    request/reply pairs the batch cost (one per distinct owning rank on
    batching backends, one per page on the per-page fallback) and
    ``nbytes`` the page payload volume moved.
    """

    pages: List[Tuple[Any, int, Any]] = field(default_factory=list)
    exchanges: int = 0
    nbytes: int = 0


def group_requests_by_owner(
    directory: Any, requests: Sequence[Tuple[Any, int]]
) -> Dict[int, List[Tuple[Any, int, int]]]:
    """Resolve page requests against a block directory, grouped by owner.

    ``requests`` is a sequence of ``(logical_key, page_index)`` pairs;
    the result maps each owning rank to ``(logical_key, page_index,
    owner-local block id)`` triples, preserving request order within
    each owner.  Raises :class:`~repro.runtime.errors.NetworkError` when
    a key has no registered owner.
    """
    grouped: Dict[int, List[Tuple[Any, int, int]]] = {}
    block_ids: Dict[Any, Tuple[int, int]] = {}
    for logical_key, page_index in requests:
        resolved = block_ids.get(logical_key)
        if resolved is None:
            owner = directory.owner_of(logical_key)
            resolved = (owner, directory.block_id_on(logical_key, owner))
            block_ids[logical_key] = resolved
        owner, block_id = resolved
        grouped.setdefault(owner, []).append((logical_key, page_index, block_id))
    return grouped


class CommHandle(abc.ABC):
    """A nonblocking bulk page fetch in flight (overlapped halo exchange).

    Returned by :meth:`ExecutionWorld.fetch_pages_bulk_async`.  The
    requester issues the handle, computes its interior sweep while the
    pages travel, then calls :meth:`wait` to obtain the
    :class:`BulkFetchResult` before touching halo data.

    ``wait()`` is **idempotent**: the first call blocks until every
    in-flight exchange completed and memoizes the result (or the
    failure); every later call returns the same result object (or
    re-raises the same error) without blocking and — critically for
    :class:`~repro.runtime.network.NetworkStats` — without accounting
    the traffic a second time.  Backends implement :meth:`_wait` only.
    """

    __slots__ = ("_result", "_error", "_done")

    def __init__(self) -> None:
        self._result: Optional[BulkFetchResult] = None
        self._error: Optional[BaseException] = None
        self._done = False

    @abc.abstractmethod
    def _wait(self) -> BulkFetchResult:
        """Block until completion; called at most once."""

    def wait(self) -> BulkFetchResult:
        """Block until the fetch completed; safe to call repeatedly."""
        if not self._done:
            try:
                self._result = self._wait()
            except BaseException as exc:
                self._error = exc
                raise
            finally:
                self._done = True
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    @property
    def done(self) -> bool:
        """Whether :meth:`wait` already ran (successfully or not)."""
        return self._done


class CompletedCommHandle(CommHandle):
    """An already-completed handle (serial backend / synchronous fallback)."""

    __slots__ = ()

    def __init__(self, result: BulkFetchResult) -> None:
        super().__init__()
        self._result = result
        self._done = True

    def _wait(self) -> BulkFetchResult:  # pragma: no cover - never reached
        raise AssertionError("CompletedCommHandle is constructed completed")


class ExecutionWorld(abc.ABC):
    """One SPMD world: ranks, collectives, block directory, page transport."""

    #: Registry name of the backend that created this world.
    backend_name: str = "?"
    #: Number of ranks.
    size: int
    #: Installed fault plan (``None`` when no faults are injected).  The
    #: plan is duck-typed (see :class:`repro.resilience.FaultPlan`) so
    #: the runtime substrate never imports the resilience package.
    fault_plan: Any = None

    # -- failure injection ---------------------------------------------
    def install_fault_plan(self, plan: Any) -> None:
        """Install a seeded fault plan honored by this world's fault points.

        Must be called **before** :meth:`run_spmd` — the process backend
        ships the plan to child ranks over ``fork`` at launch, so a plan
        installed later is invisible to them.
        """
        self.fault_plan = plan

    def fault_point(self, rank: int, phase: str, epoch: Optional[int] = None) -> None:
        """Fire any fault the installed plan schedules at this point.

        Called by backends (``commit_registration``) and by the
        resilience aspect (refresh entry / post-refresh).  ``phase`` is
        one of ``"register"`` / ``"refresh"`` / ``"epoch"``; ``epoch``
        is the rank's count of completed (non-warm-up) refresh rounds.
        A ``kill`` fault terminates the rank via :meth:`_execute_kill`;
        reply faults are consumed by the transport layers instead.
        """
        plan = self.fault_plan
        if plan is None:
            return
        fault = plan.take_kill(rank, phase, epoch)
        if fault is not None:
            self._execute_kill(fault, rank)

    def _execute_kill(self, fault: Any, rank: int) -> None:
        """Kill ``rank``.  Default: raise :class:`InjectedFault` in-stack.

        The process backend overrides this to ``os._exit`` forked child
        ranks, exercising real child-death detection (dead pipes,
        nonzero exit codes) in peers and in the parent collector.
        """
        raise InjectedFault(rank, str(fault))

    # -- SPMD launch ----------------------------------------------------
    @abc.abstractmethod
    def run_spmd(
        self, body: Callable[[TaskContext], Any], *, omp_threads: int = 1
    ) -> List[RankResult]:
        """Execute ``body`` once per rank; raise if any rank failed."""

    @abc.abstractmethod
    def finalize(self) -> None:
        """Release per-run resources (Env replicas, endpoints); idempotent."""

    # -- Env / block registration --------------------------------------
    @abc.abstractmethod
    def register_env(self, rank: int, env: Any) -> None:
        """Attach a rank's Env replica as its page-serving endpoint."""

    @abc.abstractmethod
    def env_of(self, rank: int) -> Any:
        """Return the Env registered by ``rank`` (NetworkError if absent)."""

    @abc.abstractmethod
    def register_block(self, logical_key: Any, rank: int, block_id: int, *, owner: bool) -> None:
        """Record that ``rank`` materialised ``logical_key`` as ``block_id``."""

    @abc.abstractmethod
    def commit_registration(self) -> None:
        """Collective close of the registration phase.

        After every rank returns from this call, each rank's directory
        can resolve the owner (and the owner-local block id) of every
        logical key registered by any rank.  Doubles as a barrier.
        """

    # -- collectives ----------------------------------------------------
    @abc.abstractmethod
    def barrier(self) -> None:
        """Synchronise all ranks of the world."""

    @abc.abstractmethod
    def allreduce(self, value: Any, op: Callable[[List[Any]], Any]) -> Any:
        """Every rank contributes ``value``; all receive ``op(values)``.

        The ``serial`` and ``process`` backends deliver ``values``
        ordered by contributing rank; the ``threads`` backend delivers
        them in arrival order — ``op`` must therefore be commutative
        (and/or/sum/min/max and friends), as real MPI reductions are.
        """

    def allreduce_and(self, flag: bool) -> bool:
        """Logical-AND allreduce (used to agree on refresh success)."""
        return bool(self.allreduce(bool(flag), lambda values: all(values)))

    def allreduce_sum(self, value: float) -> float:
        """Sum allreduce (used by examples for residual norms)."""
        return float(self.allreduce(float(value), lambda values: sum(values)))

    # -- page transport -------------------------------------------------
    @abc.abstractmethod
    def fetch_page_by_logical(self, requester: int, logical_key: Any, page_index: int):
        """Fetch a page of the Block identified by ``logical_key`` from its owner."""

    def fetch_pages_bulk(
        self, requester: int, requests: Sequence[Tuple[Any, int]]
    ) -> BulkFetchResult:
        """Fetch many pages at once, aggregated per owning rank.

        ``requests`` is a sequence of ``(logical_key, page_index)``
        pairs.  Batching backends move **one request/reply message pair
        per distinct owning rank** (a page-key manifest out, a packed
        payload back) instead of one pair per page; this default
        implementation is the behavioural fallback for custom backends
        and simply loops over :meth:`fetch_page_by_logical`, costing one
        exchange per page.
        """
        result = BulkFetchResult()
        for logical_key, page_index in requests:
            data = self.fetch_page_by_logical(requester, logical_key, page_index)
            result.pages.append((logical_key, page_index, data))
            result.exchanges += 1
            result.nbytes += int(data.nbytes)
        return result

    def fetch_pages_bulk_async(
        self, requester: int, requests: Sequence[Tuple[Any, int]]
    ) -> CommHandle:
        """Start fetching many pages without blocking; returns a :class:`CommHandle`.

        The overlapped-refresh protocol issues this right after the step
        barrier and waits the handle only once the interior sweep is
        done, hiding the halo round-trip behind computation.  Owner
        resolution failures surface at *issue* time (same exceptions as
        :meth:`fetch_pages_bulk`).  This default implementation — used
        by the ``serial`` backend and any custom backend that does not
        override it — performs the exchange synchronously and returns an
        immediate-completion handle, which is behaviourally identical to
        the blocking path.
        """
        return CompletedCommHandle(self.fetch_pages_bulk(requester, requests))

    # -- accounting -----------------------------------------------------
    @abc.abstractmethod
    def traffic_summary(self) -> dict:
        """Aggregate traffic counters with :class:`~repro.runtime.network.NetworkStats` keys."""


class ExecutionBackend(abc.ABC):
    """Factory for :class:`ExecutionWorld` instances of one execution strategy."""

    #: Registry name (``Platform.builder().backend(name)`` selects it).
    name: str = "?"

    @abc.abstractmethod
    def create_world(
        self, size: int, *, timeout: float = 60.0, page_transport: str = "auto"
    ) -> ExecutionWorld:
        """Create a world of ``size`` ranks.

        ``page_transport`` selects the bulk page-fetch data plane
        (``"auto"``/``"shm"``/``"pipe"``).  Only the process backend moves
        pages between address spaces, so the other backends accept and
        ignore the knob — a platform configured with
        ``page_transport="shm"`` keeps working when the backend is swapped
        for ``threads`` or ``serial``.
        """

    def available(self) -> bool:
        """Whether this backend can run on the current interpreter/OS."""
        return True
