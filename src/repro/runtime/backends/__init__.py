"""Execution-backend registry.

Backends are registered by name and resolved lazily, so importing the
registry never drags in heavyweight runtime machinery (and custom
backends can be registered without touching platform code)::

    from repro.runtime.backends import get_backend, register_backend

    world = get_backend("process").create_world(4)

    class MyBackend(ExecutionBackend):
        name = "asyncio"
        def create_world(self, size, *, timeout=60.0): ...
    register_backend(MyBackend())

The three built-in backends:

==========  ==========================================================
``serial``  world of one rank, runs inline (no threading machinery)
``threads`` one OS thread per rank — the original simulated runtime
            (GIL-bound; scaling numbers come from the cost model)
``process`` one forked ``multiprocessing`` process per rank with a
            pipe-mesh transport — real measured parallelism
==========  ==========================================================
"""

from __future__ import annotations

import importlib
from typing import Dict, List

from .base import (
    BackendError,
    BulkFetchResult,
    CommHandle,
    CompletedCommHandle,
    ExecutionBackend,
    ExecutionWorld,
    RankResult,
    SpmdFailure,
    raise_spmd_failures,
)

__all__ = [
    "BackendError",
    "BulkFetchResult",
    "CommHandle",
    "CompletedCommHandle",
    "DEFAULT_BACKEND",
    "ExecutionBackend",
    "ExecutionWorld",
    "RankResult",
    "SpmdFailure",
    "available_backends",
    "get_backend",
    "raise_spmd_failures",
    "register_backend",
]

#: Backend used when neither the aspect nor the Platform names one —
#: the behaviour-preserving threaded simulation.
DEFAULT_BACKEND = "threads"

#: Built-in backends, resolved lazily: name -> (module, factory attribute).
_BUILTIN = {
    "serial": ("repro.runtime.backends.serial", "SerialBackend"),
    "threads": ("repro.runtime.backends.threads", "ThreadsBackend"),
    "process": ("repro.runtime.backends.process", "ProcessBackend"),
}

_REGISTRY: Dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend, *, replace: bool = False) -> ExecutionBackend:
    """Register a backend instance under its ``name``.

    Re-registering a name raises unless ``replace=True`` (shadowing a
    built-in is allowed that way, e.g. to instrument it in tests).
    """
    name = getattr(backend, "name", None)
    if not name or not isinstance(name, str):
        raise BackendError(f"backend {backend!r} has no usable 'name'")
    if not replace and (name in _REGISTRY or name in _BUILTIN):
        raise BackendError(f"backend {name!r} is already registered")
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> ExecutionBackend:
    """Resolve a backend by name (loading built-ins on first use)."""
    backend = _REGISTRY.get(name)
    if backend is not None:
        return backend
    builtin = _BUILTIN.get(name)
    if builtin is None:
        raise BackendError(
            f"unknown execution backend {name!r} "
            f"(available: {', '.join(available_backends())})"
        )
    module_name, attr = builtin
    backend_cls = getattr(importlib.import_module(module_name), attr)
    backend = backend_cls()
    _REGISTRY[name] = backend
    return backend


def available_backends() -> List[str]:
    """Sorted names of every registered (or registerable built-in) backend."""
    return sorted(set(_BUILTIN) | set(_REGISTRY))
