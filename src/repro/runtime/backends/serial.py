"""The ``serial`` backend: a world of exactly one rank, run inline.

No threads, no processes, no blocking machinery — collectives are
trivial with a single participant and page "transport" is a local
snapshot copy.  This is both the cheapest way to execute a
``DistributedMemoryAspect(processes=1)`` configuration and the
reference implementation every other backend must agree with
numerically (see tests/integration/test_backend_conformance.py).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

from ..errors import NetworkError, TaskError
from ..network import NetworkStats
from ..simmpi import BlockDirectory
from ..task import TaskContext, task_scope
from .base import (
    BulkFetchResult,
    ExecutionBackend,
    ExecutionWorld,
    RankResult,
    group_requests_by_owner,
    raise_spmd_failures,
)

__all__ = ["SerialBackend", "SerialWorld"]


class SerialWorld(ExecutionWorld):
    """Inline single-rank world (collectives short-circuit, fetches are local)."""

    backend_name = "serial"

    def __init__(self, *, timeout: float = 60.0) -> None:
        self.size = 1
        self.timeout = timeout
        self.directory = BlockDirectory()
        self.stats = NetworkStats()
        self.rank_envs: Dict[int, Any] = {}
        self._finalized = False

    # -- SPMD launch ----------------------------------------------------
    def run_spmd(
        self, body: Callable[[TaskContext], Any], *, omp_threads: int = 1
    ) -> List[RankResult]:
        result = RankResult(rank=0)
        context = TaskContext(mpi_rank=0, mpi_size=1, omp_thread=0, omp_threads=omp_threads)
        try:
            with task_scope(context):
                result.value = body(context)
        except BaseException as exc:  # noqa: BLE001 - propagated below
            result.error = exc
        raise_spmd_failures([result])
        return [result]

    def finalize(self) -> None:
        self.rank_envs.clear()
        self._finalized = True

    @property
    def finalized(self) -> bool:
        return self._finalized

    # -- Env / block registration --------------------------------------
    def register_env(self, rank: int, env: Any) -> None:
        self._check_rank(rank)
        self.rank_envs[rank] = env

    def env_of(self, rank: int) -> Any:
        try:
            return self.rank_envs[rank]
        except KeyError:
            raise NetworkError(f"rank {rank} has not registered an Env") from None

    def register_block(self, logical_key: Any, rank: int, block_id: int, *, owner: bool) -> None:
        self.directory.register(logical_key, rank, block_id, owner=owner)

    def commit_registration(self) -> None:
        # A single rank's directory is complete by construction; only the
        # kill-before-commit fault point remains meaningful here.
        if self.fault_plan is not None:
            self.fault_point(0, "register")

    # -- collectives ----------------------------------------------------
    def barrier(self) -> None:
        self.stats.barriers += 1

    def allreduce(self, value: Any, op: Callable[[List[Any]], Any]) -> Any:
        self.stats.allreduces += 1
        return op([value])

    # -- page transport -------------------------------------------------
    def fetch_page_by_logical(self, requester: int, logical_key: Any, page_index: int):
        self._check_rank(requester)
        owner = self.directory.owner_of(logical_key)
        block_id = self.directory.block_id_on(logical_key, owner)
        from ...memory.page import PageKey  # local import to avoid a cycle

        data = self.env_of(owner).page_snapshot(PageKey(block_id, page_index))
        self.stats.page_fetches += 1
        self.stats.messages += 2
        self.stats.bytes_moved += int(data.nbytes) + 32
        self.stats.record_neighbor(requester, owner, 1, 32)
        self.stats.record_neighbor(owner, requester, 1, int(data.nbytes))
        return data

    def fetch_pages_bulk(
        self, requester: int, requests: Sequence[Tuple[Any, int]]
    ) -> BulkFetchResult:
        """Batched fetch: one accounted exchange per owner (always rank 0 here)."""
        self._check_rank(requester)
        from ...memory.page import PageKey  # local import to avoid a cycle

        result = BulkFetchResult()
        for owner, items in sorted(group_requests_by_owner(self.directory, requests).items()):
            env = self.env_of(owner)
            payload_bytes = 0
            for logical_key, page_index, block_id in items:
                data = env.page_snapshot(PageKey(block_id, page_index))
                result.pages.append((logical_key, page_index, data))
                payload_bytes += int(data.nbytes)
            manifest_bytes = 32 + 16 * len(items)
            self.stats.page_fetches += len(items)
            self.stats.bulk_fetches += 1
            self.stats.bulk_pages += len(items)
            self.stats.messages += 2
            self.stats.bytes_moved += payload_bytes + manifest_bytes
            self.stats.record_neighbor(requester, owner, 1, manifest_bytes)
            self.stats.record_neighbor(owner, requester, 1, payload_bytes)
            result.exchanges += 1
            result.nbytes += payload_bytes
        return result

    # -- accounting -----------------------------------------------------
    def traffic_summary(self) -> dict:
        return self.stats.as_dict()

    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if rank != 0:
            raise NetworkError(f"rank {rank} outside serial world of size 1")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SerialWorld(stats={self.stats.as_dict()})"


class SerialBackend(ExecutionBackend):
    """Backend producing :class:`SerialWorld` instances (size must be 1)."""

    name = "serial"

    def create_world(
        self, size: int, *, timeout: float = 60.0, page_transport: str = "auto"
    ) -> SerialWorld:
        # page_transport is accepted for signature compatibility; a single
        # rank never moves pages between address spaces.
        if size != 1:
            raise TaskError(
                f"the 'serial' backend runs exactly one rank (requested {size}); "
                "use the 'threads' or 'process' backend for multi-rank worlds"
            )
        return SerialWorld(timeout=timeout)
