"""The ``threads`` backend: one OS thread per rank (the original runtime).

This is the behaviour-preserving wrapper around
:class:`~repro.runtime.simmpi.MPIWorld` /
:class:`~repro.runtime.network.SimNetwork`: blocking collectives work
because every rank has its own thread, page transport reads snapshots
straight out of the owner's Env, and every message is counted for the
cost model.  The GIL prevents real speed-up — use the ``process``
backend for measured scaling.
"""

from __future__ import annotations

from ..simmpi import MPIWorld
from .base import ExecutionBackend

__all__ = ["ThreadsBackend"]


class ThreadsBackend(ExecutionBackend):
    """Backend producing the threaded :class:`MPIWorld` (simulated network)."""

    name = "threads"

    def create_world(
        self, size: int, *, timeout: float = 60.0, page_transport: str = "auto"
    ) -> MPIWorld:
        # page_transport is accepted for signature compatibility; threads
        # share one address space, so pages are never serialised at all.
        return MPIWorld(size, timeout=timeout)
