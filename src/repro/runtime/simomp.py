"""Simulated shared-memory runtime ("OpenMP layer").

The shared-memory aspect module needs a *thread team*: a group of tasks
that share one Env, split the Blocks among themselves each step
(AspectType II) and synchronise at every ``refresh``.  Because OpenMP
is a shared-memory system, AspectType III (data communication) is not
implemented for this layer — exactly as in the paper's prototype.

:class:`ThreadTeam` supplies the two primitives the aspect uses:

* :meth:`ThreadTeam.parallel` — run a callable once per team member,
  each on its own thread with the right :class:`TaskContext`;
* :meth:`ThreadTeam.single` — execute a callable on exactly one member
  per call site while the others wait and receive the same return value
  (the OpenMP ``single`` construct, used to perform the buffer swap of
  ``refresh`` exactly once per step).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional

from .errors import CollectiveError, TaskError
from .task import TaskContext, current_task, task_scope

__all__ = ["ThreadTeam"]


class ThreadTeam:
    """A shared-memory team of ``size`` tasks."""

    def __init__(self, size: int, *, timeout: float = 60.0) -> None:
        if size < 1:
            raise TaskError("thread team size must be >= 1")
        self.size = size
        self.timeout = timeout
        self._barrier = threading.Barrier(size)
        self._single_lock = threading.Lock()
        self._single_generation = 0
        self._single_result: Any = None
        self._single_error: Optional[BaseException] = None
        self._single_done = threading.Condition(self._single_lock)
        #: Number of barrier entries, reported to the cost model.
        self.barrier_count = 0

    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Synchronise the team (no-op for a team of one)."""
        self.barrier_count += 1
        if self.size == 1:
            return
        try:
            self._barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError as exc:
            raise CollectiveError("thread-team barrier broken") from exc

    # ------------------------------------------------------------------
    def single(self, func: Callable[[], Any]) -> Any:
        """Run ``func`` on exactly one member; every member gets its result.

        Team members must call :meth:`single` collectively (same number
        of times in the same order), like OpenMP's ``single`` construct
        with an implicit barrier before and after.
        """
        if self.size == 1:
            return func()
        self.barrier()
        me = current_task().omp_thread
        if me == 0:
            try:
                result = func()
                error = None
            except BaseException as exc:  # noqa: BLE001 - re-raised on all members
                result = None
                error = exc
            with self._single_lock:
                self._single_result = result
                self._single_error = error
                self._single_generation += 1
        self.barrier()
        with self._single_lock:
            result = self._single_result
            error = self._single_error
        if error is not None:
            raise error
        return result

    # ------------------------------------------------------------------
    def parallel(self, body: Callable[[TaskContext], Any]) -> List[Any]:
        """Run ``body`` once per team member and return the per-member results.

        The caller's task context supplies the distributed-memory
        coordinates (rank/size); each member gets a derived context with
        its ``omp_thread`` set.  A team of one runs inline.
        """
        base = current_task()
        results: List[Any] = [None] * self.size
        errors: List[Optional[BaseException]] = [None] * self.size

        def member_main(thread_index: int) -> None:
            context = base.with_omp(thread_index, self.size)
            try:
                with task_scope(context):
                    results[thread_index] = body(context)
            except BaseException as exc:  # noqa: BLE001 - propagated below
                errors[thread_index] = exc
                # Break the barrier so sibling members do not hang waiting
                # for a member that will never arrive.
                self._barrier.abort()

        if self.size == 1:
            member_main(0)
        else:
            threads = [
                threading.Thread(
                    target=member_main,
                    args=(index,),
                    name=f"sim-omp-thread-{index}",
                    daemon=True,
                )
                for index in range(self.size)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # Reset the barrier for potential reuse after an abort.
            self._barrier = threading.Barrier(self.size)

        raised = [e for e in errors if e is not None]
        if raised:
            raise RuntimeError("a thread-team member failed") from raised[0]
        return results
