"""Runtime substrate: simulated MPI/OpenMP layers, machine model, tracing.

The paper's prototype runs on a real cluster; this package provides the
simulated equivalents the aspect modules manage (see DESIGN.md §2 for
the substitution rationale):

* :mod:`repro.runtime.backends` — pluggable execution backends for the
  distributed layer (``serial`` inline, ``threads`` simulated,
  ``process`` real forked ranks), resolved by name via
  :func:`get_backend`;
* :class:`MPIWorld` / :class:`SimNetwork` — threaded SPMD ranks with an
  in-memory interconnect that counts messages and bytes (the
  ``threads`` backend);
* :class:`ThreadTeam` — shared-memory task team with barrier/single;
* :class:`TaskContext` — hierarchical task ids;
* :class:`TraceRecorder` — per-task work/traffic counters;
* :class:`MachineSpec` / :class:`CostModel` — analytic conversion of the
  counters into modelled wall-clock for the scaling figures.
"""

from .backends import (
    DEFAULT_BACKEND,
    BackendError,
    BulkFetchResult,
    CommHandle,
    CompletedCommHandle,
    ExecutionBackend,
    ExecutionWorld,
    SpmdFailure,
    available_backends,
    get_backend,
    register_backend,
)
from .costmodel import CostBreakdown, CostModel
from .errors import (
    CollectiveError,
    DeadRankError,
    InjectedFault,
    MachineModelError,
    NetworkError,
    PageFetchError,
    RuntimeErrorBase,
    TaskError,
)
from .machine import OAKBRIDGE_CX_LIKE, MachineSpec
from .network import NetworkStats, SimNetwork
from .simmpi import BlockDirectory, MPIWorld, RankResult
from .simomp import ThreadTeam
from .task import SERIAL_TASK, TaskContext, current_task, task_scope
from .tracing import TaskCounters, TraceRecorder, global_trace

__all__ = [
    "BackendError",
    "BulkFetchResult",
    "CommHandle",
    "CompletedCommHandle",
    "DEFAULT_BACKEND",
    "ExecutionBackend",
    "ExecutionWorld",
    "available_backends",
    "get_backend",
    "register_backend",
    "CostBreakdown",
    "CostModel",
    "MachineSpec",
    "OAKBRIDGE_CX_LIKE",
    "NetworkStats",
    "SimNetwork",
    "BlockDirectory",
    "MPIWorld",
    "RankResult",
    "ThreadTeam",
    "TaskContext",
    "SERIAL_TASK",
    "current_task",
    "task_scope",
    "TaskCounters",
    "TraceRecorder",
    "global_trace",
    "RuntimeErrorBase",
    "TaskError",
    "NetworkError",
    "PageFetchError",
    "CollectiveError",
    "DeadRankError",
    "InjectedFault",
    "MachineModelError",
    "SpmdFailure",
]
