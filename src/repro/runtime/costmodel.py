"""Analytic cost model converting measured work/traffic into modelled time.

The scaling evaluation of the paper (Figs. 7–11) measures wall-clock on
a real cluster.  Our substitute executes the platform on the simulated
runtime — which produces *exact* per-task counts of element updates,
pages fetched, bytes moved and synchronisation rounds — and then this
module converts those counts into a modelled execution time on a
:class:`~repro.runtime.machine.MachineSpec`.

The model is intentionally simple and is documented term by term:

``T_task = compute + contention + communication + synchronisation``

* ``compute``        = updates × seconds_per_update (× random-access penalty)
* ``contention``     = shared-memory slowdown when several threads of one
                       node stream memory at once: the task's streamed bytes
                       divided by its *share* of the node memory bandwidth,
                       plus a per-thread cache-thrash term (Fig. 10's effect)
* ``communication``  = messages × latency + bytes ÷ network bandwidth
                       (only the distributed layer moves bytes)
* ``synchronisation``= collective entries × barrier cost × participants

and the run's modelled time is ``max`` over tasks plus the one-off layer
initialisation costs.  The same instance (same constants) is used for
every figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from .machine import MachineSpec, OAKBRIDGE_CX_LIKE
from .tracing import TaskCounters
from .errors import MachineModelError

__all__ = ["CostBreakdown", "CostModel"]


@dataclass
class CostBreakdown:
    """Per-run modelled time split into its components (seconds)."""

    compute: float = 0.0
    contention: float = 0.0
    communication: float = 0.0
    synchronisation: float = 0.0
    runtime_init: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.compute
            + self.contention
            + self.communication
            + self.synchronisation
            + self.runtime_init
        )

    def as_dict(self) -> dict:
        data = dict(self.__dict__)
        data["total"] = self.total
        return data


class CostModel:
    """Converts per-task :class:`TaskCounters` into modelled wall-clock."""

    def __init__(self, machine: MachineSpec = OAKBRIDGE_CX_LIKE) -> None:
        self.machine = machine

    # ------------------------------------------------------------------
    def task_time(
        self,
        counters: TaskCounters,
        *,
        mpi_size: int,
        omp_threads: int,
    ) -> CostBreakdown:
        """Modelled time of one task within a (mpi_size × omp_threads) run."""
        if mpi_size < 1 or omp_threads < 1:
            raise MachineModelError("layer sizes must be >= 1")
        machine = self.machine
        breakdown = CostBreakdown()

        # Prefer the steady-state ("productive") counters when present: the
        # paper's measurements are dominated by the long step loop, not by the
        # warm-up pass or by re-executed failed steps.
        updates = counters.productive_updates or counters.updates
        pages = counters.productive_pages or counters.pages_fetched
        bytes_fetched = counters.productive_bytes or counters.bytes_fetched
        messages = counters.productive_messages or counters.messages

        # -- compute -----------------------------------------------------
        per_update = machine.update_cost(counters.access_pattern)
        breakdown.compute = updates * per_update

        # -- shared-memory contention -------------------------------------
        threads_on_node = min(omp_threads, machine.cores_per_node)
        if threads_on_node > 1 and updates:
            streamed_bytes = updates * counters.bytes_per_update
            fair_share = machine.memory_bandwidth / threads_on_node
            full_share = machine.memory_bandwidth
            # Extra time caused by having only 1/threads of the bandwidth
            # compared with owning the whole node.
            breakdown.contention += streamed_bytes * (1.0 / fair_share - 1.0 / full_share)
            # Cache-thrash term: each additional concurrently-streaming
            # thread evicts a fraction of this task's working set.
            thrash = machine.thrash_factor(counters.access_pattern)
            breakdown.contention += (
                updates * per_update * thrash * (threads_on_node - 1)
            )

        # -- communication -------------------------------------------------
        if messages or bytes_fetched:
            breakdown.communication = (
                messages * machine.network_latency
                + bytes_fetched / machine.network_bandwidth
            )

        # -- synchronisation ------------------------------------------------
        participants = mpi_size * omp_threads
        if participants > 1:
            breakdown.synchronisation = (
                counters.collectives * machine.barrier_cost * participants ** 0.5
            )
        return breakdown

    # ------------------------------------------------------------------
    def run_time(
        self,
        counters_by_task: Mapping[Tuple[int, int], TaskCounters],
        *,
        mpi_size: int,
        omp_threads: int,
        include_init: bool = True,
    ) -> CostBreakdown:
        """Modelled makespan of a whole run: slowest task + one-off init costs."""
        if not counters_by_task:
            raise MachineModelError("cost model needs at least one task's counters")
        slowest: Optional[CostBreakdown] = None
        for counters in counters_by_task.values():
            breakdown = self.task_time(
                counters, mpi_size=mpi_size, omp_threads=omp_threads
            )
            if slowest is None or breakdown.total > slowest.total:
                slowest = breakdown
        assert slowest is not None
        if include_init:
            machine = self.machine
            if mpi_size > 1:
                slowest.runtime_init += machine.mpi_init_cost
            if omp_threads > 1:
                slowest.runtime_init += machine.thread_spawn_cost
        return slowest

    # ------------------------------------------------------------------
    def relative_to_baseline(
        self,
        runs: Dict[str, CostBreakdown],
        baseline: str,
    ) -> Dict[str, float]:
        """Express each run's total as a fraction of ``runs[baseline]``.

        Matches how the paper normalises its scaling graphs ("execution
        times are normalised so that the time by one task becomes
        unity" / "100 %").
        """
        if baseline not in runs:
            raise MachineModelError(f"baseline run {baseline!r} missing")
        base = runs[baseline].total
        if base <= 0:
            raise MachineModelError("baseline run has non-positive modelled time")
        return {name: breakdown.total / base for name, breakdown in runs.items()}
