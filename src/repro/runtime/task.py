"""Task contexts and the hierarchical task-id scheme.

The platform's execution model is task-based (§III-B2): the data domain
is blocked, and *tasks* — one per leaf of the layer hierarchy — update
their Blocks every step.  "The module corresponding to each layer
splits the Blocks allocated by the upper layer into multiple and
reallocates them to the layers of the lower layer."

In this reproduction a task is identified by its coordinates in the
layer hierarchy: the distributed-memory rank (``mpi_rank``) chosen by
the distributed-memory aspect module and the shared-memory thread index
(``omp_thread``) chosen by the shared-memory aspect module.  The
*global task id* flattens the two:

``global_task_id = mpi_rank * omp_threads + omp_thread``

which is the id the DSL layers store in each Data Block's ``ch_tid``.

The current task is tracked per OS thread (the simulated runtimes run
one task per thread); :func:`current_task` never returns ``None`` — in
serial execution it returns the trivial single-task context.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .errors import TaskError

__all__ = ["TaskContext", "current_task", "task_scope", "SERIAL_TASK"]


@dataclass(frozen=True)
class TaskContext:
    """Immutable description of the task executing the current code."""

    mpi_rank: int = 0
    mpi_size: int = 1
    omp_thread: int = 0
    omp_threads: int = 1
    #: Free-form labels layers may add (e.g. accelerator id in future work).
    labels: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.mpi_size < 1 or self.omp_threads < 1:
            raise TaskError("task layer sizes must be >= 1")
        if not (0 <= self.mpi_rank < self.mpi_size):
            raise TaskError(f"mpi_rank {self.mpi_rank} outside [0, {self.mpi_size})")
        if not (0 <= self.omp_thread < self.omp_threads):
            raise TaskError(f"omp_thread {self.omp_thread} outside [0, {self.omp_threads})")

    # ------------------------------------------------------------------
    @property
    def global_task_id(self) -> int:
        """Flattened id across both layers (what ``ch_tid`` stores)."""
        return self.mpi_rank * self.omp_threads + self.omp_thread

    @property
    def total_tasks(self) -> int:
        return self.mpi_size * self.omp_threads

    @property
    def is_rank_master(self) -> bool:
        """True for the thread that represents its rank in collectives."""
        return self.omp_thread == 0

    def with_omp(self, thread: int, threads: int) -> "TaskContext":
        """Derive the context of a shared-memory subtask of this task."""
        return TaskContext(
            mpi_rank=self.mpi_rank,
            mpi_size=self.mpi_size,
            omp_thread=thread,
            omp_threads=threads,
            labels=self.labels,
        )

    def with_mpi(self, rank: int, size: int) -> "TaskContext":
        """Derive the context of a distributed-memory subtask."""
        return TaskContext(
            mpi_rank=rank,
            mpi_size=size,
            omp_thread=self.omp_thread,
            omp_threads=self.omp_threads,
            labels=self.labels,
        )

    def __str__(self) -> str:
        return (
            f"task(rank {self.mpi_rank}/{self.mpi_size}, "
            f"thread {self.omp_thread}/{self.omp_threads})"
        )


#: Context used when no parallel layer is active (plain serial run).
SERIAL_TASK = TaskContext()

_state = threading.local()


def current_task() -> TaskContext:
    """Return the task context of the calling thread (serial if none set)."""
    stack = getattr(_state, "stack", None)
    if not stack:
        return SERIAL_TASK
    return stack[-1]


@contextlib.contextmanager
def task_scope(context: TaskContext) -> Iterator[TaskContext]:
    """Run the ``with`` body as ``context`` (used by the aspect modules)."""
    if not isinstance(context, TaskContext):
        raise TaskError(f"task_scope expects a TaskContext, got {context!r}")
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = []
        _state.stack = stack
    stack.append(context)
    try:
        yield context
    finally:
        popped = stack.pop()
        if popped is not context:  # pragma: no cover - defensive
            raise TaskError("task scope stack corrupted")
