"""Zero-copy shared-memory page transport for the process backend.

Pipe-mesh bulk fetches (``breq``/``brep``) normally move pages as one
packed pickled byte payload — every halo refresh pays
serialize → pipe copy → deserialize on the full halo volume.  This
module provides the alternative data plane: each rank *publishes* its
served pages into a named ``multiprocessing.shared_memory`` arena and
the ``brep`` reply carries only **descriptors** — ``(segment, offset,
nbytes, version)`` slots — that the requester maps and copies from
directly.  The payload crossing the pipe shrinks from the halo bytes to
a few dozen bytes of manifest, independent of page size.

Concurrency is handled with a seqlock-style version stamp per slot:

* the owner bumps the slot's version to an **odd** number, writes the
  page bytes, then bumps it to the next **even** number;
* the requester checks the version **before and after** its copy — both
  reads must equal the (even) version named in the descriptor,
  otherwise the copy may have raced a concurrent refresh and
  :class:`ShmVersionError` is raised.

Under the refresh protocol's synchronisation guarantees (owners never
mutate read buffers between sync points; every fetch completes before
the owner's next buffer swap) a mismatch can only mean protocol
corruption — the same severity as a failed adler32 check on the packed
path.

Segment hygiene: segment names are deterministic
(``repro_shm_{uid}_{rank}_{seq}`` with a monotonically increasing
``seq``), so the parent process can *probe-unlink* every segment a dead
child leaked without any bookkeeping channel — attach names in order
until the first ``FileNotFoundError`` (:func:`cleanup_rank_segments`).
On this interpreter both creating and attaching register the name with
the ``multiprocessing`` resource tracker (set semantics when every
process shares the tracker forked from the parent), so each segment
must be unlinked **exactly once** — by its owner on close, or by the
parent's sweep when the owner died — for the tracker to exit clean
with no leak warnings.
"""

from __future__ import annotations

import threading
import uuid
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .errors import NetworkError

try:  # pragma: no cover - import guard exercised via shm_available()
    from multiprocessing import resource_tracker
    from multiprocessing.shared_memory import SharedMemory
except ImportError:  # pragma: no cover - platforms without POSIX shm
    SharedMemory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

__all__ = [
    "PAGE_TRANSPORTS",
    "SegmentCache",
    "SharedPageArena",
    "ShmVersionError",
    "cleanup_rank_segments",
    "ensure_tracker_running",
    "new_shm_uid",
    "segment_name",
    "shm_available",
    "shm_eligible",
    "validate_page_transport",
]

#: Valid values of ``Platform(page_transport=)`` / ``create_world(page_transport=)``.
PAGE_TRANSPORTS = ("auto", "shm", "pipe")

#: Bytes of the per-slot seqlock version header (one little-endian uint64).
_HEADER = 8

#: Default arena segment size.  Slots are allocated by bumping a cursor;
#: a page larger than this gets a dedicated segment of its exact size.
_DEFAULT_SEGMENT_BYTES = 1 << 22  # 4 MiB


class ShmVersionError(NetworkError):
    """A shared-memory page read raced a concurrent slot rewrite.

    Raised when the slot's version stamp read before/after the copy does
    not match the version named in the descriptor.  Under the refresh
    protocol this cannot happen on a healthy run, so callers treat it
    like a failed integrity check rather than retrying.
    """


def shm_available() -> bool:
    """Whether named shared memory is usable on this interpreter/OS."""
    return SharedMemory is not None


def validate_page_transport(value: str) -> str:
    """Validate and normalise a ``page_transport`` setting.

    Accepts one of :data:`PAGE_TRANSPORTS`; raises :class:`ValueError`
    otherwise (mirrors how backend names are validated by the registry).
    """
    name = str(value).strip().lower()
    if name not in PAGE_TRANSPORTS:
        raise ValueError(
            f"unknown page transport {value!r} "
            f"(expected one of: {', '.join(PAGE_TRANSPORTS)})"
        )
    return name


def new_shm_uid() -> str:
    """A short unique id namespacing one world's segment names."""
    return uuid.uuid4().hex[:8]


def segment_name(uid: str, rank: int, seq: int) -> str:
    """Deterministic segment name: ``repro_shm_{uid}_{rank}_{seq}``.

    The fixed shape is what makes parent-side cleanup possible without a
    bookkeeping channel: segments of one rank are numbered contiguously
    from 0, so probing names in order finds everything the rank created.
    """
    return f"repro_shm_{uid}_{int(rank)}_{int(seq)}"


def ensure_tracker_running() -> None:
    """Start the multiprocessing resource tracker in this process.

    Must be called **before forking** rank children so they inherit the
    parent's tracker: with one shared tracker, register/unregister of a
    segment name from any process lands in one set and a single
    ``unlink()`` anywhere retires the entry — no spurious leak warnings,
    no double-unlink races between per-child trackers.
    """
    if resource_tracker is not None:
        resource_tracker.ensure_running()


def shm_eligible(data: np.ndarray) -> bool:
    """Whether a page array can travel as a shared-memory descriptor.

    Object-dtype pages have no flat byte representation and zero-byte
    pages have nothing to map; both fall back to the packed-bytes path
    (as does any non-array payload a custom endpoint might serve).
    """
    return (
        isinstance(data, np.ndarray)
        and not data.dtype.hasobject
        and data.nbytes > 0
    )


class _Segment:
    """One owned shared segment plus its bump-allocation cursor."""

    __slots__ = ("shm", "name", "cursor", "capacity")

    def __init__(self, shm: Any, name: str, capacity: int) -> None:
        self.shm = shm
        self.name = name
        self.cursor = 0
        self.capacity = capacity


class SharedPageArena:
    """The publishing half: one rank's pages, exported as shm slots.

    Each served page gets a **slot**: an 8-byte little-endian uint64
    seqlock version header followed by the page bytes.  ``publish``
    returns the slot's descriptor ``(segment_name, offset, nbytes,
    version)``; slots are reused across refreshes (keyed by page key)
    and rewritten in place under the seqlock when the page's content
    generation advances.  Slot allocation is a simple bump cursor over
    one or more named segments created on demand — pages of a steady
    halo allocate once and then only rewrite.

    ``generation`` is the owner's cheap change stamp (the block's buffer
    swap count): publishing the same key at an unchanged generation
    returns the existing descriptor without touching the slot, so
    duplicate serves within one step cost nothing and version stamps
    stay deterministic.  Without a generation (endpoints exposing only
    ``page_snapshot``) every publish takes a **fresh** slot instead —
    rewriting in place would race a peer still reading the previous
    descriptor of the same page.
    """

    def __init__(
        self, uid: str, rank: int, *, segment_bytes: int = _DEFAULT_SEGMENT_BYTES
    ) -> None:
        if SharedMemory is None:  # pragma: no cover - guarded by shm_available
            raise NetworkError("shared memory is unavailable on this platform")
        self.uid = uid
        self.rank = int(rank)
        self.segment_bytes = int(segment_bytes)
        self._segments: List[_Segment] = []
        #: page key -> (segment index, offset, nbytes, version, generation)
        self._slots: Dict[Any, Tuple[int, int, int, int, Optional[int]]] = {}
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def segment_count(self) -> int:
        """How many named segments the arena has created so far."""
        return len(self._segments)

    def _allocate(self, nbytes: int) -> Tuple[int, int]:
        """Reserve ``nbytes`` (plus header, 8-aligned); return (segment idx, offset)."""
        need = _HEADER + nbytes
        need += (-need) % 8  # keep every header 8-byte aligned
        seg = self._segments[-1] if self._segments else None
        if seg is None or seg.cursor + need > seg.capacity:
            capacity = max(self.segment_bytes, need)
            name = segment_name(self.uid, self.rank, len(self._segments))
            shm = SharedMemory(name=name, create=True, size=capacity)
            seg = _Segment(shm, name, capacity)
            self._segments.append(seg)
        offset = seg.cursor
        seg.cursor += need
        return len(self._segments) - 1, offset

    # ------------------------------------------------------------------
    def publish(
        self, key: Any, data: np.ndarray, generation: Optional[int] = None
    ) -> Tuple[str, int, int, int]:
        """Export a page; return its descriptor ``(segment, offset, nbytes, version)``.

        ``data`` must be :func:`shm_eligible`; non-contiguous views are
        compacted here (the one copy the transport pays — into shared
        memory instead of a pickle buffer).  ``generation=None`` (an
        endpoint with no change stamp) publishes into a fresh slot every
        call; otherwise the slot is rewritten in place only when
        ``generation`` differs from the published one — safe because the
        refresh protocol completes every fetch before the owner's next
        buffer swap can advance the generation.
        """
        if self._closed:
            raise NetworkError(f"rank {self.rank} published a page after arena close")
        with self._lock:
            slot = self._slots.get(key)
            nbytes = int(data.nbytes)
            if slot is not None:
                seg_index, offset, slot_nbytes, version, slot_gen = slot
                if generation is None:
                    # No change stamp means no memoization — and a peer
                    # may still hold a descriptor for the current bytes
                    # (two requesters of one page within one step), so
                    # never rewrite in place: publish into a fresh slot
                    # and leave the old one valid.
                    slot = None
                elif slot_nbytes != nbytes:
                    slot = None  # size changed: leak the old slot, allocate fresh
                elif slot_gen == generation:
                    seg = self._segments[seg_index]
                    return (seg.name, offset, nbytes, version)
            if slot is None:
                seg_index, offset = self._allocate(nbytes)
                version = 0
            seg = self._segments[seg_index]
            buf = seg.shm.buf
            header = np.frombuffer(buf, dtype=np.uint64, count=1, offset=offset)
            try:
                # Seqlock write: odd while the bytes are torn, even when done.
                header[0] = version + 1
                raw = np.frombuffer(
                    buf, dtype=np.uint8, count=nbytes, offset=offset + _HEADER
                )
                try:
                    raw[:] = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
                finally:
                    del raw
                version += 2
                header[0] = version
            finally:
                # Drop the buffer views even when the write raises: a
                # traceback frame holding them would make the segment's
                # mmap unclosable (BufferError) and mask the real error.
                del header
            self._slots[key] = (seg_index, offset, nbytes, version, generation)
            return (seg.name, offset, nbytes, version)

    # ------------------------------------------------------------------
    def close(self, *, unlink: bool = True) -> None:
        """Release (and by default unlink) every owned segment; idempotent."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            for seg in self._segments:
                try:
                    seg.shm.close()
                    if unlink:
                        seg.shm.unlink()
                except (FileNotFoundError, OSError):  # pragma: no cover - teardown
                    pass
            self._segments = []
            self._slots = {}


class SegmentCache:
    """The reading half: attached peer segments, cached by name.

    ``read`` maps the descriptor's segment (attaching once per name),
    verifies the seqlock version before and after copying the page
    bytes out, and returns the copy as a correctly shaped ndarray.
    Attached segments are **closed but never unlinked** here — the
    owner (or the parent's dead-child sweep) owns the unlink.
    """

    def __init__(self) -> None:
        self._attached: Dict[str, Any] = {}

    def _segment(self, name: str) -> Any:
        shm = self._attached.get(name)
        if shm is None:
            if SharedMemory is None:  # pragma: no cover - guarded by callers
                raise NetworkError("shared memory is unavailable on this platform")
            try:
                shm = SharedMemory(name=name)
            except FileNotFoundError as exc:
                raise NetworkError(
                    f"shared page segment {name!r} does not exist (owner died or "
                    "already cleaned up)"
                ) from exc
            self._attached[name] = shm
        return shm

    def read(
        self,
        name: str,
        offset: int,
        nbytes: int,
        version: int,
        shape: Tuple[int, ...],
        dtype_str: str,
    ) -> np.ndarray:
        """Copy one slot out of a peer's arena, seqlock-checked."""
        shm = self._segment(name)
        buf = shm.buf
        header = np.frombuffer(buf, dtype=np.uint64, count=1, offset=offset)
        try:
            before = int(header[0])
            if before != version:
                raise ShmVersionError(
                    f"slot {name!r}+{offset} is at version {before}, descriptor "
                    f"promised {version} (stale descriptor or torn write)"
                )
            dt = np.dtype(dtype_str)
            window = np.frombuffer(
                buf, dtype=dt, count=nbytes // dt.itemsize, offset=offset + _HEADER
            )
            try:
                data = window.reshape(shape).copy()
            finally:
                del window
            after = int(header[0])
            if after != version:
                raise ShmVersionError(
                    f"slot {name!r}+{offset} was rewritten (version {version} -> "
                    f"{after}) while being read"
                )
        finally:
            # Drop the buffer views even when a version check raises: a
            # traceback frame holding them would make the segment's mmap
            # unclosable (BufferError) and mask the real error.
            del header
        return data

    def close_all(self) -> None:
        """Detach every cached segment (no unlink); idempotent."""
        for shm in self._attached.values():
            try:
                shm.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
        self._attached = {}


def cleanup_rank_segments(uid: str, rank: int, *, limit: int = 4096) -> int:
    """Unlink every segment ``rank`` left behind; return how many were removed.

    Because segment names are numbered contiguously from 0, probing in
    order until the first missing name finds everything the rank
    created — whether it died before unlinking or never created any.
    Used by the parent's ``finalize()`` for dead-child recovery (a clean
    rank already unlinked its own, so the probe stops immediately).
    """
    if SharedMemory is None:  # pragma: no cover - guarded by callers
        return 0
    removed = 0
    for seq in range(limit):
        try:
            shm = SharedMemory(name=segment_name(uid, rank, seq))
        except FileNotFoundError:
            break
        except OSError:  # pragma: no cover - permission races at teardown
            break
        try:
            shm.close()
            shm.unlink()
            removed += 1
        except (FileNotFoundError, OSError):  # pragma: no cover - race with owner
            pass
    return removed
