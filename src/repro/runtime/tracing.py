"""Execution tracing: per-task counters feeding the cost model and reports.

The paper's evaluation relies on measurements of a real cluster.  Our
substitute collects, for every task of a simulated run, the quantities
that determine performance on such a cluster:

* how many element updates the task performed,
* how many pages/bytes it pulled from other tasks (and how many
  messages that corresponds to),
* how many Env searches it performed and how often MMAT short-circuited
  them,
* how many refresh rounds failed (forcing recomputation).

The :class:`repro.runtime.costmodel.CostModel` converts these counters
into modelled wall-clock times for the scaling figures, and the
benchmark harness prints them alongside measured Python wall-clock for
the single-task overhead figure.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .task import TaskContext, current_task

__all__ = ["TaskCounters", "TraceRecorder", "global_trace"]


@dataclass
class TaskCounters:
    """Counters of one task (one rank/thread pair) during one run."""

    updates: int = 0
    kernel_invocations: int = 0
    steps: int = 0
    recomputed_steps: int = 0
    pages_fetched: int = 0
    bytes_fetched: int = 0
    messages: int = 0
    collectives: int = 0
    #: Steady-state ("productive") work and traffic: the deltas accumulated by
    #: the *successful* attempt of each step only, excluding warm-up passes
    #: and re-executed failed attempts.  The paper's scaling figures measure
    #: long runs where warm-up is amortised away, so the cost model prefers
    #: these when they are non-zero.
    productive_updates: int = 0
    productive_pages: int = 0
    productive_bytes: int = 0
    productive_messages: int = 0
    env_reads: int = 0
    env_searches: int = 0
    env_search_steps: int = 0
    mmat_hits: int = 0
    #: Access-plan activity (MMAT §III-B6 pushed into compiled bulk
    #: gathers): how many batched gathers executed a compiled plan, how
    #: many element accesses those plans served, how many plans were
    #: compiled, and how many batched accesses fell back to the scalar
    #: path (MMAT disabled or plan invalidated mid-run).
    plan_gathers: int = 0
    plan_sites: int = 0
    plan_compiles: int = 0
    #: Per-call plan compiles for uncached ``gather_global`` (no ``key=``):
    #: recompiled every call by design, tracked apart from ``plan_compiles``
    #: so plan-coverage numbers are not skewed by dynamic address tables.
    plan_compiles_uncached: int = 0
    plan_fallback_sites: int = 0
    #: Fused-kernel activity (plan + fn compiled into one generated
    #: function): how many fusions were compiled and how many sweeps ran
    #: through a fused kernel instead of the gather/apply/scatter path.
    kernel_fuse: int = 0
    kernel_fused_calls: int = 0
    #: Communication-plan activity (aggregated per-neighbor halo
    #: exchange): how many comm plans were compiled, how many aggregated
    #: request/reply exchanges ran, how many pages those exchanges moved,
    #: and how many pages still went through the per-page fallback path
    #: (MMAT off, plan invalidated, or a failed-refresh repair fetch).
    comm_plan_compiles: int = 0
    comm_plan_exchanges: int = 0
    comm_plan_pages: int = 0
    comm_plan_fallback_pages: int = 0
    #: Overlapped halo-exchange activity: how many async refreshes were
    #: issued, the aggregated exchanges/pages they moved, the time spent
    #: blocked in ``CommHandle.wait`` (the *un-hidden* part of the halo
    #: latency, ns), the total issue→completion flight time (ns), and
    #: how many exchanges were drained at a synchronisation point instead
    #: of mid-sweep (no compute overlapped them; drained completions are
    #: excluded from the wait/flight sums).  Overlap efficiency =
    #: ``1 - overlap_wait_ns / overlap_flight_ns``.
    overlap_issues: int = 0
    overlap_exchanges: int = 0
    overlap_pages: int = 0
    overlap_wait_ns: int = 0
    overlap_flight_ns: int = 0
    overlap_drained: int = 0
    #: Resilience activity: epoch checkpoints saved (and the pages they
    #: snapshot), pages restored from a checkpoint after a rank failure,
    #: refreshes skipped by the fast-forward replay of a recovery, and
    #: page replies the process transport could not deliver because the
    #: requesting peer's pipe was already dead.
    checkpoints: int = 0
    checkpoint_pages: int = 0
    restored_pages: int = 0
    replayed_steps: int = 0
    peer_dead: int = 0
    #: Shared-memory data-plane activity (process backend,
    #: ``page_transport="shm"``): pages received as mapped-segment
    #: descriptors, the page bytes that never crossed a pipe because of
    #: it, and pages that fell back to the packed pickled path while in
    #: shm mode (object dtype / zero-byte / non-array payloads).
    shm_fetches: int = 0
    shm_bytes: int = 0
    shm_fallbacks: int = 0
    #: Qualitative access pattern of the workload ('contiguous'|'random'|'bucketed')
    #: recorded by the DSL layer, consumed by the shared-memory contention model.
    access_pattern: str = "contiguous"
    bytes_per_update: int = 40

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class TraceRecorder:
    """Thread-safe registry of per-task counters for one platform run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[int, int], TaskCounters] = {}

    # ------------------------------------------------------------------
    def reset(self) -> None:
        with self._lock:
            self._counters.clear()

    def for_task(self, task: Optional[TaskContext] = None) -> TaskCounters:
        """Return (creating if needed) the counters of ``task`` (default: current)."""
        task = task or current_task()
        key = (task.mpi_rank, task.omp_thread)
        with self._lock:
            counters = self._counters.get(key)
            if counters is None:
                counters = TaskCounters()
                self._counters[key] = counters
            return counters

    def all_counters(self) -> Dict[Tuple[int, int], TaskCounters]:
        with self._lock:
            return dict(self._counters)

    def merge_counters(self, counters: Dict[Tuple[int, int], TaskCounters]) -> None:
        """Fold another recorder's counters in (process-backend rank results).

        Numeric fields are added.  Descriptive fields (access pattern,
        bytes per update) are *not* additive: they are set once by the
        DSL layer that ran the task, so the merge keeps the first value
        that differs from the dataclass default instead of letting
        whichever rank merges last clobber an already-recorded profile
        with its default.
        """
        descriptive = {
            "access_pattern": TaskCounters.access_pattern,
            "bytes_per_update": TaskCounters.bytes_per_update,
        }
        with self._lock:
            for key, incoming in counters.items():
                mine = self._counters.get(key)
                if mine is None:
                    self._counters[key] = incoming
                    continue
                for attr, value in incoming.as_dict().items():
                    if attr in descriptive:
                        if getattr(mine, attr) == descriptive[attr]:
                            setattr(mine, attr, value)
                    else:
                        setattr(mine, attr, getattr(mine, attr) + value)

    # ------------------------------------------------------------------
    def total(self, attr: str) -> int:
        return sum(getattr(c, attr) for c in self.all_counters().values())

    def per_task(self, attr: str) -> List[int]:
        return [getattr(c, attr) for c in self.all_counters().values()]

    def max_task(self, attr: str) -> int:
        values = self.per_task(attr)
        return max(values) if values else 0

    def summary(self) -> dict:
        """Aggregate view used by the benchmark harness."""
        counters = self.all_counters()
        return {
            "tasks": len(counters),
            "total_updates": self.total("updates"),
            "max_updates": self.max_task("updates"),
            "total_pages_fetched": self.total("pages_fetched"),
            "total_bytes_fetched": self.total("bytes_fetched"),
            "total_messages": self.total("messages"),
            "recomputed_steps": self.total("recomputed_steps"),
            "mmat_hits": self.total("mmat_hits"),
            "env_searches": self.total("env_searches"),
            "plan_gathers": self.total("plan_gathers"),
            "plan_sites": self.total("plan_sites"),
            "plan_compiles_uncached": self.total("plan_compiles_uncached"),
            "plan_fallback_sites": self.total("plan_fallback_sites"),
            "kernel_fuse": self.total("kernel_fuse"),
            "kernel_fused_calls": self.total("kernel_fused_calls"),
            "comm_plan_exchanges": self.total("comm_plan_exchanges"),
            "comm_plan_pages": self.total("comm_plan_pages"),
            "comm_plan_fallback_pages": self.total("comm_plan_fallback_pages"),
            "overlap_issues": self.total("overlap_issues"),
            "overlap_exchanges": self.total("overlap_exchanges"),
            "overlap_pages": self.total("overlap_pages"),
            "overlap_wait_ns": self.total("overlap_wait_ns"),
            "overlap_flight_ns": self.total("overlap_flight_ns"),
            "overlap_drained": self.total("overlap_drained"),
            "checkpoints": self.total("checkpoints"),
            "checkpoint_pages": self.total("checkpoint_pages"),
            "restored_pages": self.total("restored_pages"),
            "replayed_steps": self.total("replayed_steps"),
            "peer_dead": self.total("peer_dead"),
            "shm_fetches": self.total("shm_fetches"),
            "shm_bytes": self.total("shm_bytes"),
            "shm_fallbacks": self.total("shm_fallbacks"),
        }


#: Process-wide recorder.  The Platform driver resets it at the start of
#: every run and snapshots it at the end, so independent runs do not mix.
_GLOBAL = TraceRecorder()


def global_trace() -> TraceRecorder:
    """Return the process-wide trace recorder."""
    return _GLOBAL
