"""The simulated interconnect used by the distributed-memory runtime.

The paper evaluates on an Omni-Path cluster; this repository has a
single Python process, so the distributed-memory layer runs every rank
as a thread and moves data through this in-memory network object.  The
network

* provides point-to-point ``send``/``recv`` mailboxes,
* provides the collectives the aspect modules need (``barrier``,
  ``allreduce``), and
* **counts every message and byte**, because those counts (not Python
  wall-clock) are what the cost model converts into the modelled
  communication time of the scaling figures.

Page transfers use a one-sided ``fetch_page`` operation: the requester
reads a page snapshot directly out of the owner rank's Env (safe,
because owners never mutate their *read* buffers between the
synchronisation points established by the refresh protocol) while the
network records the traffic as a message pair.  This mirrors MPI RMA
``Get`` and keeps the threaded simulation deadlock-free.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from .errors import CollectiveError, DeadRankError, NetworkError

__all__ = ["SimNetwork", "NetworkStats", "AsyncBatchFetch"]


@dataclass
class NetworkStats:
    """Aggregate traffic counters of a simulated network.

    ``bulk_fetches``/``bulk_pages`` count the aggregated per-neighbor
    exchanges of compiled communication plans (one request/reply pair
    moving many pages), ``per_neighbor`` resolves page traffic by
    directed ``"src->dst"`` rank pair so reports can show how many
    neighbor links a run actually exercised.
    """

    messages: int = 0
    bytes_moved: int = 0
    barriers: int = 0
    allreduces: int = 0
    page_fetches: int = 0
    #: Aggregated (comm-plan) exchanges: request/reply pairs that moved
    #: a whole batch of pages, and how many pages those batches carried.
    bulk_fetches: int = 0
    bulk_pages: int = 0
    #: Replies that could not be delivered because the peer was already
    #: dead (process backend: broken pipe in the sender thread).
    peer_dead: int = 0
    #: Shared-memory data-plane activity (process backend with
    #: ``page_transport="shm"``): pages whose bytes travelled as
    #: mapped-segment descriptors instead of packed pickled payloads,
    #: the page bytes those descriptors covered (a subset of
    #: ``bytes_moved``, which stays *logical* and transport-agnostic so
    #: shm and pipe runs account identically), and pages that fell back
    #: to the packed path in shm mode (object dtype, zero-byte or
    #: non-array payloads).
    shm_fetches: int = 0
    shm_bytes: int = 0
    shm_fallbacks: int = 0
    #: Page traffic per directed neighbor pair: "src->dst" ->
    #: {"messages": n, "bytes": n}.  Collectives are not attributed.
    per_neighbor: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def record_neighbor(self, src: int, dst: int, messages: int, nbytes: int) -> None:
        """Attribute page traffic to the directed ``src -> dst`` link."""
        entry = self.per_neighbor.setdefault(f"{src}->{dst}", {"messages": 0, "bytes": 0})
        entry["messages"] += int(messages)
        entry["bytes"] += int(nbytes)

    def neighbor_links(self) -> int:
        """Number of directed rank pairs that exchanged page traffic."""
        return len(self.per_neighbor)

    def merge(self, other: "NetworkStats") -> None:
        """Fold another rank's counters into this one (process backend)."""
        for name, value in other.__dict__.items():
            if name == "per_neighbor":
                for link, entry in value.items():
                    self.record_neighbor(*link.split("->"), entry["messages"], entry["bytes"])
            else:
                setattr(self, name, getattr(self, name) + value)

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        out["per_neighbor"] = {link: dict(entry) for link, entry in self.per_neighbor.items()}
        return out


def _payload_nbytes(payload: Any) -> int:
    """Best-effort size estimate of a message payload."""
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (int, float, bool)) or payload is None:
        return 8
    if isinstance(payload, (list, tuple, set, frozenset)):
        return 16 + sum(_payload_nbytes(item) for item in payload)
    if isinstance(payload, dict):
        return 16 + sum(
            _payload_nbytes(k) + _payload_nbytes(v) for k, v in payload.items()
        )
    return 64


class SimNetwork:
    """In-memory interconnect between the ranks of one simulated MPI world."""

    def __init__(self, size: int, *, timeout: float = 30.0) -> None:
        if size < 1:
            raise NetworkError("network size must be >= 1")
        self.size = size
        self.timeout = timeout
        self.stats = NetworkStats()
        self._lock = threading.Lock()
        self._mail_cond = threading.Condition(self._lock)
        self._mailboxes: Dict[Tuple[int, Any], deque] = defaultdict(deque)
        # Reusable barrier / allreduce state.
        self._barrier = threading.Barrier(size)
        self._allreduce_values: List[Any] = []
        self._allreduce_result: Any = None
        self._allreduce_generation = 0
        self._allreduce_cond = threading.Condition()
        #: Per-rank endpoints registered by the distributed-memory aspect
        #: (rank -> object exposing ``page_snapshot(key)``, typically an Env).
        self._endpoints: Dict[int, Any] = {}
        #: Ranks declared dead (rank -> reason).  Collectives and fetches
        #: involving a dead rank fail fast with :class:`DeadRankError`
        #: instead of blocking until the timeout.
        self._dead: Dict[int, str] = {}
        #: Installed fault plan (duck-typed, see ``repro.resilience``);
        #: consulted by the page-serving path for reply faults.
        self.fault_plan: Any = None

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def mark_dead(self, rank: int, reason: str = "") -> None:
        """Declare ``rank`` dead and wake every blocked waiter.

        The barrier is aborted (everyone inside or arriving later gets a
        ``BrokenBarrierError`` converted below) and both condition
        variables are notified so allreduce/recv waiters re-check and
        fail fast — peers detect the death immediately instead of
        burning the full communication timeout.
        """
        self._check_rank(rank)
        with self._lock:
            self._dead[rank] = reason or "marked dead"
        self._barrier.abort()
        with self._allreduce_cond:
            self._allreduce_cond.notify_all()
        with self._mail_cond:
            self._mail_cond.notify_all()

    def dead_ranks(self) -> Dict[int, str]:
        with self._lock:
            return dict(self._dead)

    def _first_dead(self) -> Optional[Tuple[int, str]]:
        with self._lock:
            if not self._dead:
                return None
            rank = min(self._dead)
            return rank, self._dead[rank]

    def _raise_if_dead(self) -> None:
        dead = self._first_dead()
        if dead is not None:
            raise DeadRankError(dead[0], dead[1])

    # ------------------------------------------------------------------
    # endpoint registry (used for one-sided page fetches)
    # ------------------------------------------------------------------
    def register_endpoint(self, rank: int, endpoint: Any) -> None:
        self._check_rank(rank)
        with self._lock:
            self._endpoints[rank] = endpoint

    def endpoint(self, rank: int) -> Any:
        with self._lock:
            try:
                return self._endpoints[rank]
            except KeyError:
                raise NetworkError(f"rank {rank} has no registered endpoint") from None

    def release_endpoints(self) -> None:
        """Drop every registered endpoint (world finalisation).

        Endpoints are whole Env replicas; keeping them referenced after
        the run leaks one Env per rank per finished platform run.
        """
        with self._lock:
            self._endpoints.clear()

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, tag: Any, payload: Any) -> None:
        """Deposit ``payload`` in the (dst, tag) mailbox and count the traffic."""
        self._check_rank(src)
        self._check_rank(dst)
        nbytes = _payload_nbytes(payload)
        with self._mail_cond:
            self._mailboxes[(dst, tag)].append((src, payload))
            self.stats.messages += 1
            self.stats.bytes_moved += nbytes
            self._mail_cond.notify_all()

    def recv(self, dst: int, tag: Any, *, src: Optional[int] = None) -> Any:
        """Blocking receive from the (dst, tag) mailbox (optionally by source)."""
        self._check_rank(dst)
        deadline = threading.TIMEOUT_MAX if self.timeout is None else None
        with self._mail_cond:
            while True:
                queue = self._mailboxes.get((dst, tag))
                if queue:
                    if src is None:
                        return queue.popleft()[1]
                    for index, (sender, payload) in enumerate(queue):
                        if sender == src:
                            del queue[index]
                            return payload
                if src is not None and src in self._dead:
                    raise DeadRankError(src, f"recv on rank {dst} tag {tag!r}")
                if not self._mail_cond.wait(timeout=self.timeout):
                    raise NetworkError(
                        f"recv timed out on rank {dst} tag {tag!r} (src={src})"
                    )

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Synchronise all ranks."""
        self.stats.barriers += 1
        if self.size == 1:
            return
        self._raise_if_dead()
        try:
            self._barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError as exc:
            dead = self._first_dead()
            if dead is not None:
                raise DeadRankError(dead[0], f"barrier aborted: {dead[1]}") from exc
            raise CollectiveError("barrier broken (a rank died or timed out)") from exc

    def allreduce(self, value: Any, op: Callable[[List[Any]], Any]) -> Any:
        """All-to-all reduction: every rank contributes ``value``, all get ``op(values)``."""
        self.stats.allreduces += 1
        self.stats.messages += max(self.size - 1, 0) * 2
        if self.size == 1:
            return op([value])
        self._raise_if_dead()
        with self._allreduce_cond:
            generation = self._allreduce_generation
            self._allreduce_values.append(value)
            if len(self._allreduce_values) == self.size:
                self._allreduce_result = op(list(self._allreduce_values))
                self._allreduce_values = []
                self._allreduce_generation += 1
                self._allreduce_cond.notify_all()
            else:
                while self._allreduce_generation == generation:
                    woke = self._allreduce_cond.wait(timeout=self.timeout)
                    dead = self._first_dead()
                    if dead is not None and self._allreduce_generation == generation:
                        raise DeadRankError(
                            dead[0], f"allreduce will never complete: {dead[1]}"
                        )
                    if not woke and self._allreduce_generation == generation:
                        raise CollectiveError("allreduce timed out")
            return self._allreduce_result

    def allreduce_and(self, flag: bool) -> bool:
        """Logical-AND allreduce (used to agree on refresh success)."""
        return bool(self.allreduce(bool(flag), lambda values: all(values)))

    def allreduce_sum(self, value: float) -> float:
        """Sum allreduce (used by examples for residual norms)."""
        return float(self.allreduce(float(value), lambda values: sum(values)))

    # ------------------------------------------------------------------
    # one-sided page access
    # ------------------------------------------------------------------
    def fetch_page(self, requester: int, owner: int, block_id: int, page_index: int) -> np.ndarray:
        """Fetch a page snapshot from ``owner``'s registered Env.

        The traffic is accounted as one request message plus one reply
        carrying the page payload, matching what a two-sided exchange
        would cost on a real network.
        """
        self._check_rank(requester)
        self._check_rank(owner)
        with self._lock:
            if owner in self._dead:
                raise DeadRankError(owner, f"page fetch by rank {requester}")
        self._apply_reply_fault(owner, requester)
        endpoint = self.endpoint(owner)
        from ..memory.page import PageKey  # local import to avoid a cycle

        data = endpoint.page_snapshot(PageKey(block_id, page_index))
        with self._lock:
            self.stats.page_fetches += 1
            self.stats.messages += 2
            self.stats.bytes_moved += int(data.nbytes) + 32
            self.stats.record_neighbor(requester, owner, 1, 32)
            self.stats.record_neighbor(owner, requester, 1, int(data.nbytes))
        return data

    def fetch_pages(
        self, requester: int, owner: int, pages: List[Tuple[int, int]]
    ) -> List[np.ndarray]:
        """Fetch a batch of page snapshots from one owner in one exchange.

        ``pages`` is a list of ``(owner-local block id, page index)``
        pairs.  The whole batch is accounted as a *single* request/reply
        message pair — a manifest-sized request and one packed reply
        carrying every page — which is what an aggregated halo exchange
        costs on a real network.
        """
        self._check_rank(requester)
        self._check_rank(owner)
        with self._lock:
            if owner in self._dead:
                raise DeadRankError(owner, f"bulk page fetch by rank {requester}")
        self._apply_reply_fault(owner, requester)
        endpoint = self.endpoint(owner)
        from ..memory.page import PageKey  # local import to avoid a cycle

        datas = [
            endpoint.page_snapshot(PageKey(block_id, page_index))
            for block_id, page_index in pages
        ]
        payload_bytes = sum(int(d.nbytes) for d in datas)
        manifest_bytes = 32 + 16 * len(pages)
        with self._lock:
            self.stats.page_fetches += len(datas)
            self.stats.bulk_fetches += 1
            self.stats.bulk_pages += len(datas)
            self.stats.messages += 2
            self.stats.bytes_moved += payload_bytes + manifest_bytes
            self.stats.record_neighbor(requester, owner, 1, manifest_bytes)
            self.stats.record_neighbor(owner, requester, 1, payload_bytes)
        return datas

    def fetch_pages_async(
        self, requester: int, owner: int, pages: List[Tuple[int, int]]
    ) -> "AsyncBatchFetch":
        """Start a batched fetch from one owner on a background thread.

        The returned :class:`AsyncBatchFetch` completes the same
        :meth:`fetch_pages` exchange (identical accounting: one message
        pair per batch, counted exactly once when the transfer runs, no
        matter how often the result is joined) while the requester keeps
        computing.  Rank checks run at *issue* time so misuse fails
        before any thread is spawned.
        """
        self._check_rank(requester)
        self._check_rank(owner)
        return AsyncBatchFetch(self, requester, owner, pages)

    # ------------------------------------------------------------------
    def _apply_reply_fault(self, owner: int, requester: int) -> None:
        """Consume one scheduled reply fault on the owner→requester reply.

        The simulated network is one-sided (no real wire), so a dropped
        reply surfaces as the timeout the requester would eventually hit
        and a corrupted reply as the checksum rejection the transport
        layer would perform — both as :class:`NetworkError`, immediately.
        """
        plan = self.fault_plan
        if plan is None:
            return
        fault = plan.take_reply(owner, requester)
        if fault is None:
            return
        if fault.kind == "delay_reply":
            time.sleep(fault.seconds)
        elif fault.kind == "drop_reply":
            raise NetworkError(
                f"injected fault dropped the page reply {owner}->{requester}; "
                "requester timed out"
            )
        elif fault.kind == "corrupt_reply":
            raise NetworkError(
                f"page reply {owner}->{requester} failed its integrity check "
                "(injected corruption)"
            )

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise NetworkError(f"rank {rank} outside world of size {self.size}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimNetwork(size={self.size}, stats={self.stats.as_dict()})"


class AsyncBatchFetch:
    """One in-flight :meth:`SimNetwork.fetch_pages` batch (threads backend).

    Reading the owner's page snapshots on a background thread is safe
    for the same reason the one-sided blocking fetch is: owners never
    mutate their *read* buffers between the synchronisation points of
    the refresh protocol, and the overlapped window (step barrier to
    the requester's next refresh) lies strictly inside one such
    interval.  Traffic is accounted by ``fetch_pages`` itself, on the
    background thread, exactly once.
    """

    __slots__ = ("owner", "pages", "_thread", "_datas", "_error")

    def __init__(
        self, network: "SimNetwork", requester: int, owner: int, pages: List[Tuple[int, int]]
    ) -> None:
        self.owner = owner
        self.pages = list(pages)
        self._datas: Optional[List[np.ndarray]] = None
        self._error: Optional[BaseException] = None

        def fetch() -> None:
            # Background-thread serve: recorded on the owner's "recv"
            # track, mirroring the process backend's receiver thread.
            from ..obs.spans import global_tracer  # local import to avoid a cycle

            try:
                with global_tracer().span_at(
                    "recv.serve_batch", owner, "recv", pages=len(self.pages)
                ):
                    self._datas = network.fetch_pages(requester, owner, self.pages)
            except BaseException as exc:  # noqa: BLE001 - re-raised in join()
                self._error = exc

        self._thread = threading.Thread(
            target=fetch, name=f"sim-net-fetch-{requester}-from-{owner}", daemon=True
        )
        self._thread.start()

    def join(self) -> List[np.ndarray]:
        """Block until the batch arrived; returns the page snapshots."""
        self._thread.join()
        if self._error is not None:
            raise self._error
        assert self._datas is not None
        return self._datas
