"""Exception hierarchy for the runtime substrate."""

from __future__ import annotations


class RuntimeErrorBase(Exception):
    """Base class for runtime-substrate errors."""


class TaskError(RuntimeErrorBase):
    """A task context is missing or inconsistent."""


class NetworkError(RuntimeErrorBase):
    """The simulated network was used incorrectly (unknown peer, bad key)."""


class CollectiveError(RuntimeErrorBase):
    """A collective operation was entered inconsistently across tasks."""


class MachineModelError(RuntimeErrorBase):
    """A machine specification or cost-model input is invalid."""
