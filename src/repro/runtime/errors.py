"""Exception hierarchy for the runtime substrate."""

from __future__ import annotations


class RuntimeErrorBase(Exception):
    """Base class for runtime-substrate errors."""


class TaskError(RuntimeErrorBase):
    """A task context is missing or inconsistent."""


class NetworkError(RuntimeErrorBase):
    """The simulated network was used incorrectly (unknown peer, bad key)."""


class PageFetchError(NetworkError):
    """A page could not be fetched: its owning rank is unresolvable.

    Raised by the distributed-memory aspect's refresh protocol when a
    missing page belongs to a Block whose owner cannot be determined
    (no logical key, or the directory has no owner entry).  Carries the
    logical key / page key and the requesting rank so the failure is
    diagnosable instead of silently dropping the page.
    """


class CollectiveError(RuntimeErrorBase):
    """A collective operation was entered inconsistently across tasks."""


class InjectedFault(RuntimeErrorBase):
    """A :class:`~repro.resilience.FaultPlan` killed this rank on purpose.

    Raised inside the victim rank's own call stack on backends where the
    rank shares the parent interpreter (serial, threads, and process
    rank 0); on forked process ranks the kill is a real ``os._exit`` and
    peers observe a :class:`DeadRankError` instead.  Carries the victim
    rank so recovery can diagnose who died without parsing messages.
    """

    def __init__(self, rank: int, description: str = "") -> None:
        detail = f": {description}" if description else ""
        super().__init__(f"injected fault killed rank {rank}{detail}")
        self.rank = rank


class DeadRankError(NetworkError):
    """A peer rank died (dead pipe, nonzero exit code, or marked dead).

    Unlike a plain :class:`NetworkError` timeout this pinpoints *which*
    rank is gone (``.rank``), which is what the recovery layer needs to
    re-partition the dead rank's blocks onto survivors.
    """

    def __init__(self, rank: int, description: str = "") -> None:
        detail = f": {description}" if description else ""
        super().__init__(f"rank {rank} is dead{detail}")
        self.rank = rank


class MachineModelError(RuntimeErrorBase):
    """A machine specification or cost-model input is invalid."""
