"""Exception hierarchy for the runtime substrate."""

from __future__ import annotations


class RuntimeErrorBase(Exception):
    """Base class for runtime-substrate errors."""


class TaskError(RuntimeErrorBase):
    """A task context is missing or inconsistent."""


class NetworkError(RuntimeErrorBase):
    """The simulated network was used incorrectly (unknown peer, bad key)."""


class PageFetchError(NetworkError):
    """A page could not be fetched: its owning rank is unresolvable.

    Raised by the distributed-memory aspect's refresh protocol when a
    missing page belongs to a Block whose owner cannot be determined
    (no logical key, or the directory has no owner entry).  Carries the
    logical key / page key and the requesting rank so the failure is
    diagnosable instead of silently dropping the page.
    """


class CollectiveError(RuntimeErrorBase):
    """A collective operation was entered inconsistently across tasks."""


class MachineModelError(RuntimeErrorBase):
    """A machine specification or cost-model input is invalid."""
