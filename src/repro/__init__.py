"""repro — Reproduction of the AOP-based DSL-constructing platform for HPC.

Reproduces Ishimura & Yoshimoto, "Aspect-Oriented Programming based
building block platform to construct Domain-Specific Language for HPC
application" (IPPS 2022, arXiv:2203.13431) as a pure-Python library.

Top-level layout (see DESIGN.md for the full inventory):

* :mod:`repro.aop` — the weaving engine (JoinPoint Model);
* :mod:`repro.memory` — Memory Library (pools, pages, Blocks, Env, MMAT);
* :mod:`repro.runtime` — simulated MPI / OpenMP layers, machine & cost model;
* :mod:`repro.annotation` — Annotation Library and the Platform driver;
* :mod:`repro.aspects` — Aspect Module Library (MPI / OpenMP layer modules);
* :mod:`repro.dsl` — sample DSL processing systems (SGrid / USGrid / Particle);
* :mod:`repro.obs` — observability (span tracing, metrics, Perfetto export);
* :mod:`repro.apps` — end-user applications and handwritten baselines;
* :mod:`repro.analysis` — memory / code-size / LoC measurement utilities;
* :mod:`repro.bench` — benchmark harness shared by the ``benchmarks/`` suite.
"""

from .annotation import Platform, PlatformBuilder, PlatformRun, TargetApplication
from .aop import Aspect, Weaver, parse_pointcut
from .aspects import (
    DistributedMemoryAspect,
    SharedMemoryAspect,
    hybrid_aspects,
    mpi_aspects,
    openmp_aspects,
)
from .memory import Env
from .obs import (
    MonitoringAspect,
    global_metrics,
    global_tracer,
    phase_report,
    validate_chrome_trace,
)
from .runtime import (
    CostModel,
    MachineSpec,
    OAKBRIDGE_CX_LIKE,
    available_backends,
    get_backend,
    register_backend,
)

__version__ = "0.1.0"

__all__ = [
    "Platform",
    "PlatformBuilder",
    "PlatformRun",
    "TargetApplication",
    "Aspect",
    "Weaver",
    "parse_pointcut",
    "Env",
    "DistributedMemoryAspect",
    "SharedMemoryAspect",
    "hybrid_aspects",
    "mpi_aspects",
    "openmp_aspects",
    "MonitoringAspect",
    "global_tracer",
    "global_metrics",
    "phase_report",
    "validate_chrome_trace",
    "CostModel",
    "MachineSpec",
    "OAKBRIDGE_CX_LIKE",
    "available_backends",
    "get_backend",
    "register_backend",
    "__version__",
]
