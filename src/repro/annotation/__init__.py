"""Annotation Library and Platform driver (Platform Part A.1 of the paper)."""

from .driver import PRESETS, Platform, PlatformBuilder, PlatformRun
from .target import KernelFn, TargetApplication

__all__ = [
    "Platform",
    "PlatformBuilder",
    "PlatformRun",
    "PRESETS",
    "TargetApplication",
    "KernelFn",
]
