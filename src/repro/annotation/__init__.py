"""Annotation Library and Platform driver (Platform Part A.1 of the paper)."""

from .driver import Platform, PlatformRun
from .target import KernelFn, TargetApplication

__all__ = ["Platform", "PlatformRun", "TargetApplication", "KernelFn"]
