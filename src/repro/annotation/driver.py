"""The Platform driver: weaves aspects and executes applications.

This module plays the role of the paper's build/run pipeline (Fig. 3):

* "Platform" (direct C++ compile)           → ``Platform(transcompile=False)``
* "Platform NOP" (AC++ weave, no aspects)   → ``Platform(aspects=[])``
* "Platform MPI" / "Platform OMP" / hybrid  → ``Platform(aspects=[...])``

``Platform.run(AppClass)`` corresponds to compiling the end-user's
Application Code together with the selected Aspect Modules and running
the resulting binary: the driver weaves the application class and the
Env class, wraps its own execution entry point (the ``main`` join
point, AspectType I's pointcut), and then runs Initialize → Processing
→ Finalize.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Type

from ..aop.aspect import Aspect
from ..aop.registry import TAG_ENTRY
from ..aop.weaver import Weaver
from ..memory.env import Env, EnvStats
from ..runtime.machine import OAKBRIDGE_CX_LIKE, MachineSpec
from ..runtime.tracing import TaskCounters, global_trace
from .target import TargetApplication

__all__ = ["Platform", "PlatformRun"]


@dataclass
class PlatformRun:
    """Everything a benchmark needs to know about one platform execution."""

    #: The application instance of the master task (rank 0 / thread 0).
    app: TargetApplication
    #: Wall-clock of the whole run (seconds, measured with perf_counter).
    elapsed: float
    #: Per-task work/traffic counters captured during the run.
    counters: Dict[tuple, TaskCounters] = field(default_factory=dict)
    #: Env statistics of the master task's Env.
    env_stats: Optional[EnvStats] = None
    #: Aggregate network traffic (empty when no distributed layer attached).
    network: dict = field(default_factory=dict)
    #: Parallelism of the run, e.g. {"mpi": 4, "omp": 2}.
    layers: Dict[str, int] = field(default_factory=dict)
    #: Memory report of the master task's Env (Fig. 12).
    memory: dict = field(default_factory=dict)

    @property
    def result(self) -> Any:
        return self.app.result


class Platform:
    """Builds (weaves) and executes platform applications.

    Parameters
    ----------
    aspects:
        Aspect module instances to weave, ordered by their own
        precedence.  ``None`` (the default) means "do not transcompile
        at all" — the application runs exactly as written, which is the
        paper's plain "Platform" configuration.  An empty list means
        "transcompile with no aspect modules" ("Platform NOP").
    mmat:
        Enable MMAT on every Env the application builds.
    env_pool_bytes:
        Size of the memory pool backing each Env.
    machine:
        Machine description used by benchmarks' cost model (not used for
        functional execution).
    """

    def __init__(
        self,
        aspects: Optional[Sequence[Aspect]] = None,
        *,
        mmat: bool = False,
        env_pool_bytes: int = 64 * 1024 * 1024,
        machine: MachineSpec = OAKBRIDGE_CX_LIKE,
        transcompile: Optional[bool] = None,
    ) -> None:
        if transcompile is None:
            transcompile = aspects is not None
        self.transcompile = transcompile
        self.aspects: List[Aspect] = list(aspects or [])
        self.mmat_enabled = bool(mmat)
        self.env_pool_bytes = int(env_pool_bytes)
        self.machine = machine
        #: Shared scratch space aspect modules use to exchange run-level
        #: objects (e.g. the MPI world), keyed by aspect-defined names.
        self.context: Dict[str, Any] = {}

        if self.transcompile:
            self.weaver: Optional[Weaver] = Weaver(self.aspects)
            self.env_class: Type[Env] = self.weaver.weave_class(Env)
        else:
            if self.aspects:
                raise ValueError(
                    "aspect modules require transcompilation; "
                    "pass transcompile=True (or leave it unset)"
                )
            self.weaver = None
            self.env_class = Env

    # ------------------------------------------------------------------
    @property
    def total_tasks(self) -> int:
        total = 1
        for aspect in self.aspects:
            total *= getattr(aspect, "parallelism", 1)
        return total

    def layer_parallelism(self) -> Dict[str, int]:
        layers: Dict[str, int] = {}
        for aspect in self.aspects:
            layer = getattr(aspect, "layer", None)
            if layer:
                layers[layer] = getattr(aspect, "parallelism", 1)
        return layers

    def parallelism_of(self, layer: str) -> int:
        return self.layer_parallelism().get(layer, 1)

    # ------------------------------------------------------------------
    def build(self, app_cls: Type[TargetApplication]) -> Type[TargetApplication]:
        """Weave (or pass through) the application class.

        Corresponds to the compile/transcompile step of Fig. 3; exposed
        separately so the binary-size benchmark (Table I) can inspect
        the woven artefact without running it.
        """
        if not issubclass(app_cls, TargetApplication):
            raise TypeError(
                f"{app_cls.__name__} must inherit TargetApplication (the annotation "
                "library's virtual class)"
            )
        if not self.transcompile:
            return app_cls
        assert self.weaver is not None
        return self.weaver.weave_class(app_cls)

    # ------------------------------------------------------------------
    def run(
        self, app_cls: Type[TargetApplication], *, config: Optional[dict] = None
    ) -> PlatformRun:
        """Weave and execute an application; return the run record."""
        woven_cls = self.build(app_cls)
        trace = global_trace()
        trace.reset()
        self.context.clear()

        for aspect in self.aspects:
            aspect.on_attach(self)

        def execute() -> TargetApplication:
            """The program entry point — AspectType I's outermost join point."""
            app = woven_cls(config)
            app.bind_platform(self)
            app.initialize()
            app.processing()
            app.finalize()
            return app

        if self.transcompile:
            assert self.weaver is not None
            entry = self.weaver.weave_function(execute, tags=(TAG_ENTRY,))
        else:
            entry = execute

        start = time.perf_counter()
        try:
            app = entry()
        finally:
            for aspect in self.aspects:
                aspect.on_detach(self)
        elapsed = time.perf_counter() - start

        env_stats = app.env.stats if app.env is not None else None
        memory = app.env.memory_report() if app.env is not None else {}
        network = {}
        world = self.context.get("mpi_world")
        if world is not None:
            network = world.traffic_summary()
        return PlatformRun(
            app=app,
            elapsed=elapsed,
            counters=trace.all_counters(),
            env_stats=env_stats,
            network=network,
            layers=self.layer_parallelism(),
            memory=memory,
        )
