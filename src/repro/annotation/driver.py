"""The Platform driver: weaves aspects and executes applications.

This module plays the role of the paper's build/run pipeline (Fig. 3):

* "Platform" (direct C++ compile)           → ``Platform(transcompile=False)``
* "Platform NOP" (AC++ weave, no aspects)   → ``Platform(aspects=[])``
* "Platform MPI" / "Platform OMP" / hybrid  → ``Platform(aspects=[...])``

``Platform.run(AppClass)`` corresponds to compiling the end-user's
Application Code together with the selected Aspect Modules and running
the resulting binary: the driver weaves the application class and the
Env class, wraps its own execution entry point (the ``main`` join
point, AspectType I's pointcut), and then runs Initialize → Processing
→ Finalize.

Three equivalent ways to obtain a configured Platform:

* the original constructor — ``Platform(aspects=hybrid_aspects(4, 2))``;
* the fluent builder — ``Platform.builder().mpi(4).omp(2).mmat().build()``;
* a named preset reproducing one of Fig. 3's configurations —
  ``Platform.preset("hybrid", ranks=4, threads=2)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Type

from ..aop.aspect import Aspect
from ..aop.registry import TAG_ENTRY
from ..aop.weaver import Weaver
from ..memory.env import Env, EnvStats
from ..obs import (
    MonitoringAspect,
    env_tracing_default,
    global_metrics,
    global_tracer,
    phase_report,
    save_chrome_trace,
    widest_spans,
)
from ..runtime.machine import OAKBRIDGE_CX_LIKE, MachineSpec
from ..runtime.shm import validate_page_transport
from ..runtime.tracing import TaskCounters, global_trace
from .target import TargetApplication

__all__ = ["Platform", "PlatformBuilder", "PlatformRun", "PRESETS"]


@dataclass
class PlatformRun:
    """Everything a benchmark needs to know about one platform execution."""

    #: The application instance of the master task (rank 0 / thread 0).
    app: TargetApplication
    #: Wall-clock of the whole run (seconds, measured with perf_counter).
    elapsed: float
    #: Per-task work/traffic counters captured during the run.
    counters: Dict[tuple, TaskCounters] = field(default_factory=dict)
    #: Env statistics of the master task's Env.
    env_stats: Optional[EnvStats] = None
    #: Aggregate network traffic (empty when no distributed layer attached).
    network: dict = field(default_factory=dict)
    #: Parallelism of the run, e.g. {"mpi": 4, "omp": 2}.
    layers: Dict[str, int] = field(default_factory=dict)
    #: Memory report of the master task's Env (Fig. 12).
    memory: dict = field(default_factory=dict)
    #: Whether the run went through the weaver ("Platform NOP" and up);
    #: False for the plain "Platform" (serial) configuration.
    transcompiled: bool = False
    #: Name of the execution backend that ran the distributed layer
    #: ("serial" | "threads" | "process" | custom); None when no
    #: distributed-memory world was created.
    backend: Optional[str] = None
    #: MMAT / access-plan statistics of the master task's Env
    #: (``MMAT.stats()``: memo hit-rate, compiled plans, coverage).
    mmat_stats: dict = field(default_factory=dict)
    #: Whether the run was traced (``Platform(tracing=True)`` / REPRO_TRACE).
    tracing: bool = False
    #: Span events captured during a traced run (epoch-aligned dicts,
    #: see :meth:`repro.obs.Tracer.snapshot`); empty when not tracing.
    span_events: List[dict] = field(default_factory=list)
    #: Metrics snapshot of a traced run (``MetricsRegistry.snapshot()``
    #: shape: histograms with p50/p95/p99 + counters, per rank and overall).
    metric_data: dict = field(default_factory=dict)
    #: Recovery events of a resilient run: one entry per diagnosed rank
    #: failure (:class:`repro.resilience.RecoveryEvent`); empty when no
    #: resilience policy was configured or nothing failed.
    recovery_events: List[Any] = field(default_factory=list)

    @property
    def result(self) -> Any:
        """The application's declared result (``app.result``)."""
        return self.app.result

    @property
    def restarts(self) -> int:
        """How many times the world was rebuilt after a diagnosed failure."""
        return len(self.recovery_events)

    def recovery_report(self) -> str:
        """Human-readable recovery summary (one line per diagnosed failure)."""
        if not self.recovery_events:
            return "no failures recovered"
        return "\n".join(event.summary() for event in self.recovery_events)

    # -- observability ---------------------------------------------------
    def timeline(self) -> List[dict]:
        """The traced span events, sorted by start time.

        Each event is a dict with ``ph`` (``"X"`` complete span or
        ``"b"``/``"e"`` async begin/end), ``name``, ``ts_ns``, ``rank``,
        ``thread`` and (for complete spans) ``dur_ns`` and the
        flamegraph ``path``.  Empty unless the run was traced.
        """
        return sorted(self.span_events, key=lambda e: e["ts_ns"])

    def metrics(self) -> dict:
        """Metric snapshot of the run: named histograms and counters.

        Shape: ``{"histograms": {name: {"all": stats, "per_rank":
        {rank: stats}}}, "counters": ...}`` where stats carry count,
        sum, mean, min/max and p50/p95/p99.  Empty unless traced.
        """
        return self.metric_data

    def save_trace(self, path: str) -> str:
        """Write the run's Chrome trace-event JSON to ``path``.

        The file loads in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing``: one process track per rank, one thread
        track per (rank, thread), async halo flights as arrows.
        """
        if not self.span_events:
            raise ValueError(
                "no span events recorded — run the platform with tracing "
                "enabled (Platform(tracing=True) or REPRO_TRACE=1)"
            )
        return save_chrome_trace(
            path,
            self.span_events,
            metadata={"backend": self.backend, "layers": dict(self.layers)},
        )

    def phase_report(self, *, limit: Optional[int] = None) -> str:
        """Plain-text flamegraph-style phase table of the traced run."""
        return phase_report(self.span_events, limit=limit)

    def widest_spans(self, n: int = 5) -> Dict[int, List[dict]]:
        """Top-``n`` longest spans per rank (duration descending)."""
        return widest_spans(self.span_events, n)

    def imbalance(self) -> dict:
        """Per-rank load-imbalance summary: max/mean updates and halo wait.

        Updates come from the task counters; wait time prefers the
        traced ``halo.wait_ns`` histogram (per-rank observations) and
        falls back to the ``overlap_wait_ns`` counters, so the figure is
        available with or without tracing.  Ratios are ``max/mean``
        (1.0 = perfectly balanced).
        """
        updates: Dict[int, float] = {}
        wait: Dict[int, float] = {}
        for (rank, _thread), counters in self.counters.items():
            updates[rank] = updates.get(rank, 0) + counters.updates
            wait[rank] = wait.get(rank, 0) + counters.overlap_wait_ns
        wait_hist = (self.metric_data.get("histograms") or {}).get("halo.wait_ns")
        if wait_hist:
            wait = {rank: s["sum"] for rank, s in wait_hist["per_rank"].items()}

        def stats(values: Dict[int, float]) -> tuple:
            if not values:
                return 0.0, 0.0, 1.0
            peak = max(values.values())
            mean = sum(values.values()) / len(values)
            return peak, mean, (peak / mean if mean else 1.0)

        updates_max, updates_mean, updates_ratio = stats(updates)
        wait_max, wait_mean, wait_ratio = stats(wait)
        return {
            "ranks": len(updates),
            "updates_max": updates_max,
            "updates_mean": updates_mean,
            "updates_imbalance": updates_ratio,
            "wait_max_ns": wait_max,
            "wait_mean_ns": wait_mean,
            "wait_imbalance": wait_ratio,
        }

    def summary(self) -> str:
        """One-line report of the run, for benchmark tables and logs.

        Example::

            mpi=2,omp=2 tasks=4 elapsed=0.041s steps=8 updates=4096
            fetched=12pg/3.1KiB collectives=10 plans=16/7680sites vec=100%
        """
        layers = ",".join(f"{k}={v}" for k, v in sorted(self.layers.items()))
        if not layers:
            layers = "nop" if self.transcompiled else "serial"
        if self.backend is not None:
            layers += f" backend={self.backend}"
        tasks = max(len(self.counters), 1)
        steps = sum(c.steps for c in self.counters.values())
        updates = sum(c.updates for c in self.counters.values())
        pages = sum(c.pages_fetched for c in self.counters.values())
        nbytes = sum(c.bytes_fetched for c in self.counters.values())
        collectives = sum(c.collectives for c in self.counters.values())
        line = (
            f"{layers} tasks={tasks} elapsed={self.elapsed:.3f}s "
            f"steps={steps} updates={updates} "
            f"fetched={pages}pg/{nbytes / 1024:.1f}KiB collectives={collectives}"
        )
        plan_sites = sum(c.plan_sites for c in self.counters.values())
        fallback = sum(c.plan_fallback_sites for c in self.counters.values())
        if plan_sites or fallback:
            # Summed trace counters, like plan_sites: mmat_stats covers
            # only the master rank's Env and would under-count plans on
            # multi-rank runs.
            plans = sum(c.plan_compiles for c in self.counters.values())
            vectorized = plan_sites / (plan_sites + fallback)
            line += f" plans={plans}/{plan_sites}sites vec={vectorized:.0%}"
            # Per-call (uncached) gather_global compiles are not part of
            # the cached-plan coverage; report them as their own count.
            uncached = sum(c.plan_compiles_uncached for c in self.counters.values())
            if uncached:
                line += f" dyn={uncached}"
            if fallback:
                line += f" fallback={fallback}"
        fused_calls = sum(c.kernel_fused_calls for c in self.counters.values())
        if fused_calls:
            fusions = sum(c.kernel_fuse for c in self.counters.values())
            line += f" fused={fused_calls}calls/{fusions}kern"
        line += self._comm_plan_summary()
        line += self._overlap_summary()
        line += self._shm_summary()
        line += self._imbalance_summary()
        return line

    def _imbalance_summary(self) -> str:
        """The ``imb=…`` section of :meth:`summary` (per-rank skew).

        Shows the max/mean ratio of element updates and halo wait time
        across ranks (1.00x = perfectly balanced); omitted for
        single-rank runs where the ratio is definitionally 1.
        """
        imbalance = self.imbalance()
        if imbalance["ranks"] <= 1:
            return ""
        part = f" imb=upd:{imbalance['updates_imbalance']:.2f}x"
        if imbalance["wait_mean_ns"]:
            part += f",wait:{imbalance['wait_imbalance']:.2f}x"
        return part

    def _comm_plan_summary(self) -> str:
        """The ``comm=…`` section of :meth:`summary` (aggregated halo exchange).

        Reports how many aggregated exchanges moved how many halo pages,
        the aggregation ratio (pages per message pair), the number of
        request/reply message pairs saved against the per-page protocol,
        and the number of directed neighbor links the run exercised.
        """
        exchanges = sum(c.comm_plan_exchanges for c in self.counters.values())
        pages = sum(c.comm_plan_pages for c in self.counters.values())
        if not exchanges:
            return ""
        ratio = pages / exchanges
        saved = 2 * (pages - exchanges)
        part = f" comm={exchanges}ex/{pages}pg agg={ratio:.1f}x saved={saved}msg"
        neighbors = self.comm_neighbor_links()
        if neighbors:
            part += f" links={neighbors}"
        fallback_pages = sum(c.comm_plan_fallback_pages for c in self.counters.values())
        if fallback_pages:
            part += f" perpage={fallback_pages}pg"
        return part

    def _overlap_summary(self) -> str:
        """The ``overlap=…`` section of :meth:`summary` (hidden halo latency).

        Reports how many exchanges ran overlapped, the overlap
        efficiency (the fraction of the halo flight time that hid behind
        interior computation, ``1 - wait/flight``), and how many
        exchanges were merely drained at a synchronisation point (no
        compute overlapped them).
        """
        exchanges = sum(c.overlap_exchanges for c in self.counters.values())
        if not exchanges:
            return ""
        part = f" overlap={exchanges}ex eff={self.overlap_efficiency():.0%}"
        drained = sum(c.overlap_drained for c in self.counters.values())
        if drained:
            part += f" drained={drained}"
        return part

    def _shm_summary(self) -> str:
        """The ``shm=…`` section of :meth:`summary` (zero-copy data plane).

        Reports how many pages arrived as shared-memory descriptors and
        how many bytes therefore never crossed a pipe; present only when
        the process backend ran with the shm page transport.  A
        ``fallback=…`` tail counts pages that had to take the packed
        pipe path while in shm mode (object dtype or empty pages).
        """
        fetches = sum(c.shm_fetches for c in self.counters.values())
        if not fetches:
            return ""
        nbytes = sum(c.shm_bytes for c in self.counters.values())
        part = f" shm={fetches}pg/{nbytes / 1024:.1f}KiB"
        fallbacks = sum(c.shm_fallbacks for c in self.counters.values())
        if fallbacks:
            part += f" fallback={fallbacks}pg"
        return part

    def overlap_efficiency(self) -> float:
        """Fraction of the overlapped halo flight time hidden behind compute.

        ``1.0`` means every exchange had fully completed by the time a
        sweep waited on it (the whole round-trip hid behind interior
        computation); ``0.0`` means every wait blocked for the full
        flight time — or that no overlapped exchange ran at all.
        """
        wait = sum(c.overlap_wait_ns for c in self.counters.values())
        flight = sum(c.overlap_flight_ns for c in self.counters.values())
        return 1.0 - wait / flight if flight else 0.0

    def comm_neighbor_links(self) -> int:
        """Directed rank pairs that exchanged page traffic (0 when untracked)."""
        per_neighbor = self.network.get("per_neighbor") or {}
        return len(per_neighbor)

    def comm_aggregation_ratio(self) -> float:
        """Average pages moved per aggregated exchange (0.0 without comm plans)."""
        exchanges = sum(c.comm_plan_exchanges for c in self.counters.values())
        pages = sum(c.comm_plan_pages for c in self.counters.values())
        return pages / exchanges if exchanges else 0.0


class PlatformBuilder:
    """Fluent builder for :class:`Platform` configurations.

    Every method returns the builder, so a full configuration reads as
    one chain::

        platform = (Platform.builder()
                    .mpi(4).omp(2)
                    .mmat()
                    .pool_bytes(32 * 1024 * 1024)
                    .aspect(StepTimerAspect())
                    .build())

    ``build()`` may be called repeatedly; each call produces a fresh
    Platform.  Layer aspects added via :meth:`mpi`/:meth:`omp` are
    instantiated *per build* (layer modules are stateful), whereas an
    instance handed to :meth:`aspect` is attached as-is — sharing that
    instance between several built platforms is the caller's
    responsibility.
    """

    def __init__(self) -> None:
        #: Factories producing the aspect stack; None means "no
        #: transcompilation requested", [] means "Platform NOP".
        self._aspect_factories: Optional[List[Any]] = None
        self._mmat = False
        self._pool_bytes: Optional[int] = None
        self._machine: Optional[MachineSpec] = None
        self._transcompile: Optional[bool] = None
        self._backend: Optional[str] = None
        self._page_transport: Optional[str] = None
        self._tracing: Optional[bool] = None
        self._resilience: Any = None
        self._comm_timeout: Optional[float] = None
        self._temporal_block: Optional[int] = None

    # -- layers ---------------------------------------------------------
    def _factories(self) -> List[Any]:
        if self._aspect_factories is None:
            self._aspect_factories = []
        return self._aspect_factories

    def aspect(self, aspect: Aspect) -> "PlatformBuilder":
        """Attach one aspect module instance (custom or platform)."""
        if not isinstance(aspect, Aspect):
            raise TypeError(f"aspect() expects an Aspect instance, got {aspect!r}")
        self._factories().append(lambda: aspect)
        return self

    def aspects(self, aspects: Sequence[Aspect]) -> "PlatformBuilder":
        """Attach several aspect module instances at once."""
        for aspect in aspects:
            self.aspect(aspect)
        return self

    def mpi(self, ranks: int, **kwargs: Any) -> "PlatformBuilder":
        """Attach the distributed-memory layer with ``ranks`` processes."""
        from ..aspects.mpi_aspect import DistributedMemoryAspect

        self._factories().append(
            lambda: DistributedMemoryAspect(processes=ranks, **kwargs)
        )
        return self

    def omp(self, threads: int, **kwargs: Any) -> "PlatformBuilder":
        """Attach the shared-memory layer with ``threads`` threads."""
        from ..aspects.openmp_aspect import SharedMemoryAspect

        self._factories().append(lambda: SharedMemoryAspect(threads=threads, **kwargs))
        return self

    def nop(self) -> "PlatformBuilder":
        """Transcompile with no aspect modules (the paper's "Platform NOP")."""
        self._factories()
        return self

    # -- knobs ----------------------------------------------------------
    def mmat(self, enabled: bool = True) -> "PlatformBuilder":
        """Enable (or disable) MMAT on every Env the application builds."""
        self._mmat = bool(enabled)
        return self

    def pool_bytes(self, nbytes: int) -> "PlatformBuilder":
        """Size of the memory pool backing each Env."""
        self._pool_bytes = int(nbytes)
        return self

    def machine(self, spec: MachineSpec) -> "PlatformBuilder":
        """Machine description used by the benchmarks' cost model."""
        self._machine = spec
        return self

    def transcompile(self, enabled: bool = True) -> "PlatformBuilder":
        """Force the transcompile decision instead of inferring it."""
        self._transcompile = bool(enabled)
        return self

    def backend(self, name: str) -> "PlatformBuilder":
        """Execution backend for the distributed-memory layer.

        ``"serial"`` runs inline, ``"threads"`` is the simulated runtime
        (default), ``"process"`` forks one real process per rank; custom
        backends registered via
        :func:`repro.runtime.backends.register_backend` are accepted by
        name.  The name is validated at :meth:`build` time.
        """
        self._backend = str(name)
        return self

    def page_transport(self, name: str) -> "PlatformBuilder":
        """Bulk page-fetch data plane of the process backend.

        ``"shm"`` moves page bytes through named shared-memory segments
        (only slot descriptors travel over the pipes), ``"pipe"`` packs
        the bytes into the reply message (the escape hatch, and the
        automatic fallback wherever shm cannot apply), and ``"auto"``
        (the default) picks shm whenever the platform supports it.
        Backends other than ``"process"`` ignore the knob.  Validated
        immediately; the resulting Platform forwards it to
        ``create_world(page_transport=)``.
        """
        self._page_transport = validate_page_transport(name)
        return self

    def tracing(self, enabled: bool = True) -> "PlatformBuilder":
        """Record a span timeline + metrics for every run of the platform.

        Traced runs expose ``run.timeline()`` / ``run.metrics()`` /
        ``run.save_trace(path)``; overhead on untraced paths is a
        single flag check per instrumentation site.
        """
        self._tracing = bool(enabled)
        return self

    def resilience(self, policy: Any = True) -> "PlatformBuilder":
        """Make runs elastic under rank failure (checkpoints + recovery).

        ``policy`` is a :class:`repro.resilience.ResiliencePolicy` (or
        ``True`` for the defaults: checkpoint every epoch, up to two
        restarts, auto-selected store).  Weaves a
        :class:`~repro.resilience.CheckpointAspect` and delegates the
        distributed world lifecycle to a recovery manager that shrinks
        the world and resumes from the last checkpoint epoch after a
        diagnosed rank death.
        """
        self._resilience = policy
        return self

    def temporal_block(self, steps: int) -> "PlatformBuilder":
        """Temporal blocking depth of the fused sweep kernels.

        With ``steps=N > 1`` a fused stencil sweep advances each block's
        interior ``N`` steps per full gather (the halo-independent
        lookahead is cached and merged with a recomputed rim on the
        following steps).  ``1`` (the default) disables the lookahead.
        Requires MMAT (fused kernels only exist on compiled plans);
        results stay bit-identical by construction.
        """
        steps = int(steps)
        if steps < 1:
            raise ValueError(f"temporal_block must be >= 1, got {steps}")
        self._temporal_block = steps
        return self

    def comm_timeout(self, seconds: float) -> "PlatformBuilder":
        """Communication timeout of the distributed layer's world.

        Forwarded to ``create_world(timeout=)`` for every backend;
        bounds how long collectives and page waits may block — and
        therefore how long a dead rank can go undetected.
        """
        self._comm_timeout = float(seconds)
        return self

    # -- terminal -------------------------------------------------------
    def build(self) -> "Platform":
        """Materialise the configured :class:`Platform` (weaves Env).

        Only knobs that were explicitly set are forwarded, so builder
        output always tracks ``Platform.__init__``'s own defaults.
        """
        kwargs: Dict[str, Any] = {"mmat": self._mmat}
        if self._pool_bytes is not None:
            kwargs["env_pool_bytes"] = self._pool_bytes
        if self._machine is not None:
            kwargs["machine"] = self._machine
        if self._transcompile is not None:
            kwargs["transcompile"] = self._transcompile
        if self._backend is not None:
            kwargs["backend"] = self._backend
        if self._page_transport is not None:
            kwargs["page_transport"] = self._page_transport
        if self._tracing is not None:
            kwargs["tracing"] = self._tracing
        if self._resilience is not None:
            kwargs["resilience"] = self._resilience
        if self._comm_timeout is not None:
            kwargs["comm_timeout"] = self._comm_timeout
        if self._temporal_block is not None:
            kwargs["temporal_block"] = self._temporal_block
        aspects = None
        if self._aspect_factories is not None:
            aspects = [factory() for factory in self._aspect_factories]
        return Platform(aspects=aspects, **kwargs)

    def run(
        self, app_cls: Type[TargetApplication], *, config: Optional[dict] = None
    ) -> PlatformRun:
        """Shorthand for ``builder.build().run(app_cls, config=config)``."""
        return self.build().run(app_cls, config=config)


def _preset_serial(builder: PlatformBuilder, ranks: int, threads: int) -> None:
    if ranks != 1 or threads != 1:
        raise ValueError("the 'serial' preset runs exactly one task")


def _preset_nop(builder: PlatformBuilder, ranks: int, threads: int) -> None:
    if ranks != 1 or threads != 1:
        raise ValueError("the 'nop' preset runs exactly one task")
    builder.nop()


def _preset_mpi(builder: PlatformBuilder, ranks: int, threads: int) -> None:
    if threads != 1:
        raise ValueError("the 'mpi' preset takes only ranks; use 'hybrid' for threads")
    builder.mpi(ranks)


def _preset_omp(builder: PlatformBuilder, ranks: int, threads: int) -> None:
    if ranks != 1:
        raise ValueError("the 'omp' preset takes only threads; use 'hybrid' for ranks")
    builder.omp(threads)


def _preset_hybrid(builder: PlatformBuilder, ranks: int, threads: int) -> None:
    # List order is cosmetic; nesting is fixed by each aspect's `order`
    # (shared-memory outside distributed-memory, see aspects/hybrid.py).
    builder.omp(threads).mpi(ranks)


#: Named presets reproducing the paper's Fig. 3 build configurations.
PRESETS = {
    "serial": _preset_serial,
    "nop": _preset_nop,
    "mpi": _preset_mpi,
    "omp": _preset_omp,
    "hybrid": _preset_hybrid,
}


class Platform:
    """Builds (weaves) and executes platform applications.

    Parameters
    ----------
    aspects:
        Aspect module instances to weave, ordered by their own
        precedence.  ``None`` (the default) means "do not transcompile
        at all" — the application runs exactly as written, which is the
        paper's plain "Platform" configuration.  An empty list means
        "transcompile with no aspect modules" ("Platform NOP").
    mmat:
        Enable MMAT on every Env the application builds.
    env_pool_bytes:
        Size of the memory pool backing each Env.
    machine:
        Machine description used by benchmarks' cost model (not used for
        functional execution).
    backend:
        Execution backend the distributed-memory layer should use
        (``"serial"`` | ``"threads"`` | ``"process"`` | a registered
        custom backend).  ``None`` lets each layer aspect decide (the
        default is the ``threads`` simulation).
    page_transport:
        Bulk page-fetch data plane of the process backend (``"auto"`` |
        ``"shm"`` | ``"pipe"``).  ``"shm"`` serves pages through named
        shared-memory segments so only descriptors travel over the
        pipes; ``"pipe"`` packs page bytes into the reply message;
        ``"auto"`` (and ``None``) picks shm whenever the platform
        supports it.  Ignored by the other backends.
    tracing:
        Record a span timeline and metrics for every run
        (:mod:`repro.obs`); adds a :class:`~repro.obs.MonitoringAspect`
        to transcompiled stacks.  ``None`` (default) defers to the
        ``REPRO_TRACE`` environment variable; tracing is otherwise off.
    """

    def __init__(
        self,
        aspects: Optional[Sequence[Aspect]] = None,
        *,
        mmat: bool = False,
        env_pool_bytes: int = 64 * 1024 * 1024,
        machine: MachineSpec = OAKBRIDGE_CX_LIKE,
        transcompile: Optional[bool] = None,
        backend: Optional[str] = None,
        page_transport: Optional[str] = None,
        tracing: Optional[bool] = None,
        resilience: Any = None,
        comm_timeout: Optional[float] = None,
        temporal_block: int = 1,
    ) -> None:
        if transcompile is None:
            transcompile = aspects is not None
        if tracing is None:
            tracing = env_tracing_default()
        self.tracing = bool(tracing)
        if backend is not None:
            from ..runtime.backends import BackendError, get_backend

            try:
                get_backend(backend)
            except BackendError as exc:
                raise ValueError(str(exc)) from None
        self.backend = backend
        #: Bulk page-fetch data plane of the process backend (``"auto"``
        #: | ``"shm"`` | ``"pipe"``); ``None`` keeps ``"auto"`` (shared
        #: memory whenever the platform supports it).  Other backends
        #: accept and ignore the knob.
        self.page_transport = (
            None if page_transport is None else validate_page_transport(page_transport)
        )
        self.transcompile = transcompile
        #: Communication timeout (seconds) forwarded to the distributed
        #: layer's ``create_world(timeout=)``; None keeps the 60s default.
        self.comm_timeout = None if comm_timeout is None else float(comm_timeout)
        self.aspects: List[Aspect] = list(aspects or [])
        if self.tracing and self.transcompile:
            # Dogfood the AOP core: phase spans come from an ordinary
            # aspect woven with the stack (lowest order ⇒ outermost).
            self.aspects.append(MonitoringAspect())
        #: Recovery manager of a resilient platform (None otherwise).
        self.resilience = None
        if resilience is not None and resilience is not False:
            if not self.transcompile:
                raise ValueError(
                    "resilience requires a transcompiled platform "
                    "(checkpoints are woven as an aspect module)"
                )
            from ..resilience import CheckpointAspect, RecoveryManager, ResiliencePolicy

            policy = ResiliencePolicy() if resilience is True else resilience
            self.resilience = RecoveryManager(policy)
            self.aspects.append(CheckpointAspect(self.resilience))
        self.mmat_enabled = bool(mmat)
        #: Temporal blocking depth of the fused sweep kernels: how many
        #: steps a block's interior is advanced per full gather (1 = no
        #: lookahead).  Read by the DSL layer when it hands out kernels.
        temporal_block = int(temporal_block)
        if temporal_block < 1:
            raise ValueError(f"temporal_block must be >= 1, got {temporal_block}")
        self.temporal_block = temporal_block
        self.env_pool_bytes = int(env_pool_bytes)
        self.machine = machine
        #: Shared scratch space aspect modules use to exchange run-level
        #: objects (e.g. the MPI world), keyed by aspect-defined names.
        self.context: Dict[str, Any] = {}

        if self.transcompile:
            self.weaver: Optional[Weaver] = Weaver(self.aspects)
            self.env_class: Type[Env] = self.weaver.weave_class(Env)
        else:
            if self.aspects:
                raise ValueError(
                    "aspect modules require transcompilation; "
                    "pass transcompile=True (or leave it unset)"
                )
            self.weaver = None
            self.env_class = Env

    # ------------------------------------------------------------------
    # construction sugar
    # ------------------------------------------------------------------
    @classmethod
    def builder(cls) -> PlatformBuilder:
        """Start a fluent :class:`PlatformBuilder` chain."""
        return PlatformBuilder()

    @classmethod
    def preset(
        cls,
        name: str,
        *,
        ranks: int = 1,
        threads: int = 1,
        mmat: bool = False,
        pool_bytes: Optional[int] = None,
        machine: Optional[MachineSpec] = None,
        backend: Optional[str] = None,
        page_transport: Optional[str] = None,
        mpi: Optional[int] = None,
        omp: Optional[int] = None,
        tracing: Optional[bool] = None,
        temporal_block: Optional[int] = None,
    ) -> "Platform":
        """Build one of the paper's named configurations (Fig. 3).

        ===========  ====================================================
        ``serial``   no transcompilation at all ("Platform")
        ``nop``      transcompiled, no aspect modules ("Platform NOP")
        ``mpi``      distributed-memory layer, ``ranks`` processes
        ``omp``      shared-memory layer, ``threads`` threads
        ``hybrid``   both layers, ``ranks`` × ``threads`` tasks
        ===========  ====================================================

        ``mpi``/``omp`` are layer-named aliases of ``ranks``/``threads``
        (``Platform.preset("mpi", mpi=2)``), and ``backend`` selects the
        execution backend of the distributed layer
        (``Platform.preset("mpi", mpi=2, backend="process")``).
        """
        configure = PRESETS.get(name)
        if configure is None:
            raise ValueError(
                f"unknown platform preset {name!r} "
                f"(expected one of: {', '.join(sorted(PRESETS))})"
            )
        if mpi is not None:
            ranks = mpi
        if omp is not None:
            threads = omp
        builder = cls.builder().mmat(mmat)
        if pool_bytes is not None:
            builder.pool_bytes(pool_bytes)
        if machine is not None:
            builder.machine(machine)
        if backend is not None:
            builder.backend(backend)
        if page_transport is not None:
            builder.page_transport(page_transport)
        if tracing is not None:
            builder.tracing(tracing)
        if temporal_block is not None:
            builder.temporal_block(temporal_block)
        configure(builder, int(ranks), int(threads))
        return builder.build()

    # ------------------------------------------------------------------
    @property
    def total_tasks(self) -> int:
        """Total task count: the product of every layer's parallelism."""
        total = 1
        for aspect in self.aspects:
            total *= getattr(aspect, "parallelism", 1)
        return total

    def layer_parallelism(self) -> Dict[str, int]:
        """Map of layer name (``"mpi"``, ``"omp"``, …) to its parallelism."""
        layers: Dict[str, int] = {}
        for aspect in self.aspects:
            layer = getattr(aspect, "layer", None)
            if layer:
                layers[layer] = getattr(aspect, "parallelism", 1)
        return layers

    def parallelism_of(self, layer: str) -> int:
        """Parallelism of one layer; 1 when the layer is not woven."""
        return self.layer_parallelism().get(layer, 1)

    # ------------------------------------------------------------------
    def build(self, app_cls: Type[TargetApplication]) -> Type[TargetApplication]:
        """Weave (or pass through) the application class.

        Corresponds to the compile/transcompile step of Fig. 3; exposed
        separately so the binary-size benchmark (Table I) can inspect
        the woven artefact without running it.
        """
        if not issubclass(app_cls, TargetApplication):
            raise TypeError(
                f"{app_cls.__name__} must inherit TargetApplication (the annotation "
                "library's virtual class)"
            )
        if not self.transcompile:
            return app_cls
        assert self.weaver is not None
        return self.weaver.weave_class(app_cls)

    # ------------------------------------------------------------------
    def run(
        self, app_cls: Type[TargetApplication], *, config: Optional[dict] = None
    ) -> PlatformRun:
        """Weave and execute an application; return the run record."""
        trace = global_trace()
        trace.reset()
        self.context.clear()

        tracer = global_tracer()
        was_tracing = tracer.enabled
        if self.tracing:
            tracer.reset()
            global_metrics().reset()
            tracer.set_enabled(True)

        try:
            # Direct hook: the weave itself has no join point to advise
            # (it *creates* them), so the driver times it explicitly.
            with tracer.span("platform.weave"):
                woven_cls = self.build(app_cls)

            for aspect in self.aspects:
                aspect.on_attach(self)

            def execute() -> TargetApplication:
                """The program entry point — AspectType I's outermost join point."""
                app = woven_cls(config)
                app.bind_platform(self)
                app.initialize()
                app.processing()
                app.finalize()
                return app

            if self.transcompile:
                assert self.weaver is not None
                entry = self.weaver.weave_function(execute, tags=(TAG_ENTRY,))
            else:
                entry = execute

            start = time.perf_counter()
            try:
                with tracer.span("platform.run"):
                    app = entry()
            finally:
                for aspect in self.aspects:
                    aspect.on_detach(self)
            elapsed = time.perf_counter() - start
        finally:
            if self.tracing:
                tracer.set_enabled(was_tracing)

        env_stats = app.env.stats if app.env is not None else None
        memory = app.env.memory_report() if app.env is not None else {}
        mmat_stats = app.env.mmat.stats() if app.env is not None else {}
        network = {}
        backend_name = None
        world = self.context.get("mpi_world")
        if world is not None:
            # Every backend's world exposes the same NetworkStats keys, so
            # run.network reads uniformly across serial/threads/process.
            network = world.traffic_summary()
            backend_name = getattr(world, "backend_name", None)
        return PlatformRun(
            app=app,
            elapsed=elapsed,
            counters=trace.all_counters(),
            env_stats=env_stats,
            network=network,
            layers=self.layer_parallelism(),
            memory=memory,
            transcompiled=self.transcompile,
            backend=backend_name,
            mmat_stats=mmat_stats,
            tracing=self.tracing,
            span_events=tracer.snapshot() if self.tracing else [],
            metric_data=global_metrics().snapshot() if self.tracing else {},
            recovery_events=list(self.resilience.events) if self.resilience else [],
        )
