"""Annotation Library: the virtual class end-user applications inherit.

"In the virtual class provided by the annotation library, three
functions are defined: Initialize, Processing, and Finalize. […] In
turn, the platform executes these three functions in the class
implemented by end-users by inheriting the virtual class." (§III-B5)

The class also provides the two step-loop helpers the paper's Listing 1
uses (``WarmUp(Kernel)`` and ``Run(Kernel)``): a *kernel* is a callable
taking a single boolean ``warmup`` argument and returning the value of
``env.refresh`` — ``run`` re-executes the kernel until the refresh
succeeds, ``warm_up`` executes it in dry-run mode to collect the
communication pattern (and clears MMAT first, as the paper specifies).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..aop.registry import (
    TAG_FINALIZE,
    TAG_INITIALIZE,
    TAG_PROCESSING,
    TAG_TARGET,
    annotate,
)
from ..memory.env import Env
from ..runtime.task import current_task
from ..runtime.tracing import global_trace

__all__ = ["TargetApplication", "KernelFn"]

#: A kernel receives ``warmup`` and returns the refresh success flag.
KernelFn = Callable[[bool], bool]


@annotate(TAG_TARGET)
class TargetApplication:
    """Virtual base class of every application running on the platform.

    End users (or, one level below, DSL developers) subclass this and
    implement :meth:`initialize`, :meth:`processing` and
    :meth:`finalize`.  The :class:`~repro.annotation.driver.Platform`
    executes the three in order, after weaving the selected aspect
    modules into the class.
    """

    #: Safety bound on step re-execution (a step failing more often than
    #: this indicates a communication bug rather than missing data).
    MAX_STEP_RETRIES = 8
    #: Safety bound on warm-up passes.
    MAX_WARMUP_PASSES = 8

    def __init__(self, config: Optional[dict] = None) -> None:
        self.config: dict = dict(config or {})
        #: Set by the Platform before ``initialize`` runs.
        self.platform = None
        #: The Env built by the DSL layer during ``initialize``.
        self.env: Optional[Env] = None
        #: Result slot: whatever the application wants to expose after the run.
        self.result: Any = None

    # ------------------------------------------------------------------
    # wiring done by the Platform driver
    # ------------------------------------------------------------------
    def bind_platform(self, platform) -> None:
        """Attach the Platform (gives access to the woven Env class, pools, …)."""
        self.platform = platform

    def make_env(self, **kwargs) -> Env:
        """Create an Env using the Platform's (possibly woven) Env class."""
        env_class = Env if self.platform is None else self.platform.env_class
        defaults = {}
        if self.platform is not None:
            defaults["pool_bytes"] = self.platform.env_pool_bytes
            defaults["mmat_enabled"] = self.platform.mmat_enabled
        defaults.update(kwargs)
        env = env_class(**defaults)
        self.env = env
        return env

    @property
    def total_tasks(self) -> int:
        """Total number of leaf tasks of the attached layer hierarchy."""
        if self.platform is None:
            return 1
        return self.platform.total_tasks

    @property
    def task(self):
        """The task context this instance is currently executing under."""
        return current_task()

    # ------------------------------------------------------------------
    # the three functions of the virtual class (join point shadows)
    # ------------------------------------------------------------------
    @annotate(TAG_INITIALIZE)
    def initialize(self) -> None:
        """Initialise the data for the computation domain."""
        raise NotImplementedError

    @annotate(TAG_PROCESSING)
    def processing(self) -> None:
        """Perform the steps of the calculation."""
        raise NotImplementedError

    @annotate(TAG_FINALIZE)
    def finalize(self) -> None:
        """Post-process / release resources."""
        # Default: nothing to do.

    # ------------------------------------------------------------------
    # step-loop helpers (Listing 1's WarmUp / Run macros)
    # ------------------------------------------------------------------
    def warm_up(self, kernel: KernelFn) -> None:
        """Dry-run the kernel to gather communication info; clears MMAT first.

        The reset drops both the scalar access memo and every compiled
        access plan (the paper's "previously collected information at
        MMAT is cleared when the warm-up macro is called") — plans are
        recompiled lazily from the warm-up passes' resolutions.
        """
        if self.env is not None:
            self.env.mmat.reset()
        for _ in range(self.MAX_WARMUP_PASSES):
            if kernel(True):
                return
        raise RuntimeError(
            "warm-up did not converge: refresh kept failing, which means the "
            "communication advice never satisfied the kernel's remote accesses"
        )

    def run(self, kernel: KernelFn) -> None:
        """Execute one step: re-run the kernel until its refresh succeeds.

        The successful attempt's work and traffic deltas are credited to
        the ``productive_*`` trace counters: they represent the
        steady-state cost per step (what dominates a long run), which is
        what the scaling cost model uses.
        """
        trace = global_trace().for_task()
        for attempt in range(self.MAX_STEP_RETRIES):
            trace.kernel_invocations += 1
            before = (
                trace.updates,
                trace.pages_fetched,
                trace.bytes_fetched,
                trace.messages,
            )
            if kernel(False):
                trace.steps += 1
                trace.productive_updates += trace.updates - before[0]
                trace.productive_pages += trace.pages_fetched - before[1]
                trace.productive_bytes += trace.bytes_fetched - before[2]
                trace.productive_messages += trace.messages - before[3]
                if attempt:
                    trace.recomputed_steps += attempt
                return
        raise RuntimeError(
            f"step failed {self.MAX_STEP_RETRIES} times in a row; "
            "remote data never became available"
        )
