"""Program-size measurement (paper Table I).

The paper reports the size in KB of the compiled benchmark binaries:
handwritten, platform (direct compile), platform NOP (weave without
aspects) and platform with the OMP / MPI / hybrid aspect modules.
A Python program has no single binary, so the equivalent measured here
is the *serialized size of all code objects that make up a
configuration*: the modules of the configuration are compiled and their
code objects marshalled, and woven classes additionally contribute the
wrapper code objects the weaver generated.  This is a monotone proxy
for "how much program text the configuration carries" and reproduces
the ordering and rough ratios of Table I.
"""

from __future__ import annotations

import importlib
import marshal
import py_compile
from types import CodeType, FunctionType, ModuleType
from typing import Iterable, List, Sequence, Set

__all__ = ["module_code_bytes", "class_code_bytes", "configuration_size", "SizeReport"]


def _code_size(code: CodeType) -> int:
    """Marshalled size of a code object including nested code objects."""
    try:
        return len(marshal.dumps(code))
    except ValueError:  # pragma: no cover - unmarshallable constants
        total = len(code.co_code) + sum(len(str(c)) for c in code.co_consts)
        return total


def module_code_bytes(module_name: str) -> int:
    """Size of a module's compiled code object (its '.pyc' payload)."""
    module = importlib.import_module(module_name)
    source_file = getattr(module, "__file__", None)
    if not source_file or not source_file.endswith(".py"):
        return 0
    with open(source_file, "r", encoding="utf-8") as handle:
        source = handle.read()
    code = compile(source, source_file, "exec")
    return _code_size(code)


def class_code_bytes(cls: type) -> int:
    """Size of the code objects reachable from a class's own methods.

    For woven classes this includes the wrapper functions the weaver
    synthesised, so weaving more aspects yields a larger 'binary'.
    """
    seen: Set[int] = set()
    total = 0
    for klass in cls.__mro__:
        if klass is object:
            continue
        for attr in vars(klass).values():
            func = None
            if isinstance(attr, FunctionType):
                func = attr
            elif isinstance(attr, (staticmethod, classmethod)):
                func = attr.__func__
            if func is None:
                continue
            code = func.__code__
            if id(code) in seen:
                continue
            seen.add(id(code))
            total += _code_size(code)
            # Closures created by the weaver hold the advice dispatch code.
            if func.__closure__:
                for cell in func.__closure__:
                    inner = cell.cell_contents
                    if isinstance(inner, FunctionType) and id(inner.__code__) not in seen:
                        seen.add(id(inner.__code__))
                        total += _code_size(inner.__code__)
    return total


class SizeReport(dict):
    """Mapping configuration label -> size in KiB (one row of Table I)."""

    def as_kb(self) -> dict:
        return {label: round(size / 1024.0, 1) for label, size in self.items()}


def configuration_size(
    modules: Sequence[str], classes: Iterable[type] = ()
) -> int:
    """Total 'binary' size of one benchmark configuration in bytes."""
    total = sum(module_code_bytes(name) for name in modules)
    total += sum(class_code_bytes(cls) for cls in classes)
    return total
