"""Memory-usage accounting (paper Fig. 12).

The paper measures, with Valgrind, the total memory of each benchmark
configuration split into *unused memory pool*, *used memory pool* and
*working memory*.  The equivalents here:

* **used / unused pool** come straight from the
  :class:`~repro.memory.pool.MemoryPool` accounting of the Env's
  allocator (the pools are fixed-size, exactly as in the paper);
* **working memory** is everything that is not the pool: the Env tree
  structure, the MMAT memo, block static fields, plus (for the
  handwritten baselines) the arrays the baseline allocates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..memory.env import Env

__all__ = ["MemoryBreakdown", "measure_env", "measure_handwritten"]


@dataclass
class MemoryBreakdown:
    """Bytes of each memory category (one bar of Fig. 12)."""

    label: str
    unused_pool: int = 0
    used_pool: int = 0
    working: int = 0

    @property
    def total(self) -> int:
        return self.unused_pool + self.used_pool + self.working

    def as_row(self) -> dict:
        return {
            "label": self.label,
            "unused_pool_MB": self.unused_pool / 1e6,
            "used_pool_MB": self.used_pool / 1e6,
            "working_MB": self.working / 1e6,
            "total_MB": self.total / 1e6,
        }


def measure_env(env: Env, *, label: str) -> MemoryBreakdown:
    """Memory breakdown of a platform run, read from its Env."""
    import sys

    working = env.structure_bytes()
    # Static per-block side arrays (neighbour tables, etc.) are working
    # memory: the handwritten versions need them too, but the platform keeps
    # them per Block which is what the paper attributes the blow-up to.
    for block in env.data_blocks(include_buffer_only=True):
        for array in getattr(block, "static_fields", {}).values():
            working += int(array.nbytes)
        working += sys.getsizeof(block)
    return MemoryBreakdown(
        label=label,
        unused_pool=env.allocator.free_bytes,
        used_pool=env.allocator.used_bytes,
        working=working,
    )


def measure_handwritten(nbytes_working: int, *, label: str) -> MemoryBreakdown:
    """Memory breakdown of a handwritten baseline (no pool at all)."""
    return MemoryBreakdown(label=label, unused_pool=0, used_pool=0, working=int(nbytes_working))
