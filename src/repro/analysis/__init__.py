"""Measurement utilities backing the non-timing experiments (Figs. 12, Tables I–II)."""

from .codesize import SizeReport, class_code_bytes, configuration_size, module_code_bytes
from .loc_counter import LocBreakdown, count_loc, count_loc_in_file, count_loc_in_source
from .memory_report import MemoryBreakdown, measure_env, measure_handwritten

__all__ = [
    "SizeReport",
    "class_code_bytes",
    "configuration_size",
    "module_code_bytes",
    "LocBreakdown",
    "count_loc",
    "count_loc_in_file",
    "count_loc_in_source",
    "MemoryBreakdown",
    "measure_env",
    "measure_handwritten",
]
