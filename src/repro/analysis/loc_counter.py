"""Lines-of-code accounting (paper Table II).

The paper counts, for each benchmark, the lines of code (excluding
blank lines and comments) of the Platform Part, the DSL Part and the
App Part, for both the platform version and the handwritten version.
This module provides the same counter over this repository's files so
the Table II benchmark can regenerate the comparison.
"""

from __future__ import annotations

import io
import os
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

__all__ = ["count_loc_in_source", "count_loc_in_file", "count_loc", "LocBreakdown"]


def count_loc_in_source(source: str) -> int:
    """Count non-blank, non-comment logical source lines of Python code.

    Docstrings are counted as code (they are part of the program text the
    developer writes and maintains), while ``#`` comments and blank lines
    are excluded — the same convention the paper uses for C++ ("without
    blank lines and comments").
    """
    comment_lines: set = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comment_lines.add(token.start[0])
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        pass
    count = 0
    for lineno, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        if lineno in comment_lines and stripped.startswith("#"):
            continue
        count += 1
    return count


def count_loc_in_file(path: str) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        return count_loc_in_source(handle.read())


def count_loc(paths: Iterable[str]) -> int:
    """Total LoC of files and (recursively) of directories of ``.py`` files."""
    total = 0
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in os.walk(path):
                for name in files:
                    if name.endswith(".py"):
                        total += count_loc_in_file(os.path.join(root, name))
        elif path.endswith(".py") and os.path.exists(path):
            total += count_loc_in_file(path)
    return total


@dataclass
class LocBreakdown:
    """One column of Table II: LoC of each part for one benchmark."""

    benchmark: str
    platform_part: int
    dsl_part: int
    app_part: int
    handwritten: int

    def as_row(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "platform_part": self.platform_part,
            "dsl_part": self.dsl_part,
            "app_part": self.app_part,
            "handwritten": self.handwritten,
        }
