"""Per-figure / per-table data generators for the paper's evaluation.

Every public function regenerates the data behind one figure or table of
the paper's evaluation section (§V) and returns it as a list of plain
dict rows; the ``benchmarks/`` suite prints them with
:func:`repro.bench.harness.format_table`, and EXPERIMENTS.md records a
captured run.

Wall-clock figures (Fig. 6) are measured directly; scaling figures
(Figs. 7–11) are produced by executing the platform on the simulated
runtime and converting the measured per-task work/traffic counters to
time with the shared cost model (see DESIGN.md §2 and
``harness.scale_counters``).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.codesize import class_code_bytes, module_code_bytes
from ..analysis.loc_counter import count_loc
from ..analysis.memory_report import measure_env, measure_handwritten
from ..annotation.driver import Platform
from ..runtime.machine import OAKBRIDGE_CX_LIKE, MachineSpec
from .harness import (
    Workload,
    configuration_aspects,
    format_table,
    modelled_time,
    particle_workload,
    run_handwritten,
    run_platform,
    sgrid_workload,
    usgrid_workload,
)

__all__ = [
    "fig6_overhead",
    "fig7_strong_scaling_mpi",
    "fig8_weak_scaling_mpi",
    "fig9_strong_scaling_omp",
    "fig10_weak_scaling_omp",
    "fig11_hybrid",
    "fig12_memory_usage",
    "table1_binary_size",
    "table2_loc",
    "default_overhead_workloads",
    "default_scaling_workloads",
]


# ----------------------------------------------------------------------
# workload sets (scaled-down counterparts of the paper's columns)
# ----------------------------------------------------------------------

def default_overhead_workloads(small: bool = True) -> List[Workload]:
    """The eight benchmark columns of Fig. 6, at scaled-down sizes."""
    if small:
        sizes_grid = (24, 32)
        sizes_particle = (256, 512)
    else:
        sizes_grid = (32, 48)
        sizes_particle = (512, 1024)
    works: List[Workload] = []
    for region in sizes_grid:
        works.append(sgrid_workload(region, paper_region=2048 if region == sizes_grid[0] else 4096))
    for region in sizes_grid:
        works.append(
            usgrid_workload(region, case="C", paper_region=2048 if region == sizes_grid[0] else 4096)
        )
    for region in sizes_grid:
        works.append(
            usgrid_workload(region, case="R", paper_region=2048 if region == sizes_grid[0] else 4096)
        )
    for count in sizes_particle:
        works.append(
            particle_workload(
                count, paper_particles=2 ** 16 if count == sizes_particle[0] else 2 ** 18
            )
        )
    return works


def default_scaling_workloads() -> Dict[str, Workload]:
    """The four series of the scaling figures (Figs. 7–11)."""
    particle = particle_workload(1024, paper_particles=2 ** 18)
    particle = particle.with_config(block_buckets=4, page_elements=4)
    return {
        "SGrid 4096": sgrid_workload(32, paper_region=4096),
        "USGrid CaseC 4096 (w MMAT)": usgrid_workload(32, case="C", paper_region=4096),
        "USGrid CaseR 4096 (w MMAT)": usgrid_workload(32, case="R", paper_region=4096),
        "Particle 2^18": particle,
    }


# ----------------------------------------------------------------------
# Fig. 6 — single-task overhead of the platform
# ----------------------------------------------------------------------

def fig6_overhead(
    workloads: Optional[Iterable[Workload]] = None,
    *,
    configurations: Sequence[str] = ("serial", "nop", "mpi", "omp"),
    include_mmat: bool = True,
) -> List[dict]:
    """Relative execution time of platform configurations vs Handwritten.

    Mirrors Fig. 6: every configuration is run with a single task
    (1 MPI process / 1 OpenMP thread), with and without MMAT, and its
    wall-clock is reported relative to the handwritten baseline (=100%).
    """
    rows: List[dict] = []
    for work in workloads or default_overhead_workloads():
        hw_elapsed, _hw_result, _hw_bytes = run_handwritten(work)
        rows.append(
            {
                "benchmark": work.name,
                "configuration": "Handwritten",
                "mmat": "-",
                "elapsed_s": hw_elapsed,
                "relative_pct": 100.0,
            }
        )
        mmat_options = (False, True) if include_mmat else (False,)
        for label in configurations:
            for mmat in mmat_options:
                aspects = configuration_aspects(label, mpi=1, omp=1)
                run = run_platform(work, aspects=aspects, mmat=mmat)
                rows.append(
                    {
                        "benchmark": work.name,
                        "configuration": _config_name(label),
                        "mmat": "w MMAT" if mmat else "w/o MMAT",
                        "elapsed_s": run.elapsed,
                        "relative_pct": 100.0 * run.elapsed / hw_elapsed,
                    }
                )
    return rows


def _config_name(label: str) -> str:
    return {
        "serial": "Platform",
        "nop": "Platform NOP",
        "mpi": "Platform MPI",
        "omp": "Platform OMP",
        "hybrid": "Platform MPI+OMP",
    }[label]


# ----------------------------------------------------------------------
# Figs. 7–10 — strong / weak scaling on MPI / OpenMP
# ----------------------------------------------------------------------

def _scaling_rows(
    series: Dict[str, Workload],
    counts: Sequence[int],
    *,
    layer: str,
    weak: bool,
    machine: MachineSpec,
) -> List[dict]:
    rows: List[dict] = []
    for series_name, base_work in series.items():
        baseline_total: Optional[float] = None
        for count in counts:
            work = _resize_for_weak(base_work, count) if weak else base_work
            if layer == "mpi":
                # The paper's prototype exchanges one message pair per
                # page; Figs. 7/8 reproduce that protocol, so the
                # aggregated comm-plan exchange is disabled here.
                aspects = configuration_aspects("mpi", mpi=count, comm_plans=False)
            else:
                aspects = configuration_aspects("omp", omp=count)
            run = run_platform(work, aspects=aspects, mmat=True)
            breakdown = modelled_time(run, work, machine=machine)
            if baseline_total is None:
                baseline_total = breakdown.total
            relative = breakdown.total / baseline_total
            rows.append(
                {
                    "series": series_name,
                    "tasks": count,
                    "modelled_time_s": breakdown.total,
                    "relative": relative,
                    "compute_s": breakdown.compute,
                    "contention_s": breakdown.contention,
                    "communication_s": breakdown.communication,
                    "pages_fetched": sum(c.pages_fetched for c in run.counters.values()),
                }
            )
    return rows


def _resize_for_weak(work: Workload, tasks: int) -> Workload:
    """Grow a workload so that the per-task size stays constant (weak scaling)."""
    factor = int(round(np.sqrt(tasks)))
    if work.kind in ("sgrid", "usgrid"):
        region = work.config["region"] * factor
        # Weak scaling keeps the *per-task* problem size constant, so the
        # run-to-paper linear scale is unchanged (the paper grows its total
        # domain with the task count in exactly the same way).
        scale = work.paper_linear_scale
        if work.kind == "sgrid":
            resized = sgrid_workload(
                region,
                block_size=work.config["block_size"],
                paper_region=int(region * scale),
                name=work.name,
            )
        else:
            resized = usgrid_workload(
                region,
                case=work.config["case"],
                block_cells=work.config["block_cells"],
                paper_region=int(region * scale),
                name=work.name,
            )
        return resized
    # particle: total particles grow linearly with the task count, and the
    # paper's particle count grows with it (constant per-task share).
    particles = work.config["particles"] * tasks
    resized = particle_workload(
        particles,
        paper_particles=int(particles * work.paper_linear_scale ** 2),
        name=work.name,
    )
    return resized.with_config(
        block_buckets=work.config.get("block_buckets", 8),
        page_elements=work.config.get("page_elements", 8),
    )


def fig7_strong_scaling_mpi(
    counts: Sequence[int] = (1, 2, 4, 8, 16),
    *,
    series: Optional[Dict[str, Workload]] = None,
    machine: MachineSpec = OAKBRIDGE_CX_LIKE,
) -> List[dict]:
    """Strong scaling on the distributed-memory layer (Fig. 7)."""
    return _scaling_rows(
        series or default_scaling_workloads(), counts, layer="mpi", weak=False, machine=machine
    )


def fig8_weak_scaling_mpi(
    counts: Sequence[int] = (1, 4, 16),
    *,
    series: Optional[Dict[str, Workload]] = None,
    machine: MachineSpec = OAKBRIDGE_CX_LIKE,
) -> List[dict]:
    """Weak scaling on the distributed-memory layer (Fig. 8).

    The paper runs 1–64 processes; 64 simulated ranks are supported but
    slow under a pure-Python interpreter, so the default stops at 16 —
    pass ``counts=(1, 4, 16, 64)`` to reproduce the full axis.
    """
    return _scaling_rows(
        series or default_scaling_workloads(), counts, layer="mpi", weak=True, machine=machine
    )


def fig9_strong_scaling_omp(
    counts: Sequence[int] = (1, 2, 4, 8, 16),
    *,
    series: Optional[Dict[str, Workload]] = None,
    machine: MachineSpec = OAKBRIDGE_CX_LIKE,
) -> List[dict]:
    """Strong scaling on the shared-memory layer (Fig. 9)."""
    return _scaling_rows(
        series or default_scaling_workloads(), counts, layer="omp", weak=False, machine=machine
    )


def fig10_weak_scaling_omp(
    counts: Sequence[int] = (1, 4, 16),
    *,
    series: Optional[Dict[str, Workload]] = None,
    machine: MachineSpec = OAKBRIDGE_CX_LIKE,
) -> List[dict]:
    """Weak scaling on the shared-memory layer (Fig. 10)."""
    return _scaling_rows(
        series or default_scaling_workloads(), counts, layer="omp", weak=True, machine=machine
    )


# ----------------------------------------------------------------------
# Fig. 11 — MPI × OpenMP combinations at 16 tasks
# ----------------------------------------------------------------------

def fig11_hybrid(
    combinations: Sequence[Tuple[int, int]] = ((1, 16), (2, 8), (4, 4), (8, 2), (16, 1)),
    *,
    series: Optional[Dict[str, Workload]] = None,
    machine: MachineSpec = OAKBRIDGE_CX_LIKE,
) -> List[dict]:
    """Performance of MPI×OpenMP combinations, normalised to a 1×1 run."""
    rows: List[dict] = []
    for series_name, work in (series or default_scaling_workloads()).items():
        base_run = run_platform(work, aspects=configuration_aspects("serial"), mmat=True)
        base_time = modelled_time(base_run, work, machine=machine).total
        for processes, threads in combinations:
            # Same protocol as Figs. 7/8: model the paper's per-page exchange.
            aspects = configuration_aspects(
                "hybrid", mpi=processes, omp=threads, comm_plans=False
            )
            run = run_platform(work, aspects=aspects, mmat=True)
            breakdown = modelled_time(run, work, machine=machine)
            rows.append(
                {
                    "series": series_name,
                    "processes": processes,
                    "threads": threads,
                    "modelled_time_s": breakdown.total,
                    "relative_pct": 100.0 * breakdown.total / base_time,
                    "communication_s": breakdown.communication,
                    "contention_s": breakdown.contention,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Fig. 12 — memory usage decomposition
# ----------------------------------------------------------------------

def fig12_memory_usage(
    *,
    region: int = 16,
    particles: int = 128,
    pool_bytes: int = 8 * 1024 * 1024,
    configurations: Sequence[str] = ("serial", "nop", "omp", "mpi", "hybrid"),
) -> List[dict]:
    """Memory usage split into unused pool / used pool / working memory."""
    works = {
        "SGrid": sgrid_workload(region, block_size=8),
        "USGrid CaseC": usgrid_workload(region, case="C", block_cells=64),
        "USGrid CaseR": usgrid_workload(region, case="R", block_cells=64),
        "Particle": particle_workload(particles),
    }
    rows: List[dict] = []
    for bench_name, work in works.items():
        _elapsed, _result, hw_bytes = run_handwritten(work)
        rows.append(measure_handwritten(hw_bytes, label=f"{bench_name} / H").as_row())
        for label in configurations:
            # The paper measures Fig. 12 with a single MPI process and a
            # single OpenMP thread even for the MPI / OMP / hybrid builds.
            aspects = configuration_aspects(label, mpi=1, omp=1)
            run = run_platform(work, aspects=aspects, mmat=True, pool_bytes=pool_bytes)
            breakdown = measure_env(run.app.env, label=f"{bench_name} / {_config_name(label)}")
            rows.append(breakdown.as_row())
    return rows


# ----------------------------------------------------------------------
# Table I — program ("binary") size
# ----------------------------------------------------------------------

# Modules whose code ends up "linked into" a platform benchmark program.
# The C++ prototype's binaries only contain the (template-instantiated)
# platform code a benchmark actually uses, so we count the annotation layer,
# the DSL layer and the application — not the whole platform library — plus
# the woven wrapper classes and the aspect modules that a configuration adds.
_PLATFORM_MODULES = [
    "repro.annotation.target",
]

_ASPECT_MODULES = {
    "omp": ["repro.aspects.base", "repro.aspects.openmp_aspect", "repro.runtime.simomp"],
    "mpi": [
        "repro.aspects.base",
        "repro.aspects.mpi_aspect",
        "repro.runtime.simmpi",
        "repro.runtime.network",
    ],
}

_DSL_MODULES = {
    "sgrid": ["repro.dsl.base", "repro.dsl.sgrid"],
    "usgrid": ["repro.dsl.base", "repro.dsl.usgrid"],
    "particle": ["repro.dsl.base", "repro.dsl.particle"],
}

_APP_MODULES = {
    "sgrid": ("repro.apps.jacobi_sgrid", "repro.apps.handwritten_sgrid"),
    "usgrid": ("repro.apps.jacobi_usgrid", "repro.apps.handwritten_usgrid"),
    "particle": ("repro.apps.particle_sim", "repro.apps.handwritten_particle"),
}


def table1_binary_size() -> List[dict]:
    """Size (KiB) of the program text making up each configuration (Table I)."""
    from ..apps import JacobiSGrid, JacobiUSGrid, ParticleSimulation

    app_classes = {"sgrid": JacobiSGrid, "usgrid": JacobiUSGrid, "particle": ParticleSimulation}
    rows: List[dict] = []
    for kind in ("sgrid", "usgrid", "particle"):
        app_module, handwritten_module = _APP_MODULES[kind]
        base_modules = _PLATFORM_MODULES + _DSL_MODULES[kind] + [app_module]
        handwritten_kb = module_code_bytes(handwritten_module) / 1024

        def _size(configuration: str) -> float:
            modules = list(base_modules)
            classes: List[type] = []
            app_cls = app_classes[kind]
            if configuration == "P":
                pass
            else:
                if configuration in ("P OMP", "P MPI+OMP"):
                    modules += _ASPECT_MODULES["omp"]
                if configuration in ("P MPI", "P MPI+OMP"):
                    modules += _ASPECT_MODULES["mpi"]
                aspects = {
                    "P NOP": configuration_aspects("nop"),
                    "P OMP": configuration_aspects("omp", omp=2),
                    "P MPI": configuration_aspects("mpi", mpi=2),
                    "P MPI+OMP": configuration_aspects("hybrid", mpi=2, omp=2),
                }[configuration]
                platform = Platform(aspects=aspects)
                classes.append(platform.build(app_cls))
                classes.append(platform.env_class)
            total = sum(module_code_bytes(m) for m in set(modules))
            total += sum(class_code_bytes(c) for c in classes)
            return total / 1024

        row = {"benchmark": kind, "H_KiB": round(handwritten_kb, 1)}
        for configuration in ("P", "P NOP", "P OMP", "P MPI", "P MPI+OMP"):
            row[configuration.replace(" ", "_") + "_KiB"] = round(_size(configuration), 1)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table II — lines of code per part
# ----------------------------------------------------------------------

def table2_loc(repo_root: Optional[str] = None) -> List[dict]:
    """Lines of code of Platform / DSL / App parts vs handwritten (Table II)."""
    import os

    import repro

    src = os.path.dirname(os.path.abspath(repro.__file__))
    platform_dirs = [os.path.join(src, d) for d in ("aop", "memory", "annotation", "aspects", "runtime")]
    platform_loc = count_loc(platform_dirs)
    rows: List[dict] = []
    dsl_files = {
        "SGrid": ["dsl/base.py", "dsl/sgrid.py"],
        "USGrid": ["dsl/base.py", "dsl/usgrid.py"],
        "Particle": ["dsl/base.py", "dsl/particle.py"],
    }
    app_files = {
        "SGrid": ("apps/jacobi_sgrid.py", "apps/handwritten_sgrid.py"),
        "USGrid": ("apps/jacobi_usgrid.py", "apps/handwritten_usgrid.py"),
        "Particle": ("apps/particle_sim.py", "apps/handwritten_particle.py"),
    }
    for bench in ("SGrid", "USGrid", "Particle"):
        dsl_loc = count_loc([os.path.join(src, f) for f in dsl_files[bench]])
        app_py, handwritten_py = app_files[bench]
        rows.append(
            {
                "benchmark": bench,
                "platform_part": platform_loc,
                "dsl_part": dsl_loc,
                "app_part": count_loc([os.path.join(src, app_py)]),
                "handwritten": count_loc([os.path.join(src, handwritten_py)]),
            }
        )
    return rows
