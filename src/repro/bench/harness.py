"""Shared benchmark harness.

Defines the benchmark *workloads* (the paper's SGrid / USGrid CaseC /
USGrid CaseR / Particle), the *configurations* (Handwritten, Platform,
Platform NOP, Platform OMP, Platform MPI, Platform MPI+OMP, each with or
without MMAT) and helpers to execute them and convert executions into
modelled times for the scaling figures.

Scaled problem sizes
--------------------

The paper's evaluation uses 2048²–4096² grids and 2^16–2^18 particles on
a cluster.  A pure-Python per-point interpreter cannot execute those
sizes in benchmark time, so every workload here carries both its *run*
size (what is actually executed) and its *paper* size; the
:func:`scale_counters` helper rescales the measured per-task work and
traffic to the paper size using the natural scaling laws (area for
element updates, perimeter for halo traffic) before the cost model
converts them to time.  This preserves the compute/communication ratios
that give the paper's scaling figures their shape.  EXPERIMENTS.md
documents this substitution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..annotation.driver import Platform, PlatformRun
from ..apps.handwritten_particle import HandwrittenParticle
from ..apps.handwritten_sgrid import HandwrittenSGrid
from ..apps.handwritten_usgrid import HandwrittenUSGrid
from ..apps.jacobi_sgrid import JacobiSGrid
from ..apps.jacobi_usgrid import JacobiUSGrid
from ..apps.particle_sim import ParticleSimulation
from ..aspects import hybrid_aspects, mpi_aspects, openmp_aspects
from ..runtime.costmodel import CostBreakdown, CostModel
from ..runtime.machine import OAKBRIDGE_CX_LIKE, MachineSpec
from ..runtime.tracing import TaskCounters

__all__ = [
    "Workload",
    "WORKLOADS",
    "workload",
    "run_handwritten",
    "run_platform",
    "modelled_time",
    "scale_counters",
    "format_table",
]


def _default_init(x: int, y: int) -> float:
    """Initial field used by every grid benchmark (non-trivial but smooth)."""
    return 0.01 * (x + 2 * y)


@dataclass
class Workload:
    """One benchmark application at one problem size."""

    name: str
    kind: str  # 'sgrid' | 'usgrid' | 'particle'
    app_cls: type
    config: dict
    #: Callable building and running the handwritten baseline; returns its result.
    handwritten: Callable[[], Tuple[float, object, int]]
    #: Linear scale factor between the paper's problem size and the run size
    #: (used to rescale work/traffic before cost modelling).
    paper_linear_scale: float = 1.0

    def with_config(self, **overrides) -> "Workload":
        config = dict(self.config)
        config.update(overrides)
        return replace(self, config=config)


# ----------------------------------------------------------------------
# workload factories
# ----------------------------------------------------------------------

def sgrid_workload(
    region: int = 32,
    *,
    loops: int = 2,
    block_size: int = 8,
    paper_region: int = 4096,
    name: Optional[str] = None,
) -> Workload:
    config = dict(
        region=region,
        block_size=block_size,
        page_elements=64,
        loops=loops,
        init=_default_init,
    )

    def handwritten() -> Tuple[float, object, int]:
        app = HandwrittenSGrid(region, loops=loops, init=_default_init)
        start = time.perf_counter()
        result = app.run()
        return time.perf_counter() - start, result, app.memory_bytes()

    return Workload(
        name=name or f"SGrid {region}",
        kind="sgrid",
        app_cls=JacobiSGrid,
        config=config,
        handwritten=handwritten,
        paper_linear_scale=paper_region / region,
    )


def usgrid_workload(
    region: int = 32,
    *,
    case: str = "C",
    loops: int = 2,
    block_cells: int = 64,
    paper_region: int = 4096,
    name: Optional[str] = None,
) -> Workload:
    config = dict(
        region=region,
        case=case,
        block_cells=block_cells,
        page_elements=32,
        loops=loops,
        init=_default_init,
    )

    def handwritten() -> Tuple[float, object, int]:
        app = HandwrittenUSGrid(region, case=case, loops=loops, init=_default_init)
        start = time.perf_counter()
        result = app.run()
        return time.perf_counter() - start, result, app.memory_bytes()

    return Workload(
        name=name or f"USGrid Case{case} {region}",
        kind="usgrid",
        app_cls=JacobiUSGrid,
        config=config,
        handwritten=handwritten,
        paper_linear_scale=paper_region / region,
    )


def particle_workload(
    particles: int = 256,
    *,
    loops: int = 2,
    paper_particles: int = 2 ** 18,
    name: Optional[str] = None,
) -> Workload:
    config = dict(particles=particles, loops=loops, dt=1e-3)

    def handwritten() -> Tuple[float, object, int]:
        app = HandwrittenParticle(particles, loops=loops)
        start = time.perf_counter()
        result = app.run()
        return time.perf_counter() - start, result, app.memory_bytes()

    return Workload(
        name=name or f"Particle 2^{int(np.log2(particles))}",
        kind="particle",
        app_cls=ParticleSimulation,
        config=config,
        handwritten=handwritten,
        # Particle counts scale with area; the linear scale is the square root.
        paper_linear_scale=float(np.sqrt(paper_particles / particles)),
    )


def workload(kind: str, **kwargs) -> Workload:
    """Factory by kind name ('sgrid' | 'usgrid' | 'particle')."""
    if kind == "sgrid":
        return sgrid_workload(**kwargs)
    if kind == "usgrid":
        return usgrid_workload(**kwargs)
    if kind == "particle":
        return particle_workload(**kwargs)
    raise ValueError(f"unknown workload kind {kind!r}")


#: The four benchmark applications of the paper's evaluation, at default sizes.
WORKLOADS: Dict[str, Workload] = {
    "sgrid": sgrid_workload(),
    "usgrid_c": usgrid_workload(case="C"),
    "usgrid_r": usgrid_workload(case="R"),
    "particle": particle_workload(),
}


# ----------------------------------------------------------------------
# execution helpers
# ----------------------------------------------------------------------

def run_handwritten(work: Workload) -> Tuple[float, object, int]:
    """Run the handwritten baseline; returns (elapsed, result, working_bytes)."""
    return work.handwritten()


def run_platform(
    work: Workload,
    *,
    aspects: Optional[Sequence] = None,
    mmat: bool = False,
    transcompile: Optional[bool] = None,
    pool_bytes: int = 32 * 1024 * 1024,
    machine: MachineSpec = OAKBRIDGE_CX_LIKE,
    backend: Optional[str] = None,
    tracing: Optional[bool] = None,
) -> PlatformRun:
    """Run a workload on the platform under one configuration.

    ``backend`` selects the execution backend of the distributed-memory
    layer (None keeps each aspect's own choice / the default);
    ``tracing`` turns the span tracer on/off for the run (None keeps the
    ``REPRO_TRACE`` environment default).
    """
    builder = Platform.builder().mmat(mmat).pool_bytes(pool_bytes).machine(machine)
    if aspects is not None:
        builder.nop().aspects(aspects)
    if transcompile is not None:
        builder.transcompile(transcompile)
    if backend is not None:
        builder.backend(backend)
    if tracing is not None:
        builder.tracing(tracing)
    return builder.run(work.app_cls, config=dict(work.config))


def configuration_aspects(
    label: str,
    *,
    mpi: int = 1,
    omp: int = 1,
    backend: Optional[str] = None,
    comm_plans: bool = True,
    overlap: bool = True,
):
    """Aspect stack for a configuration label ('serial'|'nop'|'mpi'|'omp'|'hybrid').

    ``comm_plans=False`` keeps the distributed layer on the paper
    prototype's one-message-pair-per-page protocol (the scaling figures
    model that prototype; the aggregated exchange is benchmarked
    separately in ``benchmarks/bench_comm_plans.py``); ``overlap=False``
    keeps the aggregated exchange blocking (``benchmarks/bench_overlap.py``
    measures the difference).
    """
    if label == "serial":
        return None
    if label == "nop":
        return []
    if label == "mpi":
        return mpi_aspects(mpi, backend=backend, comm_plans=comm_plans, overlap=overlap)
    if label == "omp":
        return openmp_aspects(omp)
    if label == "hybrid":
        return hybrid_aspects(
            mpi, omp, backend=backend, comm_plans=comm_plans, overlap=overlap
        )
    raise ValueError(f"unknown configuration {label!r}")


# ----------------------------------------------------------------------
# cost-model helpers
# ----------------------------------------------------------------------

def scale_counters(counters: TaskCounters, linear_scale: float) -> TaskCounters:
    """Rescale measured per-task work/traffic to the paper's problem size.

    Element updates grow with the domain *area* (``linear_scale**2``);
    halo pages/bytes/messages grow with the domain *perimeter*
    (``linear_scale``); synchronisation counts are unchanged.
    """
    area = linear_scale ** 2
    scaled = TaskCounters(**counters.as_dict())
    scaled.updates = int(counters.updates * area)
    scaled.pages_fetched = int(counters.pages_fetched * linear_scale)
    scaled.bytes_fetched = int(counters.bytes_fetched * linear_scale)
    scaled.messages = int(counters.messages * linear_scale)
    scaled.productive_updates = int(counters.productive_updates * area)
    scaled.productive_pages = int(counters.productive_pages * linear_scale)
    scaled.productive_bytes = int(counters.productive_bytes * linear_scale)
    scaled.productive_messages = int(counters.productive_messages * linear_scale)
    return scaled


def amplify_steps(counters: TaskCounters, factor: float) -> TaskCounters:
    """Scale the steady-state (productive) counters as if the step loop ran
    ``factor`` times longer.

    The paper's measurements run long step loops (warm-up and runtime
    start-up are amortised away); the benchmarks here run only a couple of
    steps, so the modelled run is extrapolated to a nominal loop count
    before one-off costs (MPI init, thread spawn) are added.
    """
    scaled = TaskCounters(**counters.as_dict())
    scaled.productive_updates = int(counters.productive_updates * factor)
    scaled.productive_pages = int(counters.productive_pages * factor)
    scaled.productive_bytes = int(counters.productive_bytes * factor)
    scaled.productive_messages = int(counters.productive_messages * factor)
    scaled.collectives = int(counters.collectives * factor)
    return scaled


def modelled_time(
    run: PlatformRun,
    work: Workload,
    *,
    machine: MachineSpec = OAKBRIDGE_CX_LIKE,
    scale_to_paper: bool = True,
    nominal_steps: int = 100,
) -> CostBreakdown:
    """Convert a platform run's counters into modelled wall-clock time.

    ``nominal_steps`` extrapolates the measured steady-state per-step cost
    to a run of that many steps (the paper's LOOP_NUM is large), so that
    one-off runtime initialisation does not dominate the modelled time.
    """
    model = CostModel(machine)
    mpi = run.layers.get("mpi", 1)
    omp = run.layers.get("omp", 1)
    counters = run.counters
    if scale_to_paper:
        counters = {
            key: scale_counters(value, work.paper_linear_scale)
            for key, value in counters.items()
        }
    measured_steps = max(
        (c.steps for c in counters.values() if c.steps), default=1
    )
    if nominal_steps and measured_steps:
        factor = nominal_steps / measured_steps
        counters = {key: amplify_steps(value, factor) for key, value in counters.items()}
    return model.run_time(counters, mpi_size=mpi, omp_threads=omp)


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------

def format_table(rows: List[dict], *, title: str = "") -> str:
    """Render a list of dict rows as a fixed-width text table."""
    if not rows:
        return f"{title}\n(no data)"
    columns = list(rows[0].keys())
    widths = {
        col: max(len(str(col)), *(len(_fmt(row.get(col))) for row in rows))
        for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(" | ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)
