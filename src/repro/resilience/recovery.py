"""Rank recovery: diagnose dead ranks, re-partition, resume from checkpoints.

The :class:`RecoveryManager` owns the elastic run loop that replaces the
distributed-memory aspect's one-shot world lifecycle when a
:class:`ResiliencePolicy` is configured on the Platform:

1. create a world, install the fault plan, run the program SPMD;
2. on :class:`~repro.runtime.backends.base.SpmdFailure`, diagnose which
   ranks actually *died* (injected faults, dead pipes / nonzero exit
   codes) as opposed to merely seeing their peers' collectives fail;
3. shrink the world, re-partition the dead ranks' blocks onto the
   survivors (cost-model-driven, :mod:`repro.resilience.rebalance`),
   load the latest checkpoint epoch every rank completed, and run the
   program again — the woven :class:`~repro.resilience.checkpoint.
   CheckpointAspect` restores the pages after registration and
   fast-forwards the step loop to the resume epoch.

A failure with no diagnosable dead rank (e.g. a detected-but-unrecovered
corrupt reply) is re-raised unchanged: recovery only elides failures it
can actually repair.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..memory.zorder import morton_encode
from ..runtime.backends.base import SpmdFailure
from ..runtime.errors import DeadRankError, InjectedFault
from ..runtime.tracing import global_trace
from .checkpoint import DiskCheckpointStore, MemoryCheckpointStore, RankPages
from .rebalance import plan_recovery_ownership

__all__ = [
    "RecoveryEvent",
    "RecoveryManager",
    "ResiliencePolicy",
    "diagnose_dead_ranks",
]


@dataclass
class ResiliencePolicy:
    """Configuration of the elastic fault-tolerant run loop.

    ``store`` selects the checkpoint store: ``"auto"`` picks
    :class:`DiskCheckpointStore` for the process backend (forked children
    die with their memory; spool files survive) and
    :class:`MemoryCheckpointStore` otherwise; ``"memory"`` / ``"disk"``
    force one; a store instance is used as-is (and not closed by the
    manager).  ``max_restarts`` bounds how many times the world may be
    rebuilt; ``checkpoint_interval`` saves every Nth epoch.
    """

    checkpoint_interval: int = 1
    max_restarts: int = 2
    store: Any = "auto"
    fault_plan: Any = None
    rebalance: bool = True


@dataclass
class RecoveryEvent:
    """One diagnosed failure and the recovery decision taken for it."""

    attempt: int
    dead_ranks: Tuple[int, ...]
    old_size: int
    new_size: int
    resume_epoch: int
    rebalanced: bool
    #: Wall-clock of the failed attempt, launch to SpmdFailure — an upper
    #: bound on the detection latency (must stay far below comm_timeout).
    elapsed: float
    description: str = ""

    def summary(self) -> str:
        dead = ",".join(str(r) for r in self.dead_ranks)
        return (
            f"attempt {self.attempt}: rank(s) {dead} died after {self.elapsed:.3f}s; "
            f"world {self.old_size}->{self.new_size}, resume from epoch "
            f"{self.resume_epoch}"
            + (" (rebalanced)" if self.rebalanced else "")
        )


def _dead_rank_of(error: Optional[BaseException]) -> Optional[int]:
    """The rank an error chain proves dead, or None (walks __cause__/__context__)."""
    seen: Set[int] = set()
    while error is not None and id(error) not in seen:
        seen.add(id(error))
        if isinstance(error, (InjectedFault, DeadRankError)):
            return error.rank
        error = error.__cause__ or error.__context__
    return None


def diagnose_dead_ranks(failure: SpmdFailure) -> Set[int]:
    """Ranks the per-rank results prove dead (not merely collaterally failed).

    A killed rank reports :class:`InjectedFault` (in-stack kills) or is
    reported dead by the collector / its peers via :class:`DeadRankError`
    (real child death: dead pipes, nonzero exit codes).  Peers' secondary
    ``CollectiveError`` timeouts name nobody and are ignored.
    """
    dead: Set[int] = set()
    for result in failure.results:
        rank = _dead_rank_of(result.error)
        if rank is not None:
            dead.add(rank)
    return dead


def _zorder_sorted(keys: List[Any]) -> List[Any]:
    """Sort logical keys along the DSL's Z-order curve (repr fallback)."""

    def z(key: Any):
        coords = key if isinstance(key, (tuple, list)) else (key,)
        try:
            return (0, morton_encode(tuple(max(int(c), 0) for c in coords)))
        except (TypeError, ValueError):
            return (1, repr(key))

    return sorted(keys, key=z)


class RecoveryManager:
    """Owns checkpoints, epochs and the create-run-diagnose-shrink loop.

    One manager is attached to a Platform (``Platform(resilience=...)``)
    and shared between the woven :class:`CheckpointAspect` (which calls
    the epoch/replay bookkeeping from rank context) and the
    distributed-memory aspect's entry advice (which delegates the world
    lifecycle to :meth:`execute`).
    """

    def __init__(self, policy: Optional[ResiliencePolicy] = None) -> None:
        self.policy = policy or ResiliencePolicy()
        #: The live world of the current attempt (None outside a run).
        self.world: Any = None
        self.store: Any = None
        self.size: int = 0
        self.attempt: int = 0
        #: Epoch every restarted rank fast-forwards to (0 = fresh start).
        self.resume_epoch: int = 0
        #: Merged checkpoint pages of ``resume_epoch`` (logical key → pages).
        self.restore_pages: RankPages = {}
        #: Post-rebalance ownership override (logical key → surviving rank).
        self.ownership: Optional[Dict[Any, int]] = None
        #: One :class:`RecoveryEvent` per diagnosed failure, in order.
        self.events: List[RecoveryEvent] = []
        self._epochs: Dict[int, int] = {}
        self._replay: Dict[int, int] = {}
        self._lock = threading.Lock()
        self._owns_store = False

    # ------------------------------------------------------------------
    # aspect interface (called from rank context by CheckpointAspect)
    # ------------------------------------------------------------------
    def epoch_of(self, rank: int) -> int:
        with self._lock:
            return self._epochs.get(rank, 0)

    def note_epoch(self, rank: int) -> int:
        with self._lock:
            epoch = self._epochs.get(rank, 0) + 1
            self._epochs[rank] = epoch
            return epoch

    def replay_remaining(self, rank: int) -> int:
        with self._lock:
            return self._replay.get(rank, 0)

    def consume_replay(self, rank: int) -> None:
        with self._lock:
            if self._replay.get(rank, 0) > 0:
                self._replay[rank] -= 1

    def should_checkpoint(self, epoch: int) -> bool:
        interval = max(int(self.policy.checkpoint_interval), 1)
        return epoch % interval == 0

    # ------------------------------------------------------------------
    # run loop (called from the distributed-memory aspect's entry advice)
    # ------------------------------------------------------------------
    def execute(
        self,
        backend: Any,
        aspect: Any,
        entry: Callable[[], Any],
        *,
        omp_threads: int = 1,
        timeout: float = 60.0,
        page_transport: str = "auto",
    ) -> Any:
        """Run ``entry`` SPMD with failure diagnosis, rebalance and resume."""
        policy = self.policy
        self.size = int(getattr(aspect, "parallelism", 1))
        self.attempt = 0
        self.resume_epoch = 0
        self.restore_pages = {}
        self.ownership = None
        self.events = []
        self._create_store(backend)
        platform = getattr(aspect, "platform", None)
        try:
            while True:
                self.attempt += 1
                world = backend.create_world(
                    self.size, timeout=timeout, page_transport=page_transport
                )
                self.world = world
                self._begin_attempt()
                if policy.fault_plan is not None:
                    world.install_fault_plan(policy.fault_plan)
                # Reset the mpi aspect's per-world state for this attempt.
                aspect.world = world
                aspect._dry_run = {rank: set() for rank in range(world.size)}
                aspect._comm_plans = {}
                if platform is not None:
                    platform.context["mpi_world"] = world
                    platform.context["resilience"] = self
                    if self.ownership is not None:
                        platform.context["resilience_ownership"] = self.ownership
                started = time.perf_counter()
                try:
                    results = world.run_spmd(
                        lambda _ctx: entry(), omp_threads=omp_threads
                    )
                    return results[0].value
                except SpmdFailure as failure:
                    self._plan_recovery(
                        failure,
                        world,
                        elapsed=time.perf_counter() - started,
                        machine=getattr(platform, "machine", None),
                        omp_threads=omp_threads,
                    )
                finally:
                    world.finalize()
        finally:
            self.world = None
            if self._owns_store and self.store is not None:
                self.store.close()

    # ------------------------------------------------------------------
    def _create_store(self, backend: Any) -> None:
        choice = self.policy.store
        self._owns_store = True
        if choice == "auto":
            choice = "disk" if getattr(backend, "name", "") == "process" else "memory"
        if choice == "memory":
            self.store = MemoryCheckpointStore()
        elif choice == "disk":
            self.store = DiskCheckpointStore()
        else:  # caller-provided store instance: used as-is, never closed
            self.store = choice
            self._owns_store = False

    def _begin_attempt(self) -> None:
        with self._lock:
            self._epochs = {}
            self._replay = {rank: self.resume_epoch for rank in range(self.size)}

    def _plan_recovery(
        self,
        failure: SpmdFailure,
        world: Any,
        *,
        elapsed: float,
        machine: Any,
        omp_threads: int,
    ) -> None:
        """Diagnose ``failure``; set up the next attempt or re-raise."""
        policy = self.policy
        dead = diagnose_dead_ranks(failure)
        if not dead:
            raise failure  # nothing died — not a failure recovery can repair
        new_size = self.size - len(dead)
        if new_size < 1:
            raise SpmdFailure(
                f"every rank died ({sorted(dead)}); nothing left to recover onto",
                failure.results,
            ) from failure
        if self.attempt > policy.max_restarts:
            raise SpmdFailure(
                f"rank(s) {sorted(dead)} died and the restart budget "
                f"({policy.max_restarts}) is exhausted",
                failure.results,
            ) from failure

        # The same fault must not fire again on the restarted world: on
        # in-stack backends the shared plan already retired it, but a
        # forked child mutated only its own copy.
        if policy.fault_plan is not None:
            for rank in sorted(dead):
                policy.fault_plan.retire_rank(rank)

        old_owner = world.directory.owners()

        # Resume from the newest epoch whose restored pages cover every
        # known block.  Rank-count completeness alone is not enough: a
        # mixed-attempt epoch (some ranks saved under the old layout,
        # some under the new) can look complete yet miss keys, and a
        # missing key would silently restart that block from epoch 0.
        all_keys = set(old_owner)
        resume = self.store.latest_complete_epoch(self.size) or 0
        restore_pages: Dict[Any, Any] = {}
        while resume > 0:
            candidate = self.store.load_epoch(resume, self.size)
            if not all_keys or all_keys <= set(candidate):
                restore_pages = candidate
                break
            resume -= 1
        self.resume_epoch = int(resume)
        self.restore_pages = restore_pages if self.resume_epoch else {}
        keys = _zorder_sorted(list(old_owner))
        rebalanced = False
        if keys:
            self.ownership = plan_recovery_ownership(
                keys,
                new_size,
                old_owner=old_owner if policy.rebalance else None,
                counters=global_trace().all_counters() if policy.rebalance else None,
                machine=machine,
                omp_threads=omp_threads,
            )
            rebalanced = policy.rebalance
        event = RecoveryEvent(
            attempt=self.attempt,
            dead_ranks=tuple(sorted(dead)),
            old_size=self.size,
            new_size=new_size,
            resume_epoch=self.resume_epoch,
            rebalanced=rebalanced,
            elapsed=elapsed,
            description=str(failure),
        )
        self.events.append(event)
        self.size = new_size

    # ------------------------------------------------------------------
    def report(self) -> str:
        """Human-readable recovery report (one line per diagnosed failure)."""
        if not self.events:
            return "no failures recovered"
        return "\n".join(event.summary() for event in self.events)
