"""Cost-model-driven re-partitioning of a dead rank's blocks.

When a rank dies the surviving world is smaller, so the block → rank
assignment the DSL computed at build time no longer covers every block.
This module plans the *new* ownership map: the logical keys keep their
Z-order (the DSL sorted them for locality — preserving contiguity keeps
halos between neighbouring ranks), and the split points between ranks
are chosen so the **modelled** per-rank time is as even as possible.

The per-key weights come from the run that died: the PR 6 obs layer
recorded each rank's :class:`~repro.runtime.tracing.TaskCounters`, and
:class:`~repro.runtime.costmodel.CostModel` converts them into modelled
seconds — a rank that measured twice the updates/traffic contributes
twice the weight to each of its keys.  Without measurements (death
before the first refresh) every key weighs the same and the plan
degrades to the DSL's own even contiguous deal.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..runtime.costmodel import CostModel
from ..runtime.machine import MachineSpec
from ..runtime.tracing import TaskCounters

__all__ = ["merge_rank_counters", "plan_recovery_ownership"]


def merge_rank_counters(
    counters: Mapping[Tuple[int, int], TaskCounters],
) -> Dict[int, TaskCounters]:
    """Fold per-(rank, thread) counters into one :class:`TaskCounters` per rank."""
    merged: Dict[int, TaskCounters] = {}
    for (rank, _thread), task_counters in counters.items():
        mine = merged.get(rank)
        if mine is None:
            mine = merged[rank] = TaskCounters()
        for spec in fields(TaskCounters):
            value = getattr(task_counters, spec.name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                setattr(mine, spec.name, getattr(mine, spec.name) + value)
            elif getattr(mine, spec.name) == spec.default:
                setattr(mine, spec.name, value)
    return merged


def _key_weights(
    keys: Sequence[Any],
    old_owner: Optional[Mapping[Any, int]],
    counters: Optional[Mapping[Tuple[int, int], TaskCounters]],
    machine: Optional[MachineSpec],
    omp_threads: int,
) -> List[float]:
    """Modelled seconds each key contributed to its old owner (1.0 fallback)."""
    if not counters or not old_owner:
        return [1.0] * len(keys)
    by_rank = merge_rank_counters(counters)
    if not by_rank:
        return [1.0] * len(keys)
    old_size = max(by_rank) + 1
    model = CostModel(machine) if machine is not None else CostModel()
    rank_cost: Dict[int, float] = {
        rank: model.task_time(c, mpi_size=old_size, omp_threads=omp_threads).total
        for rank, c in by_rank.items()
    }
    keys_per_rank: Dict[int, int] = {}
    for key in keys:
        rank = old_owner.get(key)
        if rank is not None:
            keys_per_rank[rank] = keys_per_rank.get(rank, 0) + 1
    mean = sum(rank_cost.values()) / max(len(rank_cost), 1)
    weights: List[float] = []
    for key in keys:
        rank = old_owner.get(key)
        if rank in rank_cost and keys_per_rank.get(rank):
            weights.append(rank_cost[rank] / keys_per_rank[rank])
        else:
            weights.append(mean / max(len(keys) / max(len(rank_cost), 1), 1.0))
    # Degenerate measurements (all-zero modelled time) → uniform deal.
    if sum(weights) <= 0.0:
        return [1.0] * len(keys)
    return weights


def plan_recovery_ownership(
    keys: Sequence[Any],
    new_size: int,
    *,
    old_owner: Optional[Mapping[Any, int]] = None,
    counters: Optional[Mapping[Tuple[int, int], TaskCounters]] = None,
    machine: Optional[MachineSpec] = None,
    omp_threads: int = 1,
) -> Dict[Any, int]:
    """Assign every logical key to one of ``new_size`` surviving ranks.

    ``keys`` must already be in the DSL's Z-order; the plan cuts that
    sequence into ``new_size`` contiguous runs whose summed weights are
    as balanced as the greedy ideal-boundary walk achieves, and every
    rank receives at least one key while keys remain (the DSL requires
    each world rank to own something for registration to make sense).
    """
    if new_size < 1:
        raise ValueError("cannot plan ownership for an empty world")
    keys = list(keys)
    if not keys:
        return {}
    if len(keys) <= new_size:
        return {key: index for index, key in enumerate(keys)}
    weights = _key_weights(keys, old_owner, counters, machine, omp_threads)
    total = sum(weights)
    ownership: Dict[Any, int] = {}
    rank = 0
    acc = 0.0
    boundary = total / new_size
    for index, key in enumerate(keys):
        remaining_keys = len(keys) - index
        remaining_ranks = new_size - rank
        # Advance to the next rank when the ideal boundary is crossed,
        # but never leave a later rank without keys, and never advance
        # past the last rank.
        if (
            rank < new_size - 1
            and acc >= boundary
            and remaining_keys > remaining_ranks - 1
        ):
            rank += 1
            boundary = total * (rank + 1) / new_size
        elif remaining_keys == remaining_ranks and rank < new_size - 1 and index > 0:
            rank += 1
            boundary = total * (rank + 1) / new_size
        ownership[key] = rank
        acc += weights[index]
    return ownership
