"""Page checkpoints: epoch snapshots of each rank's owned Env pages.

After every successful (non-warm-up) refresh the woven
:class:`CheckpointAspect` snapshots the read-buffer pages of the rank's
*owned* Data Blocks — the post-swap state the owners would serve to any
halo fetch — keyed ``(epoch, rank) -> {logical_key: {page_index:
ndarray}}``.  Buffer-only (halo) blocks are deliberately **not**
checkpointed: after a restore their pages are invalid, the first real
sweep records them missing and the refresh protocol's repair fetch
recovers them from the restored owners, exactly like any other failed
refresh.

Stores are pluggable:

* :class:`MemoryCheckpointStore` — a locked dict; right for the serial
  and threads backends where every rank shares the parent interpreter.
* :class:`DiskCheckpointStore` — one pickle file per ``(epoch, rank)``
  spooled to a temp directory; right for the process backend, where
  forked children die with their memory but their spool files survive
  for the parent to read post-mortem.

The restore path (:meth:`CheckpointAspect.restore_state`) runs after
``platform.initialize`` *and* after the distributed-memory aspect's
block registration (after-advice: lower aspect order runs last), filling
**every buffer generation** of each owned block with the checkpointed
page so the fast-forward replay — which skips refreshes and therefore
never swaps — reads epoch-``E`` data regardless of generation parity.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import threading
from typing import Any, Dict, Optional, Set

import numpy as np

from ..aop.advice import after_returning, around
from ..aop.aspect import Aspect
from ..obs.spans import global_tracer
from ..runtime.task import current_task
from ..runtime.tracing import global_trace

__all__ = [
    "CheckpointAspect",
    "CheckpointStore",
    "DiskCheckpointStore",
    "MemoryCheckpointStore",
]

#: ``{logical_key: {page_index: ndarray}}`` — one rank's owned pages at one epoch.
RankPages = Dict[Any, Dict[int, np.ndarray]]


class CheckpointStore:
    """Interface of a checkpoint store (duck-typed; subclass or match it)."""

    def save(self, epoch: int, rank: int, pages: RankPages) -> None:
        raise NotImplementedError

    def saved_epochs(self) -> Dict[int, Set[int]]:
        """Map of epoch -> set of ranks that saved it."""
        raise NotImplementedError

    def load_rank(self, epoch: int, rank: int) -> RankPages:
        raise NotImplementedError

    def latest_complete_epoch(self, ranks: int) -> Optional[int]:
        """Newest epoch saved by *every* rank ``0..ranks-1`` (None if none)."""
        expected = set(range(ranks))
        complete = [e for e, saved in self.saved_epochs().items() if expected <= saved]
        return max(complete) if complete else None

    def load_epoch(self, epoch: int, ranks: int) -> RankPages:
        """Merge every saved rank's pages of ``epoch`` into one logical-key map.

        Merges over the ranks that actually saved the epoch rather than
        ``range(ranks)``: after an elastic shrink the epoch may have been
        written by a *larger* world, and truncating to the current size
        would silently drop the highest old ranks' blocks.  Values of a
        given (epoch, key) are identical regardless of which layout
        saved them, so the union is always consistent.
        """
        saved = self.saved_epochs().get(int(epoch), set()) | set(range(ranks))
        merged: RankPages = {}
        for rank in sorted(saved):
            for logical_key, pages in self.load_rank(epoch, rank).items():
                merged.setdefault(logical_key, {}).update(pages)
        return merged

    def close(self) -> None:
        """Release store resources (idempotent)."""


class MemoryCheckpointStore(CheckpointStore):
    """In-memory store for worlds whose ranks share the interpreter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._saves: Dict[int, Dict[int, RankPages]] = {}

    def save(self, epoch: int, rank: int, pages: RankPages) -> None:
        # Copy the arrays: the caller's buffers keep mutating after the
        # save (the disk store gets this isolation for free from pickle).
        snap = {
            lk: {pi: np.array(data, copy=True) for pi, data in by_page.items()}
            for lk, by_page in pages.items()
        }
        with self._lock:
            self._saves.setdefault(int(epoch), {})[int(rank)] = snap

    def saved_epochs(self) -> Dict[int, Set[int]]:
        with self._lock:
            return {epoch: set(by_rank) for epoch, by_rank in self._saves.items()}

    def load_rank(self, epoch: int, rank: int) -> RankPages:
        with self._lock:
            return dict(self._saves.get(int(epoch), {}).get(int(rank), {}))


class DiskCheckpointStore(CheckpointStore):
    """Spool-to-disk store surviving the death of forked rank processes.

    One pickle file per ``(epoch, rank)``, written to a private temp file
    then :func:`os.replace`-d into place so a rank killed mid-save never
    leaves a torn checkpoint — the parent only ever sees complete files.
    The spool directory path is plain state, inherited by forked children
    and readable by the parent after they die.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-ckpt-")
            self._owned = True
        else:
            os.makedirs(directory, exist_ok=True)
            self._owned = False
        self.directory = directory

    def _path(self, epoch: int, rank: int) -> str:
        return os.path.join(self.directory, f"epoch{int(epoch):08d}-rank{int(rank):04d}.pkl")

    def save(self, epoch: int, rank: int, pages: RankPages) -> None:
        path = self._path(epoch, rank)
        fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=self.directory)
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(pages, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def saved_epochs(self) -> Dict[int, Set[int]]:
        epochs: Dict[int, Set[int]] = {}
        try:
            names = os.listdir(self.directory)
        except OSError:
            return epochs
        for name in names:
            if not (name.startswith("epoch") and name.endswith(".pkl")):
                continue
            try:
                epoch_part, rank_part = name[:-4].split("-rank")
                epochs.setdefault(int(epoch_part[5:]), set()).add(int(rank_part))
            except ValueError:
                continue
        return epochs

    def load_rank(self, epoch: int, rank: int) -> RankPages:
        path = self._path(epoch, rank)
        if not os.path.exists(path):
            return {}
        with open(path, "rb") as fh:
            return pickle.load(fh)

    def close(self) -> None:
        if self._owned and os.path.isdir(self.directory):
            shutil.rmtree(self.directory, ignore_errors=True)


class CheckpointAspect(Aspect):
    """Aspect weaving checkpoint, fault-point and replay logic into refresh.

    Ordered *outside* the distributed-memory aspect (15 < 20) so its
    around-advice wraps the collective refresh protocol: during a
    fast-forward replay it returns success **without proceeding**,
    skipping the mpi aspect's allreduce/barrier/prefetch entirely — every
    restarted rank skips the same ``resume_epoch`` refreshes
    deterministically, with no collective traffic.  For after-advice the
    same ordering means :meth:`restore_state` runs *after* the mpi
    aspect's block registration.
    """

    order = 15
    name = "checkpoint"

    def __init__(self, manager) -> None:
        super().__init__()
        #: The owning :class:`~repro.resilience.recovery.RecoveryManager`.
        self.manager = manager

    # ------------------------------------------------------------------
    @around("tagged('memory.refresh')", order=0)
    def guard_refresh(self, jp):
        """Fault points, fast-forward replay and the post-refresh snapshot."""
        manager = self.manager
        world = manager.world
        if world is None:
            return jp.proceed()
        warmup = bool(jp.args[0]) if jp.args else bool(jp.kwargs.get("warmup", False))
        if warmup:
            # Warm-up refreshes never swap, never count as epochs and must
            # run even when replaying (they compile the access plans the
            # steady state depends on).
            return jp.proceed()
        env = jp.target
        rank = current_task().mpi_rank
        trace = global_trace().for_task()

        # The refresh about to run would complete epoch ``current + 1``.
        world.fault_point(rank, "refresh", manager.epoch_of(rank) + 1)

        if manager.replay_remaining(rank) > 0:
            # Fast-forward: the restored pages already hold this epoch's
            # outcome.  Advance the step counter exactly as a successful
            # refresh would, without proceeding into the collective
            # protocol (no allreduce, no barrier, no prefetch) — every
            # rank skips in lockstep because resume_epoch is global.
            manager.consume_replay(rank)
            env.step += 1
            manager.note_epoch(rank)
            trace.replayed_steps += 1
            return True

        result = jp.proceed()
        if not result:
            return result

        epoch = manager.note_epoch(rank)
        if manager.should_checkpoint(epoch):
            with global_tracer().span("ckpt.save", epoch=epoch):
                pages = self._snapshot_owned(env)
                manager.store.save(epoch, rank, pages)
            trace.checkpoints += 1
            trace.checkpoint_pages += sum(len(p) for p in pages.values())
        # "epoch" fault point: fires after the snapshot, while the
        # overlapped prefetch issued by the mpi advice is already in
        # flight — the kill-during-overlap-flight case.
        world.fault_point(rank, "epoch", epoch)
        return result

    # ------------------------------------------------------------------
    @around("tagged('memory.get_blocks')", order=0)
    def skip_replayed_sweeps(self, jp):
        """Give kernels no work during fast-forward replay sweeps."""
        manager = self.manager
        if manager.world is None:
            return jp.proceed()
        warmup = bool(jp.args[0]) if jp.args else bool(jp.kwargs.get("warmup", False))
        if warmup:
            return jp.proceed()
        rank = current_task().mpi_rank
        if manager.replay_remaining(rank) > 0:
            return []
        return jp.proceed()

    # ------------------------------------------------------------------
    @after_returning("tagged('platform.initialize')", order=0)
    def restore_state(self, jp):
        """Fill owned blocks with the resume checkpoint's pages (post-registration)."""
        manager = self.manager
        if manager.world is None or not manager.restore_pages:
            return
        env = getattr(jp.target, "env", None)
        if env is None:
            return
        rank = current_task().mpi_rank
        trace = global_trace().for_task()
        restored = 0
        with global_tracer().span("ckpt.restore", epoch=manager.resume_epoch):
            for block in env.data_blocks():
                logical_key = getattr(block, "logical_key", None)
                if logical_key is None:
                    continue
                pages = manager.restore_pages.get(logical_key)
                if not pages:
                    continue
                for page_index, data in pages.items():
                    # Fill every buffer generation: replayed refreshes are
                    # skipped (no swap), so any generation may be read.
                    for buf in block.buffer.buffers:
                        buf.pages[page_index].fill_from(data)
                    restored += 1
            env._dense_cache.clear()
        trace.restored_pages += restored

    # ------------------------------------------------------------------
    @staticmethod
    def _snapshot_owned(env) -> RankPages:
        """Collect the read-buffer pages of every owned Data Block.

        Hands out **views** of the pool pages, not copies: both stores
        isolate on ``save`` anyway (the memory store copies, the disk
        store pickles), and the views are consumed synchronously inside
        the refresh advice — before any buffer swap can mutate them —
        so the extra snapshot copy here would be pure overhead.
        """
        pages: RankPages = {}
        for block in env.data_blocks():
            logical_key = getattr(block, "logical_key", None)
            if logical_key is None:
                continue
            pages[logical_key] = {
                index: block.page_view(index) for index in range(block.page_count())
            }
        return pages
