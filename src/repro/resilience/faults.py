"""Seeded failure injection: fault plans honored by the execution backends.

A :class:`FaultPlan` is a small declarative schedule of failures —
"kill rank 2 at refresh epoch 3", "drop the first page reply rank 1
sends to rank 0" — installed on a world via
:meth:`~repro.runtime.backends.base.ExecutionWorld.install_fault_plan`
*before* ``run_spmd``.  The runtime substrate consumes the plan through
three duck-typed entry points (no import of this package):

* ``take_kill(rank, phase, epoch)`` — called from the world's fault
  points (``"register"`` at commit time, ``"refresh"`` at refresh
  entry, ``"epoch"`` right after a successful refresh, i.e. while
  overlapped halo prefetches are in flight);
* ``take_reply(owner, requester)`` — called by the page-serving
  transports just before posting a reply (delay / drop / corrupt);
* ``wants_checksums()`` — whether reply payloads should carry an
  integrity checksum so ``corrupt_reply`` faults are *detected* rather
  than silently poisoning the numerics.

Plans are deterministic: every fault fires at an explicitly scheduled
(rank, phase, epoch) point, and :func:`FaultPlan.seeded` derives such a
schedule reproducibly from an integer seed for the chaos battery.

Each fault fires at most ``count`` times (kills: once).  Firing is
tracked *per plan object*: on the process backend each forked rank
mutates its own copy, so after a real child kill the parent must call
:meth:`FaultPlan.retire_rank` for the diagnosed-dead rank before
re-installing the plan on a restarted world — :class:`RecoveryManager`
does exactly that.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["Fault", "FaultPlan", "KILL", "DELAY_REPLY", "DROP_REPLY", "CORRUPT_REPLY"]

KILL = "kill"
DELAY_REPLY = "delay_reply"
DROP_REPLY = "drop_reply"
CORRUPT_REPLY = "corrupt_reply"

_KINDS = (KILL, DELAY_REPLY, DROP_REPLY, CORRUPT_REPLY)
_PHASES = ("register", "refresh", "epoch")


@dataclass
class Fault:
    """One scheduled failure.

    ``kind=kill``: terminate ``rank`` when it reaches ``phase`` (at
    ``epoch`` for refresh-relative phases; ``epoch=None`` fires at the
    first opportunity).  Reply kinds: act on replies ``rank`` sends to
    ``peer`` (``peer=None`` matches any requester), ``count`` times;
    ``seconds`` is the injected delay for ``delay_reply``.
    """

    kind: str
    rank: int
    phase: str = "refresh"
    epoch: Optional[int] = None
    peer: Optional[int] = None
    seconds: float = 0.05
    count: int = 1
    fired: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (one of {_KINDS})")
        if self.kind == KILL and self.phase not in _PHASES:
            raise ValueError(f"unknown kill phase {self.phase!r} (one of {_PHASES})")

    def __str__(self) -> str:
        where = f"{self.phase}" + (f"@epoch {self.epoch}" if self.epoch is not None else "")
        return f"{self.kind}(rank {self.rank}, {where})"


class FaultPlan:
    """A thread-safe, at-most-``count``-times schedule of :class:`Fault` s."""

    def __init__(self, faults: Optional[List[Fault]] = None) -> None:
        self.faults: List[Fault] = list(faults or [])
        self._lock = threading.Lock()

    # -- construction ---------------------------------------------------
    def kill(self, rank: int, *, phase: str = "refresh", epoch: Optional[int] = None) -> "FaultPlan":
        """Kill ``rank`` at ``phase`` (optionally only at ``epoch``); chainable."""
        self.faults.append(Fault(KILL, rank, phase=phase, epoch=epoch))
        return self

    def delay_reply(
        self, rank: int, *, peer: Optional[int] = None, seconds: float = 0.05, count: int = 1
    ) -> "FaultPlan":
        """Delay ``count`` page replies of ``rank`` by ``seconds``; chainable."""
        self.faults.append(Fault(DELAY_REPLY, rank, peer=peer, seconds=seconds, count=count))
        return self

    def drop_reply(self, rank: int, *, peer: Optional[int] = None, count: int = 1) -> "FaultPlan":
        """Drop ``count`` page replies of ``rank`` (requester times out); chainable."""
        self.faults.append(Fault(DROP_REPLY, rank, peer=peer, count=count))
        return self

    def corrupt_reply(self, rank: int, *, peer: Optional[int] = None, count: int = 1) -> "FaultPlan":
        """Flip payload bits in ``count`` replies of ``rank``; chainable.

        Installing any corrupt fault makes the world attach adler32
        checksums to page replies (and pins ``page_transport="auto"``
        to the packed-pipe path) so the corruption is *detected*.
        """
        self.faults.append(Fault(CORRUPT_REPLY, rank, peer=peer, count=count))
        return self

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        ranks: int,
        epochs: int,
        kills: int = 1,
        spare_rank0: bool = False,
    ) -> "FaultPlan":
        """Derive a reproducible kill schedule from ``seed``.

        Picks ``kills`` distinct victim ranks and, for each, a refresh
        epoch in ``[1, epochs)`` and a phase (``refresh`` or ``epoch``).
        ``spare_rank0=True`` keeps rank 0 alive (the process backend
        runs rank 0 inline in the parent, where a kill is a soft
        exception rather than a real child death).
        """
        rng = random.Random(seed)
        candidates = list(range(1 if spare_rank0 else 0, ranks))
        if kills > len(candidates):
            raise ValueError(f"cannot kill {kills} of {len(candidates)} candidate ranks")
        plan = cls()
        for rank in rng.sample(candidates, kills):
            epoch = rng.randrange(1, max(epochs, 2))
            phase = rng.choice(("refresh", "epoch"))
            plan.kill(rank, phase=phase, epoch=epoch)
        return plan

    # -- consumption (duck-typed by the runtime substrate) --------------
    def take_kill(self, rank: int, phase: str, epoch: Optional[int]) -> Optional[Fault]:
        """Return-and-retire the kill scheduled at this point, if any."""
        with self._lock:
            for fault in self.faults:
                if fault.kind != KILL or fault.fired >= fault.count:
                    continue
                if fault.rank != rank or fault.phase != phase:
                    continue
                if fault.epoch is not None and fault.epoch != epoch:
                    continue
                fault.fired = fault.count
                return fault
        return None

    def take_reply(self, owner: int, requester: int) -> Optional[Fault]:
        """Return-and-consume one reply fault for a reply owner→requester."""
        with self._lock:
            for fault in self.faults:
                if fault.kind == KILL or fault.fired >= fault.count:
                    continue
                if fault.rank != owner:
                    continue
                if fault.peer is not None and fault.peer != requester:
                    continue
                fault.fired += 1
                return fault
        return None

    def wants_checksums(self) -> bool:
        """Whether any corrupt-reply fault is scheduled (enable checksums)."""
        return any(f.kind == CORRUPT_REPLY for f in self.faults)

    def retire_rank(self, rank: int) -> None:
        """Mark every kill targeting ``rank`` as fired.

        After a real (forked-child) kill the parent's plan copy was not
        mutated; the recovery loop retires the diagnosed-dead rank's
        kills before re-installing the plan on the restarted world so
        the same fault cannot fire twice.
        """
        with self._lock:
            for fault in self.faults:
                if fault.kind == KILL and fault.rank == rank:
                    fault.fired = fault.count

    def pending_kills(self) -> List[Fault]:
        """Kill faults that have not fired yet (used by the run loop)."""
        with self._lock:
            return [f for f in self.faults if f.kind == KILL and f.fired < f.count]

    def __repr__(self) -> str:
        return f"FaultPlan({', '.join(str(f) for f in self.faults)})"
